//! Deterministic EWMA anomaly detection over per-node scan cost.
//!
//! Each storage node gets an exponentially-weighted baseline of its
//! simulated scan cost. Two kinds of suspicion are raised:
//!
//! - **Drift** — a node's latest sample sits far above its *own*
//!   baseline (z-score over the EWMA variance). Catches nodes that
//!   were healthy and then degraded, e.g. retry/backoff storms from an
//!   injected transient-fault burst.
//! - **Straggler** — a node's baseline sits far above the *fleet
//!   median* baseline. Catches nodes that were slow from the first
//!   sample (an injected `with_slow_node` multiplier), which their own
//!   z-score can never see because their variance converges to zero
//!   around the slow mean.
//!
//! There is no RNG and no wall clock anywhere: inputs are simulated
//! costs in node-index order (the executor replays telemetry on the
//! coordinator thread), so the suspicion stream is bit-identical at
//! any `SEA_EXEC_THREADS`. Suspicions latch: a node is flagged once
//! per kind, with a repeat counter instead of duplicate records, so
//! E21 can score precision/recall against the injected `FaultPlan`
//! ground truth.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

/// Tuning knobs for the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnomalyConfig {
    /// EWMA smoothing factor (weight of the newest sample).
    pub alpha: f64,
    /// Z-score above which a sample counts as drift from the node's
    /// own baseline.
    pub z_threshold: f64,
    /// A node whose baseline exceeds `straggler_ratio ×` the fleet
    /// median baseline is a straggler.
    pub straggler_ratio: f64,
    /// Samples a node must absorb before it can be judged (and before
    /// it participates in the fleet median).
    pub warmup: u32,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            alpha: 0.3,
            z_threshold: 4.0,
            straggler_ratio: 1.6,
            warmup: 3,
        }
    }
}

/// Which rule flagged the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuspicionKind {
    /// Sample far above the node's own EWMA baseline.
    Drift,
    /// Baseline far above the fleet median baseline.
    Straggler,
}

impl SuspicionKind {
    /// Stable lowercase label used in `node.suspect` event fields.
    pub fn label(self) -> &'static str {
        match self {
            SuspicionKind::Drift => "drift",
            SuspicionKind::Straggler => "straggler",
        }
    }
}

/// A latched suspicion for one (node, kind) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Suspicion {
    /// Storage node index.
    pub node: u64,
    /// Rule that fired.
    pub kind: SuspicionKind,
    /// Simulated time of the first firing.
    pub first_flagged_us: f64,
    /// Evidence score at first firing: z-score for drift, baseline /
    /// fleet-median ratio for stragglers.
    pub score: f64,
    /// Further samples that re-confirmed the suspicion.
    pub repeats: u64,
}

/// Recent raw samples retained per node for the robust straggler
/// comparison.
const ROBUST_WINDOW: usize = 9;

/// Per-node state: EWMA baseline (drift) + recent raw samples
/// (straggler). The EWMA reacts fast but is outlier-sensitive; the
/// straggler comparison instead uses the *minimum* of a short raw
/// window. A slow-node multiplier scales every sample, so even the
/// node's fastest recent scan stays high — while retry/backoff noise
/// is additive and intermittent, so one clean sample in the window
/// restores a healthy node's level. Retry storms therefore cannot
/// impersonate a persistently slow node.
#[derive(Debug, Clone)]
struct NodeBaseline {
    mean: f64,
    var: f64,
    samples: u32,
    recent: VecDeque<f64>,
}

impl NodeBaseline {
    fn warmed(&self, cfg: &AnomalyConfig) -> bool {
        self.samples >= cfg.warmup
    }

    /// Minimum of the retained raw samples (0 when empty): the node's
    /// best-case recent cost.
    fn robust_level(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

/// Median of an iterator of floats (0 when empty).
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// The detector: per-node baselines plus latched suspicions.
#[derive(Debug)]
pub struct AnomalyDetector {
    cfg: AnomalyConfig,
    nodes: BTreeMap<u64, NodeBaseline>,
    /// Latched suspicions keyed by (node, kind-is-straggler) for
    /// deterministic ordering.
    suspicions: BTreeMap<(u64, bool), Suspicion>,
}

impl AnomalyDetector {
    /// A detector with the given config.
    pub fn new(cfg: AnomalyConfig) -> Self {
        AnomalyDetector {
            cfg,
            nodes: BTreeMap::new(),
            suspicions: BTreeMap::new(),
        }
    }

    /// The active config.
    pub fn config(&self) -> &AnomalyConfig {
        &self.cfg
    }

    /// Median of warmed-node robust levels (`None` until at least three
    /// nodes are warmed — a median of one or two nodes says nothing
    /// about who is the outlier).
    fn fleet_median(&self) -> Option<f64> {
        let levels: Vec<f64> = self
            .nodes
            .values()
            .filter(|b| b.warmed(&self.cfg))
            .map(NodeBaseline::robust_level)
            .collect();
        if levels.len() < 3 {
            return None;
        }
        Some(median(levels.into_iter()))
    }

    fn latch(
        &mut self,
        node: u64,
        kind: SuspicionKind,
        now_us: f64,
        score: f64,
    ) -> Option<Suspicion> {
        let key = (node, matches!(kind, SuspicionKind::Straggler));
        match self.suspicions.get_mut(&key) {
            Some(existing) => {
                existing.repeats += 1;
                None
            }
            None => {
                let s = Suspicion {
                    node,
                    kind,
                    first_flagged_us: now_us,
                    score,
                    repeats: 0,
                };
                self.suspicions.insert(key, s);
                Some(s)
            }
        }
    }

    /// Feeds one scan-cost sample for `node` at simulated time
    /// `now_us`. Returns newly latched suspicions (empty for repeats
    /// and healthy samples), drift before straggler.
    pub fn observe(&mut self, node: u64, now_us: f64, cost_us: f64) -> Vec<Suspicion> {
        let mut fresh = Vec::new();
        let (mean0, var0, samples0) = self
            .nodes
            .get(&node)
            .map_or((cost_us, 0.0, 0), |b| (b.mean, b.var, b.samples));
        // Judge drift against the baseline *before* folding the sample
        // in, so a single huge spike is compared to the healthy past.
        let sd = var0.sqrt().max(0.01 * mean0.abs() + 1e-6);
        let mut winsorized = false;
        let mut cost_eff = cost_us;
        if samples0 >= self.cfg.warmup {
            let z = (cost_us - mean0) / sd;
            if z >= self.cfg.z_threshold {
                if let Some(s) = self.latch(node, SuspicionKind::Drift, now_us, z) {
                    fresh.push(s);
                }
                // Winsorize: fold a clamped value into the EWMA so one
                // retry-storm spike cannot jerk the baseline up, and
                // decay (rather than inflate) the variance — feeding an
                // outlier's deviation into the variance widens the
                // clamp after every spike until the gate is useless.
                winsorized = true;
                cost_eff = mean0 + self.cfg.z_threshold * sd;
            }
        }
        let a = self.cfg.alpha;
        let d = cost_eff - mean0;
        let entry = self.nodes.entry(node).or_insert_with(|| NodeBaseline {
            mean: cost_us,
            var: 0.0,
            samples: 0,
            recent: VecDeque::with_capacity(ROBUST_WINDOW + 1),
        });
        entry.mean = mean0 + a * d;
        entry.var = if winsorized {
            (1.0 - a) * var0
        } else {
            (1.0 - a) * (var0 + a * d * d)
        };
        entry.samples = samples0.saturating_add(1);
        // The raw (unclamped) sample feeds the robust window: the
        // median shrugs off outliers by construction.
        entry.recent.push_back(cost_us);
        if entry.recent.len() > ROBUST_WINDOW {
            entry.recent.pop_front();
        }

        // Straggler check: this node's median level vs the fleet's.
        if samples0.saturating_add(1) >= self.cfg.warmup {
            let level = self.nodes[&node].robust_level();
            if let Some(fleet) = self.fleet_median() {
                if fleet > 0.0 {
                    let ratio = level / fleet;
                    if ratio >= self.cfg.straggler_ratio {
                        if let Some(s) = self.latch(node, SuspicionKind::Straggler, now_us, ratio) {
                            fresh.push(s);
                        }
                    }
                }
            }
        }
        fresh
    }

    /// All latched suspicions in deterministic (node, kind) order.
    pub fn suspicions(&self) -> Vec<Suspicion> {
        self.suspicions.values().copied().collect()
    }

    /// Baseline means per node (for snapshots / debugging), warmed or
    /// not, in node order.
    pub fn baselines(&self) -> Vec<(u64, f64, u32)> {
        self.nodes
            .iter()
            .map(|(n, b)| (*n, b.mean, b.samples))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_fleet(det: &mut AnomalyDetector, rounds: u32, slow_node: u64, slow_mult: f64) {
        for r in 0..rounds {
            let now = r as f64 * 1_000.0;
            for node in 0..8u64 {
                let base = 100.0 + node as f64; // slight per-node spread
                let cost = if node == slow_node {
                    base * slow_mult
                } else {
                    base
                };
                det.observe(node, now, cost);
            }
        }
    }

    #[test]
    fn steady_fleet_raises_nothing() {
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        feed_fleet(&mut det, 20, 99, 1.0); // no slow node
        assert!(det.suspicions().is_empty());
    }

    #[test]
    fn slow_from_start_node_is_flagged_as_straggler() {
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        feed_fleet(&mut det, 10, 1, 2.0);
        let sus = det.suspicions();
        assert_eq!(sus.len(), 1, "exactly the slow node: {sus:?}");
        assert_eq!(sus[0].node, 1);
        assert_eq!(sus[0].kind, SuspicionKind::Straggler);
        assert!(sus[0].score >= 1.6, "ratio {}", sus[0].score);
        // Flagged as soon as warmup allows: warmup=3 means the 4th
        // round (now = 3000) is the earliest possible.
        assert_eq!(sus[0].first_flagged_us, 3_000.0);
        assert!(sus[0].repeats > 0, "later rounds re-confirm");
    }

    #[test]
    fn sudden_spike_is_flagged_as_drift_once() {
        let mut det = AnomalyDetector::new(AnomalyConfig::default());
        // Healthy history for node 0.
        for r in 0..6 {
            det.observe(0, r as f64 * 1_000.0, 100.0);
            det.observe(1, r as f64 * 1_000.0, 100.0);
            det.observe(2, r as f64 * 1_000.0, 100.0);
        }
        // Spike: 100 → 1000 is z ≈ (900)/(1 + ...) huge.
        let fresh = det.observe(0, 6_000.0, 1_000.0);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].kind, SuspicionKind::Drift);
        assert_eq!(fresh[0].node, 0);
        // A second spike only bumps the repeat counter.
        let again = det.observe(0, 7_000.0, 1_000.0);
        assert!(again.iter().all(|s| s.kind != SuspicionKind::Drift));
        let drift = det
            .suspicions()
            .into_iter()
            .find(|s| s.kind == SuspicionKind::Drift)
            .unwrap();
        assert_eq!(drift.first_flagged_us, 6_000.0);
        assert!(drift.repeats >= 1);
    }

    #[test]
    fn observation_order_is_irrelevant_to_latched_set() {
        let mut a = AnomalyDetector::new(AnomalyConfig::default());
        let mut b = AnomalyDetector::new(AnomalyConfig::default());
        feed_fleet(&mut a, 10, 2, 2.0);
        feed_fleet(&mut b, 10, 2, 2.0);
        assert_eq!(a.suspicions(), b.suspicions());
        assert_eq!(a.baselines(), b.baselines());
    }
}
