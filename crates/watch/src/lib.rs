//! # sea-watch — deterministic observability over the simulated clock
//!
//! The watch layer closes the loop the paper's vision opens: a data
//! system that not only *answers* queries under cost/accuracy budgets
//! but *notices* when it is degrading — without ever consulting a wall
//! clock or an RNG, so every alert and every window summary is
//! bit-identical across host thread counts and reruns.
//!
//! Three pieces, all keyed on simulated cost-time:
//!
//! - [`window`] — tumbling and sliding windows over any observation
//!   stream, with exact per-window percentiles (p50/p95/p99/p999) and
//!   bucket counts on the same bounds as the cumulative registry, so
//!   merging a series of tumbling windows reproduces the cumulative
//!   histogram's counts exactly.
//! - [`slo`] — per-tenant [`SloPolicy`] objectives with the classic
//!   multi-window burn-rate pair (fast 5-window / slow 60-window) over
//!   the error budget, an append-only [`AlertLog`], and latched
//!   raise/clear transitions.
//! - [`anomaly`] — per-node EWMA baselines over scan cost flagging
//!   *drift* (a node far above its own past) and *stragglers* (a node
//!   far above the fleet median), scored in E21 against injected
//!   `FaultPlan` ground truth.
//!
//! The [`WatchHub`] stitches them to the telemetry stream as a
//! `TelemetryTap`: observations land in windows, `query.node_cost`
//! events feed the detector, and fresh suspicions are re-emitted as
//! `node.suspect` events (filtered on re-entry, so no cycles).

pub mod anomaly;
pub mod hub;
pub mod slo;
pub mod window;

pub use anomaly::{AnomalyConfig, AnomalyDetector, Suspicion, SuspicionKind};
pub use hub::{
    NodeTime, SeriesSnapshot, WatchConfig, WatchHub, WatchSnapshot, NODE_COST_EVENT,
    NODE_FAILOVER_EVENT, SUSPECT_EVENT,
};
pub use slo::{
    AlertLog, AlertRecord, AlertTransition, SloPolicy, SloStatus, SloTracker, FAST_WINDOWS,
    SLOW_WINDOWS,
};
pub use window::{
    merge_windows, summarize_window, SlidingWindow, TumblingSeries, WindowSummary,
    MAX_RETAINED_WINDOWS,
};
