//! Per-tenant SLOs with multi-window error-budget burn-rate alerting.
//!
//! An [`SloPolicy`] declares what a *good* request is — answered within
//! a simulated-latency objective, with at least the availability
//! objective's `answered_fraction` — and how much of the traffic may be
//! bad (the error budget). The [`SloTracker`] folds each ledgered
//! request into per-window good/bad counts over the simulated clock and
//! evaluates the classic fast/slow burn-rate pair: an alert raises when
//! the budget is burning faster than threshold over BOTH the last
//! [`FAST_WINDOWS`] windows (is it happening *now*?) and the last
//! [`SLOW_WINDOWS`] windows (is it *sustained*?), and clears when either
//! recovers. Transitions are returned to the caller (the `sea-service`
//! front door records them as `watch.alert` events) and appended to the
//! shared [`AlertLog`].
//!
//! Everything is keyed on simulated time, so the alert stream is
//! bit-identical at any host thread count.

use std::collections::VecDeque;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of trailing windows the fast (page-worthy, "burning right
/// now") burn rate is evaluated over.
pub const FAST_WINDOWS: u64 = 5;
/// Number of trailing windows the slow (sustained) burn rate is
/// evaluated over; also the tracker's retention bound.
pub const SLOW_WINDOWS: u64 = 60;

/// What a tenant is promised, and when to alert on breaking it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// A request answered slower than this (simulated µs) is bad.
    pub latency_objective_us: f64,
    /// A request answering less than this `answered_fraction` is bad.
    pub availability_objective: f64,
    /// Fraction of requests allowed to be bad (e.g. 0.01 = 99% SLO).
    pub error_budget: f64,
    /// Width of one SLO window, simulated µs.
    pub window_us: f64,
    /// Burn-rate threshold over the last [`FAST_WINDOWS`] windows.
    pub fast_burn_threshold: f64,
    /// Burn-rate threshold over the last [`SLOW_WINDOWS`] windows.
    pub slow_burn_threshold: f64,
}

impl SloPolicy {
    /// A policy with the given objectives and conventional defaults:
    /// 1% error budget, 1-second windows, and the 14.4×/6× burn
    /// thresholds of the standard multi-window alerting recipe.
    pub fn new(latency_objective_us: f64, availability_objective: f64) -> Self {
        SloPolicy {
            latency_objective_us,
            availability_objective,
            error_budget: 0.01,
            window_us: 1_000_000.0,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 6.0,
        }
    }

    /// Is a request with this outcome good under the policy?
    /// `answered = false` (execution failure) is always bad; admission
    /// rejections are policy decisions and should not be fed in at all.
    pub fn is_good(&self, answered: bool, wall_us: f64, answered_fraction: f64) -> bool {
        answered
            && wall_us <= self.latency_objective_us
            && answered_fraction >= self.availability_objective
    }
}

/// One good/bad tally for one SLO window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WindowTally {
    index: u64,
    good: u64,
    bad: u64,
}

/// A burn-rate alert transition (raised or cleared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertTransition {
    /// `true` = the alert just raised, `false` = it just cleared.
    pub raised: bool,
    /// Burn rate over the last [`FAST_WINDOWS`] windows at transition.
    pub fast_burn: f64,
    /// Burn rate over the last [`SLOW_WINDOWS`] windows at transition.
    pub slow_burn: f64,
}

/// Point-in-time SLO accounting for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloStatus {
    /// Lifetime good requests.
    pub good: u64,
    /// Lifetime bad requests.
    pub bad: u64,
    /// Lifetime fraction of the error budget consumed:
    /// `bad / (total · error_budget)`; 1.0 = budget exactly spent.
    pub budget_burn: f64,
    /// Current burn rate over the last [`FAST_WINDOWS`] windows.
    pub fast_burn: f64,
    /// Current burn rate over the last [`SLOW_WINDOWS`] windows.
    pub slow_burn: f64,
    /// Whether the burn-rate alert is currently raised.
    pub alerting: bool,
}

/// Folds one tenant's request outcomes into windowed good/bad counts
/// and evaluates the fast/slow burn-rate pair on every record.
#[derive(Debug, Clone)]
pub struct SloTracker {
    policy: SloPolicy,
    /// Trailing window tallies, oldest first, bounded to
    /// [`SLOW_WINDOWS`] entries (empty windows take no slot).
    windows: VecDeque<WindowTally>,
    total_good: u64,
    total_bad: u64,
    alerting: bool,
    last_fast: f64,
    last_slow: f64,
}

impl SloTracker {
    /// A fresh tracker for `policy`.
    pub fn new(policy: SloPolicy) -> Self {
        SloTracker {
            policy,
            windows: VecDeque::new(),
            total_good: 0,
            total_bad: 0,
            alerting: false,
            last_fast: 0.0,
            last_slow: 0.0,
        }
    }

    /// The tracked policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Burn rate over the trailing `span` windows ending at
    /// `current_index`: observed bad fraction divided by the error
    /// budget (0 with no traffic in range).
    fn burn_over(&self, span: u64, current_index: u64) -> f64 {
        let cutoff = current_index.saturating_sub(span - 1);
        let (mut good, mut bad) = (0u64, 0u64);
        for w in &self.windows {
            if w.index >= cutoff {
                good += w.good;
                bad += w.bad;
            }
        }
        let total = good + bad;
        if total == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / total as f64;
        bad_fraction / self.policy.error_budget.max(f64::MIN_POSITIVE)
    }

    /// Records one request outcome at simulated time `now_us` and
    /// re-evaluates the alert pair. Returns `Some` when the alert state
    /// transitioned. Feed only served requests (answered or failed);
    /// admission rejections are not SLO traffic.
    pub fn record(
        &mut self,
        now_us: f64,
        answered: bool,
        wall_us: f64,
        answered_fraction: f64,
    ) -> Option<AlertTransition> {
        let good = self.policy.is_good(answered, wall_us, answered_fraction);
        if good {
            self.total_good += 1;
        } else {
            self.total_bad += 1;
        }
        let index = (now_us / self.policy.window_us.max(f64::MIN_POSITIVE))
            .floor()
            .max(0.0) as u64;
        match self.windows.back_mut() {
            Some(last) if last.index == index => {
                if good {
                    last.good += 1;
                } else {
                    last.bad += 1;
                }
            }
            _ => {
                self.windows.push_back(WindowTally {
                    index,
                    good: u64::from(good),
                    bad: u64::from(!good),
                });
                if self.windows.len() > SLOW_WINDOWS as usize {
                    self.windows.pop_front();
                }
            }
        }
        self.last_fast = self.burn_over(FAST_WINDOWS, index);
        self.last_slow = self.burn_over(SLOW_WINDOWS, index);
        let firing = self.last_fast >= self.policy.fast_burn_threshold
            && self.last_slow >= self.policy.slow_burn_threshold;
        if firing != self.alerting {
            self.alerting = firing;
            return Some(AlertTransition {
                raised: firing,
                fast_burn: self.last_fast,
                slow_burn: self.last_slow,
            });
        }
        None
    }

    /// Current accounting.
    pub fn status(&self) -> SloStatus {
        let total = self.total_good + self.total_bad;
        let budget_burn = if total == 0 {
            0.0
        } else {
            (self.total_bad as f64 / total as f64) / self.policy.error_budget.max(f64::MIN_POSITIVE)
        };
        SloStatus {
            good: self.total_good,
            bad: self.total_bad,
            budget_burn,
            fast_burn: self.last_fast,
            slow_burn: self.last_slow,
            alerting: self.alerting,
        }
    }
}

/// One row of the append-only alert log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRecord {
    /// Append order (0-based).
    pub seq: u64,
    /// Simulated time of the transition.
    pub sim_time_us: f64,
    /// Tenant whose SLO transitioned.
    pub tenant: String,
    /// `true` = raised, `false` = cleared.
    pub raised: bool,
    /// Fast burn rate at transition (last [`FAST_WINDOWS`] windows).
    pub fast_burn: f64,
    /// Slow burn rate at transition (last [`SLOW_WINDOWS`] windows).
    pub slow_burn: f64,
    /// Windows in the fast evaluation span.
    pub fast_windows: u64,
    /// Windows in the slow evaluation span.
    pub slow_windows: u64,
}

/// Append-only, thread-safe log of alert transitions; the `--watch-out`
/// sidecar serializes its snapshot.
#[derive(Debug, Default)]
pub struct AlertLog {
    rows: Mutex<Vec<AlertRecord>>,
}

impl AlertLog {
    /// Appends `record`, assigning its `seq`; returns the assigned seq.
    pub fn append(&self, mut record: AlertRecord) -> u64 {
        let mut rows = self.rows.lock();
        let seq = rows.len() as u64;
        record.seq = seq;
        rows.push(record);
        seq
    }

    /// Number of rows appended.
    pub fn len(&self) -> usize {
        self.rows.lock().len()
    }

    /// Whether no alert has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.lock().is_empty()
    }

    /// An owned copy of every row, in append order.
    pub fn snapshot(&self) -> Vec<AlertRecord> {
        self.rows.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy {
            latency_objective_us: 100.0,
            availability_objective: 1.0,
            error_budget: 0.1,
            window_us: 1_000.0,
            fast_burn_threshold: 2.0,
            slow_burn_threshold: 2.0,
        }
    }

    #[test]
    fn goodness_combines_latency_availability_and_success() {
        let p = policy();
        assert!(p.is_good(true, 99.0, 1.0));
        assert!(!p.is_good(true, 101.0, 1.0), "latency objective");
        assert!(!p.is_good(true, 50.0, 0.9), "availability objective");
        assert!(!p.is_good(false, 0.0, 1.0), "failures are bad");
    }

    #[test]
    fn alert_raises_on_sustained_burn_and_clears_on_recovery() {
        let mut t = SloTracker::new(policy());
        // Window 0: all good — no alert.
        for i in 0..10 {
            assert!(t.record(i as f64 * 100.0, true, 50.0, 1.0).is_none());
        }
        // Window 10: a burst of slow answers. The fast span (windows
        // 6..=10) sees only bads; the slow span still remembers the
        // goods, so the alert raises once the overall bad fraction
        // crosses the slow threshold too.
        let mut raised = None;
        for i in 0..10 {
            if let Some(tr) = t.record(10_000.0 + i as f64 * 100.0, true, 500.0, 1.0) {
                raised = Some(tr);
            }
        }
        let up = raised.expect("alert raised");
        assert!(up.raised);
        assert!(up.fast_burn >= 2.0 && up.slow_burn >= 2.0);
        assert!(t.status().alerting);
        // Long healthy stretch: the fast span forgets the bad spell.
        let mut cleared = None;
        for i in 0..200 {
            let now = 11_000.0 + i as f64 * 500.0;
            if let Some(tr) = t.record(now, true, 50.0, 1.0) {
                cleared = Some(tr);
            }
        }
        let down = cleared.expect("alert cleared");
        assert!(!down.raised);
        assert!(!t.status().alerting);
        let s = t.status();
        assert_eq!(s.good + s.bad, 220);
        assert!(s.budget_burn > 0.0);
    }

    #[test]
    fn burn_ignores_windows_outside_the_span() {
        let mut t = SloTracker::new(policy());
        // Window 0: all bad.
        for _ in 0..5 {
            t.record(0.0, false, 0.0, 1.0);
        }
        // Windows 10..15: all good; by window 15 the fast span (11..=15)
        // no longer sees window 0.
        for w in 10..=15 {
            t.record(w as f64 * 1_000.0, true, 50.0, 1.0);
        }
        let s = t.status();
        assert_eq!(s.fast_burn, 0.0, "bad window fell out of fast span");
        assert!(s.slow_burn > 0.0, "slow span still remembers");
    }

    #[test]
    fn alert_log_assigns_sequential_seqs() {
        let log = AlertLog::default();
        assert!(log.is_empty());
        let rec = AlertRecord {
            seq: 999,
            sim_time_us: 1.0,
            tenant: "gold".into(),
            raised: true,
            fast_burn: 3.0,
            slow_burn: 2.5,
            fast_windows: FAST_WINDOWS,
            slow_windows: SLOW_WINDOWS,
        };
        assert_eq!(log.append(rec.clone()), 0);
        assert_eq!(log.append(rec), 1);
        let rows = log.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].seq, rows[1].seq), (0, 1));
    }
}
