//! The [`WatchHub`]: a [`TelemetryTap`] that turns the raw telemetry
//! stream into windowed time-series, per-node anomaly suspicions, and
//! derived `node.suspect` events.
//!
//! ```text
//!             sea-telemetry Recorder
//!        observe()           event()
//!           │                   │  (coordinator thread, replay order)
//!           ▼                   ▼
//!      ┌─────────────────────────────┐
//!      │          WatchHub           │ advance_to(sim_now) ◄─ harness
//!      │  ┌────────────┐ ┌─────────┐ │
//!      │  │ Tumbling + │ │  EWMA   │ │
//!      │  │  Sliding   │ │ anomaly │ │──► node.suspect event
//!      │  │  windows   │ │detector │ │    watch.suspects counter
//!      │  └────────────┘ └─────────┘ │
//!      └─────────────────────────────┘
//!                  │ snapshot()
//!                  ▼
//!            WatchSnapshot (serialized by --watch-out)
//! ```
//!
//! Re-entrancy: emitting `node.suspect` back through the recorder calls
//! the tap again, so `on_event`/`on_observe` filter derived names
//! *before* taking the hub lock, and the lock is released before any
//! derived emission. Determinism: every timestamp is the hub's
//! simulated clock (advanced explicitly by the harness) and every input
//! arrives in replay order, so snapshots are bit-identical at any
//! `SEA_EXEC_THREADS`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use sea_telemetry::{FieldValue, TelemetrySink, TelemetryTap};
use serde::{Deserialize, Serialize};

use crate::anomaly::{AnomalyConfig, AnomalyDetector, Suspicion};
use crate::window::{SlidingWindow, TumblingSeries, WindowSummary};

/// Prefix of every metric/event the hub itself derives; inputs with
/// this prefix are ignored to break tap re-entrancy cycles.
pub const DERIVED_PREFIX: &str = "watch.";
/// Event name the hub emits when the detector latches a new suspicion.
pub const SUSPECT_EVENT: &str = "node.suspect";
/// Event name the executor emits per node scan with its simulated cost.
pub const NODE_COST_EVENT: &str = "query.node_cost";
/// Event name the executor emits when a node fails over to a replica.
pub const NODE_FAILOVER_EVENT: &str = "query.node_failover";

/// Hub tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchConfig {
    /// Tumbling-window width (simulated µs) for every tracked series.
    pub window_us: f64,
    /// Sliding-window width (simulated µs) for every tracked series.
    pub sliding_us: f64,
    /// Anomaly-detector knobs.
    pub anomaly: AnomalyConfig,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            window_us: 1_000_000.0,
            sliding_us: 5_000_000.0,
            anomaly: AnomalyConfig::default(),
        }
    }
}

/// One tracked observation series: tumbling history + sliding tail.
#[derive(Debug)]
struct Series {
    tumbling: TumblingSeries,
    sliding: SlidingWindow,
}

#[derive(Debug)]
struct HubState {
    now_us: f64,
    series: BTreeMap<String, Series>,
    detector: AnomalyDetector,
    /// Simulated time of the first observed failover per node.
    first_failover_us: BTreeMap<u64, f64>,
}

/// Serialized view of one tumbling series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Observation name (e.g. `bench.query_sim_us`).
    pub name: String,
    /// Tumbling window width, simulated µs.
    pub window_us: f64,
    /// Closed windows plus the open one, oldest first.
    pub windows: Vec<WindowSummary>,
    /// Closed windows dropped by the retention bound.
    pub evicted: u64,
    /// Summary over the sliding tail, if any samples are live.
    pub sliding: Option<WindowSummary>,
}

/// A (node, simulated time) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeTime {
    /// Storage node index.
    pub node: u64,
    /// Simulated time, µs.
    pub sim_us: f64,
}

/// Point-in-time serialized view of the whole hub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchSnapshot {
    /// Hub clock at snapshot time.
    pub now_us: f64,
    /// Every tracked series, name order.
    pub series: Vec<SeriesSnapshot>,
    /// Latched anomaly suspicions, (node, kind) order.
    pub suspicions: Vec<Suspicion>,
    /// First failover time per node, node order.
    pub first_failovers: Vec<NodeTime>,
}

/// The tap. Install with `Recorder::set_tap(hub.clone())`; drive the
/// clock with [`WatchHub::advance_to`].
#[derive(Debug)]
pub struct WatchHub {
    cfg: WatchConfig,
    state: Mutex<HubState>,
}

impl WatchHub {
    /// A hub with the given config (wrap in `Arc` to install as a tap).
    pub fn new(cfg: WatchConfig) -> Arc<Self> {
        Arc::new(WatchHub {
            cfg,
            state: Mutex::new(HubState {
                now_us: 0.0,
                series: BTreeMap::new(),
                detector: AnomalyDetector::new(cfg.anomaly),
                first_failover_us: BTreeMap::new(),
            }),
        })
    }

    /// The hub config.
    pub fn config(&self) -> &WatchConfig {
        &self.cfg
    }

    /// Advances the hub's simulated clock (monotone; stale values are
    /// ignored), sealing any tumbling windows the new time crosses.
    pub fn advance_to(&self, sim_us: f64) {
        let mut st = self.state.lock();
        if sim_us <= st.now_us {
            return;
        }
        st.now_us = sim_us;
        for s in st.series.values_mut() {
            s.tumbling.advance_to(sim_us);
            s.sliding.advance_to(sim_us);
        }
    }

    /// The hub clock.
    pub fn now_us(&self) -> f64 {
        self.state.lock().now_us
    }

    /// Serializes the hub: every series, suspicion, and failover mark.
    pub fn snapshot(&self) -> WatchSnapshot {
        let st = self.state.lock();
        WatchSnapshot {
            now_us: st.now_us,
            series: st
                .series
                .iter()
                .map(|(name, s)| SeriesSnapshot {
                    name: name.clone(),
                    window_us: s.tumbling.width_us(),
                    windows: s.tumbling.snapshot(),
                    evicted: s.tumbling.evicted(),
                    sliding: Some(s.sliding.summary()).filter(|w| w.count > 0),
                })
                .collect(),
            suspicions: st.detector.suspicions(),
            first_failovers: st
                .first_failover_us
                .iter()
                .map(|(node, sim_us)| NodeTime {
                    node: *node,
                    sim_us: *sim_us,
                })
                .collect(),
        }
    }

    /// Latched suspicions only (E21 scores these against the plan).
    pub fn suspicions(&self) -> Vec<Suspicion> {
        self.state.lock().detector.suspicions()
    }

    /// First failover time per node.
    pub fn first_failovers(&self) -> Vec<NodeTime> {
        self.snapshot().first_failovers
    }

    fn field_f64(fields: &[(&str, FieldValue)], key: &str) -> Option<f64> {
        fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                FieldValue::F64(x) => *x,
                FieldValue::U64(x) => *x as f64,
                FieldValue::I64(x) => *x as f64,
                _ => f64::NAN,
            })
    }
}

impl TelemetryTap for WatchHub {
    fn on_observe(&self, _sink: &TelemetrySink, name: &str, value: f64) {
        if name.starts_with(DERIVED_PREFIX) {
            return;
        }
        let mut st = self.state.lock();
        let now = st.now_us;
        let cfg = self.cfg;
        let s = st.series.entry(name.to_string()).or_insert_with(|| Series {
            tumbling: TumblingSeries::new(cfg.window_us),
            sliding: SlidingWindow::new(cfg.sliding_us),
        });
        s.tumbling.record(now, value);
        s.sliding.record(now, value);
    }

    fn on_event(&self, sink: &TelemetrySink, name: &str, fields: &[(&str, FieldValue)]) {
        if name.starts_with(DERIVED_PREFIX) || name == SUSPECT_EVENT {
            return;
        }
        match name {
            NODE_COST_EVENT => {
                let (Some(node), Some(cost)) = (
                    Self::field_f64(fields, "node"),
                    Self::field_f64(fields, "sim_us"),
                ) else {
                    return;
                };
                if !node.is_finite() || !cost.is_finite() {
                    return;
                }
                let fresh = {
                    let mut st = self.state.lock();
                    let now = st.now_us;
                    st.detector.observe(node as u64, now, cost)
                };
                // Lock released: safe to re-enter the recorder.
                for s in fresh {
                    sink.incr("watch.suspects", 1);
                    sink.event(
                        SUSPECT_EVENT,
                        &[
                            ("node", FieldValue::U64(s.node)),
                            ("kind", FieldValue::Str(s.kind.label().to_string())),
                            ("score", FieldValue::F64(s.score)),
                            ("sim_time_us", FieldValue::F64(s.first_flagged_us)),
                        ],
                    );
                }
            }
            NODE_FAILOVER_EVENT => {
                if let Some(node) = Self::field_f64(fields, "node") {
                    if node.is_finite() {
                        let mut st = self.state.lock();
                        let now = st.now_us;
                        st.first_failover_us.entry(node as u64).or_insert(now);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_telemetry::TelemetrySink;

    #[test]
    fn observations_land_in_windows_keyed_on_hub_clock() {
        let hub = WatchHub::new(WatchConfig {
            window_us: 1_000.0,
            sliding_us: 2_000.0,
            ..WatchConfig::default()
        });
        let sink = TelemetrySink::recording();
        hub.on_observe(&sink, "q.us", 10.0);
        hub.advance_to(1_500.0);
        hub.on_observe(&sink, "q.us", 20.0);
        hub.advance_to(3_000.0);
        let snap = hub.snapshot();
        assert_eq!(snap.series.len(), 1);
        let s = &snap.series[0];
        assert_eq!(s.name, "q.us");
        // Window 0 (sample 10.0) and window 1 (sample 20.0) are closed.
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.windows[0].count, 1);
        assert_eq!(s.windows[0].sum, 10.0);
        assert_eq!(s.windows[1].sum, 20.0);
        // Sliding width 2000 at now=3000 keeps only the t=1500 sample.
        let sl = s.sliding.as_ref().expect("sliding summary");
        assert_eq!(sl.count, 1);
        assert_eq!(sl.sum, 20.0);
    }

    #[test]
    fn derived_names_are_ignored_and_node_cost_feeds_detector() {
        let hub = WatchHub::new(WatchConfig::default());
        let sink = TelemetrySink::recording();
        sink.set_tap(hub.clone());
        hub.on_observe(&sink, "watch.suspects", 1.0);
        assert!(hub.snapshot().series.is_empty(), "derived observe ignored");

        // Nodes 0..3 healthy, node 1 slow from the start: straggler.
        for round in 0..8u64 {
            hub.advance_to(round as f64 * 1_000.0 + 1.0);
            for node in 0..4u64 {
                let cost = if node == 1 { 250.0 } else { 100.0 };
                sink.event(
                    NODE_COST_EVENT,
                    &[
                        ("node", FieldValue::U64(node)),
                        ("sim_us", FieldValue::F64(cost)),
                    ],
                );
            }
        }
        let sus = hub.suspicions();
        assert_eq!(sus.len(), 1, "{sus:?}");
        assert_eq!(sus[0].node, 1);
        // The derived event went back through the recorder without
        // deadlock or recursion, and is visible in the snapshot.
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.event_count(SUSPECT_EVENT), 1);
        assert_eq!(snap.counter("watch.suspects"), 1);
    }

    #[test]
    fn failover_events_record_first_time_per_node() {
        let hub = WatchHub::new(WatchConfig::default());
        let sink = TelemetrySink::recording();
        hub.advance_to(500.0);
        hub.on_event(&sink, NODE_FAILOVER_EVENT, &[("node", FieldValue::U64(2))]);
        hub.advance_to(900.0);
        hub.on_event(&sink, NODE_FAILOVER_EVENT, &[("node", FieldValue::U64(2))]);
        let marks = hub.first_failovers();
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].node, 2);
        assert_eq!(marks[0].sim_us, 500.0, "first time wins");
    }
}
