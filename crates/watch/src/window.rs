//! Windowed summaries over simulated time: tumbling windows (aligned,
//! non-overlapping) and sliding windows (the trailing `width_us`).
//!
//! A window keeps the raw samples while it is open, so its summary is
//! *exact* — percentiles come from the sorted samples, not from bucket
//! interpolation — and additionally counts samples into the same
//! [`DEFAULT_BUCKET_BOUNDS`] ladder the cumulative telemetry registry
//! uses, so merging adjacent windows reproduces the cumulative
//! [`sea_telemetry::HistogramSnapshot`] bucket counts bit-for-bit.
//! Once a tumbling window closes, only its summary is retained.
//!
//! Nothing here reads a wall clock: time only moves when the owner
//! advances it, so the same sample stream replayed in the same order
//! yields byte-identical snapshots at any host thread count.

use serde::{Deserialize, Serialize};

use sea_telemetry::metrics::DEFAULT_BUCKET_BOUNDS;

/// Number of bucket slots in a window summary: one per bound in
/// [`DEFAULT_BUCKET_BOUNDS`] plus the overflow bucket.
pub const BUCKET_SLOTS: usize = DEFAULT_BUCKET_BOUNDS.len() + 1;

/// Closed tumbling windows retained per series; older summaries are
/// evicted (and counted) so a long-running hub stays bounded.
pub const MAX_RETAINED_WINDOWS: usize = 512;

/// The bucket a value falls into on the shared 1–2–5 ladder.
pub fn bucket_index(value: f64) -> usize {
    DEFAULT_BUCKET_BOUNDS
        .iter()
        .position(|bound| value <= *bound)
        .unwrap_or(DEFAULT_BUCKET_BOUNDS.len())
}

/// Exact summary of one window's samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Tumbling window index (`floor(t / width)`); 0 for sliding
    /// summaries, whose extent is `[start_us, end_us]` instead.
    pub index: u64,
    /// Inclusive window start, simulated µs.
    pub start_us: f64,
    /// Exclusive window end, simulated µs.
    pub end_us: f64,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
    pub p999: f64,
    /// Per-bucket sample counts over [`DEFAULT_BUCKET_BOUNDS`] (+1
    /// overflow slot), NOT cumulative.
    pub buckets: Vec<u64>,
}

/// Exact percentile of an ascending-sorted slice: linear interpolation
/// at rank `q·(n−1)`.
fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            sorted[lo] + frac * (sorted[hi] - sorted[lo])
        }
    }
}

/// Summarizes `samples` (any order) for the window `[start_us, end_us)`.
pub fn summarize_window(index: u64, start_us: f64, end_us: f64, samples: &[f64]) -> WindowSummary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mut buckets = vec![0u64; BUCKET_SLOTS];
    let mut sum = 0.0;
    for v in samples {
        buckets[bucket_index(*v)] += 1;
        sum += v;
    }
    let count = samples.len() as u64;
    WindowSummary {
        index,
        start_us,
        end_us,
        count,
        sum,
        min: sorted.first().copied().unwrap_or(0.0),
        max: sorted.last().copied().unwrap_or(0.0),
        mean: if count == 0 { 0.0 } else { sum / count as f64 },
        p50: sorted_percentile(&sorted, 0.50),
        p95: sorted_percentile(&sorted, 0.95),
        p99: sorted_percentile(&sorted, 0.99),
        p999: sorted_percentile(&sorted, 0.999),
        buckets,
    }
}

/// Merges window summaries into one: counts, sums, extrema, and bucket
/// counts are exact; percentiles are *not* recoverable from summaries
/// and are reported as 0 — consumers wanting tail estimates over a
/// merged range should read the bucket counts.
pub fn merge_windows(windows: &[WindowSummary]) -> WindowSummary {
    let mut out = WindowSummary {
        index: windows.first().map_or(0, |w| w.index),
        start_us: windows.first().map_or(0.0, |w| w.start_us),
        end_us: windows.last().map_or(0.0, |w| w.end_us),
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
        mean: 0.0,
        p50: 0.0,
        p95: 0.0,
        p99: 0.0,
        p999: 0.0,
        buckets: vec![0u64; BUCKET_SLOTS],
    };
    for w in windows {
        out.count += w.count;
        out.sum += w.sum;
        if w.count > 0 {
            out.min = out.min.min(w.min);
            out.max = out.max.max(w.max);
        }
        for (slot, c) in out.buckets.iter_mut().zip(&w.buckets) {
            *slot += c;
        }
    }
    if out.count == 0 {
        out.min = 0.0;
        out.max = 0.0;
    } else {
        out.mean = out.sum / out.count as f64;
    }
    out
}

/// Aligned, non-overlapping windows of width `width_us` over the
/// simulated clock. The open window keeps raw samples; it closes (and
/// collapses to a [`WindowSummary`]) when a sample or an explicit
/// [`advance_to`](TumblingSeries::advance_to) moves time past its end.
/// Empty windows produce no summary.
#[derive(Debug, Clone)]
pub struct TumblingSeries {
    width_us: f64,
    closed: Vec<WindowSummary>,
    /// Summaries evicted off the front once [`MAX_RETAINED_WINDOWS`] is
    /// exceeded.
    evicted: u64,
    open_index: u64,
    open: Vec<f64>,
}

impl TumblingSeries {
    /// A new series with `width_us`-wide windows (clamped to > 0).
    pub fn new(width_us: f64) -> Self {
        TumblingSeries {
            width_us: if width_us > 0.0 { width_us } else { 1.0 },
            closed: Vec::new(),
            evicted: 0,
            open_index: 0,
            open: Vec::new(),
        }
    }

    /// The configured window width.
    pub fn width_us(&self) -> f64 {
        self.width_us
    }

    fn index_of(&self, now_us: f64) -> u64 {
        (now_us / self.width_us).floor().max(0.0) as u64
    }

    fn close_through(&mut self, index: u64) {
        if index <= self.open_index {
            return;
        }
        if !self.open.is_empty() {
            let start = self.open_index as f64 * self.width_us;
            let summary =
                summarize_window(self.open_index, start, start + self.width_us, &self.open);
            self.open.clear();
            self.closed.push(summary);
            if self.closed.len() > MAX_RETAINED_WINDOWS {
                self.closed.remove(0);
                self.evicted += 1;
            }
        }
        self.open_index = index;
    }

    /// Records `value` at simulated time `now_us` (monotone per series;
    /// an earlier timestamp lands in the currently open window).
    pub fn record(&mut self, now_us: f64, value: f64) {
        let index = self.index_of(now_us);
        self.close_through(index);
        self.open.push(value);
    }

    /// Moves time forward, closing the open window if `now_us` is past
    /// its end (so a quiescent series still seals its last window).
    pub fn advance_to(&mut self, now_us: f64) {
        let index = self.index_of(now_us);
        self.close_through(index);
    }

    /// Closed summaries evicted to bound memory.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// All retained summaries: closed windows plus the open one (if it
    /// has samples), in window order.
    pub fn snapshot(&self) -> Vec<WindowSummary> {
        let mut out = self.closed.clone();
        if !self.open.is_empty() {
            let start = self.open_index as f64 * self.width_us;
            out.push(summarize_window(
                self.open_index,
                start,
                start + self.width_us,
                &self.open,
            ));
        }
        out
    }
}

/// The trailing `width_us` of samples: each [`record`](Self::record) /
/// [`advance_to`](Self::advance_to) drops samples older than the
/// window, and [`summary`](Self::summary) folds what remains.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    width_us: f64,
    now_us: f64,
    samples: std::collections::VecDeque<(f64, f64)>,
}

impl SlidingWindow {
    /// A new sliding window of width `width_us` (clamped to > 0).
    pub fn new(width_us: f64) -> Self {
        SlidingWindow {
            width_us: if width_us > 0.0 { width_us } else { 1.0 },
            now_us: 0.0,
            samples: std::collections::VecDeque::new(),
        }
    }

    /// The configured window width.
    pub fn width_us(&self) -> f64 {
        self.width_us
    }

    fn prune(&mut self) {
        let cutoff = self.now_us - self.width_us;
        while let Some((t, _)) = self.samples.front() {
            if *t <= cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Records `value` at simulated time `now_us`.
    pub fn record(&mut self, now_us: f64, value: f64) {
        self.now_us = self.now_us.max(now_us);
        self.samples.push_back((self.now_us, value));
        self.prune();
    }

    /// Moves time forward, expiring samples that fell out of the window.
    pub fn advance_to(&mut self, now_us: f64) {
        self.now_us = self.now_us.max(now_us);
        self.prune();
    }

    /// Summary over the samples currently inside the window.
    pub fn summary(&self) -> WindowSummary {
        let values: Vec<f64> = self.samples.iter().map(|(_, v)| *v).collect();
        summarize_window(
            0,
            (self.now_us - self.width_us).max(0.0),
            self.now_us,
            &values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_windows_close_on_index_crossings() {
        let mut s = TumblingSeries::new(100.0);
        s.record(10.0, 1.0);
        s.record(20.0, 3.0);
        s.record(150.0, 5.0); // closes window 0
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].index, 0);
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].sum, 4.0);
        assert_eq!((snap[0].start_us, snap[0].end_us), (0.0, 100.0));
        assert_eq!(snap[1].index, 1);
        assert_eq!(snap[1].count, 1);
        // Empty windows leave no summary.
        let mut gap = TumblingSeries::new(100.0);
        gap.record(10.0, 1.0);
        gap.record(950.0, 2.0);
        let snap = gap.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].index, 9);
    }

    #[test]
    fn advance_to_seals_the_open_window() {
        let mut s = TumblingSeries::new(100.0);
        s.record(10.0, 1.0);
        s.advance_to(250.0);
        let snap = s.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].index, 0);
        // The next record lands in window 2, not window 0.
        let mut s2 = s.clone();
        s2.record(210.0, 9.0);
        assert_eq!(s2.snapshot()[1].index, 2);
    }

    #[test]
    fn window_percentiles_are_exact_over_raw_samples() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let w = summarize_window(0, 0.0, 1000.0, &samples);
        assert_eq!(w.p50, 50.5);
        assert!((w.p95 - 95.05).abs() < 1e-9, "p95 {}", w.p95);
        assert_eq!(w.min, 1.0);
        assert_eq!(w.max, 100.0);
        assert_eq!(w.mean, 50.5);
        assert!(w.p99 <= w.p999 && w.p999 <= w.max);
        assert_eq!(w.buckets.iter().sum::<u64>(), 100);
    }

    #[test]
    fn sliding_window_expires_old_samples() {
        let mut s = SlidingWindow::new(100.0);
        s.record(10.0, 1.0);
        s.record(50.0, 2.0);
        s.record(140.0, 3.0); // expires the t=10 sample (10 <= 140-100? no: 10 <= 40 yes)
        let w = s.summary();
        assert_eq!(w.count, 2);
        assert_eq!(w.sum, 5.0);
        s.advance_to(300.0);
        assert_eq!(s.summary().count, 0);
    }

    #[test]
    fn retention_is_bounded() {
        let mut s = TumblingSeries::new(1.0);
        for i in 0..(MAX_RETAINED_WINDOWS + 10) {
            s.record(i as f64 + 0.5, 1.0);
        }
        assert!(s.snapshot().len() <= MAX_RETAINED_WINDOWS + 1);
        assert!(s.evicted() > 0);
    }

    #[test]
    fn merge_is_exact_on_counts_sums_and_buckets() {
        let a = summarize_window(0, 0.0, 100.0, &[1.0, 50.0]);
        let b = summarize_window(1, 100.0, 200.0, &[7.0]);
        let m = merge_windows(&[a, b]);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 58.0);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 50.0);
        assert_eq!(m.buckets.iter().sum::<u64>(), 3);
        assert_eq!(merge_windows(&[]).count, 0);
    }
}
