//! Property tests pinning the watch layer's two load-bearing claims:
//!
//! 1. Every windowed summary equals a *manual fold* of the raw samples
//!    that landed in that window — count, sum, min, max, mean, and the
//!    exact sorted-rank percentiles.
//! 2. Merging a run of tumbling windows reproduces the *cumulative*
//!    histogram the telemetry registry builds from the same stream:
//!    identical count/min/max and identical per-bucket counts (both
//!    sides bucket on `DEFAULT_BUCKET_BOUNDS`).

use proptest::prelude::*;

use sea_telemetry::TelemetrySink;
use sea_watch::window::bucket_index;
use sea_watch::{merge_windows, TumblingSeries};

/// A stream of (timestamp, value) samples with non-decreasing
/// simulated timestamps — the only shape the hub ever feeds.
fn arb_stream() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..5_000.0, 0.01f64..100_000.0), 1..200).prop_map(|mut v| {
        // Turn arbitrary gaps into a monotone clock.
        let mut now = 0.0;
        for (t, _) in v.iter_mut() {
            now += *t;
            *t = now;
        }
        v
    })
}

/// The manual fold: what a straight recomputation over the raw samples
/// of one window says the summary must be.
fn manual_percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn window_summaries_equal_manual_fold(stream in arb_stream(), width in 500.0f64..20_000.0) {
        let mut series = TumblingSeries::new(width);
        for (t, v) in &stream {
            series.record(*t, *v);
        }
        let last = stream.last().unwrap().0;
        series.advance_to(last + width * 2.0); // seal everything

        for w in series.snapshot() {
            let mut raw: Vec<f64> = stream
                .iter()
                .filter(|(t, _)| *t >= w.start_us && *t < w.end_us)
                .map(|(_, v)| *v)
                .collect();
            raw.sort_by(f64::total_cmp);
            prop_assert!(!raw.is_empty(), "empty windows must not be emitted");
            prop_assert_eq!(w.count, raw.len() as u64);
            let sum: f64 = raw.iter().sum();
            prop_assert!((w.sum - sum).abs() <= 1e-9 * sum.abs().max(1.0));
            prop_assert_eq!(w.min, raw[0]);
            prop_assert_eq!(w.max, *raw.last().unwrap());
            prop_assert!((w.mean - sum / raw.len() as f64).abs() <= 1e-9 * sum.abs().max(1.0));
            for (got, q) in [(w.p50, 0.5), (w.p95, 0.95), (w.p99, 0.99), (w.p999, 0.999)] {
                let want = manual_percentile(&raw, q);
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "q{} got {} want {}", q, got, want
                );
            }
            // Bucket counts: each sample falls in exactly one slot.
            let mut want_buckets = vec![0u64; w.buckets.len()];
            for v in &raw {
                want_buckets[bucket_index(*v)] += 1;
            }
            prop_assert_eq!(&w.buckets, &want_buckets);
        }
    }

    #[test]
    fn merged_windows_reproduce_cumulative_histogram(stream in arb_stream(), width in 500.0f64..20_000.0) {
        // The same stream goes to a tumbling series and, via the
        // recording sink, to the cumulative registry histogram.
        let mut series = TumblingSeries::new(width);
        let sink = TelemetrySink::recording();
        for (t, v) in &stream {
            series.record(*t, *v);
            sink.observe("merge.check_us", *v);
        }
        series.advance_to(stream.last().unwrap().0 + width * 2.0);

        let merged = merge_windows(&series.snapshot());
        let snap = sink.snapshot().unwrap();
        let h = snap.histogram("merge.check_us").expect("histogram recorded");

        prop_assert_eq!(merged.count, h.count);
        prop_assert_eq!(merged.min, h.min);
        prop_assert_eq!(merged.max, h.max);
        // Sums associate differently (per-window then merge vs one
        // running total), so compare to relative epsilon.
        prop_assert!((merged.sum - h.sum).abs() <= 1e-9 * h.sum.abs().max(1.0));
        // Both sides keep per-slot counts on `DEFAULT_BUCKET_BOUNDS`;
        // they must agree slot for slot.
        prop_assert_eq!(merged.buckets.len(), h.buckets.len());
        for (slot, registry_bucket) in merged.buckets.iter().zip(h.buckets.iter()) {
            prop_assert_eq!(
                *slot, registry_bucket.count,
                "bucket le={} diverged", registry_bucket.le
            );
        }
    }
}
