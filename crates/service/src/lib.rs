//! Multi-tenant request-serving front door for the SEA stack.
//!
//! The paper's system serves many analysts from one distributed data
//! system; this crate adds the missing serving tier in front of the
//! exact [`Executor`](sea_query::Executor) and the learned
//! [`AgentPipeline`](sea_core::AgentPipeline):
//!
//! - a **tenant registry** with per-tenant admission policy
//!   ([`TenantConfig`]): simulated-money budgets and token-bucket rate
//!   limits driven by *simulated* time, so admission decisions are
//!   bit-reproducible — no wall clock, no randomness;
//! - a **query ledger** ([`QueryLedger`]): one append-only
//!   [`LedgerRow`] per request, recording tenant, aggregate kind,
//!   disposition, answer provenance (exact / predicted / cached /
//!   degraded / partial), simulated money and wall-microseconds,
//!   retry/failover counts, and semantic-cache classification;
//! - a **read-only stats API** ([`StatsService`]): summary totals,
//!   seq/simulated-time range filtering, tenant × aggregate × source
//!   breakdowns, and top-N most-expensive queries over a frozen ledger
//!   snapshot, serializable to JSON ([`StatsReport::to_json`]) for the
//!   experiments binary's `--stats-out` sidecar;
//! - **per-tenant SLOs** (via [`sea_watch`]): a [`TenantConfig`] may
//!   carry an [`SloPolicy`]; every served request then feeds a
//!   fast/slow burn-rate tracker, and alert transitions land in the
//!   service's [`AlertLog`] and as `watch.alert` telemetry events.
//!
//! The serving path ([`QueryService::submit`]) and the read path are
//! deliberately decoupled: the ledger is the only shared state, writers
//! append under a short lock, and readers aggregate over owned
//! snapshots. Every number in the ledger derives from the simulated
//! cost model, so the whole stack — admission, accounting, analytics —
//! is deterministic at any `SEA_EXEC_THREADS` setting.

mod ledger;
mod service;
mod stats;

pub use ledger::{Disposition, LedgerRow, QueryLedger};
pub use sea_watch::{AlertLog, AlertRecord, SloPolicy, SloStatus};
pub use service::{QueryService, SubmitOutcome, TenantConfig, TenantUsage};
pub use stats::{BreakdownRow, StatsFilter, StatsReport, StatsService, StatsSummary};
