//! The serving path: tenant registry, deterministic admission control,
//! and per-request ledger accounting in front of an [`Executor`] /
//! [`AgentPipeline`].
//!
//! Everything is driven by *simulated* time: the service clock advances
//! by each answered query's simulated `wall_us` (plus explicit
//! [`QueryService::advance_clock`] calls), token buckets refill against
//! that clock, and budgets meter simulated money — no host wall clock
//! and no randomness anywhere on the admission path, so a replayed
//! workload produces a bit-identical ledger at any thread count.

use std::collections::BTreeMap;
use std::sync::Arc;

use sea_common::{AnalyticalQuery, AnswerValue, Result, SeaError};
use sea_core::AgentPipeline;
use sea_query::Executor;
use sea_watch::{AlertLog, AlertRecord, SloPolicy, SloTracker, FAST_WINDOWS, SLOW_WINDOWS};

use crate::ledger::{Disposition, LedgerRow, QueryLedger};

/// Per-tenant admission policy. The default is fully open: no budget,
/// no rate limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Cap on cumulative simulated money; once spend reaches the cap,
    /// further queries are rejected before execution. Overshoot is
    /// bounded by one query (admission checks *before* executing, so
    /// the final admitted query may carry spend past the cap).
    pub money_budget: Option<f64>,
    /// Token-bucket refill rate in queries per simulated second.
    /// `None` disables rate limiting.
    pub rate_per_sec: Option<f64>,
    /// Token-bucket capacity (burst size); also the initial fill.
    pub burst: f64,
    /// Service-level objective. When set, every *served* request
    /// (answered or failed — admission rejections are policy, not
    /// service quality) feeds a burn-rate tracker, and alert
    /// transitions are recorded as `watch.alert` events plus rows in
    /// the service's [`AlertLog`].
    pub slo: Option<SloPolicy>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            money_budget: None,
            rate_per_sec: None,
            burst: 1.0,
            slo: None,
        }
    }
}

/// Monotone per-tenant usage counters, maintained by the serving path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TenantUsage {
    /// Requests submitted (all dispositions).
    pub submitted: u64,
    /// Requests answered.
    pub answered: u64,
    /// Requests rejected on budget.
    pub rejected_budget: u64,
    /// Requests rejected on rate.
    pub rejected_rate: u64,
    /// Requests that failed in execution.
    pub failed: u64,
    /// Cumulative simulated money spent.
    pub money: f64,
    /// Cumulative simulated wall microseconds consumed.
    pub wall_us: f64,
}

struct TenantEntry {
    config: TenantConfig,
    usage: TenantUsage,
    tokens: f64,
    last_refill_us: f64,
    pipeline: Option<AgentPipeline>,
    slo: Option<SloTracker>,
}

impl TenantEntry {
    fn new(config: TenantConfig, pipeline: Option<AgentPipeline>) -> Self {
        TenantEntry {
            config,
            usage: TenantUsage::default(),
            tokens: config.burst,
            last_refill_us: 0.0,
            pipeline,
            slo: config.slo.map(SloTracker::new),
        }
    }

    /// Refills the token bucket for simulated time elapsed since the
    /// last refill, capped at the burst size.
    fn refill(&mut self, now_us: f64) {
        if let Some(rate) = self.config.rate_per_sec {
            let elapsed = (now_us - self.last_refill_us).max(0.0);
            self.tokens = (self.tokens + rate * elapsed / 1e6).min(self.config.burst);
        }
        self.last_refill_us = now_us;
    }
}

/// The result of submitting one query.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitOutcome {
    /// How the request was disposed of.
    pub disposition: Disposition,
    /// The answer, when `disposition` is [`Disposition::Answered`].
    pub answer: Option<AnswerValue>,
    /// The ledger row recorded for this request.
    pub row: LedgerRow,
}

/// Multi-tenant front door over one table of a storage cluster.
///
/// Tenants execute either through the shared exact [`Executor`]
/// ([`QueryService::register_tenant`]) or through their own
/// [`AgentPipeline`] ([`QueryService::register_tenant_with_pipeline`]),
/// in which case answers may be predicted, cached, or degraded and the
/// ledger records the provenance.
pub struct QueryService<'a> {
    executor: Executor<'a>,
    table: String,
    tenants: BTreeMap<String, TenantEntry>,
    ledger: Arc<QueryLedger>,
    alert_log: Arc<AlertLog>,
    sim_now_us: f64,
    seq: u64,
}

impl<'a> QueryService<'a> {
    /// Creates a service over `executor`, answering against `table`.
    pub fn new(executor: Executor<'a>, table: impl Into<String>) -> Self {
        QueryService {
            executor,
            table: table.into(),
            tenants: BTreeMap::new(),
            ledger: Arc::new(QueryLedger::default()),
            alert_log: Arc::new(AlertLog::default()),
            sim_now_us: 0.0,
            seq: 0,
        }
    }

    /// Registers a tenant served by the shared exact executor.
    ///
    /// # Errors
    ///
    /// If the tenant name is already registered.
    pub fn register_tenant(&mut self, name: impl Into<String>, config: TenantConfig) -> Result<()> {
        self.register(name.into(), config, None)
    }

    /// Registers a tenant served by its own [`AgentPipeline`] (which
    /// may predict, serve from its semantic cache, or degrade).
    ///
    /// # Errors
    ///
    /// If the tenant name is already registered.
    pub fn register_tenant_with_pipeline(
        &mut self,
        name: impl Into<String>,
        config: TenantConfig,
        pipeline: AgentPipeline,
    ) -> Result<()> {
        self.register(name.into(), config, Some(pipeline))
    }

    fn register(
        &mut self,
        name: String,
        config: TenantConfig,
        pipeline: Option<AgentPipeline>,
    ) -> Result<()> {
        if self.tenants.contains_key(&name) {
            return Err(SeaError::invalid(format!(
                "tenant {name:?} already registered"
            )));
        }
        let mut entry = TenantEntry::new(config, pipeline);
        entry.last_refill_us = self.sim_now_us;
        self.tenants.insert(name, entry);
        Ok(())
    }

    /// The shared ledger handle; hand this (plus the telemetry sink) to
    /// a [`StatsService`](crate::StatsService) for read-only analytics.
    pub fn ledger(&self) -> Arc<QueryLedger> {
        Arc::clone(&self.ledger)
    }

    /// The append-only SLO alert log: every burn-rate raise/clear
    /// transition across all tenants, in occurrence order.
    pub fn alert_log(&self) -> Arc<AlertLog> {
        Arc::clone(&self.alert_log)
    }

    /// A tenant's current SLO accounting, if registered with a policy.
    pub fn tenant_slo_status(&self, name: &str) -> Option<sea_watch::SloStatus> {
        self.tenants
            .get(name)
            .and_then(|t| t.slo.as_ref())
            .map(|t| t.status())
    }

    /// Current simulated service time, microseconds.
    pub fn sim_now_us(&self) -> f64 {
        self.sim_now_us
    }

    /// Advances the simulated clock (e.g. to model idle time between
    /// workload waves, letting token buckets refill).
    pub fn advance_clock(&mut self, us: f64) {
        self.sim_now_us += us.max(0.0);
    }

    /// A tenant's usage counters, if registered.
    pub fn tenant_usage(&self, name: &str) -> Option<TenantUsage> {
        self.tenants.get(name).map(|t| t.usage)
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// The executor's telemetry sink.
    pub fn telemetry(&self) -> &sea_telemetry::TelemetrySink {
        self.executor.telemetry()
    }

    /// The shared exact executor behind the front door (read-only:
    /// submissions must go through [`QueryService::submit`] so admission
    /// control and the ledger see them).
    pub fn executor(&self) -> &Executor<'a> {
        &self.executor
    }

    /// The table this service answers against.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Submits one query on behalf of `tenant`: refill the tenant's
    /// token bucket, check budget then rate, execute if admitted, and
    /// record a ledger row whatever happens.
    ///
    /// # Errors
    ///
    /// Only for an unknown tenant. Execution failures are *not* errors
    /// at this layer: they are recorded as [`Disposition::Failed`] rows
    /// and returned in the outcome, so one tenant's faults cannot crash
    /// another tenant's service loop.
    pub fn submit(&mut self, tenant: &str, query: &AnalyticalQuery) -> Result<SubmitOutcome> {
        let entry = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| SeaError::invalid(format!("unknown tenant {tenant:?}")))?;
        let seq = self.seq;
        self.seq += 1;
        let now = self.sim_now_us;
        let agg = query.aggregate.label();
        entry.refill(now);
        entry.usage.submitted += 1;

        // Budget first: a tenant out of money is rejected even when it
        // has tokens, so budget exhaustion cannot be worked around by
        // pacing.
        self.executor.telemetry().incr("service.submitted", 1);
        if let Some(budget) = entry.config.money_budget {
            if entry.usage.money >= budget {
                entry.usage.rejected_budget += 1;
                self.executor.telemetry().incr("service.rejected_budget", 1);
                let row = LedgerRow::unanswered(seq, tenant, agg, Disposition::RejectedBudget, now);
                self.ledger.append(row.clone());
                return Ok(SubmitOutcome {
                    disposition: Disposition::RejectedBudget,
                    answer: None,
                    row,
                });
            }
        }
        if entry.config.rate_per_sec.is_some() {
            if entry.tokens < 1.0 {
                entry.usage.rejected_rate += 1;
                self.executor.telemetry().incr("service.rejected_rate", 1);
                let row = LedgerRow::unanswered(seq, tenant, agg, Disposition::RejectedRate, now);
                self.ledger.append(row.clone());
                return Ok(SubmitOutcome {
                    disposition: Disposition::RejectedRate,
                    answer: None,
                    row,
                });
            }
            entry.tokens -= 1.0;
        }

        // Admitted: execute, attributing telemetry counter deltas and
        // cache-stat deltas to this request (submission is serialized
        // through `&mut self`, so the deltas are unambiguous).
        let sink = self.executor.telemetry();
        let retries_before = sink.counter_value("query.retries");
        let failovers_before = sink.counter_value("query.failovers");
        let cache_before = entry
            .pipeline
            .as_ref()
            .and_then(|p| p.cache())
            .map(|c| c.stats());
        let outcome = match entry.pipeline.as_mut() {
            Some(pipe) => pipe
                .process(&self.executor, query)
                .map(|o| (o.answer, o.cost, o.source.label())),
            None => self
                .executor
                .execute_direct(&self.table, query)
                .map(|o| (o.answer, o.cost, "exact")),
        };
        let sink = self.executor.telemetry();
        let retries = sink.counter_value("query.retries") - retries_before;
        let failovers = sink.counter_value("query.failovers") - failovers_before;
        let cache_class = match (
            cache_before,
            entry
                .pipeline
                .as_ref()
                .and_then(|p| p.cache())
                .map(|c| c.stats()),
        ) {
            (Some(before), Some(after)) => {
                if after.hits > before.hits {
                    "exact"
                } else if after.containment_hits > before.containment_hits {
                    "containment"
                } else {
                    "miss"
                }
            }
            _ => "none",
        };

        match outcome {
            Ok((answer, cost, provenance)) => {
                let source = if cost.answered_fraction < 1.0 {
                    "partial"
                } else {
                    provenance
                };
                entry.usage.answered += 1;
                self.executor.telemetry().incr("service.answered", 1);
                // The serving tier's own latency distribution (simulated
                // µs); the watch layer windows this via its tap.
                self.executor
                    .telemetry()
                    .observe("service.query_wall_us", cost.wall_us);
                entry.usage.money += cost.money;
                entry.usage.wall_us += cost.wall_us;
                self.sim_now_us += cost.wall_us;
                feed_slo(
                    entry.slo.as_mut(),
                    &self.alert_log,
                    self.executor.telemetry(),
                    tenant,
                    self.sim_now_us,
                    true,
                    cost.wall_us,
                    cost.answered_fraction,
                );
                let row = LedgerRow {
                    seq,
                    tenant: tenant.to_string(),
                    aggregate: agg.to_string(),
                    disposition: Disposition::Answered,
                    source: source.to_string(),
                    sim_time_us: now,
                    money: cost.money,
                    wall_us: cost.wall_us,
                    answered_fraction: cost.answered_fraction,
                    nodes_unavailable: cost.nodes_unavailable,
                    retries,
                    failovers,
                    cache_class: cache_class.to_string(),
                };
                self.ledger.append(row.clone());
                Ok(SubmitOutcome {
                    disposition: Disposition::Answered,
                    answer: Some(answer),
                    row,
                })
            }
            Err(_) => {
                entry.usage.failed += 1;
                self.executor.telemetry().incr("service.failed", 1);
                feed_slo(
                    entry.slo.as_mut(),
                    &self.alert_log,
                    self.executor.telemetry(),
                    tenant,
                    self.sim_now_us,
                    false,
                    0.0,
                    0.0,
                );
                let mut row = LedgerRow::unanswered(seq, tenant, agg, Disposition::Failed, now);
                row.retries = retries;
                row.failovers = failovers;
                row.cache_class = cache_class.to_string();
                self.ledger.append(row.clone());
                Ok(SubmitOutcome {
                    disposition: Disposition::Failed,
                    answer: None,
                    row,
                })
            }
        }
    }
}

/// Feeds one served request into a tenant's SLO tracker (no-op for
/// tenants without a policy) and, on a burn-rate transition, appends an
/// [`AlertRecord`] and emits a `watch.alert` event. Everything is keyed
/// on the simulated clock, so the alert stream replays bit-identically.
#[allow(clippy::too_many_arguments)]
fn feed_slo(
    tracker: Option<&mut SloTracker>,
    alert_log: &AlertLog,
    sink: &sea_telemetry::TelemetrySink,
    tenant: &str,
    now_us: f64,
    answered: bool,
    wall_us: f64,
    answered_fraction: f64,
) {
    let Some(tracker) = tracker else { return };
    if let Some(tr) = tracker.record(now_us, answered, wall_us, answered_fraction) {
        alert_log.append(AlertRecord {
            seq: 0, // assigned by the log
            sim_time_us: now_us,
            tenant: tenant.to_string(),
            raised: tr.raised,
            fast_burn: tr.fast_burn,
            slow_burn: tr.slow_burn,
            fast_windows: FAST_WINDOWS,
            slow_windows: SLOW_WINDOWS,
        });
        sink.incr("watch.alerts", 1);
        sink.event(
            "watch.alert",
            &[
                ("tenant", tenant.into()),
                ("raised", tr.raised.into()),
                ("fast_burn", tr.fast_burn.into()),
                ("slow_burn", tr.slow_burn.into()),
            ],
        );
    }
}
