//! The read path: read-only analytics over a ledger snapshot plus the
//! telemetry registry.
//!
//! A [`StatsService`] copies the ledger once at construction and never
//! touches the serving path again — aggregation, filtering, and top-N
//! queries run over the frozen snapshot, so results are stable for the
//! service's lifetime and bit-identical across executor thread counts
//! (the ledger itself is; see `tests/ledger_determinism.rs`).

use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};
use sea_telemetry::{CounterSnapshot, TelemetrySink};

use crate::ledger::{Disposition, LedgerRow, QueryLedger};

/// Row predicate for range queries over the ledger. All bounds are
/// inclusive; `None` means unbounded. The default filter matches every
/// row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsFilter {
    /// Restrict to one tenant.
    pub tenant: Option<String>,
    /// Restrict to a submission-sequence window `[lo, hi]`.
    pub seq: Option<(u64, u64)>,
    /// Restrict to a simulated-time window `[lo_us, hi_us]` on the
    /// admission timestamp.
    pub sim_time_us: Option<(f64, f64)>,
}

impl StatsFilter {
    /// Whether `row` passes every bound of this filter.
    pub fn matches(&self, row: &LedgerRow) -> bool {
        if let Some(tenant) = &self.tenant {
            if &row.tenant != tenant {
                return false;
            }
        }
        if let Some((lo, hi)) = self.seq {
            if row.seq < lo || row.seq > hi {
                return false;
            }
        }
        if let Some((lo, hi)) = self.sim_time_us {
            if row.sim_time_us < lo || row.sim_time_us > hi {
                return false;
            }
        }
        true
    }
}

/// Aggregate totals over the rows a filter selects.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Rows selected (all dispositions).
    pub queries: u64,
    /// Rows answered.
    pub answered: u64,
    /// Rows rejected on budget.
    pub rejected_budget: u64,
    /// Rows rejected on rate.
    pub rejected_rate: u64,
    /// Rows that failed in execution.
    pub failed: u64,
    /// Total simulated money across selected rows.
    pub total_money: f64,
    /// Total simulated wall microseconds across selected rows.
    pub total_wall_us: f64,
    /// Mean simulated wall microseconds over *answered* rows (0 when
    /// none).
    pub mean_wall_us: f64,
    /// Mean answered fraction over *answered* rows (0 when none).
    pub mean_answered_fraction: f64,
    /// Total transient-fault retries across selected rows.
    pub total_retries: u64,
    /// Total replica failovers across selected rows.
    pub total_failovers: u64,
}

/// One cell of the tenant × aggregate × source breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Tenant name.
    pub tenant: String,
    /// Aggregate kind label.
    pub aggregate: String,
    /// Answer source label (or disposition label for unanswered rows).
    pub source: String,
    /// Rows in this cell.
    pub queries: u64,
    /// Total simulated money in this cell.
    pub money: f64,
    /// Total simulated wall microseconds in this cell.
    pub wall_us: f64,
}

/// The full serializable stats report: summary + breakdown + top-N +
/// the telemetry counter table (empty under a noop sink).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Unfiltered totals.
    pub summary: StatsSummary,
    /// Tenant × aggregate × source cells, deterministically ordered.
    pub breakdown: Vec<BreakdownRow>,
    /// The most expensive answered rows, by simulated money.
    pub top_expensive: Vec<LedgerRow>,
    /// Telemetry counters at report time (sorted by name; empty when
    /// the service runs without a recording sink).
    pub counters: Vec<CounterSnapshot>,
}

impl StatsReport {
    /// Pretty-printed JSON (the `--stats-out` sidecar format).
    ///
    /// # Errors
    ///
    /// Serialization failures (never in practice for these types).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| SeaError::Serde(e.to_string()))
    }
}

/// Read-only analytics over one frozen ledger snapshot.
#[derive(Debug, Clone)]
pub struct StatsService {
    rows: Vec<LedgerRow>,
    telemetry: TelemetrySink,
}

impl StatsService {
    /// Snapshots `ledger` now; later appends are invisible to this
    /// instance (construct a fresh one to re-read).
    pub fn new(ledger: &Arc<QueryLedger>, telemetry: TelemetrySink) -> Self {
        StatsService {
            rows: ledger.snapshot(),
            telemetry,
        }
    }

    /// The frozen rows, in submission order.
    pub fn rows(&self) -> &[LedgerRow] {
        &self.rows
    }

    /// Totals over the rows `filter` selects.
    pub fn summary(&self, filter: &StatsFilter) -> StatsSummary {
        let mut s = StatsSummary::default();
        for row in self.rows.iter().filter(|r| filter.matches(r)) {
            s.queries += 1;
            match row.disposition {
                Disposition::Answered => {
                    s.answered += 1;
                    s.mean_wall_us += row.wall_us;
                    s.mean_answered_fraction += row.answered_fraction;
                }
                Disposition::RejectedBudget => s.rejected_budget += 1,
                Disposition::RejectedRate => s.rejected_rate += 1,
                Disposition::Failed => s.failed += 1,
            }
            s.total_money += row.money;
            s.total_wall_us += row.wall_us;
            s.total_retries += row.retries;
            s.total_failovers += row.failovers;
        }
        if s.answered > 0 {
            s.mean_wall_us /= s.answered as f64;
            s.mean_answered_fraction /= s.answered as f64;
        }
        s
    }

    /// Tenant × aggregate × source cells over the rows `filter`
    /// selects, in lexicographic key order (deterministic). Unanswered
    /// rows group under their disposition label so rejected load is
    /// visible next to served load.
    pub fn breakdown(&self, filter: &StatsFilter) -> Vec<BreakdownRow> {
        let mut cells: BTreeMap<(String, String, String), (u64, f64, f64)> = BTreeMap::new();
        for row in self.rows.iter().filter(|r| filter.matches(r)) {
            let source = if row.source.is_empty() {
                row.disposition.label().to_string()
            } else {
                row.source.clone()
            };
            let cell = cells
                .entry((row.tenant.clone(), row.aggregate.clone(), source))
                .or_default();
            cell.0 += 1;
            cell.1 += row.money;
            cell.2 += row.wall_us;
        }
        cells
            .into_iter()
            .map(
                |((tenant, aggregate, source), (queries, money, wall_us))| BreakdownRow {
                    tenant,
                    aggregate,
                    source,
                    queries,
                    money,
                    wall_us,
                },
            )
            .collect()
    }

    /// The `n` most expensive *answered* rows `filter` selects, by
    /// simulated money descending, ties broken by submission order
    /// (total order even with equal costs, so output is deterministic).
    pub fn top_expensive(&self, n: usize, filter: &StatsFilter) -> Vec<LedgerRow> {
        let mut answered: Vec<&LedgerRow> = self
            .rows
            .iter()
            .filter(|r| r.disposition == Disposition::Answered && filter.matches(r))
            .collect();
        answered.sort_by(|a, b| b.money.total_cmp(&a.money).then(a.seq.cmp(&b.seq)));
        answered.into_iter().take(n).cloned().collect()
    }

    /// The full report: unfiltered summary, breakdown, top-`top_n`
    /// most expensive rows, and the telemetry counter table.
    pub fn report(&self, top_n: usize) -> StatsReport {
        let all = StatsFilter::default();
        StatsReport {
            summary: self.summary(&all),
            breakdown: self.breakdown(&all),
            top_expensive: self.top_expensive(top_n, &all),
            counters: self
                .telemetry
                .snapshot()
                .map(|s| s.counters)
                .unwrap_or_default(),
        }
    }
}
