//! The query ledger: one append-only row per submitted request.
//!
//! The ledger is the serving path's *only* shared state with the read
//! path: [`QueryService`](crate::QueryService) appends under a short
//! write lock, and readers take an owned [`QueryLedger::snapshot`] —
//! a stats consumer never holds a lock while aggregating, so analytics
//! cannot stall admission and admission cannot shear an in-progress
//! read.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// How the service disposed of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Disposition {
    /// Admitted and answered (possibly partially — see
    /// [`LedgerRow::source`]).
    Answered,
    /// Rejected before execution: the tenant's simulated-money budget
    /// was already exhausted.
    RejectedBudget,
    /// Rejected before execution: the tenant's token bucket was empty.
    RejectedRate,
    /// Admitted but execution failed (and no degraded fallback served).
    Failed,
}

impl Disposition {
    /// Short stable name used as a grouping key in stats breakdowns.
    pub fn label(&self) -> &'static str {
        match self {
            Disposition::Answered => "answered",
            Disposition::RejectedBudget => "rejected_budget",
            Disposition::RejectedRate => "rejected_rate",
            Disposition::Failed => "failed",
        }
    }
}

/// One row of the ledger: the full bill of record for one request.
/// Every field is simulated/deterministic — `sim_time_us` and `wall_us`
/// come from the cost model's clock, never the host's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRow {
    /// Global (service-wide) submission sequence number, from 0.
    pub seq: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// Aggregate kind label (`count`, `mean`, …).
    pub aggregate: String,
    /// How the request was disposed of.
    pub disposition: Disposition,
    /// Answer provenance for answered rows: `exact`, `predicted`,
    /// `cached`, `degraded`, or `partial` (complete-answer provenance
    /// is overridden by `partial` when unavailable partitions were
    /// skipped). Empty for rejected/failed rows.
    pub source: String,
    /// Simulated service clock at admission, microseconds.
    pub sim_time_us: f64,
    /// Simulated money charged to the tenant (0 for rejected/failed).
    pub money: f64,
    /// Simulated wall-clock microseconds the answer took.
    pub wall_us: f64,
    /// Fraction of engaged partitions that contributed (1.0 complete).
    pub answered_fraction: f64,
    /// Partitions that could not be served at all.
    pub nodes_unavailable: u64,
    /// Transient-fault retries performed while serving this request
    /// (0 when the service runs without a recording telemetry sink).
    pub retries: u64,
    /// Replica failovers performed while serving this request (0 when
    /// the service runs without a recording telemetry sink).
    pub failovers: u64,
    /// Semantic-cache classification for this request: `exact`,
    /// `containment`, `miss`, or `none` when no cache sits on the
    /// tenant's path.
    pub cache_class: String,
}

impl LedgerRow {
    /// A row for a request that never executed (rejected or failed):
    /// all cost fields zero, provenance empty.
    pub(crate) fn unanswered(
        seq: u64,
        tenant: &str,
        aggregate: &str,
        disposition: Disposition,
        sim_time_us: f64,
    ) -> Self {
        LedgerRow {
            seq,
            tenant: tenant.to_string(),
            aggregate: aggregate.to_string(),
            disposition,
            source: String::new(),
            sim_time_us,
            money: 0.0,
            wall_us: 0.0,
            answered_fraction: 0.0,
            nodes_unavailable: 0,
            retries: 0,
            failovers: 0,
            cache_class: "none".to_string(),
        }
    }
}

/// Append-only, lock-guarded sequence of [`LedgerRow`]s.
#[derive(Debug, Default)]
pub struct QueryLedger {
    rows: RwLock<Vec<LedgerRow>>,
}

impl QueryLedger {
    /// Appends one row (serving path; short write lock).
    pub fn append(&self, row: LedgerRow) {
        self.rows.write().push(row);
    }

    /// An owned copy of every row so far (read path). Rows are in
    /// submission order — `seq` is strictly increasing.
    pub fn snapshot(&self) -> Vec<LedgerRow> {
        self.rows.read().clone()
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// Whether no request has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_an_owned_copy() {
        let ledger = QueryLedger::default();
        ledger.append(LedgerRow::unanswered(
            0,
            "a",
            "count",
            Disposition::RejectedRate,
            5.0,
        ));
        let snap = ledger.snapshot();
        ledger.append(LedgerRow::unanswered(
            1,
            "a",
            "count",
            Disposition::RejectedRate,
            6.0,
        ));
        assert_eq!(snap.len(), 1);
        assert_eq!(ledger.len(), 2);
        assert_eq!(snap[0].disposition.label(), "rejected_rate");
    }

    #[test]
    fn rows_round_trip_through_json() {
        let row = LedgerRow::unanswered(3, "t", "mean", Disposition::Failed, 1.5);
        let json = serde_json::to_string(&row).unwrap();
        let back: LedgerRow = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}
