//! End-to-end behavior of the serving + read paths: admission control
//! (budgets and token buckets on simulated time), ledger provenance,
//! and the stats API's filtering / breakdown / top-N contracts.

use std::sync::Arc;

use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, Record, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::{Executor, RetryPolicy};
use sea_service::{Disposition, QueryService, SloPolicy, StatsFilter, StatsService, TenantConfig};
use sea_storage::{FaultPlan, Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;

fn build_cluster() -> StorageCluster {
    let mut c = StorageCluster::new(4, 64);
    let records: Vec<Record> = (0..2000)
        .map(|i| Record::new(i as u64, vec![(i % 100) as f64, (i % 7) as f64]))
        .collect();
    c.load_table("t", records, Partitioning::Hash).unwrap();
    c
}

fn count_query(lo: f64, hi: f64) -> AnalyticalQuery {
    AnalyticalQuery::new(
        Region::Range(Rect::new(vec![lo, 0.0], vec![hi, 7.0]).unwrap()),
        AggregateKind::Count,
    )
}

#[test]
fn unknown_tenant_is_an_error_but_failed_queries_are_not() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant("a", TenantConfig::default()).unwrap();
    assert!(svc.submit("ghost", &count_query(0.0, 10.0)).is_err());
    // Mean over an empty selection fails in execution: ledgered, not
    // returned as Err.
    let empty_mean = AnalyticalQuery::new(
        Region::Range(Rect::new(vec![200.0, 0.0], vec![210.0, 7.0]).unwrap()),
        AggregateKind::Mean { dim: 0 },
    );
    let out = svc.submit("a", &empty_mean).unwrap();
    assert_eq!(out.disposition, Disposition::Failed);
    assert!(out.answer.is_none());
    assert_eq!(svc.tenant_usage("a").unwrap().failed, 1);
}

#[test]
fn duplicate_registration_is_rejected() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant("a", TenantConfig::default()).unwrap();
    assert!(svc.register_tenant("a", TenantConfig::default()).is_err());
}

#[test]
fn budget_caps_spend_with_at_most_one_query_overshoot() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    // Find one query's cost, then give the tenant ~2.5 queries of budget.
    svc.register_tenant("probe", TenantConfig::default())
        .unwrap();
    let per_query = svc
        .submit("probe", &count_query(0.0, 50.0))
        .unwrap()
        .row
        .money;
    assert!(per_query > 0.0);
    svc.register_tenant(
        "capped",
        TenantConfig {
            money_budget: Some(2.5 * per_query),
            ..TenantConfig::default()
        },
    )
    .unwrap();
    let mut answered = 0;
    let mut rejected = 0;
    for _ in 0..10 {
        match svc
            .submit("capped", &count_query(0.0, 50.0))
            .unwrap()
            .disposition
        {
            Disposition::Answered => answered += 1,
            Disposition::RejectedBudget => rejected += 1,
            d => panic!("unexpected disposition {d:?}"),
        }
    }
    assert_eq!(
        answered, 3,
        "2.5-query budget admits exactly 3 (overshoot ≤ 1)"
    );
    assert_eq!(rejected, 7);
    let usage = svc.tenant_usage("capped").unwrap();
    assert!(usage.money <= 3.0 * per_query + 1e-9);
    assert!(usage.money >= 2.5 * per_query);
}

#[test]
fn token_bucket_refills_on_simulated_time_only() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant(
        "paced",
        TenantConfig {
            rate_per_sec: Some(1.0),
            burst: 2.0,
            ..TenantConfig::default()
        },
    )
    .unwrap();
    let q = count_query(0.0, 30.0);
    // Burst of 2 admits two back-to-back queries; queries themselves
    // advance the clock far less than a simulated second.
    assert_eq!(
        svc.submit("paced", &q).unwrap().disposition,
        Disposition::Answered
    );
    assert_eq!(
        svc.submit("paced", &q).unwrap().disposition,
        Disposition::Answered
    );
    assert_eq!(
        svc.submit("paced", &q).unwrap().disposition,
        Disposition::RejectedRate
    );
    // One simulated second refills one token.
    svc.advance_clock(1_000_000.0);
    assert_eq!(
        svc.submit("paced", &q).unwrap().disposition,
        Disposition::Answered
    );
    assert_eq!(
        svc.submit("paced", &q).unwrap().disposition,
        Disposition::RejectedRate
    );
    let usage = svc.tenant_usage("paced").unwrap();
    assert_eq!(usage.answered, 3);
    assert_eq!(usage.rejected_rate, 2);
}

#[test]
fn pipeline_tenant_records_provenance_and_cache_class() {
    let cluster = build_cluster();
    let sink = TelemetrySink::noop();
    let cache = Arc::new(
        SemanticCache::new(CacheConfig {
            admit_min_cost_us: 0.0,
            ..CacheConfig::default()
        })
        .with_telemetry(sink.clone()),
    );
    let pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
        .unwrap()
        .with_cache(Arc::clone(&cache));
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant_with_pipeline("ml", TenantConfig::default(), pipe)
        .unwrap();
    let q = count_query(10.0, 40.0);
    let first = svc.submit("ml", &q).unwrap();
    assert_eq!(first.disposition, Disposition::Answered);
    assert_eq!(
        first.row.source, "exact",
        "untrained agent executes exactly"
    );
    assert_eq!(first.row.cache_class, "miss", "cold cache misses");
    let second = svc.submit("ml", &q).unwrap();
    assert_eq!(
        second.row.source, "cached",
        "repeat hits the semantic cache"
    );
    assert_eq!(second.row.cache_class, "exact");
    assert_eq!(second.answer, first.answer, "cache is transparent");
    assert!(
        second.row.wall_us < first.row.wall_us,
        "cache hit is cheaper: {} vs {}",
        second.row.wall_us,
        first.row.wall_us
    );
}

#[test]
fn faulty_partial_answers_surface_as_partial_source_with_retries() {
    let mut cluster = build_cluster();
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    cluster.set_fault_plan(FaultPlan::new(97).with_transient(0.3, 1).with_crash(1, 5));
    let exec = Executor::new(&cluster)
        .with_retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base_us: 1_000,
        })
        .with_partial_answers(true);
    let mut svc = QueryService::new(exec, "t");
    svc.register_tenant("a", TenantConfig::default()).unwrap();
    let mut partials = 0;
    let mut retries = 0;
    for i in 0..20 {
        let lo = f64::from(i) * 2.0;
        let out = svc.submit("a", &count_query(lo, lo + 40.0)).unwrap();
        assert_eq!(out.disposition, Disposition::Answered);
        if out.row.source == "partial" {
            partials += 1;
            assert!(out.row.answered_fraction < 1.0);
            assert!(out.row.nodes_unavailable > 0);
        }
        retries += out.row.retries;
    }
    assert!(
        partials > 0,
        "crashed node degrades some answers to partial"
    );
    assert!(retries > 0, "transient faults cost ledgered retries");
    let stats = StatsService::new(&svc.ledger(), sink);
    let summary = stats.summary(&StatsFilter::default());
    assert_eq!(summary.total_retries, retries);
    assert!(summary.mean_answered_fraction < 1.0);
}

#[test]
fn stats_filters_breakdown_and_top_n_are_consistent() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant("a", TenantConfig::default()).unwrap();
    svc.register_tenant("b", TenantConfig::default()).unwrap();
    for i in 0..6 {
        let tenant = if i % 2 == 0 { "a" } else { "b" };
        let width = 10.0 + f64::from(i) * 12.0; // widening → increasing cost
        svc.submit(tenant, &count_query(0.0, width)).unwrap();
        let sum = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0, 0.0], vec![width, 7.0]).unwrap()),
            AggregateKind::Sum { dim: 1 },
        );
        svc.submit(tenant, &sum).unwrap();
    }
    let stats = StatsService::new(&svc.ledger(), TelemetrySink::noop());

    // Tenant filter partitions the summary.
    let all = stats.summary(&StatsFilter::default());
    let only_a = stats.summary(&StatsFilter {
        tenant: Some("a".to_string()),
        ..StatsFilter::default()
    });
    let only_b = stats.summary(&StatsFilter {
        tenant: Some("b".to_string()),
        ..StatsFilter::default()
    });
    assert_eq!(all.queries, 12);
    assert_eq!(only_a.queries + only_b.queries, all.queries);
    assert!((only_a.total_money + only_b.total_money - all.total_money).abs() < 1e-9);

    // Seq window is inclusive on both ends.
    let window = stats.summary(&StatsFilter {
        seq: Some((2, 5)),
        ..StatsFilter::default()
    });
    assert_eq!(window.queries, 4);

    // Sim-time window starting after the first row's admission excludes it.
    let first_time = stats.rows()[1].sim_time_us;
    let late = stats.summary(&StatsFilter {
        sim_time_us: Some((first_time, f64::INFINITY)),
        ..StatsFilter::default()
    });
    assert_eq!(late.queries, all.queries - 1);

    // Breakdown cells cover every row exactly once and are sorted.
    let cells = stats.breakdown(&StatsFilter::default());
    let covered: u64 = cells.iter().map(|c| c.queries).sum();
    assert_eq!(covered, all.queries);
    let keys: Vec<_> = cells
        .iter()
        .map(|c| (c.tenant.clone(), c.aggregate.clone(), c.source.clone()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "breakdown is deterministically ordered");
    assert!(cells.iter().any(|c| c.aggregate == "sum"));
    assert!(cells.iter().any(|c| c.aggregate == "count"));

    // Top-N is sorted by money descending and bounded by N.
    let top = stats.top_expensive(3, &StatsFilter::default());
    assert_eq!(top.len(), 3);
    assert!(top[0].money >= top[1].money && top[1].money >= top[2].money);
    let max_money = stats
        .rows()
        .iter()
        .map(|r| r.money)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(top[0].money, max_money);

    // Report serializes and carries all sections.
    let report = stats.report(3);
    let json = report.to_json().unwrap();
    assert!(json.contains("\"summary\""));
    assert!(json.contains("\"breakdown\""));
    assert!(json.contains("\"top_expensive\""));
}

#[test]
fn top_expensive_breaks_cost_ties_by_submission_order() {
    let cluster = build_cluster();
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    for t in ["a", "b"] {
        svc.register_tenant(t, TenantConfig::default()).unwrap();
    }
    // The identical query from alternating tenants: every answered row
    // carries exactly the same simulated money.
    let q = count_query(0.0, 40.0);
    for i in 0..6 {
        svc.submit(["a", "b"][i % 2], &q).unwrap();
    }
    let stats = StatsService::new(&svc.ledger(), TelemetrySink::noop());
    let top = stats.top_expensive(6, &StatsFilter::default());
    assert_eq!(top.len(), 6);
    let money: Vec<f64> = top.iter().map(|r| r.money).collect();
    assert!(
        money.windows(2).all(|w| w[0] == w[1]),
        "fixture requires equal costs, got {money:?}"
    );
    // Equal-cost rows come back in submission (seq) order — a total
    // order, so the sidecar JSON is bit-stable run to run.
    let seqs: Vec<u64> = top.iter().map(|r| r.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    // And a smaller N takes the earliest-submitted of the tied rows.
    let top2 = stats.top_expensive(2, &StatsFilter::default());
    assert_eq!(top2.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
}

#[test]
fn slo_burn_rate_alert_raises_and_lands_in_log_and_telemetry() {
    let cluster = build_cluster();
    let sink = TelemetrySink::recording();
    let mut exec_cluster = cluster;
    exec_cluster.set_telemetry(sink.clone());
    let mut svc = QueryService::new(Executor::new(&exec_cluster), "t");
    // `strict` can never meet its latency objective; `lax` always does.
    svc.register_tenant(
        "strict",
        TenantConfig {
            slo: Some(SloPolicy::new(0.001, 1.0)),
            ..TenantConfig::default()
        },
    )
    .unwrap();
    svc.register_tenant(
        "lax",
        TenantConfig {
            slo: Some(SloPolicy::new(f64::INFINITY, 0.0)),
            ..TenantConfig::default()
        },
    )
    .unwrap();
    let q = count_query(0.0, 40.0);
    for _ in 0..5 {
        svc.submit("strict", &q).unwrap();
        svc.submit("lax", &q).unwrap();
    }
    // All-bad traffic burns at 1/error_budget = 100× — far over both
    // thresholds — so the alert raises on the first served request and
    // stays latched: exactly one transition.
    let alerts = svc.alert_log().snapshot();
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].tenant, "strict");
    assert!(alerts[0].raised);
    assert!(alerts[0].fast_burn >= 14.4 && alerts[0].slow_burn >= 6.0);
    assert_eq!(alerts[0].seq, 0);
    let strict = svc.tenant_slo_status("strict").unwrap();
    assert!(strict.alerting);
    assert_eq!(strict.bad, 5);
    let lax = svc.tenant_slo_status("lax").unwrap();
    assert!(!lax.alerting);
    assert_eq!((lax.good, lax.bad), (5, 0));
    assert!(svc.tenant_slo_status("ghost").is_none());
    // The transition is also visible as telemetry.
    let snap = sink.snapshot().unwrap();
    assert_eq!(snap.counter("watch.alerts"), 1);
    assert_eq!(snap.event_count("watch.alert"), 1);
}
