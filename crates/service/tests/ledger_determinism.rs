//! Ledger determinism: a mixed multi-tenant workload — exact tenants,
//! a pipeline tenant with a semantic cache, faults with retries and
//! partial answers, budgets and rate limits — must produce a
//! bit-identical ledger and bit-identical stats at any [`ExecPool`]
//! thread count. This is the service-layer extension of the executor's
//! own determinism contract (`sea-query`'s `cache_determinism` tests):
//! if admission, accounting, or attribution ever consulted a wall clock
//! or a schedule-dependent counter, these comparisons would shear.
//!
//! A proptest below pins the stats algebra itself: summary totals are
//! exactly the fold of the individual ledger rows, for arbitrary rows.

use std::sync::Arc;

use proptest::prelude::*;
use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, Record, Rect, Region};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::{ExecPool, Executor, RetryPolicy};
use sea_service::{
    Disposition, LedgerRow, QueryLedger, QueryService, StatsFilter, StatsReport, StatsService,
    TenantConfig,
};
use sea_storage::{FaultPlan, Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;

fn build_cluster() -> StorageCluster {
    let mut c = StorageCluster::new(6, 64);
    let records: Vec<Record> = (0..3000)
        .map(|i| Record::new(i as u64, vec![(i % 100) as f64, ((i * 13) % 41) as f64]))
        .collect();
    c.load_table("t", records, Partitioning::Hash).unwrap();
    c
}

fn query(i: usize) -> AnalyticalQuery {
    let lo = (i % 7) as f64 * 9.0;
    let hi = lo + 18.0 + (i % 5) as f64 * 7.0;
    let rect = Rect::new(vec![lo, 0.0], vec![hi, 41.0]).unwrap();
    let agg = match i % 4 {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum { dim: 1 },
        2 => AggregateKind::Mean { dim: 1 },
        _ => AggregateKind::Median { dim: 0 },
    };
    AnalyticalQuery::new(Region::Range(rect), agg)
}

/// Runs the full workload at one thread budget; returns the ledger rows
/// and the complete stats report (summary + breakdown + top-N + the
/// recorded counter table).
fn run(threads: usize) -> (Vec<LedgerRow>, StatsReport) {
    let mut cluster = build_cluster();
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    cluster.set_fault_plan(FaultPlan::new(23).with_transient(0.2, 1).with_crash(2, 40));
    let exec = Executor::new(&cluster)
        .with_pool(ExecPool::new(threads))
        .with_retry_policy(RetryPolicy {
            max_retries: 2,
            backoff_base_us: 1_000,
        })
        .with_partial_answers(true);
    let cache = Arc::new(
        SemanticCache::new(CacheConfig {
            admit_min_cost_us: 0.0,
            ..CacheConfig::default()
        })
        .with_telemetry(sink.clone()),
    );
    let pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
        .unwrap()
        .with_cache(cache)
        .with_telemetry(sink.clone());
    let mut svc = QueryService::new(exec, "t");
    svc.register_tenant("alpha", TenantConfig::default())
        .unwrap();
    svc.register_tenant(
        "capped",
        TenantConfig {
            money_budget: Some(2000.0),
            rate_per_sec: Some(2.0),
            burst: 3.0,
            ..TenantConfig::default()
        },
    )
    .unwrap();
    svc.register_tenant_with_pipeline("ml", TenantConfig::default(), pipe)
        .unwrap();
    for i in 0..60 {
        let tenant = ["alpha", "capped", "ml"][i % 3];
        svc.submit(tenant, &query(i)).unwrap();
        if i % 10 == 9 {
            svc.advance_clock(500_000.0);
        }
    }
    let stats = StatsService::new(&svc.ledger(), sink);
    (stats.rows().to_vec(), stats.report(10))
}

#[test]
fn ledger_and_stats_are_bit_identical_across_thread_counts() {
    let (rows1, report1) = run(1);
    for threads in [2, 8] {
        let (rows, report) = run(threads);
        assert_eq!(rows, rows1, "ledger rows differ at {threads} threads");
        assert_eq!(report, report1, "stats report differs at {threads} threads");
        assert_eq!(
            report.to_json().unwrap(),
            report1.to_json().unwrap(),
            "serialized sidecar differs at {threads} threads"
        );
    }
    // The workload actually exercised the interesting paths.
    assert!(report1.summary.total_retries > 0, "retries ledgered");
    assert!(report1.summary.rejected_rate > 0, "rate limiting fired");
    assert!(
        rows1.iter().any(|r| r.source == "partial"),
        "partial answers ledgered"
    );
    assert!(
        rows1
            .iter()
            .any(|r| r.cache_class == "exact" || r.cache_class == "containment"),
        "cache hits ledgered"
    );
}

/// Arbitrary ledger rows for the fold property: every disposition,
/// varied tenants/aggregates, bounded finite costs.
fn row_strategy() -> impl Strategy<Value = LedgerRow> {
    (
        (0..4u8, 0..3u8, 0..3u8),
        (0.0..1e6f64, 0.0..1e4f64, 0.0..1e7f64, 0.0..1.0f64),
        (0..5u64, 0..5u64, 0..3u64),
    )
        .prop_map(
            |(
                (disp, tenant, agg),
                (sim_time, money, wall, frac),
                (retries, failovers, unavailable),
            )| {
                let disposition = match disp {
                    0 => Disposition::Answered,
                    1 => Disposition::RejectedBudget,
                    2 => Disposition::RejectedRate,
                    _ => Disposition::Failed,
                };
                let answered = disposition == Disposition::Answered;
                LedgerRow {
                    seq: 0, // re-assigned by the caller
                    tenant: ["a", "b", "c"][tenant as usize].to_string(),
                    aggregate: ["count", "sum", "mean"][agg as usize].to_string(),
                    disposition,
                    source: if answered {
                        "exact".to_string()
                    } else {
                        String::new()
                    },
                    sim_time_us: sim_time,
                    money: if answered { money } else { 0.0 },
                    wall_us: if answered { wall } else { 0.0 },
                    answered_fraction: if answered { frac } else { 0.0 },
                    nodes_unavailable: unavailable,
                    retries,
                    failovers,
                    cache_class: "none".to_string(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The summary is exactly the fold of the rows it selects: counts
    /// by disposition, summed money/wall/retries/failovers, and means
    /// over answered rows.
    #[test]
    fn summary_equals_fold_of_rows(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let ledger = Arc::new(QueryLedger::default());
        for (seq, mut row) in rows.clone().into_iter().enumerate() {
            row.seq = seq as u64;
            ledger.append(row);
        }
        let stats = StatsService::new(&ledger, TelemetrySink::noop());
        let s = stats.summary(&StatsFilter::default());

        let count = |d: Disposition| rows.iter().filter(|r| r.disposition == d).count() as u64;
        prop_assert_eq!(s.queries, rows.len() as u64);
        prop_assert_eq!(s.answered, count(Disposition::Answered));
        prop_assert_eq!(s.rejected_budget, count(Disposition::RejectedBudget));
        prop_assert_eq!(s.rejected_rate, count(Disposition::RejectedRate));
        prop_assert_eq!(s.failed, count(Disposition::Failed));
        let money: f64 = rows.iter().map(|r| r.money).sum();
        let wall: f64 = rows.iter().map(|r| r.wall_us).sum();
        prop_assert!((s.total_money - money).abs() <= 1e-9 * money.max(1.0));
        prop_assert!((s.total_wall_us - wall).abs() <= 1e-9 * wall.max(1.0));
        prop_assert_eq!(s.total_retries, rows.iter().map(|r| r.retries).sum::<u64>());
        prop_assert_eq!(s.total_failovers, rows.iter().map(|r| r.failovers).sum::<u64>());
        if s.answered > 0 {
            let wall_answered: f64 = rows
                .iter()
                .filter(|r| r.disposition == Disposition::Answered)
                .map(|r| r.wall_us)
                .sum();
            let expect = wall_answered / s.answered as f64;
            prop_assert!((s.mean_wall_us - expect).abs() <= 1e-9 * expect.max(1.0));
        } else {
            prop_assert_eq!(s.mean_wall_us, 0.0);
        }

        // The breakdown is a partition: cell counts and money re-sum to
        // the summary's.
        let cells = stats.breakdown(&StatsFilter::default());
        prop_assert_eq!(cells.iter().map(|c| c.queries).sum::<u64>(), s.queries);
        let cell_money: f64 = cells.iter().map(|c| c.money).sum();
        prop_assert!((cell_money - money).abs() <= 1e-9 * money.max(1.0));
    }
}
