//! Property tests of the access structures' correctness invariants.

use proptest::prelude::*;

use sea_common::{Record, Rect};
use sea_index::{
    CountMinSketch, EquiDepthHistogram, EquiWidthHistogram, GridIndex, ReservoirSampler,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cms_never_underestimates(items in prop::collection::vec(0u64..50, 1..300)) {
        let mut cms = CountMinSketch::new(64, 4).unwrap();
        let mut truth = std::collections::HashMap::new();
        for &i in &items {
            cms.add(i);
            *truth.entry(i).or_insert(0u64) += 1;
        }
        for (&item, &count) in &truth {
            prop_assert!(cms.estimate(item) >= count);
        }
        prop_assert_eq!(cms.total(), items.len() as u64);
    }

    #[test]
    fn cms_merge_dominates_parts(a in prop::collection::vec(0u64..30, 1..100),
                                 b in prop::collection::vec(0u64..30, 1..100)) {
        let mut ca = CountMinSketch::new(32, 3).unwrap();
        let mut cb = CountMinSketch::new(32, 3).unwrap();
        for &i in &a { ca.add(i); }
        for &i in &b { cb.add(i); }
        let mut merged = ca.clone();
        merged.merge(&cb).unwrap();
        for item in 0..30u64 {
            prop_assert!(merged.estimate(item) >= ca.estimate(item));
            prop_assert!(merged.estimate(item) >= cb.estimate(item));
        }
    }

    #[test]
    fn histograms_preserve_total_mass(values in prop::collection::vec(0.0f64..100.0, 1..200)) {
        let ew = EquiWidthHistogram::build(&values, 0.0, 100.0, 16).unwrap();
        let full = ew.estimate_count(-1.0, 101.0);
        prop_assert!((full - values.len() as f64).abs() < 1.0, "equi-width mass {full}");
        let ed = EquiDepthHistogram::build(&values, 8).unwrap();
        let full_d = ed.estimate_count(f64::NEG_INFINITY, f64::INFINITY);
        prop_assert!((full_d - values.len() as f64).abs() < 1.0, "equi-depth mass {full_d}");
    }

    #[test]
    fn histogram_counts_are_monotone_in_range(values in prop::collection::vec(0.0f64..100.0, 1..200),
                                              a in 0.0f64..50.0, w1 in 0.0f64..25.0, w2 in 0.0f64..25.0) {
        let ew = EquiWidthHistogram::build(&values, 0.0, 100.0, 16).unwrap();
        let narrow = ew.estimate_count(a, a + w1);
        let wide = ew.estimate_count(a, a + w1 + w2);
        prop_assert!(narrow <= wide + 1e-9, "wider range, larger estimate");
        prop_assert!(narrow >= 0.0);
        let sel = ew.estimate_selectivity(a, a + w1);
        prop_assert!((0.0..=1.0).contains(&sel));
    }

    #[test]
    fn reservoir_respects_capacity_and_counts(n in 1usize..500, cap in 1usize..64, seed in 0u64..100) {
        let mut s = ReservoirSampler::new(cap, seed).unwrap();
        for i in 0..n {
            s.offer(Record::new(i as u64, vec![i as f64]));
        }
        prop_assert_eq!(s.sample().len(), n.min(cap));
        prop_assert_eq!(s.seen(), n as u64);
        // All sampled records are genuine stream elements.
        for r in s.sample() {
            prop_assert!(r.id < n as u64);
        }
        // No duplicates.
        let mut ids: Vec<_> = s.sample().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), s.sample().len());
    }

    #[test]
    fn grid_estimate_count_full_domain_is_total(points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..150)) {
        let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let records: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Record::new(i as u64, vec![*x, *y]))
            .collect();
        let grid = GridIndex::build(domain.clone(), 8, &records).unwrap();
        let est = grid
            .estimate_count(&sea_common::Region::Range(domain))
            .unwrap();
        prop_assert!((est - records.len() as f64).abs() < 1e-6, "est {est}");
    }

    #[test]
    fn grid_insert_remove_roundtrip(points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..60)) {
        let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let mut grid = GridIndex::new(domain, 5).unwrap();
        let records: Vec<Record> = points
            .iter()
            .enumerate()
            .map(|(i, (x, y))| Record::new(i as u64, vec![*x, *y]))
            .collect();
        for r in &records {
            grid.insert(r).unwrap();
        }
        prop_assert_eq!(grid.len(), records.len());
        for r in &records {
            prop_assert!(grid.remove(r).unwrap());
        }
        prop_assert!(grid.is_empty());
    }
}
