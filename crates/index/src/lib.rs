//! # sea-index
//!
//! Access structures for *big-data-less* analytics (principle P3 / research
//! theme RT2): indexes, statistical structures, and samplers that let
//! engines "surgically access the smallest data subset required to compute
//! the answer" instead of scanning everything.
//!
//! * [`GridIndex`] — a uniform multi-dimensional grid with per-cell
//!   sufficient statistics; powers fast approximate aggregates and
//!   candidate pruning.
//! * [`KdTree`] — bulk-built k-d tree with range and kNN search; the
//!   per-node index behind the coordinator–cohort kNN operator (\[33\]).
//! * [`RTree`] — STR bulk-loaded R-tree over rectangles; routes queries to
//!   storage blocks/partitions.
//! * [`histogram`] — equi-width and equi-depth 1-D histograms; selectivity
//!   estimation for the optimizer (RT3).
//! * [`CountMinSketch`] — frequency sketch for skewed attributes (\[16\]).
//! * [`sample`] — reservoir and stratified samplers; the substrate of the
//!   BlinkDB-style AQP baseline (\[17\]).
//! * [`CrackerIndex`] — adaptive indexing over raw data (database
//!   cracking), the RT2-3 "raw data analytics" mechanism: the column
//!   self-organizes exactly where queries land, with zero up-front cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crack;
pub mod grid;
pub mod histogram;
pub mod kdtree;
pub mod rtree;
pub mod sample;
pub mod sketch;

pub use crack::CrackerIndex;
pub use grid::GridIndex;
pub use histogram::{EquiDepthHistogram, EquiWidthHistogram};
pub use kdtree::KdTree;
pub use rtree::RTree;
pub use sample::{ReservoirSampler, StratifiedSample};
pub use sketch::CountMinSketch;
