//! A bulk-built k-d tree with range and k-nearest-neighbour search.
//!
//! This is the per-node access structure behind the coordinator–cohort kNN
//! operator of experiment E5 (paper claim: three orders of magnitude over
//! MapReduce-style scanning, \[33\]).

use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use sea_common::{Point, Record, RecordId, Rect, Result, SeaError};

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    /// Index into `points` of this node's pivot.
    point: usize,
    split_dim: usize,
    left: Option<usize>,
    right: Option<usize>,
}

/// A static k-d tree over a set of records, built once in `O(n log n)`.
///
/// # Examples
///
/// ```
/// use sea_common::{Point, Record};
/// use sea_index::KdTree;
///
/// let records: Vec<Record> = (0..100)
///     .map(|i| Record::new(i, vec![i as f64, (i * 7 % 100) as f64]))
///     .collect();
/// let tree = KdTree::build(&records).unwrap();
/// let nn = tree.nearest(&Point::new(vec![50.0, 50.0]), 3).unwrap();
/// assert_eq!(nn.len(), 3);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KdTree {
    dims: usize,
    ids: Vec<RecordId>,
    coords: Vec<Vec<f64>>,
    nodes: Vec<Node>,
    root: Option<usize>,
}

/// A kNN search hit: record id and its distance to the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Id of the neighbouring record.
    pub id: RecordId,
    /// Euclidean distance to the query point.
    pub distance: f64,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist_sq: f64,
    id: RecordId,
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("distances are finite")
            .then(self.id.cmp(&other.id))
    }
}

impl KdTree {
    /// Bulk-builds a tree from records.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] on no records; dimension mismatch when records
    /// disagree.
    pub fn build(records: &[Record]) -> Result<Self> {
        let Some(first) = records.first() else {
            return Err(SeaError::Empty("k-d tree needs at least one record".into()));
        };
        let dims = first.dims();
        if dims == 0 {
            return Err(SeaError::invalid("k-d tree needs at least one dimension"));
        }
        for r in records {
            SeaError::check_dims(dims, r.dims())?;
        }
        let ids: Vec<RecordId> = records.iter().map(|r| r.id).collect();
        let coords: Vec<Vec<f64>> = records.iter().map(|r| r.values.clone()).collect();
        let mut tree = KdTree {
            dims,
            ids,
            coords,
            nodes: Vec::with_capacity(records.len()),
            root: None,
        };
        let mut order: Vec<usize> = (0..records.len()).collect();
        tree.root = tree.build_rec(&mut order, 0);
        Ok(tree)
    }

    fn build_rec(&mut self, order: &mut [usize], depth: usize) -> Option<usize> {
        if order.is_empty() {
            return None;
        }
        let split_dim = depth % self.dims;
        let mid = order.len() / 2;
        order.select_nth_unstable_by(mid, |&a, &b| {
            self.coords[a][split_dim]
                .partial_cmp(&self.coords[b][split_dim])
                .expect("finite coordinates")
        });
        let pivot = order[mid];
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            point: pivot,
            split_dim,
            left: None,
            right: None,
        });
        let (left_slice, rest) = order.split_at_mut(mid);
        let right_slice = &mut rest[1..];
        let left = self.build_rec(left_slice, depth + 1);
        let right = self.build_rec(right_slice, depth + 1);
        self.nodes[node_idx].left = left;
        self.nodes[node_idx].right = right;
        Some(node_idx)
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Ids of all records inside `rect`, visiting only subtrees whose
    /// half-space can intersect it. Also returns how many tree nodes were
    /// inspected (the "work" measure for surgical-access accounting).
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn range(&self, rect: &Rect) -> Result<(Vec<RecordId>, usize)> {
        SeaError::check_dims(self.dims, rect.dims())?;
        let mut out = Vec::new();
        let mut visited = 0usize;
        let mut stack = Vec::new();
        if let Some(root) = self.root {
            stack.push(root);
        }
        while let Some(idx) = stack.pop() {
            visited += 1;
            let node = &self.nodes[idx];
            let p = &self.coords[node.point];
            if (0..self.dims).all(|d| rect.lo()[d] <= p[d] && p[d] <= rect.hi()[d]) {
                out.push(self.ids[node.point]);
            }
            let sd = node.split_dim;
            if let Some(l) = node.left {
                if rect.lo()[sd] <= p[sd] {
                    stack.push(l);
                }
            }
            if let Some(r) = node.right {
                if rect.hi()[sd] >= p[sd] {
                    stack.push(r);
                }
            }
        }
        Ok((out, visited))
    }

    /// The `k` records nearest to `query` in Euclidean distance, closest
    /// first. Returns fewer when the tree holds fewer than `k` records.
    ///
    /// # Errors
    ///
    /// Dimension mismatch, or `k == 0`.
    pub fn nearest(&self, query: &Point, k: usize) -> Result<Vec<Neighbor>> {
        SeaError::check_dims(self.dims, query.dims())?;
        if k == 0 {
            return Err(SeaError::invalid("k must be positive"));
        }
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        self.nearest_rec(self.root, query.coords(), k, &mut heap);
        let mut hits: Vec<Neighbor> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| Neighbor {
                id: e.id,
                distance: e.dist_sq.sqrt(),
            })
            .collect();
        hits.truncate(k);
        Ok(hits)
    }

    fn nearest_rec(
        &self,
        node: Option<usize>,
        q: &[f64],
        k: usize,
        heap: &mut BinaryHeap<HeapEntry>,
    ) {
        let Some(idx) = node else { return };
        let n = &self.nodes[idx];
        let p = &self.coords[n.point];
        let dist_sq: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
        let candidate = HeapEntry {
            dist_sq,
            id: self.ids[n.point],
        };
        if heap.len() < k {
            heap.push(candidate);
        } else if candidate < *heap.peek().expect("non-empty") {
            // (dist, id)-lexicographic eviction: an equidistant record
            // with a lower id replaces the incumbent, so the reported
            // top-k never depends on tree traversal order.
            heap.pop();
            heap.push(candidate);
        }
        let sd = n.split_dim;
        let diff = q[sd] - p[sd];
        let (near, far) = if diff <= 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.nearest_rec(near, q, k, heap);
        // Visit the far side only if the splitting plane is closer than
        // (or exactly at) the current k-th best — the boundary case must
        // recurse so an equidistant lower-id record can still win its
        // tie.
        let worst = heap.peek().map_or(f64::INFINITY, |e| e.dist_sq);
        if heap.len() < k || diff * diff <= worst {
            self.nearest_rec(far, q, k, heap);
        }
    }

    /// Ids of all records within `radius` of `query` (inclusive).
    ///
    /// # Errors
    ///
    /// Dimension mismatch or negative radius.
    pub fn within_radius(&self, query: &Point, radius: f64) -> Result<Vec<Neighbor>> {
        SeaError::check_dims(self.dims, query.dims())?;
        if radius.is_nan() || radius < 0.0 {
            return Err(SeaError::invalid("radius must be non-negative"));
        }
        let r_sq = radius * radius;
        let mut out = Vec::new();
        let mut stack = Vec::new();
        if let Some(root) = self.root {
            stack.push(root);
        }
        let q = query.coords();
        while let Some(idx) = stack.pop() {
            let n = &self.nodes[idx];
            let p = &self.coords[n.point];
            let dist_sq: f64 = p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist_sq <= r_sq {
                out.push(Neighbor {
                    id: self.ids[n.point],
                    distance: dist_sq.sqrt(),
                });
            }
            let sd = n.split_dim;
            let diff = q[sd] - p[sd];
            if let Some(l) = n.left {
                if diff <= 0.0 || diff * diff <= r_sq {
                    stack.push(l);
                }
            }
            if let Some(r) = n.right {
                if diff >= 0.0 || diff * diff <= r_sq {
                    stack.push(r);
                }
            }
        }
        out.sort_by(|a, b| a.distance.partial_cmp(&b.distance).expect("finite"));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize) -> Vec<Record> {
        // n x n integer lattice.
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push(Record::new((i * n + j) as u64, vec![i as f64, j as f64]));
            }
        }
        out
    }

    fn brute_knn(records: &[Record], q: &Point, k: usize) -> Vec<RecordId> {
        let mut d: Vec<(f64, RecordId)> = records
            .iter()
            .map(|r| (q.distance_sq(&r.to_point()).unwrap(), r.id))
            .collect();
        d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        d.into_iter().take(k).map(|(_, id)| id).collect()
    }

    #[test]
    fn build_rejects_empty_and_mixed() {
        assert!(KdTree::build(&[]).is_err());
        let mixed = vec![Record::new(0, vec![1.0]), Record::new(1, vec![1.0, 2.0])];
        assert!(KdTree::build(&mixed).is_err());
    }

    #[test]
    fn range_query_matches_filter() {
        let records = lattice(20);
        let tree = KdTree::build(&records).unwrap();
        let rect = Rect::new(vec![3.0, 5.0], vec![7.0, 9.0]).unwrap();
        let (mut got, visited) = tree.range(&rect).unwrap();
        got.sort_unstable();
        let mut want: Vec<RecordId> = records
            .iter()
            .filter(|r| rect.contains(&r.to_point()))
            .map(|r| r.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(visited < records.len(), "pruning happened: {visited}");
    }

    #[test]
    fn knn_matches_brute_force() {
        let records = lattice(15);
        let tree = KdTree::build(&records).unwrap();
        for q in [
            Point::new(vec![7.2, 7.9]),
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![14.0, 0.5]),
            Point::new(vec![-3.0, 20.0]),
        ] {
            for k in [1, 5, 17] {
                let got: Vec<RecordId> =
                    tree.nearest(&q, k).unwrap().iter().map(|n| n.id).collect();
                let want = brute_knn(&records, &q, k);
                // Distances must agree even if ties order differently.
                let gd: Vec<f64> = tree
                    .nearest(&q, k)
                    .unwrap()
                    .iter()
                    .map(|n| n.distance)
                    .collect();
                let wd: Vec<f64> = want
                    .iter()
                    .map(|id| q.distance(&records[*id as usize].to_point()).unwrap())
                    .collect();
                for (a, b) in gd.iter().zip(&wd) {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "k={k} q={q:?} got {got:?} want {want:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_returns_sorted_distances() {
        let records = lattice(10);
        let tree = KdTree::build(&records).unwrap();
        let hits = tree.nearest(&Point::new(vec![4.3, 4.7]), 10).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn knn_with_k_larger_than_tree() {
        let records = lattice(3);
        let tree = KdTree::build(&records).unwrap();
        let hits = tree.nearest(&Point::new(vec![1.0, 1.0]), 100).unwrap();
        assert_eq!(hits.len(), 9);
        assert!(tree.nearest(&Point::new(vec![0.0, 0.0]), 0).is_err());
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let records = lattice(12);
        let tree = KdTree::build(&records).unwrap();
        let q = Point::new(vec![5.5, 5.5]);
        let hits = tree.within_radius(&q, 2.0).unwrap();
        let want = records
            .iter()
            .filter(|r| q.distance(&r.to_point()).unwrap() <= 2.0)
            .count();
        assert_eq!(hits.len(), want);
        assert!(hits.windows(2).all(|w| w[0].distance <= w[1].distance));
        assert!(tree.within_radius(&q, -1.0).is_err());
    }

    #[test]
    fn single_record_tree() {
        let tree = KdTree::build(&[Record::new(42, vec![1.0, 2.0])]).unwrap();
        let hits = tree.nearest(&Point::new(vec![0.0, 0.0]), 5).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn duplicate_points_are_all_found() {
        let records = vec![
            Record::new(0, vec![1.0, 1.0]),
            Record::new(1, vec![1.0, 1.0]),
            Record::new(2, vec![1.0, 1.0]),
        ];
        let tree = KdTree::build(&records).unwrap();
        let hits = tree.nearest(&Point::new(vec![1.0, 1.0]), 3).unwrap();
        let mut ids: Vec<_> = hits.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
