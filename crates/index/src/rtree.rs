//! An STR (Sort-Tile-Recursive) bulk-loaded R-tree over rectangles.
//!
//! SEA uses the R-tree to route queries to storage *blocks* and *index
//! entries* whose bounding rectangles overlap the selection — the routing
//! half of surgical access (RT2). Entries are `(Rect, payload)` pairs; the
//! payload is typically a `(node, block)` address.

use serde::{Deserialize, Serialize};

use sea_common::{Rect, Result, SeaError};

/// Maximum number of children per R-tree node.
const NODE_CAPACITY: usize = 16;

#[derive(Debug, Clone, Serialize, Deserialize)]
enum NodeKind<P> {
    Leaf(Vec<(Rect, P)>),
    Inner(Vec<(Rect, usize)>),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RNode<P> {
    kind: NodeKind<P>,
}

/// A static R-tree built once over `(Rect, payload)` entries.
///
/// # Examples
///
/// ```
/// use sea_common::Rect;
/// use sea_index::RTree;
///
/// let entries: Vec<(Rect, usize)> = (0..100)
///     .map(|i| {
///         let lo = i as f64;
///         (Rect::new(vec![lo, lo], vec![lo + 1.0, lo + 1.0]).unwrap(), i)
///     })
///     .collect();
/// let tree = RTree::build(entries).unwrap();
/// let q = Rect::new(vec![10.5, 10.5], vec![12.5, 12.5]).unwrap();
/// let hits = tree.search(&q).unwrap();
/// assert_eq!(hits.len(), 3); // entries 10, 11, 12
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RTree<P> {
    dims: usize,
    nodes: Vec<RNode<P>>,
    root: usize,
    len: usize,
}

impl<P: Clone> RTree<P> {
    /// Bulk-loads a tree with the STR algorithm.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] on no entries, dimension mismatch when entry
    /// rectangles disagree.
    pub fn build(entries: Vec<(Rect, P)>) -> Result<Self> {
        let Some((first, _)) = entries.first() else {
            return Err(SeaError::Empty("R-tree needs at least one entry".into()));
        };
        let dims = first.dims();
        for (r, _) in &entries {
            SeaError::check_dims(dims, r.dims())?;
        }
        let mut tree = RTree {
            dims,
            nodes: Vec::new(),
            root: 0,
            len: entries.len(),
        };

        // Sort-tile-recursive packing of leaves.
        let mut sorted = entries;
        str_sort(&mut sorted, dims, 0);
        let mut level: Vec<(Rect, usize)> = sorted
            .chunks(NODE_CAPACITY)
            .map(|chunk| {
                let mbr = mbr_of(chunk.iter().map(|(r, _)| r));
                let idx = tree.nodes.len();
                tree.nodes.push(RNode {
                    kind: NodeKind::Leaf(chunk.to_vec()),
                });
                (mbr, idx)
            })
            .collect();

        // Pack upper levels until a single root remains.
        while level.len() > 1 {
            str_sort(&mut level, dims, 0);
            level = level
                .chunks(NODE_CAPACITY)
                .map(|chunk| {
                    let mbr = mbr_of(chunk.iter().map(|(r, _)| r));
                    let idx = tree.nodes.len();
                    tree.nodes.push(RNode {
                        kind: NodeKind::Inner(chunk.to_vec()),
                    });
                    (mbr, idx)
                })
                .collect();
        }
        tree.root = level[0].1;
        Ok(tree)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// All payloads whose rectangle intersects `query`, plus the rectangle
    /// itself. Also reports the number of tree nodes visited.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn search(&self, query: &Rect) -> Result<Vec<(Rect, P)>> {
        Ok(self.search_counted(query)?.0)
    }

    /// Like [`RTree::search`] but also returns the number of tree nodes
    /// visited (a work measure for the optimizer's cost models).
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn search_counted(&self, query: &Rect) -> Result<(Vec<(Rect, P)>, usize)> {
        SeaError::check_dims(self.dims, query.dims())?;
        let mut out = Vec::new();
        let mut visited = 0usize;
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            visited += 1;
            match &self.nodes[idx].kind {
                NodeKind::Leaf(entries) => {
                    for (r, p) in entries {
                        if r.intersects(query) {
                            out.push((r.clone(), p.clone()));
                        }
                    }
                }
                NodeKind::Inner(children) => {
                    for (mbr, child) in children {
                        if mbr.intersects(query) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        Ok((out, visited))
    }
}

fn mbr_of<'a>(rects: impl Iterator<Item = &'a Rect>) -> Rect {
    let mut acc: Option<Rect> = None;
    for r in rects {
        acc = Some(match acc {
            None => r.clone(),
            Some(a) => a.union(r).expect("uniform dims checked at build"),
        });
    }
    acc.expect("chunks are non-empty")
}

/// Recursively sort-and-tile entries for STR packing: sort by centre in
/// dimension `dim`, slice into tiles, recurse on the next dimension.
fn str_sort<T>(entries: &mut [(Rect, T)], dims: usize, dim: usize) {
    if dim >= dims || entries.len() <= NODE_CAPACITY {
        return;
    }
    entries.sort_by(|(a, _), (b, _)| {
        let ca = (a.lo()[dim] + a.hi()[dim]) / 2.0;
        let cb = (b.lo()[dim] + b.hi()[dim]) / 2.0;
        ca.partial_cmp(&cb).expect("finite bounds")
    });
    // Number of vertical slabs ≈ n / capacity^(remaining dims)… use the
    // classic sqrt heuristic for 2 levels of tiling.
    let n_leaves = entries.len().div_ceil(NODE_CAPACITY);
    let slabs = (n_leaves as f64).sqrt().ceil() as usize;
    let slab_size = entries.len().div_ceil(slabs.max(1));
    for chunk in entries.chunks_mut(slab_size.max(1)) {
        str_sort(chunk, dims, dim + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_boxes(n: usize) -> Vec<(Rect, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 50) as f64;
                let y = (i / 50) as f64;
                (Rect::new(vec![x, y], vec![x + 1.0, y + 1.0]).unwrap(), i)
            })
            .collect()
    }

    #[test]
    fn build_rejects_empty() {
        assert!(RTree::<usize>::build(vec![]).is_err());
    }

    #[test]
    fn search_matches_linear_scan() {
        let entries = unit_boxes(500);
        let tree = RTree::build(entries.clone()).unwrap();
        assert_eq!(tree.len(), 500);
        for q in [
            Rect::new(vec![3.5, 2.5], vec![6.5, 4.5]).unwrap(),
            Rect::new(vec![0.0, 0.0], vec![0.1, 0.1]).unwrap(),
            Rect::new(vec![200.0, 200.0], vec![201.0, 201.0]).unwrap(),
        ] {
            let mut got: Vec<usize> = tree
                .search(&q)
                .unwrap()
                .into_iter()
                .map(|(_, p)| p)
                .collect();
            got.sort_unstable();
            let mut want: Vec<usize> = entries
                .iter()
                .filter(|(r, _)| r.intersects(&q))
                .map(|(_, p)| *p)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn search_prunes_subtrees() {
        let entries = unit_boxes(2500);
        let tree = RTree::build(entries).unwrap();
        let q = Rect::new(vec![10.0, 10.0], vec![11.0, 11.0]).unwrap();
        let (_, visited) = tree.search_counted(&q).unwrap();
        assert!(
            visited < tree.nodes.len() / 2,
            "visited {visited} of {} nodes",
            tree.nodes.len()
        );
    }

    #[test]
    fn single_entry_tree() {
        let r = Rect::new(vec![0.0], vec![1.0]).unwrap();
        let tree = RTree::build(vec![(r.clone(), "x")]).unwrap();
        assert_eq!(tree.search(&r).unwrap().len(), 1);
        let miss = Rect::new(vec![5.0], vec![6.0]).unwrap();
        assert!(tree.search(&miss).unwrap().is_empty());
    }

    #[test]
    fn dimension_mismatch_on_search() {
        let entries = unit_boxes(10);
        let tree = RTree::build(entries).unwrap();
        let q = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert!(tree.search(&q).is_err());
    }

    #[test]
    fn overlapping_entries_all_reported() {
        let base = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        let entries: Vec<(Rect, usize)> = (0..40).map(|i| (base.clone(), i)).collect();
        let tree = RTree::build(entries).unwrap();
        let q = Rect::new(vec![5.0, 5.0], vec![5.1, 5.1]).unwrap();
        assert_eq!(tree.search(&q).unwrap().len(), 40);
    }
}
