//! Uniform multi-dimensional grid index with per-cell sufficient
//! statistics.
//!
//! The grid serves two roles in SEA:
//!
//! 1. **Pruning**: a selection region maps to the small set of cells it
//!    overlaps, so an engine only inspects the records registered there.
//! 2. **Statistics**: each cell keeps count and per-dimension sums, so
//!    approximate counts/means over a region are computable from cell
//!    statistics alone — a tiny "statistical structure" of the kind RT2
//!    calls for.

use serde::{Deserialize, Serialize};

use sea_common::{Record, RecordId, Rect, Region, Result, SeaError};

/// Per-cell sufficient statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CellStats {
    /// Number of records in the cell.
    pub count: u64,
    /// Per-dimension sum of record values.
    pub sums: Vec<f64>,
    /// Per-dimension sum of squared record values.
    pub sum_squares: Vec<f64>,
}

/// A uniform grid over a fixed domain rectangle.
///
/// # Examples
///
/// ```
/// use sea_common::{Record, Rect};
/// use sea_index::GridIndex;
///
/// let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
/// let mut grid = GridIndex::new(domain, 5).unwrap();
/// grid.insert(&Record::new(1, vec![2.5, 7.5])).unwrap();
/// let q = Rect::new(vec![2.0, 7.0], vec![3.0, 8.0]).unwrap();
/// assert_eq!(grid.candidates(&q).unwrap(), vec![1]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridIndex {
    domain: Rect,
    cells_per_dim: usize,
    /// Flat row-major cell array, each holding the ids of its records.
    ids: Vec<Vec<RecordId>>,
    stats: Vec<CellStats>,
}

impl GridIndex {
    /// Creates an empty grid over `domain` with `cells_per_dim` cells per
    /// dimension (`cells_per_dim^dims` cells total).
    ///
    /// # Errors
    ///
    /// Returns an error when `cells_per_dim` is 0, the domain is
    /// zero-dimensional, or the total cell count would exceed 2^24 (a
    /// safety valve against accidental exponential blow-up).
    pub fn new(domain: Rect, cells_per_dim: usize) -> Result<Self> {
        if cells_per_dim == 0 {
            return Err(SeaError::invalid("cells_per_dim must be positive"));
        }
        if domain.dims() == 0 {
            return Err(SeaError::invalid("grid domain must have dimensions"));
        }
        let total = (cells_per_dim as u64).checked_pow(domain.dims() as u32);
        let total = total
            .filter(|t| *t <= 1 << 24)
            .ok_or_else(|| SeaError::invalid("grid too large: cells_per_dim^dims exceeds 2^24"))?
            as usize;
        Ok(GridIndex {
            ids: vec![Vec::new(); total],
            stats: vec![
                CellStats {
                    count: 0,
                    sums: vec![0.0; domain.dims()],
                    sum_squares: vec![0.0; domain.dims()],
                };
                total
            ],
            domain,
            cells_per_dim,
        })
    }

    /// Builds a grid from records.
    ///
    /// # Errors
    ///
    /// As [`GridIndex::new`] and [`GridIndex::insert`].
    pub fn build(domain: Rect, cells_per_dim: usize, records: &[Record]) -> Result<Self> {
        let mut g = GridIndex::new(domain, cells_per_dim)?;
        for r in records {
            g.insert(r)?;
        }
        Ok(g)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.domain.dims()
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.ids.len()
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.stats.iter().map(|s| s.count as usize).sum()
    }

    /// Whether the index holds no records.
    pub fn is_empty(&self) -> bool {
        self.stats.iter().all(|s| s.count == 0)
    }

    /// Approximate in-memory size in bytes: the storage-footprint metric of
    /// experiment E8.
    pub fn memory_bytes(&self) -> u64 {
        let ids: u64 = self.ids.iter().map(|v| 8 * v.len() as u64 + 24).sum();
        let stats: u64 = self
            .stats
            .iter()
            .map(|s| 8 + 16 * s.sums.len() as u64 + 48)
            .sum();
        ids + stats
    }

    fn cell_coord(&self, d: usize, v: f64) -> usize {
        let lo = self.domain.lo()[d];
        let hi = self.domain.hi()[d];
        if hi <= lo {
            return 0;
        }
        let frac = (v - lo) / (hi - lo);
        ((frac * self.cells_per_dim as f64) as isize).clamp(0, self.cells_per_dim as isize - 1)
            as usize
    }

    fn cell_index(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .fold(0usize, |acc, &c| acc * self.cells_per_dim + c)
    }

    /// The flat cell index a point falls into (points outside the domain
    /// clamp to the boundary cells).
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn cell_of(&self, values: &[f64]) -> Result<usize> {
        SeaError::check_dims(self.dims(), values.len())?;
        let coords: Vec<usize> = values
            .iter()
            .enumerate()
            .map(|(d, &v)| self.cell_coord(d, v))
            .collect();
        Ok(self.cell_index(&coords))
    }

    /// Inserts a record.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn insert(&mut self, record: &Record) -> Result<()> {
        let cell = self.cell_of(&record.values)?;
        self.ids[cell].push(record.id);
        let s = &mut self.stats[cell];
        s.count += 1;
        for d in 0..record.dims() {
            s.sums[d] += record.value(d);
            s.sum_squares[d] += record.value(d) * record.value(d);
        }
        Ok(())
    }

    /// Removes a record (by id and values). Returns whether it was present.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn remove(&mut self, record: &Record) -> Result<bool> {
        let cell = self.cell_of(&record.values)?;
        let Some(pos) = self.ids[cell].iter().position(|&id| id == record.id) else {
            return Ok(false);
        };
        self.ids[cell].swap_remove(pos);
        let s = &mut self.stats[cell];
        s.count -= 1;
        for d in 0..record.dims() {
            s.sums[d] -= record.value(d);
            s.sum_squares[d] -= record.value(d) * record.value(d);
        }
        Ok(true)
    }

    /// Flat indices of all cells overlapping `region`'s bounding rectangle.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn cells_overlapping(&self, region: &Rect) -> Result<Vec<usize>> {
        SeaError::check_dims(self.dims(), region.dims())?;
        let dims = self.dims();
        let lo_cell: Vec<usize> = (0..dims)
            .map(|d| self.cell_coord(d, region.lo()[d]))
            .collect();
        let hi_cell: Vec<usize> = (0..dims)
            .map(|d| self.cell_coord(d, region.hi()[d]))
            .collect();
        let mut out = Vec::new();
        let mut cursor = lo_cell.clone();
        loop {
            out.push(self.cell_index(&cursor));
            // Odometer increment across the hyper-box of cells.
            let mut d = dims;
            loop {
                if d == 0 {
                    return Ok(out);
                }
                d -= 1;
                if cursor[d] < hi_cell[d] {
                    cursor[d] += 1;
                    for (i, c) in cursor.iter_mut().enumerate().skip(d + 1) {
                        *c = lo_cell[i];
                    }
                    break;
                }
            }
        }
    }

    /// Candidate record ids for a selection region: every id registered in
    /// an overlapping cell. Callers must still verify each candidate
    /// against the exact region.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn candidates(&self, region: &Rect) -> Result<Vec<RecordId>> {
        let mut out = Vec::new();
        for cell in self.cells_overlapping(region)? {
            out.extend_from_slice(&self.ids[cell]);
        }
        Ok(out)
    }

    /// Estimates the record count inside `region` from cell statistics
    /// alone: cells fully inside contribute their full count, partially
    /// overlapped cells contribute proportionally to the overlapped volume
    /// fraction (uniformity assumption within a cell).
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn estimate_count(&self, region: &Region) -> Result<f64> {
        let bbox = region.bounding_rect();
        SeaError::check_dims(self.dims(), bbox.dims())?;
        let mut total = 0.0;
        for cell in self.cells_overlapping(&bbox)? {
            let cell_rect = self.cell_rect(cell);
            let frac = cell_rect.overlap_fraction(&bbox);
            total += self.stats[cell].count as f64 * frac;
        }
        Ok(total)
    }

    /// The rectangle covered by flat cell index `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.num_cells()`.
    pub fn cell_rect(&self, cell: usize) -> Rect {
        assert!(cell < self.num_cells(), "cell index out of range");
        let dims = self.dims();
        let mut coords = vec![0usize; dims];
        let mut rest = cell;
        for d in (0..dims).rev() {
            coords[d] = rest % self.cells_per_dim;
            rest /= self.cells_per_dim;
        }
        let lo: Vec<f64> = (0..dims)
            .map(|d| {
                let w = (self.domain.hi()[d] - self.domain.lo()[d]) / self.cells_per_dim as f64;
                self.domain.lo()[d] + w * coords[d] as f64
            })
            .collect();
        let hi: Vec<f64> = (0..dims)
            .map(|d| {
                let w = (self.domain.hi()[d] - self.domain.lo()[d]) / self.cells_per_dim as f64;
                self.domain.lo()[d] + w * (coords[d] + 1) as f64
            })
            .collect();
        Rect::new(lo, hi).expect("cell bounds are ordered")
    }

    /// Statistics of flat cell `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= self.num_cells()`.
    pub fn cell_stats(&self, cell: usize) -> &CellStats {
        &self.stats[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Ball, Point};

    fn grid_10x10() -> GridIndex {
        let domain = Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap();
        GridIndex::new(domain, 10).unwrap()
    }

    fn fill_unit_lattice(grid: &mut GridIndex) {
        // One record at the centre of every cell.
        let mut id = 0;
        for i in 0..10 {
            for j in 0..10 {
                grid.insert(&Record::new(id, vec![i as f64 + 0.5, j as f64 + 0.5]))
                    .unwrap();
                id += 1;
            }
        }
    }

    #[test]
    fn construction_limits() {
        let domain = Rect::new(vec![0.0; 2], vec![1.0; 2]).unwrap();
        assert!(GridIndex::new(domain.clone(), 0).is_err());
        assert!(GridIndex::new(domain, 4097).is_err(), "4097^2 > 2^24");
        let big_dims = Rect::new(vec![0.0; 9], vec![1.0; 9]).unwrap();
        assert!(GridIndex::new(big_dims, 8).is_err(), "8^9 = 2^27 > 2^24");
        let ok_dims = Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        assert!(GridIndex::new(ok_dims, 64).is_ok(), "64^3 = 2^18");
    }

    #[test]
    fn insert_and_candidates() {
        let mut g = grid_10x10();
        fill_unit_lattice(&mut g);
        assert_eq!(g.len(), 100);
        let q = Rect::new(vec![2.0, 2.0], vec![4.0, 4.0]).unwrap();
        let mut cand = g.candidates(&q).unwrap();
        cand.sort_unstable();
        // Cells [2..=4] x [2..=4] → 9 cells → 9 candidates.
        assert_eq!(cand.len(), 9);
    }

    #[test]
    fn remove_updates_stats() {
        let mut g = grid_10x10();
        let r = Record::new(1, vec![5.5, 5.5]);
        g.insert(&r).unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.remove(&r).unwrap());
        assert!(!g.remove(&r).unwrap(), "second remove is a no-op");
        assert!(g.is_empty());
        let cell = g.cell_of(&[5.5, 5.5]).unwrap();
        assert_eq!(g.cell_stats(cell).count, 0);
        assert_eq!(g.cell_stats(cell).sums, vec![0.0, 0.0]);
    }

    #[test]
    fn out_of_domain_points_clamp() {
        let mut g = grid_10x10();
        g.insert(&Record::new(1, vec![-5.0, 20.0])).unwrap();
        let corner = g.cell_of(&[-5.0, 20.0]).unwrap();
        assert_eq!(corner, g.cell_of(&[0.0, 9.99]).unwrap());
    }

    #[test]
    fn estimate_count_exact_on_aligned_regions() {
        let mut g = grid_10x10();
        fill_unit_lattice(&mut g);
        // Perfectly aligned with cell boundaries: 3x3 cells → 9 records.
        let q = Region::Range(Rect::new(vec![2.0, 2.0], vec![5.0, 5.0]).unwrap());
        let est = g.estimate_count(&q).unwrap();
        assert!((est - 9.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn estimate_count_interpolates_partial_cells() {
        let mut g = grid_10x10();
        fill_unit_lattice(&mut g);
        // Half of one cell.
        let q = Region::Range(Rect::new(vec![2.0, 2.0], vec![3.0, 2.5]).unwrap());
        let est = g.estimate_count(&q).unwrap();
        assert!((est - 0.5).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn estimate_count_radius_uses_bbox() {
        let mut g = grid_10x10();
        fill_unit_lattice(&mut g);
        let q = Region::Radius(Ball::new(Point::new(vec![5.0, 5.0]), 1.0).unwrap());
        let est = g.estimate_count(&q).unwrap();
        assert!(est > 0.0 && est <= 16.0);
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = grid_10x10();
        for cell in [0, 5, 55, 99] {
            let rect = g.cell_rect(cell);
            let center = rect.center();
            assert_eq!(g.cell_of(center.coords()).unwrap(), cell);
        }
    }

    #[test]
    fn memory_grows_with_records() {
        let mut g = grid_10x10();
        let before = g.memory_bytes();
        fill_unit_lattice(&mut g);
        assert!(g.memory_bytes() > before);
    }

    #[test]
    fn three_dimensional_grid() {
        let domain = Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        let mut g = GridIndex::new(domain, 4).unwrap();
        assert_eq!(g.num_cells(), 64);
        g.insert(&Record::new(0, vec![0.9, 0.1, 0.5])).unwrap();
        let q = Rect::new(vec![0.8, 0.0, 0.4], vec![1.0, 0.2, 0.6]).unwrap();
        assert_eq!(g.candidates(&q).unwrap(), vec![0]);
    }
}
