//! Count–min sketch: sublinear frequency estimation (\[16\] in the paper).
//!
//! The sketch answers "how often did item x appear?" with one-sided error
//! (`estimate ≥ true count`, over-estimating by at most `ε·N` with
//! probability `1 − δ`), using `O(width × depth)` counters regardless of
//! stream length — a canonical data synopsis for AQP.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// A count–min sketch over `u64` item identifiers.
///
/// # Examples
///
/// ```
/// use sea_index::CountMinSketch;
///
/// let mut cms = CountMinSketch::with_error(0.01, 0.01).unwrap();
/// for _ in 0..100 {
///     cms.add(7);
/// }
/// cms.add(8);
/// assert!(cms.estimate(7) >= 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    counters: Vec<u64>,
    seeds: Vec<u64>,
    total: u64,
}

impl CountMinSketch {
    /// Creates a sketch with explicit geometry.
    ///
    /// # Errors
    ///
    /// Zero width or depth.
    pub fn new(width: usize, depth: usize) -> Result<Self> {
        if width == 0 || depth == 0 {
            return Err(SeaError::invalid("sketch width and depth must be positive"));
        }
        // Fixed, arbitrary-but-distinct seeds per row (splitmix64 stream).
        let mut seeds = Vec::with_capacity(depth);
        let mut s = 0x5EA5_EED5_EED5_EED5u64;
        for _ in 0..depth {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            seeds.push(z ^ (z >> 31));
        }
        Ok(CountMinSketch {
            counters: vec![0; width * depth],
            width,
            depth,
            seeds,
            total: 0,
        })
    }

    /// Creates a sketch sized for additive error `ε·N` with failure
    /// probability `δ`: `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
    ///
    /// # Errors
    ///
    /// Parameters outside `(0, 1)`.
    pub fn with_error(epsilon: f64, delta: f64) -> Result<Self> {
        let in_unit = |v: f64| v.is_finite() && v > 0.0 && v < 1.0;
        if !in_unit(epsilon) || !in_unit(delta) {
            return Err(SeaError::invalid("epsilon and delta must lie in (0, 1)"));
        }
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        CountMinSketch::new(width, depth)
    }

    fn bucket(&self, row: usize, item: u64) -> usize {
        let mut z = item ^ self.seeds[row];
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        z ^= z >> 33;
        row * self.width + (z % self.width as u64) as usize
    }

    /// Records one occurrence of `item`.
    pub fn add(&mut self, item: u64) {
        self.add_n(item, 1);
    }

    /// Records `n` occurrences of `item`.
    pub fn add_n(&mut self, item: u64, n: u64) {
        for row in 0..self.depth {
            let b = self.bucket(row, item);
            self.counters[b] = self.counters[b].saturating_add(n);
        }
        self.total = self.total.saturating_add(n);
    }

    /// Point estimate of `item`'s frequency (never underestimates).
    pub fn estimate(&self, item: u64) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.bucket(row, item)])
            .min()
            .unwrap_or(0)
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Memory footprint in bytes (the E8 storage metric).
    pub fn memory_bytes(&self) -> u64 {
        8 * (self.counters.len() as u64 + self.seeds.len() as u64) + 24
    }

    /// Merges another sketch of identical geometry into this one.
    ///
    /// # Errors
    ///
    /// Geometry mismatch.
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<()> {
        if self.width != other.width || self.depth != other.depth {
            return Err(SeaError::invalid(
                "cannot merge sketches of different geometry",
            ));
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a = a.saturating_add(*b);
        }
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_underestimates() {
        let mut cms = CountMinSketch::new(128, 4).unwrap();
        for item in 0..100u64 {
            cms.add_n(item, item + 1);
        }
        for item in 0..100u64 {
            assert!(cms.estimate(item) > item, "item {item}");
        }
    }

    #[test]
    fn heavy_hitter_accuracy() {
        let mut cms = CountMinSketch::with_error(0.005, 0.01).unwrap();
        cms.add_n(42, 10_000);
        for item in 1000..2000u64 {
            cms.add(item);
        }
        let est = cms.estimate(42);
        // ε·N = 0.005 · 11000 = 55 max overestimate (whp).
        assert!((10_000..=10_100).contains(&est), "got {est}");
    }

    #[test]
    fn unseen_items_estimate_low() {
        let mut cms = CountMinSketch::with_error(0.01, 0.01).unwrap();
        for item in 0..100u64 {
            cms.add(item);
        }
        let est = cms.estimate(999_999);
        assert!(est <= 2, "got {est}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = CountMinSketch::new(64, 3).unwrap();
        let mut b = CountMinSketch::new(64, 3).unwrap();
        a.add_n(1, 10);
        b.add_n(1, 5);
        b.add_n(2, 7);
        a.merge(&b).unwrap();
        assert!(a.estimate(1) >= 15);
        assert!(a.estimate(2) >= 7);
        assert_eq!(a.total(), 22);

        let c = CountMinSketch::new(32, 3).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn parameter_validation() {
        assert!(CountMinSketch::new(0, 4).is_err());
        assert!(CountMinSketch::new(4, 0).is_err());
        assert!(CountMinSketch::with_error(0.0, 0.5).is_err());
        assert!(CountMinSketch::with_error(0.5, 1.0).is_err());
    }

    #[test]
    fn memory_is_constant_in_stream_length() {
        let mut cms = CountMinSketch::new(256, 4).unwrap();
        let before = cms.memory_bytes();
        for i in 0..100_000u64 {
            cms.add(i);
        }
        assert_eq!(cms.memory_bytes(), before);
    }
}
