//! Adaptive indexing over raw data (RT2-3: "developing adaptive indexing
//! and caching techniques that operate on raw data and facilitate
//! efficient and scalable raw-data analyses").
//!
//! A [`CrackerIndex`] implements *database cracking*: the column starts as
//! a raw, unsorted array; each range query partitions ("cracks") the
//! array around its bounds as a side effect of answering, so the data
//! incrementally self-organizes exactly where queries land. Early queries
//! pay near-scan costs; repeated interest in a region drives its query
//! cost toward binary search — with zero up-front indexing and zero
//! effort on never-queried regions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use sea_common::{RecordId, Result, SeaError};

/// A crackable single-attribute column of `(value, record id)` pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrackerIndex {
    /// The column; progressively partitioned in place.
    data: Vec<(f64, RecordId)>,
    /// Crack points: value → index such that everything below the index
    /// is `< value` and everything at/after is `>= value`.
    cracks: BTreeMap<OrderedF64, usize>,
}

/// A totally-ordered wrapper for finite f64 crack keys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite crack keys")
    }
}

impl CrackerIndex {
    /// Wraps a raw column. No sorting, no preprocessing — the whole point.
    ///
    /// # Errors
    ///
    /// Non-finite values.
    pub fn new(column: Vec<(f64, RecordId)>) -> Result<Self> {
        if column.iter().any(|(v, _)| !v.is_finite()) {
            return Err(SeaError::invalid("cracker column values must be finite"));
        }
        Ok(CrackerIndex {
            data: column,
            cracks: BTreeMap::new(),
        })
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of crack points accumulated so far.
    pub fn num_cracks(&self) -> usize {
        self.cracks.len()
    }

    /// The ids of all records with value in `[lo, hi)`, cracking the
    /// column around both bounds as a side effect. Also returns how many
    /// elements were *touched* (moved or inspected beyond the final
    /// contiguous answer) — the adaptive-indexing work metric, which
    /// shrinks toward zero as the region gets queried repeatedly.
    ///
    /// # Errors
    ///
    /// Non-finite or inverted bounds.
    pub fn query(&mut self, lo: f64, hi: f64) -> Result<(Vec<RecordId>, usize)> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(SeaError::invalid("crack bounds must be finite and ordered"));
        }
        let (lo_idx, touched_lo) = self.crack_at(lo);
        let (hi_idx, touched_hi) = self.crack_at(hi);
        let ids = self.data[lo_idx..hi_idx]
            .iter()
            .map(|(_, id)| *id)
            .collect();
        Ok((ids, touched_lo + touched_hi))
    }

    /// Ensures a crack exists at `value`, returning its index and the
    /// number of elements the cracking pass touched (0 on a crack hit).
    fn crack_at(&mut self, value: f64) -> (usize, usize) {
        let key = OrderedF64(value);
        if let Some(&idx) = self.cracks.get(&key) {
            return (idx, 0);
        }
        // The tightest enclosing piece: [start, end).
        let start = self
            .cracks
            .range(..key)
            .next_back()
            .map(|(_, &i)| i)
            .unwrap_or(0);
        let end = self
            .cracks
            .range((std::ops::Bound::Excluded(key), std::ops::Bound::Unbounded))
            .next()
            .map(|(_, &i)| i)
            .unwrap_or(self.data.len());
        // Hoare-style partition of the piece around `value`.
        let piece = &mut self.data[start..end];
        let mut boundary = 0usize;
        for i in 0..piece.len() {
            if piece[i].0 < value {
                piece.swap(i, boundary);
                boundary += 1;
            }
        }
        let idx = start + boundary;
        self.cracks.insert(key, idx);
        (idx, end - start)
    }

    /// Exact count in `[lo, hi)` (cracks as a side effect).
    ///
    /// # Errors
    ///
    /// As [`CrackerIndex::query`].
    pub fn count(&mut self, lo: f64, hi: f64) -> Result<(usize, usize)> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(SeaError::invalid("crack bounds must be finite and ordered"));
        }
        let (lo_idx, t1) = self.crack_at(lo);
        let (hi_idx, t2) = self.crack_at(hi);
        Ok((hi_idx - lo_idx, t1 + t2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(n: u64) -> Vec<(f64, RecordId)> {
        // Deterministic shuffle of 0..n.
        (0..n)
            .map(|i| ((i.wrapping_mul(2654435761) % n) as f64, i))
            .collect()
    }

    fn brute_count(col: &[(f64, RecordId)], lo: f64, hi: f64) -> usize {
        col.iter().filter(|(v, _)| *v >= lo && *v < hi).count()
    }

    #[test]
    fn query_returns_exact_range_contents() {
        let col = column(1000);
        let mut idx = CrackerIndex::new(col.clone()).unwrap();
        for (lo, hi) in [(100.0, 200.0), (0.0, 50.0), (950.0, 1000.0), (333.3, 666.6)] {
            let (ids, _) = idx.query(lo, hi).unwrap();
            assert_eq!(ids.len(), brute_count(&col, lo, hi), "[{lo}, {hi})");
            // Every returned id's value really is in range.
            for id in &ids {
                let v = col.iter().find(|(_, i)| i == id).unwrap().0;
                assert!(v >= lo && v < hi);
            }
        }
    }

    #[test]
    fn repeated_queries_touch_less_and_less() {
        let mut idx = CrackerIndex::new(column(10_000)).unwrap();
        let (_, first) = idx.count(4000.0, 6000.0).unwrap();
        assert!(first > 9_000, "cold query scans nearly everything: {first}");
        let (_, second) = idx.count(4000.0, 6000.0).unwrap();
        assert_eq!(second, 0, "crack hit is free");
        // A nearby query only cracks within the already-narrowed piece.
        let (_, third) = idx.count(4500.0, 5500.0).unwrap();
        assert!(third < first / 3, "adaptive narrowing: {third} vs {first}");
    }

    #[test]
    fn cracking_converges_under_a_workload() {
        let mut idx = CrackerIndex::new(column(20_000)).unwrap();
        let mut touches = Vec::new();
        for i in 0..30 {
            let lo = (i * 613) % 15_000;
            let (_, t) = idx.count(lo as f64, (lo + 2_000) as f64).unwrap();
            touches.push(t);
        }
        let early: usize = touches[..5].iter().sum();
        let late: usize = touches[25..].iter().sum();
        assert!(late * 3 < early, "early {early}, late {late}");
        assert!(idx.num_cracks() <= 60);
    }

    #[test]
    fn counts_agree_with_brute_force_everywhere() {
        let col = column(3_000);
        let mut idx = CrackerIndex::new(col.clone()).unwrap();
        for i in 0..50 {
            let lo = ((i * 997) % 2_500) as f64;
            let hi = lo + ((i * 131) % 500) as f64;
            let (count, _) = idx.count(lo, hi).unwrap();
            assert_eq!(count, brute_count(&col, lo, hi), "[{lo}, {hi})");
        }
    }

    #[test]
    fn validations() {
        assert!(CrackerIndex::new(vec![(f64::NAN, 0)]).is_err());
        let mut idx = CrackerIndex::new(column(10)).unwrap();
        assert!(idx.query(5.0, 1.0).is_err());
        assert!(idx.count(f64::INFINITY, 0.0).is_err());
        assert_eq!(idx.len(), 10);
        assert!(!idx.is_empty());
    }

    #[test]
    fn empty_and_degenerate_ranges() {
        let mut idx = CrackerIndex::new(column(100)).unwrap();
        let (ids, _) = idx.query(50.0, 50.0).unwrap();
        assert!(ids.is_empty(), "half-open empty range");
        let (all, _) = idx.query(-1.0, 1e9).unwrap();
        assert_eq!(all.len(), 100);
    }
}
