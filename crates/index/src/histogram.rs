//! One-dimensional histograms for selectivity estimation.
//!
//! The optimizer (RT3) estimates how many records a selection touches
//! before choosing an execution strategy; histograms are its cheapest
//! statistical structure. Both classic variants are provided: equi-width
//! (fixed bucket boundaries) and equi-depth (fixed bucket population,
//! better on skewed data).

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// An equi-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiWidthHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Builds a histogram with `buckets` buckets from values. Values
    /// outside `[lo, hi]` clamp into the boundary buckets.
    ///
    /// # Errors
    ///
    /// Invalid bounds or zero buckets.
    pub fn build(values: &[f64], lo: f64, hi: f64, buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(SeaError::invalid("bucket count must be positive"));
        }
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less)
            || !lo.is_finite()
            || !hi.is_finite()
        {
            return Err(SeaError::invalid("histogram bounds must satisfy lo < hi"));
        }
        let mut counts = vec![0u64; buckets];
        for &v in values {
            if v.is_nan() {
                continue;
            }
            let frac = (v - lo) / (hi - lo);
            let b = ((frac * buckets as f64) as isize).clamp(0, buckets as isize - 1) as usize;
            counts[b] += 1;
        }
        let total = counts.iter().sum();
        Ok(EquiWidthHistogram {
            lo,
            hi,
            counts,
            total,
        })
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Estimated number of values in `[a, b]`, with intra-bucket linear
    /// interpolation (uniformity assumption).
    pub fn estimate_count(&self, a: f64, b: f64) -> f64 {
        if b < a || self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut est = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let b_lo = self.lo + width * i as f64;
            let b_hi = b_lo + width;
            let olap_lo = a.max(b_lo);
            let olap_hi = b.min(b_hi);
            if olap_hi > olap_lo {
                est += c as f64 * (olap_hi - olap_lo) / width;
            }
        }
        // Clamped extremes: values below lo sit in bucket 0, etc. If the
        // query extends beyond the domain, include the boundary buckets'
        // full clamped mass.
        if a < self.lo && b >= self.lo {
            // already counted via bucket 0 overlap proportionally; the
            // clamped mass approximation accepts this.
        }
        est
    }

    /// Estimated selectivity (fraction of values) of `[a, b]`.
    pub fn estimate_selectivity(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.estimate_count(a, b) / self.total as f64).clamp(0.0, 1.0)
        }
    }
}

/// An equi-depth histogram: bucket boundaries chosen so each bucket holds
/// (approximately) the same number of values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquiDepthHistogram {
    /// Ascending bucket boundaries, `buckets + 1` entries.
    bounds: Vec<f64>,
    /// Records per bucket.
    depth: Vec<u64>,
    total: u64,
}

impl EquiDepthHistogram {
    /// Builds an equi-depth histogram with `buckets` buckets.
    ///
    /// # Errors
    ///
    /// Zero buckets or empty input.
    pub fn build(values: &[f64], buckets: usize) -> Result<Self> {
        if buckets == 0 {
            return Err(SeaError::invalid("bucket count must be positive"));
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Err(SeaError::Empty("equi-depth histogram of no values".into()));
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        let n = sorted.len();
        let buckets = buckets.min(n);
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut depth = Vec::with_capacity(buckets);
        bounds.push(sorted[0]);
        for i in 1..=buckets {
            let end = i * n / buckets;
            let start = (i - 1) * n / buckets;
            depth.push((end - start) as u64);
            bounds.push(if i == buckets {
                sorted[n - 1]
            } else {
                sorted[end]
            });
        }
        Ok(EquiDepthHistogram {
            bounds,
            depth,
            total: n as u64,
        })
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.depth.len()
    }

    /// Estimated number of values in `[a, b]` (intra-bucket uniformity).
    pub fn estimate_count(&self, a: f64, b: f64) -> f64 {
        if b < a {
            return 0.0;
        }
        let mut est = 0.0;
        for i in 0..self.depth.len() {
            let b_lo = self.bounds[i];
            let b_hi = self.bounds[i + 1];
            let olap_lo = a.max(b_lo);
            let olap_hi = b.min(b_hi);
            if b_hi > b_lo {
                if olap_hi > olap_lo {
                    est += self.depth[i] as f64 * (olap_hi - olap_lo) / (b_hi - b_lo);
                }
            } else if a <= b_lo && b_lo <= b {
                // Degenerate bucket (all-equal values).
                est += self.depth[i] as f64;
            }
        }
        est
    }

    /// Estimated selectivity of `[a, b]`.
    pub fn estimate_selectivity(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.estimate_count(a, b) / self.total as f64).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_uniform_data_is_accurate() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64 / 10.0).collect(); // 0..100
        let h = EquiWidthHistogram::build(&values, 0.0, 100.0, 20).unwrap();
        assert_eq!(h.total(), 1000);
        let est = h.estimate_count(25.0, 75.0);
        assert!((est - 500.0).abs() < 15.0, "got {est}");
        let sel = h.estimate_selectivity(0.0, 100.0);
        assert!((sel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equi_width_validates() {
        assert!(EquiWidthHistogram::build(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(EquiWidthHistogram::build(&[1.0], 1.0, 0.0, 4).is_err());
        assert!(
            EquiWidthHistogram::build(&[], 0.0, 1.0, 4).is_ok(),
            "empty data ok"
        );
    }

    #[test]
    fn equi_width_empty_range() {
        let h = EquiWidthHistogram::build(&[1.0, 2.0], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.estimate_count(5.0, 3.0), 0.0, "inverted range");
    }

    #[test]
    fn equi_width_nan_skipped() {
        let h = EquiWidthHistogram::build(&[1.0, f64::NAN, 2.0], 0.0, 10.0, 5).unwrap();
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn equi_depth_handles_skew_better() {
        // 90% of mass at ~0, 10% spread to 1000.
        let mut values: Vec<f64> = (0..900).map(|i| i as f64 / 1000.0).collect();
        values.extend((0..100).map(|i| 10.0 + i as f64 * 9.9));
        let ed = EquiDepthHistogram::build(&values, 10).unwrap();
        let ew = EquiWidthHistogram::build(&values, 0.0, 1000.0, 10).unwrap();
        // True count in [0, 0.9): 900.
        let true_count = 900.0;
        let ed_err = (ed.estimate_count(0.0, 0.9) - true_count).abs();
        let ew_err = (ew.estimate_count(0.0, 0.9) - true_count).abs();
        assert!(
            ed_err < ew_err,
            "equi-depth ({ed_err}) should beat equi-width ({ew_err}) on skew"
        );
    }

    #[test]
    fn equi_depth_buckets_are_balanced() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        let h = EquiDepthHistogram::build(&values, 8).unwrap();
        assert_eq!(h.buckets(), 8);
        assert_eq!(h.total(), 1000);
        // All buckets hold 125 ± 1.
        let full = h.estimate_count(f64::NEG_INFINITY, f64::INFINITY);
        assert!((full - 1000.0).abs() < 1.0, "got {full}");
    }

    #[test]
    fn equi_depth_all_equal_values() {
        let values = vec![5.0; 100];
        let h = EquiDepthHistogram::build(&values, 4).unwrap();
        let est = h.estimate_count(4.0, 6.0);
        assert!((est - 100.0).abs() < 1.0, "got {est}");
        assert_eq!(h.estimate_count(6.0, 7.0), 0.0);
    }

    #[test]
    fn equi_depth_rejects_empty() {
        assert!(EquiDepthHistogram::build(&[], 4).is_err());
        assert!(EquiDepthHistogram::build(&[1.0], 0).is_err());
    }

    #[test]
    fn equi_depth_more_buckets_than_values() {
        let h = EquiDepthHistogram::build(&[1.0, 2.0, 3.0], 10).unwrap();
        assert_eq!(h.buckets(), 3);
        assert_eq!(h.total(), 3);
    }
}
