//! Samplers: the substrate of sampling-based approximate query processing.
//!
//! BlinkDB-style engines (\[17\]) answer aggregates on *stratified samples*
//! so that rare strata are still represented. This module provides the
//! classic reservoir sampler (uniform) and a stratified sample keyed by a
//! user-supplied stratum function, both with the scale-up weights needed to
//! turn sample aggregates into population estimates.

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use sea_common::{Record, Result, SeaError};

/// Algorithm-R reservoir sampler: a uniform sample of fixed capacity over a
/// stream of unknown length.
#[derive(Debug, Clone)]
pub struct ReservoirSampler {
    capacity: usize,
    seen: u64,
    reservoir: Vec<Record>,
    rng: StdRng,
}

impl ReservoirSampler {
    /// Creates a sampler keeping at most `capacity` records.
    ///
    /// # Errors
    ///
    /// Zero capacity.
    pub fn new(capacity: usize, seed: u64) -> Result<Self> {
        if capacity == 0 {
            return Err(SeaError::invalid("reservoir capacity must be positive"));
        }
        Ok(ReservoirSampler {
            capacity,
            seen: 0,
            reservoir: Vec::with_capacity(capacity),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Offers one record to the reservoir.
    pub fn offer(&mut self, record: Record) {
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(record);
        } else {
            let j = self.rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = record;
            }
        }
    }

    /// Records seen so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    pub fn sample(&self) -> &[Record] {
        &self.reservoir
    }

    /// The scale-up factor from sample counts to population counts
    /// (`seen / sample_len`), 1.0 while the reservoir is not yet full.
    pub fn scale_factor(&self) -> f64 {
        if self.reservoir.is_empty() {
            1.0
        } else {
            self.seen as f64 / self.reservoir.len() as f64
        }
    }
}

/// A stratified sample: per-stratum uniform samples with per-stratum
/// scale-up weights, built offline from a full dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StratifiedSample {
    /// stratum key → (sampled records, population size of the stratum)
    strata: HashMap<u64, (Vec<Record>, u64)>,
}

impl StratifiedSample {
    /// Builds a stratified sample holding at most `per_stratum` records per
    /// stratum. `stratum_of` maps a record to its stratum key (e.g. a grid
    /// cell or a categorical column).
    ///
    /// # Errors
    ///
    /// Zero `per_stratum`.
    pub fn build(
        records: &[Record],
        per_stratum: usize,
        seed: u64,
        stratum_of: impl Fn(&Record) -> u64,
    ) -> Result<Self> {
        if per_stratum == 0 {
            return Err(SeaError::invalid("per_stratum must be positive"));
        }
        let mut samplers: HashMap<u64, ReservoirSampler> = HashMap::new();
        for r in records {
            let key = stratum_of(r);
            let sampler = match samplers.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ReservoirSampler::new(per_stratum, seed ^ key)?)
                }
            };
            sampler.offer(r.clone());
        }
        let strata = samplers
            .into_iter()
            .map(|(k, s)| {
                let seen = s.seen();
                (k, (s.reservoir, seen))
            })
            .collect();
        Ok(StratifiedSample { strata })
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Total sampled records.
    pub fn sample_size(&self) -> usize {
        self.strata.values().map(|(s, _)| s.len()).sum()
    }

    /// Total population represented.
    pub fn population(&self) -> u64 {
        self.strata.values().map(|(_, n)| *n).sum()
    }

    /// Memory footprint in bytes (E8 storage metric).
    pub fn memory_bytes(&self) -> u64 {
        self.strata
            .values()
            .map(|(s, _)| s.iter().map(Record::storage_bytes).sum::<u64>() + 16)
            .sum()
    }

    /// Iterates `(record, weight)` pairs where `weight` is the number of
    /// population records this sampled record represents. Weighted sums
    /// over these pairs estimate population aggregates.
    pub fn weighted_records(&self) -> impl Iterator<Item = (&Record, f64)> {
        self.strata.values().flat_map(|(sample, population)| {
            let w = if sample.is_empty() {
                0.0
            } else {
                *population as f64 / sample.len() as f64
            };
            sample.iter().map(move |r| (r, w))
        })
    }

    /// Estimates the population count of records matching `pred` by
    /// weighted sample counting.
    pub fn estimate_count(&self, pred: impl Fn(&Record) -> bool) -> f64 {
        self.weighted_records()
            .filter(|(r, _)| pred(r))
            .map(|(_, w)| w)
            .sum()
    }

    /// Estimates the population mean of attribute `dim` over records
    /// matching `pred` (weighted ratio estimator). Returns `None` when no
    /// sampled record matches.
    pub fn estimate_mean(&self, dim: usize, pred: impl Fn(&Record) -> bool) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (r, w) in self.weighted_records() {
            if pred(r) {
                num += w * r.value(dim);
                den += w;
            }
        }
        (den > 0.0).then_some(num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> impl Iterator<Item = Record> {
        (0..n).map(|i| Record::new(i, vec![i as f64]))
    }

    #[test]
    fn reservoir_caps_size_and_counts_seen() {
        let mut s = ReservoirSampler::new(100, 1).unwrap();
        for r in stream(10_000) {
            s.offer(r);
        }
        assert_eq!(s.sample().len(), 100);
        assert_eq!(s.seen(), 10_000);
        assert!((s.scale_factor() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Mean of a uniform sample of 0..10000 should be near 5000.
        let mut means = Vec::new();
        for seed in 0..20 {
            let mut s = ReservoirSampler::new(200, seed).unwrap();
            for r in stream(10_000) {
                s.offer(r);
            }
            let mean: f64 =
                s.sample().iter().map(|r| r.value(0)).sum::<f64>() / s.sample().len() as f64;
            means.push(mean);
        }
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!((grand - 5000.0).abs() < 200.0, "got {grand}");
    }

    #[test]
    fn reservoir_smaller_stream_keeps_everything() {
        let mut s = ReservoirSampler::new(100, 2).unwrap();
        for r in stream(30) {
            s.offer(r);
        }
        assert_eq!(s.sample().len(), 30);
        assert!((s.scale_factor() - 1.0).abs() < 1e-9);
        assert!(ReservoirSampler::new(0, 0).is_err());
    }

    #[test]
    fn stratified_preserves_rare_strata() {
        // Stratum 0: 10_000 records; stratum 1: only 5.
        let mut records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![0.0, i as f64]))
            .collect();
        records.extend((0..5).map(|i| Record::new(20_000 + i, vec![1.0, i as f64])));
        let s = StratifiedSample::build(&records, 50, 7, |r| r.value(0) as u64).unwrap();
        assert_eq!(s.num_strata(), 2);
        // The rare stratum is fully retained.
        let rare_count = s.estimate_count(|r| r.value(0) == 1.0);
        assert!((rare_count - 5.0).abs() < 1e-9, "got {rare_count}");
    }

    #[test]
    fn stratified_count_estimates_population() {
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 10) as f64, i as f64]))
            .collect();
        let s = StratifiedSample::build(&records, 100, 3, |r| r.value(0) as u64).unwrap();
        assert_eq!(s.population(), 10_000);
        let est = s.estimate_count(|r| r.value(0) < 3.0);
        assert!(
            (est - 3000.0).abs() < 1e-9,
            "exact per-stratum scaling: {est}"
        );
    }

    #[test]
    fn stratified_mean_is_close() {
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 4) as f64, i as f64]))
            .collect();
        let s = StratifiedSample::build(&records, 200, 5, |r| r.value(0) as u64).unwrap();
        let est = s.estimate_mean(1, |_| true).unwrap();
        assert!((est - 4999.5).abs() < 400.0, "got {est}");
        assert!(s.estimate_mean(1, |r| r.value(0) > 100.0).is_none());
    }

    #[test]
    fn stratified_memory_is_bounded() {
        let records: Vec<Record> = (0..100_000)
            .map(|i| Record::new(i, vec![(i % 2) as f64]))
            .collect();
        let s = StratifiedSample::build(&records, 10, 1, |r| r.value(0) as u64).unwrap();
        assert_eq!(s.sample_size(), 20);
        assert!(s.memory_bytes() < 1000);
    }
}
