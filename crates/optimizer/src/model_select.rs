//! Inference-model selection (RT3-3; \[48\]).
//!
//! "Even if said models derive from the same family, different models have
//! been found to be best for different data subspaces." This module picks,
//! per subspace, among the three regressor families in `sea-ml` by k-fold
//! cross-validated MSE.

use sea_common::{Result, SeaError};
use sea_ml::gbt::{GbtParams, GradientBoostedTrees};
use sea_ml::knnreg::KnnRegressor;
use sea_ml::linreg::LinearModel;
use sea_ml::selection::kfold_mse;
use sea_ml::Regressor;

/// The selected model family, with the fitted model.
#[derive(Debug)]
pub enum ModelChoice {
    /// Ridge linear regression.
    Linear(LinearModel),
    /// Distance-weighted kNN regression.
    Knn(KnnRegressor),
    /// Gradient-boosted trees.
    Boosted(GradientBoostedTrees),
}

impl ModelChoice {
    /// The family name (for reports).
    pub fn family(&self) -> &'static str {
        match self {
            ModelChoice::Linear(_) => "linear",
            ModelChoice::Knn(_) => "knn",
            ModelChoice::Boosted(_) => "boosted",
        }
    }
}

impl Regressor for ModelChoice {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            ModelChoice::Linear(m) => m.predict(x),
            ModelChoice::Knn(m) => m.predict(x),
            ModelChoice::Boosted(m) => m.predict(x),
        }
    }
}

/// Cross-validates the three families on `(xs, ys)` and returns the best,
/// fitted on the full data, plus the per-family CV-MSE list
/// `[(family, mse); 3]`.
///
/// # Errors
///
/// Too few rows (needs at least `folds` rows), or model-fitting failures.
pub fn select_model(
    xs: &[Vec<f64>],
    ys: &[f64],
    folds: usize,
) -> Result<(ModelChoice, Vec<(&'static str, f64)>)> {
    if xs.len() < folds.max(4) {
        return Err(SeaError::invalid("too few rows for model selection"));
    }
    let gbt_params = GbtParams {
        n_trees: 60,
        max_depth: 3,
        learning_rate: 0.15,
        min_leaf: 2,
    };
    let lin = kfold_mse(xs, ys, folds, |tx, ty| LinearModel::fit(tx, ty, 1e-6))?;
    let knn = kfold_mse(xs, ys, folds, |tx, ty| KnnRegressor::fit(tx, ty, 5))?;
    let gbt = kfold_mse(xs, ys, folds, |tx, ty| {
        GradientBoostedTrees::fit(tx, ty, &gbt_params)
    })?;
    let scores = vec![("linear", lin), ("knn", knn), ("boosted", gbt)];
    let best = scores
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty")
        .0;
    let choice = match best {
        "linear" => ModelChoice::Linear(LinearModel::fit(xs, ys, 1e-6)?),
        "knn" => ModelChoice::Knn(KnnRegressor::fit(xs, ys, 5)?),
        _ => ModelChoice::Boosted(GradientBoostedTrees::fit(xs, ys, &gbt_params)?),
    };
    Ok((choice, scores))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_data_selects_linear() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0).collect();
        let (choice, scores) = select_model(&xs, &ys, 5).unwrap();
        assert_eq!(choice.family(), "linear", "{scores:?}");
    }

    #[test]
    fn step_data_prefers_trees_or_knn() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| {
                if ((x[0] / 25.0) as u64).is_multiple_of(2) {
                    0.0
                } else {
                    10.0
                }
            })
            .collect();
        let (choice, scores) = select_model(&xs, &ys, 5).unwrap();
        assert_ne!(choice.family(), "linear", "{scores:?}");
    }

    #[test]
    fn selected_model_predicts_well() {
        let xs: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![(i % 15) as f64, (i / 15) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + x[1]).collect();
        let (choice, _) = select_model(&xs, &ys, 5).unwrap();
        let pred = choice.predict(&[7.0, 4.0]);
        assert!((pred - 18.0).abs() < 1.0, "got {pred}");
    }

    #[test]
    fn different_subspaces_pick_different_families() {
        // Subspace A: clean linear. Subspace B: sharp step.
        let xs: Vec<Vec<f64>> = (0..120).map(|i| vec![i as f64]).collect();
        let linear_ys: Vec<f64> = xs.iter().map(|x| 0.5 * x[0]).collect();
        let step_ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 60.0 { -5.0 } else { 5.0 })
            .collect();
        let (a, _) = select_model(&xs, &linear_ys, 4).unwrap();
        let (b, _) = select_model(&xs, &step_ys, 4).unwrap();
        assert_eq!(a.family(), "linear");
        assert_ne!(b.family(), "linear");
    }

    #[test]
    fn too_few_rows_is_an_error() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![1.0, 2.0];
        assert!(select_model(&xs, &ys, 5).is_err());
    }
}
