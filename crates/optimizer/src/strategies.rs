//! Access-method selection (RT3-1/RT3-2): full-partition scan with
//! node-side aggregation versus index-driven point fetches.
//!
//! This is the classic selectivity trade-off the optimizer must learn:
//!
//! * **ScanAggregate** — the coordinator–cohort scan: every candidate node
//!   reads its (zone-map-pruned) partition sequentially and ships a
//!   constant-size partial aggregate. Cost ≈ partition bytes, independent
//!   of how many records match.
//! * **IndexFetch** — a secondary grid index maps the selection to
//!   candidate record ids; each candidate is fetched with a *random point
//!   read* and shipped to the coordinator, which aggregates. Cost ≈
//!   matches × point-read, independent of partition size.
//!
//! Narrow selections favour the index; wide ones favour the scan; the
//! crossover moves with table size — exactly the structure a learned
//! selector (RT3/G6) must capture.

use sea_common::{AnalyticalQuery, CostMeter, CostModel, Record, RecordId, Rect, Result, SeaError};
use sea_index::GridIndex;
use sea_query::{Executor, QueryOutcome};
use sea_storage::{StorageCluster, DIRECT_LAYERS};

/// An execution strategy for analytical queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryStrategy {
    /// Sequential pruned scan with node-side partial aggregation.
    ScanAggregate,
    /// Secondary-index lookup with per-record point fetches.
    IndexFetch,
}

impl QueryStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [QueryStrategy; 2] = [QueryStrategy::ScanAggregate, QueryStrategy::IndexFetch];
}

/// The execution context the optimizer chooses within: the cluster, the
/// table, and a pre-built secondary index.
#[derive(Debug)]
pub struct ExecutionEngines<'a> {
    cluster: &'a StorageCluster,
    table: String,
    grid: GridIndex,
    /// id → (record clone, node) — the base-data image the index points
    /// into; fetches through it are charged as point reads.
    by_id: std::collections::HashMap<RecordId, Record>,
    record_bytes: u64,
}

impl<'a> ExecutionEngines<'a> {
    /// Builds the secondary grid index over `table` (one offline pass).
    ///
    /// # Errors
    ///
    /// Missing table or invalid grid parameters.
    pub fn build(
        cluster: &'a StorageCluster,
        table: &str,
        domain: Rect,
        cells_per_dim: usize,
    ) -> Result<Self> {
        let dims = cluster.dims(table)?;
        SeaError::check_dims(dims, domain.dims())?;
        let mut grid = GridIndex::new(domain, cells_per_dim)?;
        let mut by_id = std::collections::HashMap::new();
        for r in cluster.all_records(table)? {
            grid.insert(&r)?;
            by_id.insert(r.id, r);
        }
        Ok(ExecutionEngines {
            cluster,
            table: table.to_string(),
            grid,
            by_id,
            record_bytes: 8 + 8 * dims as u64,
        })
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &StorageCluster {
        self.cluster
    }

    /// The table name.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Executes `query` with the chosen strategy.
    ///
    /// # Errors
    ///
    /// As the underlying strategy.
    pub fn execute(
        &self,
        strategy: QueryStrategy,
        query: &AnalyticalQuery,
        cost_model: &CostModel,
    ) -> Result<QueryOutcome> {
        match strategy {
            QueryStrategy::ScanAggregate => {
                Executor::with_cost_model(self.cluster, cost_model.clone())
                    .execute_direct(&self.table, query)
            }
            QueryStrategy::IndexFetch => self.index_fetch(query, cost_model),
        }
    }

    /// Estimates the modelled wall-clock (µs) of executing `query` with
    /// `strategy` **without touching any data** — the planner-side cost
    /// model behind `sea-lang`'s access-path choice and EXPLAIN's
    /// "estimated vs actual" comparison.
    ///
    /// * [`QueryStrategy::ScanAggregate`] — priced from the block
    ///   catalog: every block whose zone-map bounds overlap the query's
    ///   bounding box is charged a sequential read plus per-record CPU,
    ///   and each engaged node ships a constant-size partial. No
    ///   per-record filtering happens, so the estimate differs from the
    ///   measured cost exactly where zone maps are imprecise.
    /// * [`QueryStrategy::IndexFetch`] — priced from the grid index:
    ///   candidate ids from overlapping cells, one point read each,
    ///   spread across the cluster — the same arithmetic as the real
    ///   fetch, which reads records only to aggregate them, so estimate
    ///   and actual coincide.
    ///
    /// Deterministic: same engines, same query, same number.
    ///
    /// # Errors
    ///
    /// Missing table or invalid query geometry.
    pub fn estimate_cost(
        &self,
        strategy: QueryStrategy,
        query: &AnalyticalQuery,
        cost_model: &CostModel,
    ) -> Result<f64> {
        let bbox = query.region.bounding_rect();
        let mut coord = CostMeter::new();
        let mut node_meters: Vec<CostMeter> = Vec::new();
        match strategy {
            QueryStrategy::ScanAggregate => {
                // node -> (blocks overlapping bbox, records in them).
                let mut per_node: std::collections::BTreeMap<usize, (u64, u64)> =
                    std::collections::BTreeMap::new();
                for (node, _, bounds, bytes, len) in self.cluster.block_catalog(&self.table)? {
                    if bounds.intersects(&bbox) {
                        let e = per_node.entry(node).or_insert((0, 0));
                        e.0 += bytes;
                        e.1 += len as u64;
                    }
                }
                for (bytes, records) in per_node.values() {
                    coord.charge_lan(64); // request fan-out
                    let mut m = CostMeter::new();
                    m.touch_node(DIRECT_LAYERS);
                    m.charge_disk_read(*bytes);
                    m.charge_cpu(*records);
                    m.charge_lan(24); // constant-size partial
                    node_meters.push(m);
                }
                coord.charge_cpu(per_node.len() as u64);
            }
            QueryStrategy::IndexFetch => {
                let candidates = self.grid.candidates(&bbox)?.len();
                let nodes = self.cluster.num_nodes().max(1);
                let per_node = candidates.div_ceil(nodes).max(1);
                let mut remaining = candidates;
                while remaining > 0 {
                    let chunk = remaining.min(per_node);
                    let mut m = CostMeter::new();
                    m.touch_node(DIRECT_LAYERS);
                    for _ in 0..chunk {
                        m.charge_point_read(self.record_bytes);
                    }
                    m.charge_lan(chunk as u64 * self.record_bytes);
                    node_meters.push(m);
                    remaining -= chunk;
                }
                coord.charge_cpu(candidates as u64);
            }
        }
        Ok(coord
            .report_parallel(node_meters.iter(), cost_model)
            .wall_us)
    }

    /// Index-driven execution: candidate ids from overlapping grid cells,
    /// one point read per candidate, aggregation at the coordinator.
    fn index_fetch(&self, query: &AnalyticalQuery, cost_model: &CostModel) -> Result<QueryOutcome> {
        query.aggregate.validate(self.grid.dims())?;
        let bbox = query.region.bounding_rect();
        let candidates = self.grid.candidates(&bbox)?;

        // All point reads happen on the data nodes; model them as spread
        // evenly and running in parallel across the cluster.
        let nodes = self.cluster.num_nodes().max(1);
        let per_node = candidates.len().div_ceil(nodes);
        let mut node_meters = Vec::new();
        for chunk in candidates.chunks(per_node.max(1)) {
            let mut m = CostMeter::new();
            m.touch_node(DIRECT_LAYERS);
            for _ in chunk {
                m.charge_point_read(self.record_bytes);
            }
            m.charge_lan(chunk.len() as u64 * self.record_bytes);
            node_meters.push(m);
        }

        let mut coord = CostMeter::new();
        coord.charge_cpu(candidates.len() as u64);
        let matched: Vec<&Record> = candidates
            .iter()
            .filter_map(|id| self.by_id.get(id))
            .filter(|r| query.region.contains_record(r))
            .collect();
        let answer = query.aggregate.compute(matched)?;
        Ok(QueryOutcome {
            answer,
            cost: coord.report_parallel(node_meters.iter(), cost_model),
        })
    }

    /// Ground-truth best strategy for one query (executes all strategies).
    ///
    /// # Errors
    ///
    /// As [`ExecutionEngines::execute`].
    pub fn oracle_choice(
        &self,
        query: &AnalyticalQuery,
        cost_model: &CostModel,
    ) -> Result<(QueryStrategy, f64)> {
        let mut best: Option<(QueryStrategy, f64)> = None;
        for s in QueryStrategy::ALL {
            let out = self.execute(s, query, cost_model)?;
            if best.is_none_or(|(_, c)| out.cost.wall_us < c) {
                best = Some((s, out.cost.wall_us));
            }
        }
        best.ok_or_else(|| SeaError::Empty("no strategies".into()))
    }
}

/// Convenience free function mirroring [`ExecutionEngines::execute`].
///
/// # Errors
///
/// As [`ExecutionEngines::execute`].
pub fn execute_with(
    engines: &ExecutionEngines<'_>,
    strategy: QueryStrategy,
    query: &AnalyticalQuery,
    cost_model: &CostModel,
) -> Result<QueryOutcome> {
    engines.execute(strategy, query, cost_model)
}

/// Convenience alias for index-fetch execution.
///
/// # Errors
///
/// As [`ExecutionEngines::execute`].
pub fn fetch_records(
    engines: &ExecutionEngines<'_>,
    query: &AnalyticalQuery,
    cost_model: &CostModel,
) -> Result<QueryOutcome> {
    engines.execute(QueryStrategy::IndexFetch, query, cost_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{AggregateKind, Point, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 512);
        let records: Vec<Record> = (0..40_000)
            .map(|i| Record::new(i, vec![(i / 400) as f64, (i % 400) as f64]))
            .collect();
        c.load_table(
            "t",
            records,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
            },
        )
        .unwrap();
        c
    }

    fn engines(c: &StorageCluster) -> ExecutionEngines<'_> {
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 400.0]).unwrap();
        ExecutionEngines::build(c, "t", domain, 100).unwrap()
    }

    fn count_query(cx: f64, e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, 200.0]), &[e, 5.0 * e]).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn strategies_agree_on_answers() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        for q in [count_query(50.0, 2.0), count_query(20.0, 30.0)] {
            let scan = eng
                .execute(QueryStrategy::ScanAggregate, &q, &model)
                .unwrap();
            let fetch = eng.execute(QueryStrategy::IndexFetch, &q, &model).unwrap();
            assert_eq!(scan.answer, fetch.answer);
        }
    }

    #[test]
    fn index_wins_narrow_scan_wins_wide() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let narrow = count_query(50.0, 0.5);
        let (best_narrow, _) = eng.oracle_choice(&narrow, &model).unwrap();
        assert_eq!(best_narrow, QueryStrategy::IndexFetch);

        let wide = count_query(50.0, 50.0); // the whole table
        let scan = eng
            .execute(QueryStrategy::ScanAggregate, &wide, &model)
            .unwrap();
        let fetch = eng
            .execute(QueryStrategy::IndexFetch, &wide, &model)
            .unwrap();
        assert!(
            scan.cost.wall_us < fetch.cost.wall_us,
            "wide selections favour the scan: scan {} fetch {}",
            scan.cost.wall_us,
            fetch.cost.wall_us
        );
    }

    #[test]
    fn crossover_exists_along_the_extent_sweep() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let mut saw_fetch = false;
        let mut saw_scan = false;
        for e in [0.5, 2.0, 8.0, 20.0, 50.0] {
            let (best, _) = eng.oracle_choice(&count_query(50.0, e), &model).unwrap();
            match best {
                QueryStrategy::IndexFetch => saw_fetch = true,
                QueryStrategy::ScanAggregate => saw_scan = true,
            }
        }
        assert!(saw_fetch && saw_scan, "both strategies win somewhere");
    }

    #[test]
    fn estimates_rank_strategies_like_the_oracle_at_the_extremes() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let narrow = count_query(50.0, 0.5);
        let est_scan = eng
            .estimate_cost(QueryStrategy::ScanAggregate, &narrow, &model)
            .unwrap();
        let est_fetch = eng
            .estimate_cost(QueryStrategy::IndexFetch, &narrow, &model)
            .unwrap();
        assert!(
            est_fetch < est_scan,
            "narrow: index should estimate cheaper ({est_fetch} vs {est_scan})"
        );
        let wide = count_query(50.0, 50.0);
        let est_scan = eng
            .estimate_cost(QueryStrategy::ScanAggregate, &wide, &model)
            .unwrap();
        let est_fetch = eng
            .estimate_cost(QueryStrategy::IndexFetch, &wide, &model)
            .unwrap();
        assert!(
            est_scan < est_fetch,
            "wide: scan should estimate cheaper ({est_scan} vs {est_fetch})"
        );
    }

    #[test]
    fn index_estimate_matches_measured_cost_and_scan_estimate_is_deterministic() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let q = count_query(50.0, 2.0);
        let est = eng
            .estimate_cost(QueryStrategy::IndexFetch, &q, &model)
            .unwrap();
        let actual = eng.execute(QueryStrategy::IndexFetch, &q, &model).unwrap();
        assert_eq!(est.to_bits(), actual.cost.wall_us.to_bits());
        let a = eng
            .estimate_cost(QueryStrategy::ScanAggregate, &q, &model)
            .unwrap();
        let b = eng
            .estimate_cost(QueryStrategy::ScanAggregate, &q, &model)
            .unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a > 0.0);
    }

    #[test]
    fn fetch_errors_propagate() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let empty_mean = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![-10.0, -10.0], vec![-5.0, -5.0]).unwrap()),
            AggregateKind::Mean { dim: 0 },
        );
        assert!(fetch_records(&eng, &empty_mean, &model).is_err());
    }

    #[test]
    fn build_validates() {
        let c = cluster();
        let bad_domain = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert!(ExecutionEngines::build(&c, "t", bad_domain, 10).is_err());
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 400.0]).unwrap();
        assert!(ExecutionEngines::build(&c, "missing", domain, 10).is_err());
    }
}
