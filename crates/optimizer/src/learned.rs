//! The learned strategy selector (G6/O6): "train models which learn from
//! past task executions and build optimising modules, which, on-the-fly,
//! adopt the best execution method."

use sea_common::{AnalyticalQuery, CostModel, Result, SeaError};
use sea_index::EquiDepthHistogram;
use sea_ml::linreg::RecursiveLeastSquares;
use sea_ml::Regressor;
use sea_storage::StorageCluster;

use crate::strategies::{ExecutionEngines, QueryStrategy};

/// A learned per-strategy cost model over query features.
#[derive(Debug)]
pub struct LearnedOptimizer {
    /// One cost regressor per strategy (same order as
    /// [`QueryStrategy::ALL`]); predicts `ln(wall_us)`.
    cost_models: Vec<RecursiveLeastSquares>,
    /// Per-dimension marginal histograms for selectivity estimation.
    histograms: Vec<EquiDepthHistogram>,
    table_records: f64,
    table_bytes: f64,
    nodes: f64,
    trained: u64,
}

impl LearnedOptimizer {
    /// Creates an optimizer for `table`, collecting per-dimension
    /// histograms (the statistics pass a real system piggybacks on data
    /// loading).
    ///
    /// # Errors
    ///
    /// Missing table.
    pub fn new(cluster: &StorageCluster, table: &str, buckets: usize) -> Result<Self> {
        let stats = cluster.stats(table)?;
        let all = cluster.all_records(table)?;
        let mut histograms = Vec::with_capacity(stats.dims);
        for d in 0..stats.dims {
            let values: Vec<f64> = all.iter().map(|r| r.value(d)).collect();
            histograms.push(EquiDepthHistogram::build(&values, buckets.max(2))?);
        }
        let features = 4;
        let cost_models = QueryStrategy::ALL
            .iter()
            .map(|_| RecursiveLeastSquares::new(features, 100.0, 1.0))
            .collect::<Result<Vec<_>>>()?;
        Ok(LearnedOptimizer {
            cost_models,
            histograms,
            table_records: stats.records as f64,
            table_bytes: stats.bytes as f64,
            nodes: cluster.num_nodes() as f64,
            trained: 0,
        })
    }

    /// Number of training executions absorbed.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Estimated selectivity of a query (independence assumption over
    /// per-dimension marginals).
    pub fn estimate_selectivity(&self, query: &AnalyticalQuery) -> f64 {
        let bbox = query.region.bounding_rect();
        let mut sel = 1.0;
        for (d, h) in self.histograms.iter().enumerate() {
            if d < bbox.dims() {
                sel *= h.estimate_selectivity(bbox.lo()[d], bbox.hi()[d]);
            }
        }
        sel
    }

    /// Feature vector of a query: `[ln(est matches + 1), est selectivity,
    /// ln(table bytes), nodes]`.
    fn features(&self, query: &AnalyticalQuery) -> Vec<f64> {
        let sel = self.estimate_selectivity(query);
        vec![
            (sel * self.table_records + 1.0).ln(),
            sel,
            self.table_bytes.ln(),
            self.nodes,
        ]
    }

    /// Trains by executing `query` with **every** strategy and absorbing
    /// the measured costs (the in-depth experimentation pass of RT3).
    ///
    /// # Errors
    ///
    /// Execution errors propagate.
    pub fn train(
        &mut self,
        engines: &ExecutionEngines<'_>,
        query: &AnalyticalQuery,
        cost_model: &CostModel,
    ) -> Result<()> {
        let features = self.features(query);
        for (i, s) in QueryStrategy::ALL.iter().enumerate() {
            let out = engines.execute(*s, query, cost_model)?;
            self.cost_models[i].update(&features, out.cost.wall_us.max(1.0).ln())?;
        }
        self.trained += 1;
        Ok(())
    }

    /// Predicted wall-clock (µs) per strategy, in [`QueryStrategy::ALL`]
    /// order.
    pub fn predict_costs(&self, query: &AnalyticalQuery) -> Vec<f64> {
        let features = self.features(query);
        self.cost_models
            .iter()
            .map(|m| m.predict(&features).exp())
            .collect()
    }

    /// The strategy with the lowest predicted cost.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] before any training.
    pub fn choose(&self, query: &AnalyticalQuery) -> Result<QueryStrategy> {
        if self.trained == 0 {
            return Err(SeaError::Empty("optimizer has no training yet".into()));
        }
        let costs = self.predict_costs(query);
        let best = costs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| QueryStrategy::ALL[i])
            .expect("non-empty");
        Ok(best)
    }

    /// Executes with the learned choice, returning the outcome and the
    /// chosen strategy.
    ///
    /// # Errors
    ///
    /// No training yet, or execution errors.
    pub fn execute(
        &self,
        engines: &ExecutionEngines<'_>,
        query: &AnalyticalQuery,
        cost_model: &CostModel,
    ) -> Result<(sea_query::QueryOutcome, QueryStrategy)> {
        let s = self.choose(query)?;
        Ok((engines.execute(s, query, cost_model)?, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{AggregateKind, Point, Record, Rect, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 512);
        let records: Vec<Record> = (0..40_000)
            .map(|i| Record::new(i, vec![(i / 400) as f64, (i % 400) as f64]))
            .collect();
        c.load_table(
            "t",
            records,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
            },
        )
        .unwrap();
        c
    }

    fn engines(c: &StorageCluster) -> ExecutionEngines<'_> {
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 400.0]).unwrap();
        ExecutionEngines::build(c, "t", domain, 100).unwrap()
    }

    fn count_query(cx: f64, e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, 200.0]), &[e, 5.0 * e]).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn selectivity_estimates_track_extent() {
        let c = cluster();
        let opt = LearnedOptimizer::new(&c, "t", 32).unwrap();
        let narrow = opt.estimate_selectivity(&count_query(50.0, 1.0));
        let wide = opt.estimate_selectivity(&count_query(50.0, 40.0));
        assert!(narrow < wide);
        assert!(narrow > 0.0 && wide <= 1.0);
        let full = opt.estimate_selectivity(&count_query(50.0, 50.0));
        assert!(full > 0.9, "got {full}");
    }

    #[test]
    fn untrained_optimizer_refuses_to_choose() {
        let c = cluster();
        let opt = LearnedOptimizer::new(&c, "t", 16).unwrap();
        assert!(matches!(
            opt.choose(&count_query(50.0, 1.0)),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn learned_choice_matches_oracle_after_training() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let mut opt = LearnedOptimizer::new(&c, "t", 32).unwrap();
        for i in 0..30 {
            let e = 0.5 + i as f64 * 1.7; // 0.5 .. 49.8
            opt.train(&eng, &count_query(50.0, e), &model).unwrap();
        }
        let mut agree = 0;
        let mut total = 0;
        for e in [0.7, 1.5, 3.0, 6.0, 12.0, 25.0, 45.0] {
            let q = count_query(50.0, e);
            let choice = opt.choose(&q).unwrap();
            let (oracle, _) = eng.oracle_choice(&q, &model).unwrap();
            total += 1;
            if choice == oracle {
                agree += 1;
            }
        }
        assert!(agree * 10 >= total * 7, "agreement {agree}/{total}");
    }

    #[test]
    fn learned_regret_is_small() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let mut opt = LearnedOptimizer::new(&c, "t", 32).unwrap();
        for i in 0..30 {
            let e = 0.5 + i as f64 * 1.7;
            opt.train(&eng, &count_query(50.0, e), &model).unwrap();
        }
        let mut learned_cost = 0.0;
        let mut oracle_cost = 0.0;
        for e in [0.9, 2.5, 7.0, 15.0, 35.0] {
            let q = count_query(50.0, e);
            let (out, _) = opt.execute(&eng, &q, &model).unwrap();
            learned_cost += out.cost.wall_us;
            let (_, best) = eng.oracle_choice(&q, &model).unwrap();
            oracle_cost += best;
        }
        let regret = learned_cost / oracle_cost;
        assert!(regret < 1.5, "regret factor {regret}");
    }

    #[test]
    fn execute_returns_answer_and_strategy() {
        let c = cluster();
        let eng = engines(&c);
        let model = CostModel::default();
        let mut opt = LearnedOptimizer::new(&c, "t", 16).unwrap();
        opt.train(&eng, &count_query(50.0, 5.0), &model).unwrap();
        let q = count_query(50.0, 5.0);
        let (out, s) = opt.execute(&eng, &q, &model).unwrap();
        assert!(QueryStrategy::ALL.contains(&s));
        assert!(out.answer.as_scalar().unwrap() > 0.0);
        assert_eq!(opt.trained(), 1);
    }
}
