//! # sea-optimizer
//!
//! Research theme RT3: *understand the alternatives and select optimal
//! processing methods* (P4).
//!
//! * [`strategies`] — the two distributed processing paradigms the paper
//!   contrasts (RT3-2): MapReduce-style node-side partial aggregation
//!   versus a coordinator that surgically fetches matching records. Their
//!   costs cross over with selectivity: fetching wins when selections are
//!   narrow, node-side aggregation wins when they are wide.
//! * [`learned`] — the learned selector (G6/O6): trained from measured
//!   executions of both strategies, it predicts per-strategy cost from
//!   query features (estimated selectivity, table size, node count) and
//!   picks the argmin on the fly. Evaluated by *regret* against the
//!   per-query oracle.
//! * [`model_select`] — inference-model selection (RT3-3, \[48\]): given a
//!   data subspace's training pairs, pick among linear, kNN, and
//!   gradient-boosted regressors by validation error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod learned;
pub mod model_select;
pub mod strategies;

pub use learned::LearnedOptimizer;
pub use model_select::{select_model, ModelChoice};
pub use strategies::{execute_with, fetch_records, ExecutionEngines, QueryStrategy};
