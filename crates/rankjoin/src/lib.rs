//! # sea-rankjoin
//!
//! The distributed **rank-join** operator (P3, first bullet; \[30\]): join
//! two tables on a key and return the top-k result pairs by combined
//! score.
//!
//! Two implementations run on the same substrate:
//!
//! * [`mapreduce_rank_join`] — the state-of-the-art-before baseline: a
//!   MapReduce-style job that scans both tables on every node through the
//!   BDAS stack, shuffles *all* tuples to a coordinator by join key, joins,
//!   sorts, and truncates to k.
//! * [`surgical_rank_join`] — the statistical-index approach: a
//!   score-sorted [`ScoreIndex`] per table lets a coordinator pull tuples
//!   in descending-score batches, joining incrementally and stopping as
//!   soon as the classic rank-join threshold bound proves the top-k is
//!   final. Only the (typically very small) score prefix is ever read or
//!   moved — the paper reports up to six orders of magnitude saved in
//!   time, bandwidth, and money.
//!
//! Table layout convention: attribute 0 is the join key (integral values),
//! attribute 1 is the score.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;
pub mod operator;

pub use index::ScoreIndex;
pub use operator::{mapreduce_rank_join, surgical_rank_join, JoinResult, RankJoinOutcome};
