//! The score-sorted statistical index behind surgical rank-join access.

use serde::{Deserialize, Serialize};

use sea_common::{CostMeter, RecordId, Result, SeaError};
use sea_storage::{NodeId, StorageCluster};

/// One index entry: where a tuple lives and what matters about it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreEntry {
    /// Record id.
    pub id: RecordId,
    /// Join-key value (attribute 0).
    pub key: i64,
    /// Score (attribute 1).
    pub score: f64,
    /// Node storing the record.
    pub node: NodeId,
}

/// A descending-score index over one table.
///
/// Building the index performs one full pass over the table (charged to
/// the returned build meter); after that, [`ScoreIndex::batch`] hands out
/// successive descending-score batches, and charges only the batch's own
/// retrieval cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoreIndex {
    /// Entries sorted by descending score.
    entries: Vec<ScoreEntry>,
    /// Bytes of one indexed tuple when fetched (id + key + score + payload
    /// estimate).
    tuple_bytes: u64,
}

impl ScoreIndex {
    /// Builds the index over `table` (attribute 0 = key, 1 = score),
    /// charging the scan to `build_meter`.
    ///
    /// # Errors
    ///
    /// Missing table or a table with fewer than 2 attributes.
    pub fn build(
        cluster: &StorageCluster,
        table: &str,
        build_meter: &mut CostMeter,
    ) -> Result<Self> {
        let dims = cluster.dims(table)?;
        if dims < 2 {
            return Err(SeaError::invalid(
                "rank-join tables need key (attr 0) and score (attr 1)",
            ));
        }
        let mut entries = Vec::new();
        for node in 0..cluster.num_nodes() {
            build_meter.touch_node(sea_storage::DIRECT_LAYERS);
            for r in cluster.scan_node(table, node, build_meter)? {
                entries.push(ScoreEntry {
                    id: r.id,
                    key: r.value(0) as i64,
                    score: r.value(1),
                    node,
                });
            }
        }
        entries.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.id.cmp(&b.id))
        });
        Ok(ScoreIndex {
            entries,
            tuple_bytes: 8 * dims as u64 + 8,
        })
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index memory footprint in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.entries.len() as u64 * 32
    }

    /// The highest score in the table (`None` when empty).
    pub fn top_score(&self) -> Option<f64> {
        self.entries.first().map(|e| e.score)
    }

    /// Returns the batch of entries at ranks `[offset, offset + size)`
    /// (descending score), charging `meter` for the fetch.
    ///
    /// The index is *materialized in score order* (that is the point of
    /// the statistical access structure of \[30\]): a batch is one
    /// sequential read from the index server — one seek plus the batch
    /// bytes — followed by a LAN transfer to the coordinator, with a
    /// single direct-path layer crossing.
    pub fn batch(&self, offset: usize, size: usize, meter: &mut CostMeter) -> &[ScoreEntry] {
        let end = (offset + size).min(self.entries.len());
        if offset >= end {
            return &[];
        }
        let batch = &self.entries[offset..end];
        let bytes = batch.len() as u64 * self.tuple_bytes;
        meter.charge_disk_read(bytes);
        meter.charge_cpu(batch.len() as u64);
        meter.charge_lan(bytes);
        meter.touch_node(sea_storage::DIRECT_LAYERS);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::Record;
    use sea_storage::Partitioning;

    fn cluster(n: u64) -> StorageCluster {
        let mut c = StorageCluster::new(4, 64);
        let records: Vec<Record> = (0..n)
            .map(|i| Record::new(i, vec![(i % 50) as f64, (i * 7 % 1000) as f64, 1.0]))
            .collect();
        c.load_table("r", records, Partitioning::Hash).unwrap();
        c
    }

    #[test]
    fn build_sorts_descending() {
        let c = cluster(500);
        let mut meter = CostMeter::new();
        let idx = ScoreIndex::build(&c, "r", &mut meter).unwrap();
        assert_eq!(idx.len(), 500);
        assert!(meter.disk_bytes > 0, "building reads the table");
        let b = idx.batch(0, 500, &mut CostMeter::new());
        for w in b.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(idx.top_score().unwrap(), b[0].score);
    }

    #[test]
    fn batches_are_contiguous_and_charged() {
        let c = cluster(200);
        let idx = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        let mut meter = CostMeter::new();
        let b1 = idx.batch(0, 50, &mut meter).to_vec();
        let b2 = idx.batch(50, 50, &mut meter).to_vec();
        assert_eq!(b1.len(), 50);
        assert_eq!(b2.len(), 50);
        assert!(b1.last().unwrap().score >= b2.first().unwrap().score);
        assert!(meter.disk_bytes > 0);
        assert!(meter.lan_bytes > 0);
    }

    #[test]
    fn batch_past_end_is_empty() {
        let c = cluster(10);
        let idx = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        let mut m = CostMeter::new();
        assert!(idx.batch(10, 5, &mut m).is_empty());
        assert_eq!(m.disk_bytes, 0, "nothing fetched, nothing charged");
        let tail = idx.batch(8, 100, &mut m);
        assert_eq!(tail.len(), 2);
    }

    #[test]
    fn narrow_tables_are_rejected() {
        let mut c = StorageCluster::new(2, 16);
        let records: Vec<Record> = (0..10).map(|i| Record::new(i, vec![i as f64])).collect();
        c.load_table("narrow", records, Partitioning::Hash).unwrap();
        assert!(ScoreIndex::build(&c, "narrow", &mut CostMeter::new()).is_err());
        assert!(ScoreIndex::build(&c, "missing", &mut CostMeter::new()).is_err());
    }
}
