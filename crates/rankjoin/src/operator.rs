//! The two rank-join execution strategies.

use std::collections::HashMap;

use sea_common::{CostMeter, CostModel, CostReport, RecordId, Result, SeaError};
use sea_storage::{StorageCluster, BDAS_LAYERS};

use crate::index::ScoreIndex;

/// One joined pair in the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinResult {
    /// Id of the left tuple.
    pub left: RecordId,
    /// Id of the right tuple.
    pub right: RecordId,
    /// The shared join key.
    pub key: i64,
    /// Combined score (left score + right score).
    pub score: f64,
}

/// A rank-join answer plus its resource bill.
#[derive(Debug, Clone, PartialEq)]
pub struct RankJoinOutcome {
    /// Top-k joined pairs, descending combined score.
    pub results: Vec<JoinResult>,
    /// The cost of producing them.
    pub cost: CostReport,
    /// Tuples actually retrieved from storage (the surgical-access metric).
    pub tuples_retrieved: u64,
}

/// MapReduce-style rank-join: scan both tables fully on every node through
/// the BDAS stack, shuffle every tuple to the coordinator, hash-join,
/// sort, truncate to `k`.
///
/// # Errors
///
/// Missing tables, narrow schemas, or `k == 0`.
pub fn mapreduce_rank_join(
    cluster: &StorageCluster,
    left: &str,
    right: &str,
    k: usize,
    cost_model: &CostModel,
) -> Result<RankJoinOutcome> {
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    for t in [left, right] {
        if cluster.dims(t)? < 2 {
            return Err(SeaError::invalid(
                "rank-join tables need key (attr 0) and score (attr 1)",
            ));
        }
    }
    let mut node_meters = Vec::new();
    let mut left_tuples: Vec<(i64, RecordId, f64)> = Vec::new();
    let mut right_tuples: Vec<(i64, RecordId, f64)> = Vec::new();
    let mut retrieved = 0u64;
    for node in 0..cluster.num_nodes() {
        let mut meter = CostMeter::new();
        meter.touch_node(BDAS_LAYERS);
        for r in cluster.scan_node(left, node, &mut meter)? {
            meter.charge_lan(r.storage_bytes());
            left_tuples.push((r.value(0) as i64, r.id, r.value(1)));
            retrieved += 1;
        }
        for r in cluster.scan_node(right, node, &mut meter)? {
            meter.charge_lan(r.storage_bytes());
            right_tuples.push((r.value(0) as i64, r.id, r.value(1)));
            retrieved += 1;
        }
        node_meters.push(meter);
    }
    // Coordinator hash join.
    let mut coord = CostMeter::new();
    coord.charge_cpu(left_tuples.len() as u64 + right_tuples.len() as u64);
    let mut by_key: HashMap<i64, Vec<(RecordId, f64)>> = HashMap::new();
    for (key, id, score) in &left_tuples {
        by_key.entry(*key).or_default().push((*id, *score));
    }
    let mut results = Vec::new();
    for (key, rid, rscore) in &right_tuples {
        if let Some(ls) = by_key.get(key) {
            for (lid, lscore) in ls {
                results.push(JoinResult {
                    left: *lid,
                    right: *rid,
                    key: *key,
                    score: lscore + rscore,
                });
            }
        }
    }
    coord.charge_cpu(results.len() as u64);
    sort_join_results(&mut results);
    results.truncate(k);
    let cost = coord.report_parallel(node_meters.iter(), cost_model);
    Ok(RankJoinOutcome {
        results,
        cost,
        tuples_retrieved: retrieved,
    })
}

/// Surgical rank-join over pre-built score indexes: pull descending-score
/// batches from each side, join incrementally, and stop as soon as the
/// rank-join threshold bound certifies the current top-k.
///
/// The threshold after seeing score prefixes down to `l̄` (left) and `r̄`
/// (right) is `max(l_top + r̄, l̄ + r_top)`: no unseen pair can beat it.
///
/// # Errors
///
/// `k == 0` or `batch == 0`.
pub fn surgical_rank_join(
    left_index: &ScoreIndex,
    right_index: &ScoreIndex,
    k: usize,
    batch: usize,
    cost_model: &CostModel,
) -> Result<RankJoinOutcome> {
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    if batch == 0 {
        return Err(SeaError::invalid("batch must be positive"));
    }
    let mut meter = CostMeter::new();
    let (Some(l_top), Some(r_top)) = (left_index.top_score(), right_index.top_score()) else {
        return Ok(RankJoinOutcome {
            results: Vec::new(),
            cost: meter.report_sequential(cost_model),
            tuples_retrieved: 0,
        });
    };

    let mut l_seen: HashMap<i64, Vec<(RecordId, f64)>> = HashMap::new();
    let mut r_seen: HashMap<i64, Vec<(RecordId, f64)>> = HashMap::new();
    let mut l_off = 0usize;
    let mut r_off = 0usize;
    let mut l_last = l_top;
    let mut r_last = r_top;
    let mut results: Vec<JoinResult> = Vec::new();
    let mut retrieved = 0u64;

    loop {
        let l_done = l_off >= left_index.len();
        let r_done = r_off >= right_index.len();
        if l_done && r_done {
            break;
        }
        // Pull from the side with the higher frontier score (round-robin on
        // ties), so the threshold drops as fast as possible.
        let pull_left = !l_done && (r_done || l_last >= r_last);
        if pull_left {
            let b = left_index.batch(l_off, batch, &mut meter);
            for e in b {
                retrieved += 1;
                meter.charge_cpu(1);
                if let Some(matches) = r_seen.get(&e.key) {
                    for (rid, rscore) in matches {
                        results.push(JoinResult {
                            left: e.id,
                            right: *rid,
                            key: e.key,
                            score: e.score + rscore,
                        });
                    }
                }
                l_seen.entry(e.key).or_default().push((e.id, e.score));
                l_last = e.score;
            }
            l_off += b.len();
        } else {
            let b = right_index.batch(r_off, batch, &mut meter);
            for e in b {
                retrieved += 1;
                meter.charge_cpu(1);
                if let Some(matches) = l_seen.get(&e.key) {
                    for (lid, lscore) in matches {
                        results.push(JoinResult {
                            left: *lid,
                            right: e.id,
                            key: e.key,
                            score: lscore + e.score,
                        });
                    }
                }
                r_seen.entry(e.key).or_default().push((e.id, e.score));
                r_last = e.score;
            }
            r_off += b.len();
        }

        if results.len() >= k {
            sort_join_results(&mut results);
            results.truncate(k.max(256)); // keep a bounded working set
            let threshold = (l_top + r_last).max(l_last + r_top);
            if results[k - 1].score >= threshold {
                break;
            }
        }
    }
    sort_join_results(&mut results);
    results.truncate(k);
    Ok(RankJoinOutcome {
        results,
        cost: meter.report_sequential(cost_model),
        tuples_retrieved: retrieved,
    })
}

fn sort_join_results(results: &mut [JoinResult]) {
    results.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.left.cmp(&b.left))
            .then(a.right.cmp(&b.right))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::Record;
    use sea_storage::Partitioning;

    /// Two tables with `n` tuples each, `keys` distinct join keys, and
    /// deterministic pseudo-random scores in [0, 1000).
    fn cluster(n: u64, keys: u64) -> StorageCluster {
        let mut c = StorageCluster::new(4, 128);
        let score =
            |i: u64, salt: u64| ((i.wrapping_mul(2654435761).wrapping_add(salt)) % 1000) as f64;
        let left: Vec<Record> = (0..n)
            .map(|i| Record::new(i, vec![(i % keys) as f64, score(i, 17), 1.0]))
            .collect();
        let right: Vec<Record> = (0..n)
            .map(|i| Record::new(i, vec![(i % keys) as f64, score(i, 91), 2.0]))
            .collect();
        c.load_table("l", left, Partitioning::Hash).unwrap();
        c.load_table("r", right, Partitioning::Hash).unwrap();
        c
    }

    fn oracle(c: &StorageCluster, k: usize) -> Vec<JoinResult> {
        let model = CostModel::default();
        mapreduce_rank_join(c, "l", "r", k, &model).unwrap().results
    }

    #[test]
    fn surgical_matches_mapreduce_results() {
        let c = cluster(2000, 100);
        let model = CostModel::default();
        let mut m = CostMeter::new();
        let li = ScoreIndex::build(&c, "l", &mut m).unwrap();
        let ri = ScoreIndex::build(&c, "r", &mut m).unwrap();
        for k in [1, 5, 20] {
            let surgical = surgical_rank_join(&li, &ri, k, 32, &model).unwrap();
            let exact = oracle(&c, k);
            assert_eq!(surgical.results.len(), k);
            // Scores must agree exactly (ids may tie-swap).
            for (s, e) in surgical.results.iter().zip(&exact) {
                assert!((s.score - e.score).abs() < 1e-9, "k={k}: {s:?} vs {e:?}");
            }
        }
    }

    #[test]
    fn surgical_retrieves_far_fewer_tuples() {
        let c = cluster(20_000, 500);
        let model = CostModel::default();
        let li = ScoreIndex::build(&c, "l", &mut CostMeter::new()).unwrap();
        let ri = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        let surgical = surgical_rank_join(&li, &ri, 10, 256, &model).unwrap();
        let mr = mapreduce_rank_join(&c, "l", "r", 10, &model).unwrap();
        assert!(
            surgical.tuples_retrieved * 10 < mr.tuples_retrieved,
            "surgical {} vs mapreduce {}",
            surgical.tuples_retrieved,
            mr.tuples_retrieved
        );
        assert!(
            surgical.cost.wall_us < mr.cost.wall_us / 5.0,
            "surgical {} vs mapreduce {}",
            surgical.cost.wall_us,
            mr.cost.wall_us
        );
        assert!(surgical.cost.totals.lan_bytes * 10 < mr.cost.totals.lan_bytes);
    }

    #[test]
    fn advantage_grows_with_data_size() {
        let model = CostModel::default();
        let mut factors = Vec::new();
        for n in [2_000u64, 20_000] {
            let c = cluster(n, 200);
            let li = ScoreIndex::build(&c, "l", &mut CostMeter::new()).unwrap();
            let ri = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
            let s = surgical_rank_join(&li, &ri, 10, 64, &model).unwrap();
            let m = mapreduce_rank_join(&c, "l", "r", 10, &model).unwrap();
            factors.push(m.cost.wall_us / s.cost.wall_us);
        }
        assert!(
            factors[1] > factors[0],
            "the gap should widen with n: {factors:?}"
        );
    }

    #[test]
    fn empty_join_results() {
        // Disjoint key spaces.
        let mut c = StorageCluster::new(2, 32);
        let left: Vec<Record> = (0..100)
            .map(|i| Record::new(i, vec![i as f64, (i % 10) as f64]))
            .collect();
        let right: Vec<Record> = (0..100)
            .map(|i| Record::new(i, vec![(i + 1000) as f64, (i % 10) as f64]))
            .collect();
        c.load_table("l", left, Partitioning::Hash).unwrap();
        c.load_table("r", right, Partitioning::Hash).unwrap();
        let model = CostModel::default();
        let mr = mapreduce_rank_join(&c, "l", "r", 5, &model).unwrap();
        assert!(mr.results.is_empty());
        let li = ScoreIndex::build(&c, "l", &mut CostMeter::new()).unwrap();
        let ri = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        let s = surgical_rank_join(&li, &ri, 5, 16, &model).unwrap();
        assert!(s.results.is_empty());
    }

    #[test]
    fn results_are_sorted_descending() {
        let c = cluster(1000, 50);
        let model = CostModel::default();
        let out = mapreduce_rank_join(&c, "l", "r", 20, &model).unwrap();
        for w in out.results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Joined keys actually match.
        for r in &out.results {
            assert!(r.key >= 0 && r.key < 50);
        }
    }

    #[test]
    fn parameter_validation() {
        let c = cluster(100, 10);
        let model = CostModel::default();
        assert!(mapreduce_rank_join(&c, "l", "r", 0, &model).is_err());
        assert!(mapreduce_rank_join(&c, "nope", "r", 5, &model).is_err());
        let li = ScoreIndex::build(&c, "l", &mut CostMeter::new()).unwrap();
        let ri = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        assert!(surgical_rank_join(&li, &ri, 0, 16, &model).is_err());
        assert!(surgical_rank_join(&li, &ri, 5, 0, &model).is_err());
    }

    #[test]
    fn k_larger_than_result_set() {
        let c = cluster(50, 5);
        let model = CostModel::default();
        let li = ScoreIndex::build(&c, "l", &mut CostMeter::new()).unwrap();
        let ri = ScoreIndex::build(&c, "r", &mut CostMeter::new()).unwrap();
        let s = surgical_rank_join(&li, &ri, 100_000, 16, &model).unwrap();
        let m = mapreduce_rank_join(&c, "l", "r", 100_000, &model).unwrap();
        assert_eq!(s.results.len(), m.results.len());
    }
}
