//! E22's determinism contract, pinned across executor pool sizes: the
//! declarative replay produces bit-identical answers and simulated
//! costs at 1, 2, and 8 worker threads, and every statement matches the
//! hand-built query path (`bit_identical` column all 1.0). This is the
//! statement-surface analogue of the executor's own cross-pool
//! determinism tests: parallelism may change wall time, never answers.

use sea_bench::experiments::{e22_statements, run_e22_with_pool};
use sea_query::ExecPool;
use sea_telemetry::TelemetrySink;

fn rows_bits(report: &sea_bench::Report) -> Vec<Vec<u64>> {
    report
        .rows
        .iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn e22_replay_is_bit_identical_across_pool_sizes() {
    let baseline = run_e22_with_pool(&TelemetrySink::noop(), Some(ExecPool::new(1))).unwrap();
    assert_eq!(baseline.rows.len(), e22_statements().len());
    for row in &baseline.rows {
        assert_eq!(
            row[4], 1.0,
            "statement {} diverged from its hand-built equivalent",
            row[0]
        );
    }
    let base_bits = rows_bits(&baseline);
    for threads in [2usize, 8] {
        let report =
            run_e22_with_pool(&TelemetrySink::noop(), Some(ExecPool::new(threads))).unwrap();
        assert_eq!(
            rows_bits(&report),
            base_bits,
            "E22 drifted at {threads} worker threads"
        );
    }
}
