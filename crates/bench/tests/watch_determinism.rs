//! The watch layer must be deterministic in the strongest sense: the
//! entire E21 sidecar — windowed metric summaries, SLO alert log,
//! anomaly suspicions, failover timestamps — has to serialize to the
//! exact same bytes no matter how many executor threads run the
//! scatter phase. Telemetry is replayed on the coordinator thread in
//! node-index order, so everything derived from it (including the
//! watch hub's windows and the anomaly detector's suspicion stream)
//! inherits that determinism.

use sea_bench::experiments::e21_arms_with_pool;
use sea_query::ExecPool;
use sea_telemetry::TelemetrySink;

#[test]
fn e21_watch_sidecar_is_bit_identical_across_thread_counts() {
    let baseline = e21_arms_with_pool(&TelemetrySink::noop(), Some(ExecPool::new(1)))
        .unwrap()
        .to_json()
        .unwrap();
    for threads in [2usize, 8] {
        let report = e21_arms_with_pool(&TelemetrySink::noop(), Some(ExecPool::new(threads)))
            .unwrap()
            .to_json()
            .unwrap();
        assert_eq!(
            baseline, report,
            "watch sidecar diverged at {threads} executor threads"
        );
    }
}

#[test]
fn slow_node_is_flagged_before_its_first_failover_at_every_rate() {
    let report = e21_arms_with_pool(&TelemetrySink::noop(), Some(ExecPool::new(2))).unwrap();
    for arm in &report.arms {
        assert!(
            arm.detect_us >= 0.0,
            "rate {}: slow node never detected",
            arm.fault_rate
        );
        assert!(
            arm.failover_us >= 0.0,
            "rate {}: no failover observed",
            arm.fault_rate
        );
        assert!(
            arm.detect_us < arm.failover_us,
            "rate {}: detection ({}) not before first failover ({})",
            arm.fault_rate,
            arm.detect_us,
            arm.failover_us
        );
    }
}
