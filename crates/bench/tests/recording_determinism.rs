//! Telemetry must be observational: running an experiment under a
//! recording sink has to leave its result table bit-identical to the
//! noop-sink run. Uses the fastest experiments so the check stays cheap.

use sea_bench::experiments::run_by_id_with;
use sea_telemetry::TelemetrySink;

#[test]
fn recording_leaves_result_tables_bit_identical() {
    for id in ["e5", "e6", "e14", "e16"] {
        let quiet = run_by_id_with(id, &TelemetrySink::noop()).unwrap();
        let sink = TelemetrySink::recording();
        let recorded = run_by_id_with(id, &sink).unwrap();
        assert_eq!(
            quiet, recorded,
            "{id}: recording telemetry changed the result table"
        );
        let snap = sink.snapshot().unwrap();
        assert!(
            !snap.spans.roots.is_empty(),
            "{id}: the recording run actually recorded spans"
        );
    }
}
