//! E21 — the watch layer under injected faults: detection latency,
//! alert precision/recall, and per-tenant SLO budget burn.
//!
//! E18 measured what faults *cost*; E21 measures whether the system
//! *notices*. The E18 fault plan (a crashed node, a 2× slow node, a
//! swept transient-fault rate) runs against a replicated cluster behind
//! the multi-tenant front door, with two SLO'd tenants sharing the
//! stream: `gold` (latency objective just above the fault-free maximum,
//! so any backoff or failover detour breaches it) and `basic` (3× that
//! objective). A [`WatchHub`] taps the telemetry stream: per-node
//! `query.node_cost` events feed the EWMA anomaly detector, and every
//! burn-rate transition lands in the service's alert log.
//!
//! Reported per fault rate:
//! - **detection latency** — simulated time to the first `node.suspect`
//!   (straggler) flag on the planned slow node, vs the simulated time
//!   of the first crash-induced failover: the detector must win;
//! - **precision / recall** of straggler flags against the plan's
//!   ground truth (drift flags are tallied separately — transient
//!   retry storms legitimately drift);
//! - **alert count** and per-tenant **error-budget burn**.
//!
//! Everything — windows, suspicions, alerts, the `--watch-out` sidecar
//! — is keyed on the simulated clock and replayed in node-index order,
//! so the entire report is bit-identical at any `SEA_EXEC_THREADS`.

use serde::{Deserialize, Serialize};

use sea_common::{AnalyticalQuery, Result};
use sea_query::{ExecPool, Executor, RetryPolicy};
use sea_service::{AlertRecord, QueryService, SloPolicy, SloStatus, TenantConfig};
use sea_storage::{FaultPlan, Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;
use sea_watch::{SuspicionKind, WatchConfig, WatchHub, WatchSnapshot};
use sea_workload::{DataGenerator, DataSpec, QueryGenerator, QuerySpec};

use crate::experiments::common::{observe_query_us, query_span};
use crate::Report;

const RECORDS: usize = 20_000;
const NODES: usize = 8;
const DATA_SEED: u64 = 31;
const QUERIES: usize = 40;
const RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
/// The fault plan's slow node: the straggler ground truth.
const SLOW_NODE: u64 = 1;
const TENANTS: [&str; 2] = ["gold", "basic"];

/// The E18 fault plan: transient failures at `rate`, node 2 crashing at
/// op 10, node 1 running 2× slow from the start.
fn fault_plan(rate: f64) -> FaultPlan {
    FaultPlan::new(97)
        .with_transient(rate, 1)
        .with_crash(2, 10)
        .with_slow_node(1, 2.0)
}

fn cluster() -> Result<StorageCluster> {
    let domain = sea_common::Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let gen = DataGenerator::new(DataSpec::Uniform { domain }, DATA_SEED);
    let mut c = StorageCluster::with_replication(NODES, 512);
    c.load_table("t", gen.generate(RECORDS)?, Partitioning::Hash)?;
    Ok(c)
}

/// Fixed-extent count stream: near-constant fault-free cost, so a
/// latency objective calibrated just above the fault-free maximum
/// cleanly separates "healthy" from "paid for fault handling".
fn queries() -> Result<Vec<AnalyticalQuery>> {
    let spec = QuerySpec::simple_count(vec![50.0, 50.0], 22.0, (10.0, 10.0))?;
    let mut gen = QueryGenerator::new(spec, 71)?;
    Ok((0..QUERIES).map(|_| gen.next_query()).collect())
}

/// Maximum simulated wall-clock over the stream at fault rate 0 (crash
/// and slow node still in the plan): the gold tenant's objective floor.
fn calibrate_max_wall(pool: Option<ExecPool>, stream: &[AnalyticalQuery]) -> Result<f64> {
    let c = {
        let mut c = cluster()?;
        c.set_fault_plan(fault_plan(0.0));
        c
    };
    let mut exec = Executor::new(&c)
        .with_retry_policy(RetryPolicy {
            max_retries: 8,
            backoff_base_us: 10_000,
        })
        .with_partial_answers(true);
    if let Some(pool) = pool {
        exec = exec.with_pool(pool);
    }
    let mut max_wall = 0.0f64;
    for q in stream {
        max_wall = max_wall.max(exec.execute_direct("t", q)?.cost.wall_us);
    }
    Ok(max_wall)
}

/// The serialized per-arm watch state: the `--watch-out` sidecar row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchArm {
    /// Injected transient-fault rate.
    pub fault_rate: f64,
    /// Simulated time of the first straggler flag on the slow node
    /// (negative when never flagged).
    pub detect_us: f64,
    /// Simulated time of the first observed failover (negative when
    /// none occurred).
    pub failover_us: f64,
    /// Straggler-flag precision against the plan's slow-node set.
    pub precision: f64,
    /// Straggler-flag recall against the plan's slow-node set.
    pub recall: f64,
    /// Full hub snapshot: windowed series, suspicions, failover marks.
    pub watch: WatchSnapshot,
    /// Every SLO alert transition, in occurrence order.
    pub alerts: Vec<AlertRecord>,
    /// Per-tenant SLO accounting at end of run, tenant name order.
    pub slo: Vec<(String, SloStatus)>,
}

/// The whole `--watch-out` sidecar: one arm per fault rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchReport {
    /// Arms in fault-rate order.
    pub arms: Vec<WatchArm>,
}

impl WatchReport {
    /// Pretty-printed JSON (the `--watch-out` sidecar format).
    ///
    /// # Errors
    ///
    /// Serialization failures (never in practice for these types).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| sea_common::SeaError::Serde(e.to_string()))
    }
}

/// One arm: the full service + watch stack at one fault rate.
fn run_arm(
    sink: &TelemetrySink,
    pool: Option<ExecPool>,
    rate: f64,
    stream: &[AnalyticalQuery],
    gold_objective_us: f64,
    query_id: &mut u64,
) -> Result<WatchArm> {
    // The watch layer rides the telemetry stream, so each arm gets its
    // own recording sink with the hub installed as tap; bench-level
    // spans are mirrored to the caller's sink for the usual sidecars.
    let arm_sink = TelemetrySink::recording();
    let hub = WatchHub::new(WatchConfig::default());
    arm_sink.set_tap(hub.clone());

    let mut c = cluster()?;
    c.set_telemetry(arm_sink.clone());
    c.set_fault_plan(fault_plan(rate));
    let mut exec = Executor::new(&c)
        .with_retry_policy(RetryPolicy {
            max_retries: 8,
            backoff_base_us: 10_000,
        })
        .with_partial_answers(true);
    if let Some(pool) = pool {
        exec = exec.with_pool(pool);
    }
    let mut svc = QueryService::new(exec, "t");
    svc.register_tenant(
        "gold",
        TenantConfig {
            slo: Some(SloPolicy::new(gold_objective_us, 0.999)),
            ..TenantConfig::default()
        },
    )?;
    svc.register_tenant(
        "basic",
        TenantConfig {
            slo: Some(SloPolicy::new(3.0 * gold_objective_us, 0.5)),
            ..TenantConfig::default()
        },
    )?;

    for (i, q) in stream.iter().enumerate() {
        let tenant = TENANTS[i % TENANTS.len()];
        let span = query_span(sink, *query_id);
        *query_id += 1;
        let out = svc.submit(tenant, q)?;
        span.record_sim_us(out.row.wall_us);
        observe_query_us(sink, out.row.wall_us);
        // The hub clock follows the service clock: windows and
        // suspicion timestamps are pure simulated time.
        hub.advance_to(svc.sim_now_us());
    }

    let snapshot = hub.snapshot();
    let stragglers: Vec<u64> = snapshot
        .suspicions
        .iter()
        .filter(|s| s.kind == SuspicionKind::Straggler)
        .map(|s| s.node)
        .collect();
    let hits = stragglers.iter().filter(|n| **n == SLOW_NODE).count() as f64;
    let precision = if stragglers.is_empty() {
        0.0
    } else {
        hits / stragglers.len() as f64
    };
    let detect_us = snapshot
        .suspicions
        .iter()
        .find(|s| s.kind == SuspicionKind::Straggler && s.node == SLOW_NODE)
        .map_or(-1.0, |s| s.first_flagged_us);
    let failover_us = snapshot
        .first_failovers
        .iter()
        .map(|m| m.sim_us)
        .fold(f64::INFINITY, f64::min);
    let failover_us = if failover_us.is_finite() {
        failover_us
    } else {
        -1.0
    };

    let alerts = svc.alert_log().snapshot();
    // Headline watch counters and the derived event streams are
    // mirrored to the caller's sink so the perf-baseline trend block
    // and the `--log-out` event log see them (the arm sink is private).
    sink.incr("watch.alerts", alerts.len() as u64);
    sink.incr("watch.suspects", snapshot.suspicions.len() as u64);
    for a in &alerts {
        sink.event(
            "watch.alert",
            &[
                ("fault_rate", rate.into()),
                ("tenant", a.tenant.as_str().into()),
                ("raised", a.raised.into()),
                ("sim_time_us", a.sim_time_us.into()),
            ],
        );
    }
    for s in &snapshot.suspicions {
        sink.event(
            "node.suspect",
            &[
                ("fault_rate", rate.into()),
                ("node", s.node.into()),
                ("kind", s.kind.label().into()),
                ("sim_time_us", s.first_flagged_us.into()),
            ],
        );
    }

    Ok(WatchArm {
        fault_rate: rate,
        detect_us,
        failover_us,
        precision,
        recall: hits.min(1.0),
        watch: snapshot,
        alerts,
        slo: TENANTS
            .iter()
            .map(|t| {
                (
                    t.to_string(),
                    svc.tenant_slo_status(t).expect("tenant has an SLO"),
                )
            })
            .collect(),
    })
}

/// Runs every arm with an explicit pool override (`None` = the global
/// env-configured pool). The determinism suite calls this directly with
/// pools of different widths and compares serialized reports.
pub fn e21_arms_with_pool(sink: &TelemetrySink, pool: Option<ExecPool>) -> Result<WatchReport> {
    let stream = queries()?;
    let gold_objective_us = 1.02 * calibrate_max_wall(pool, &stream)?;
    let mut query_id = 0u64;
    let mut arms = Vec::with_capacity(RATES.len());
    for rate in RATES {
        arms.push(run_arm(
            sink,
            pool,
            rate,
            &stream,
            gold_objective_us,
            &mut query_id,
        )?);
    }
    Ok(WatchReport { arms })
}

/// The `--watch-out` sidecar: the full watch report as JSON.
///
/// # Errors
///
/// Experiment-internal errors while re-running the workload.
pub fn e21_watch_with(sink: &TelemetrySink) -> Result<String> {
    e21_arms_with_pool(sink, None)?.to_json()
}

/// Runs E21 without telemetry.
pub fn run_e21() -> Result<Report> {
    run_e21_with(&TelemetrySink::noop())
}

/// Runs E21. One row per injected transient-fault rate.
pub fn run_e21_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E21",
        "watch layer under faults: slow-node detection vs failover, alert precision/recall, SLO budget burn",
        &[
            "fault_rate",
            "detect_us",
            "failover_us",
            "straggler_precision",
            "straggler_recall",
            "drift_flags",
            "alerts",
            "gold_burn",
            "basic_burn",
        ],
    );
    for arm in e21_arms_with_pool(sink, None)?.arms {
        let drift_flags = arm
            .watch
            .suspicions
            .iter()
            .filter(|s| s.kind == SuspicionKind::Drift)
            .count() as f64;
        let burn = |tenant: &str| {
            arm.slo
                .iter()
                .find(|(t, _)| t == tenant)
                .map_or(0.0, |(_, s)| s.budget_burn)
        };
        report.push_row(vec![
            arm.fault_rate,
            arm.detect_us,
            arm.failover_us,
            arm.precision,
            arm.recall,
            drift_flags,
            arm.alerts.len() as f64,
            burn("gold"),
            burn("basic"),
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_node_is_detected_before_the_first_failover() {
        let r = run_e21().unwrap();
        assert_eq!(r.rows.len(), RATES.len());
        for (i, row) in r.rows.iter().enumerate() {
            let (detect, failover) = (row[1], row[2]);
            assert!(detect >= 0.0, "row {i}: slow node flagged: {detect}");
            assert!(failover >= 0.0, "row {i}: crash caused a failover");
            assert!(
                detect < failover,
                "row {i}: detection ({detect}) beats failover ({failover})"
            );
            assert_eq!(row[4], 1.0, "row {i}: straggler recall");
            assert_eq!(row[3], 1.0, "row {i}: straggler precision");
        }
    }

    #[test]
    fn slo_burn_tracks_the_fault_rate() {
        let r = run_e21().unwrap();
        // Fault-free arm: the gold objective sits above every observed
        // latency, so nothing burns and nothing alerts.
        assert_eq!(r.value(0, "alerts"), Some(0.0));
        assert_eq!(r.value(0, "gold_burn"), Some(0.0));
        // Heaviest arm: transient backoff pushes gold past its
        // objective; the basic tenant's 3× objective stays calm.
        let last = RATES.len() - 1;
        assert!(r.value(last, "gold_burn").unwrap() > 0.0);
        assert!(
            r.value(last, "gold_burn").unwrap() > r.value(last, "basic_burn").unwrap(),
            "gold burns faster than basic"
        );
    }

    #[test]
    fn watch_sidecar_is_complete_and_serializable() {
        let report = e21_arms_with_pool(&TelemetrySink::noop(), None).unwrap();
        assert_eq!(report.arms.len(), RATES.len());
        for arm in &report.arms {
            assert!(!arm.watch.series.is_empty(), "windows recorded");
            assert!(!arm.watch.suspicions.is_empty(), "slow node flagged");
            assert_eq!(arm.slo.len(), TENANTS.len());
        }
        let json = report.to_json().unwrap();
        assert!(json.contains("\"suspicions\""));
        assert!(json.contains("\"alerts\""));
        // Re-rendering is byte-stable.
        assert_eq!(json, report.to_json().unwrap());
    }
}
