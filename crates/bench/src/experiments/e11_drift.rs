//! E11 — model maintenance under query-interest drift and data updates
//! (RT1-4).
//!
//! Shape target: after an abrupt interest jump, a maintained agent
//! (audits + purging) recovers low error; after base-data updates, the
//! region invalidation restores accuracy where a stale model would keep
//! mispredicting.

use sea_common::{AggregateKind, Record, Rect, Result};
use sea_core::{AgentConfig, AgentPipeline, AnswerSource, ExecMode};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;
use sea_workload::{DriftKind, DriftingWorkload, QueryGenerator, QuerySpec};

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E11 without telemetry.
pub fn run_e11() -> Result<Report> {
    run_e11_with(&TelemetrySink::noop())
}

/// Runs E11. Columns: stream phase (0 = before jump, 1 = right after
/// jump, 2 = recovered; 3 = after data update w/ invalidation, 4 = after
/// data update w/o invalidation), mean relative error in that phase.
pub fn run_e11_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E11",
        "maintenance under interest drift and data updates",
        &["phase", "rel_err", "exact_fraction"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 43)?;
    cluster.set_telemetry(sink.clone());

    // --- Interest drift: hotspot jumps from (30,30) to (70,70) at query 250.
    {
        let exec = Executor::new(&cluster);
        let spec = QuerySpec::simple_count(vec![30.0, 30.0], 3.0, (5.0, 14.0))?;
        let gen = QueryGenerator::new(spec, 71)?;
        let mut workload = DriftingWorkload::new(
            gen,
            DriftKind::Jump {
                at_step: 250,
                offset: vec![40.0, 40.0],
            },
        );
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)?
            .with_refresh_every(16)
            .with_telemetry(sink.clone());
        let mut phase_err = [0.0f64; 3];
        let mut phase_exact = [0.0f64; 3];
        let mut phase_n = [0usize; 3];
        for step in 0..500 {
            let q = workload.next_query()?;
            let Ok(exact) = exec.execute_direct("t", &q) else {
                continue;
            };
            let span = query_span(sink, step);
            let out = pipe.process(&exec, &q)?;
            span.record_sim_us(out.cost.wall_us);
            drop(span);
            observe_query_us(sink, out.cost.wall_us);
            let phase = if step < 250 {
                0
            } else if step < 300 {
                1
            } else {
                2
            };
            phase_err[phase] += out.answer.relative_error(&exact.answer);
            if out.source == AnswerSource::Exact {
                phase_exact[phase] += 1.0;
            }
            phase_n[phase] += 1;
        }
        for p in 0..3 {
            report.push_row(vec![
                p as f64,
                phase_err[p] / phase_n[p].max(1) as f64,
                phase_exact[p] / phase_n[p].max(1) as f64,
            ]);
        }
    }

    // --- Data updates: densify the hotspot region, then compare a pipeline
    // that invalidates against one that keeps stale models.
    {
        let spec = QuerySpec::simple_count(vec![50.0, 50.0], 3.0, (5.0, 14.0))?;
        let train =
            |pipe: &mut AgentPipeline, cluster: &sea_storage::StorageCluster| -> Result<()> {
                let exec = Executor::new(cluster);
                let mut gen = QueryGenerator::new(spec.clone(), 73)?;
                for _ in 0..200 {
                    let q = gen.next_query();
                    let _ = pipe.process(&exec, &q);
                }
                Ok(())
            };
        let mut maintained =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)?
                .with_refresh_every(0);
        let mut stale = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)?
            .with_refresh_every(0);
        train(&mut maintained, &cluster)?;
        train(&mut stale, &cluster)?;

        // Double the density around the hotspot.
        let update_region = Rect::new(vec![35.0, 35.0], vec![65.0, 65.0])?;
        let extra: Vec<Record> = (0..30_000)
            .map(|i| {
                let x = 35.0 + (i % 300) as f64 * 0.1;
                let y = 35.0 + (i / 300) as f64 * 0.3;
                Record::new(1_000_000 + i, vec![x, y])
            })
            .collect();
        cluster.insert("t", extra)?;
        maintained.agent_mut().invalidate_region(&update_region)?;
        // `stale` keeps its old models.

        let exec = Executor::new(&cluster);
        let mut probe = QueryGenerator::new(spec, 79)?;
        let mut err = [0.0f64; 2];
        let mut n = 0usize;
        for _ in 0..60 {
            let q = probe.next_query();
            let Ok(exact) = exec.execute_direct("t", &q) else {
                continue;
            };
            debug_assert!(matches!(q.aggregate, AggregateKind::Count));
            let m = maintained.process(&exec, &q)?;
            let s = stale.process(&exec, &q)?;
            err[0] += m.answer.relative_error(&exact.answer);
            err[1] += s.answer.relative_error(&exact.answer);
            n += 1;
        }
        report.push_row(vec![3.0, err[0] / n as f64, f64::NAN]);
        report.push_row(vec![4.0, err[1] / n as f64, f64::NAN]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_recovers_and_invalidation_beats_stale() {
        let r = run_e11().unwrap();
        let before = r.value(0, "rel_err").unwrap();
        let recovered = r.value(2, "rel_err").unwrap();
        assert!(
            recovered < before * 3.0,
            "error recovers after the jump: before {before}, recovered {recovered}"
        );
        // Right after the jump the pipeline escalates to exact execution,
        // so answers stay correct at the price of exact fraction.
        let jump_exact = r.value(1, "exact_fraction").unwrap();
        let before_exact = r.value(0, "exact_fraction").unwrap();
        assert!(jump_exact > before_exact, "{jump_exact} vs {before_exact}");

        let maintained = r.value(3, "rel_err").unwrap();
        let stale = r.value(4, "rel_err").unwrap();
        assert!(
            maintained < stale,
            "invalidation helps: maintained {maintained} vs stale {stale}"
        );
    }
}
