//! E14 — inference-model selection per data subspace (RT3-3; \[41\], \[42\],
//! \[48\]).
//!
//! Shape target: different subspace shapes prefer different regressor
//! families, and the selected model's test error beats an always-linear
//! policy overall.

use sea_common::Result;
use sea_ml::linreg::LinearModel;
use sea_ml::selection::train_test_split;
use sea_ml::Metrics;
use sea_optimizer::select_model;
use sea_telemetry::TelemetrySink;

use crate::Report;

/// Deterministic noise in `[-0.5, 0.5)` from an integer.
fn noise(i: usize) -> f64 {
    ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0 - 0.5
}

/// Runs E14 without telemetry.
pub fn run_e14() -> Result<Report> {
    run_e14_with(&TelemetrySink::noop())
}

/// Runs E14. Columns: subspace kind (0 = linear, 1 = step, 2 = smooth
/// nonlinear), test MSE of the selected family, of always-linear, and the
/// selected family id (0 linear / 1 knn / 2 boosted). Pure in-memory ML —
/// no simulated cluster — so telemetry is bench-level spans and counters.
pub fn run_e14_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E14",
        "per-subspace inference-model selection",
        &["subspace", "selected_mse", "linear_mse", "family"],
    );
    let make = |kind: usize| -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..240).map(|i| vec![i as f64 / 2.4]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let base = match kind {
                    0 => 3.0 * x[0] + 7.0,
                    1 => {
                        if ((x[0] / 20.0) as u64).is_multiple_of(2) {
                            0.0
                        } else {
                            50.0
                        }
                    }
                    _ => (x[0] / 8.0).sin() * 40.0,
                };
                base + noise(i)
            })
            .collect();
        (xs, ys)
    };
    for kind in 0..3usize {
        let span = sink.span("bench.e14.subspace");
        span.tag("kind", kind);
        let (xs, ys) = make(kind);
        let (train_x, train_y, test_x, test_y) = train_test_split(&xs, &ys, 5)?;
        let (choice, _scores) = select_model(&train_x, &train_y, 5)?;
        let selected = Metrics::evaluate(&choice, &test_x, &test_y)?.mse;
        let linear = LinearModel::fit(&train_x, &train_y, 1e-6)?;
        let linear_mse = Metrics::evaluate(&linear, &test_x, &test_y)?.mse;
        let family = match choice.family() {
            "linear" => 0.0,
            "knn" => 1.0,
            _ => 2.0,
        };
        if sink.is_enabled() {
            span.tag("family", choice.family());
        }
        sink.incr("bench.e14.selections", 1);
        drop(span);
        report.push_row(vec![kind as f64, selected, linear_mse, family]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_adapts_per_subspace() {
        let r = run_e14().unwrap();
        // Linear subspace picks linear.
        assert_eq!(r.value(0, "family"), Some(0.0));
        // Non-linear subspaces pick something else.
        assert_ne!(r.value(1, "family"), Some(0.0));
        assert_ne!(r.value(2, "family"), Some(0.0));
        // On non-linear subspaces the selected model beats always-linear.
        for row in 1..3 {
            let sel = r.value(row, "selected_mse").unwrap();
            let lin = r.value(row, "linear_mse").unwrap();
            assert!(sel < lin / 2.0, "row {row}: selected {sel} linear {lin}");
        }
    }
}
