//! E18 — availability and accuracy under injected faults.
//!
//! The fault-tolerance trade, measured: a seeded [`FaultPlan`] crashes
//! one node, slows another, and injects transient scan failures at a
//! swept rate. The *replicated* arm rides out every fault — retries ride
//! out the transients, the chained replica serves the crashed partition —
//! and pays for it in simulated wall-clock (backoff, slow replicas). The
//! *unreplicated* arm runs in partial-answer mode: it never blocks on the
//! dead partition, answering fast but incompletely
//! (`answered_fraction < 1`) and therefore inexactly.
//!
//! The `query.retries` / `query.failovers` / `query.degraded` counters
//! flow into the experiment sink, so the Prometheus sidecar of a bench
//! run shows exactly how much fault handling each arm performed.

use sea_common::{Rect, Result};
use sea_query::{Executor, RetryPolicy};
use sea_storage::{FaultPlan, Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;
use sea_workload::{DataGenerator, DataSpec};

use crate::experiments::common::{count_workload, observe_query_us, query_span};
use crate::Report;

const RECORDS: usize = 20_000;
const NODES: usize = 8;
const DATA_SEED: u64 = 31;
const QUERIES: usize = 40;

fn cluster(replicated: bool) -> Result<StorageCluster> {
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let gen = DataGenerator::new(DataSpec::Uniform { domain }, DATA_SEED);
    let mut c = if replicated {
        StorageCluster::with_replication(NODES, 512)
    } else {
        StorageCluster::new(NODES, 512)
    };
    c.load_table("t", gen.generate(RECORDS)?, Partitioning::Hash)?;
    Ok(c)
}

fn fault_plan(rate: f64) -> FaultPlan {
    FaultPlan::new(97)
        .with_transient(rate, 1)
        .with_crash(2, 10)
        .with_slow_node(1, 2.0)
}

/// One arm at one fault rate: mean relative error vs healthy ground
/// truth, mean answered fraction, mean simulated wall-clock.
fn run_arm(
    sink: &TelemetrySink,
    truth: &[sea_common::AnswerValue],
    replicated: bool,
    rate: f64,
    query_id: &mut u64,
) -> Result<(f64, f64, f64)> {
    let mut c = cluster(replicated)?;
    c.set_telemetry(sink.clone());
    c.set_fault_plan(fault_plan(rate));
    // Both arms run in partial-answer mode with a generous retry budget;
    // what separates them is whether a replica exists to fail over to.
    let exec = Executor::new(&c)
        .with_retry_policy(RetryPolicy {
            max_retries: 8,
            backoff_base_us: 10_000,
        })
        .with_partial_answers(true);
    let mut gen = count_workload(4.0, 14.0, 71)?;
    let (mut err, mut answered, mut wall) = (0.0, 0.0, 0.0);
    for t in truth {
        let q = gen.next_query();
        let span = query_span(sink, *query_id);
        *query_id += 1;
        let out = exec.execute_direct("t", &q)?;
        span.record_sim_us(out.cost.wall_us);
        observe_query_us(sink, out.cost.wall_us);
        err += out.answer.relative_error(t);
        answered += out.cost.answered_fraction;
        wall += out.cost.wall_us;
    }
    let n = truth.len() as f64;
    Ok((err / n, answered / n, wall / n))
}

/// Runs E18 without telemetry.
pub fn run_e18() -> Result<Report> {
    run_e18_with(&TelemetrySink::noop())
}

/// Runs E18. One row per injected transient-fault rate (a node crash and
/// a slow node are always in the plan); columns pair the replicated arm
/// against the unreplicated partial-answer arm.
pub fn run_e18_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E18",
        "availability/accuracy under injected faults: replication vs partial answers",
        &[
            "fault_rate",
            "repl_rel_err",
            "repl_answered",
            "repl_wall_us",
            "norepl_rel_err",
            "norepl_answered",
            "norepl_wall_us",
        ],
    );
    // Ground truth from a healthy, unreplicated cluster over the same
    // data and the same query stream.
    let healthy = cluster(false)?;
    let exec = Executor::new(&healthy);
    let mut gen = count_workload(4.0, 14.0, 71)?;
    let mut truth = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        truth.push(exec.execute_direct("t", &gen.next_query())?.answer);
    }

    let mut query_id = 0u64;
    for rate in [0.0, 0.05, 0.1, 0.2] {
        let (repl_err, repl_answered, repl_wall) =
            run_arm(sink, &truth, true, rate, &mut query_id)?;
        let (norepl_err, norepl_answered, norepl_wall) =
            run_arm(sink, &truth, false, rate, &mut query_id)?;
        report.push_row(vec![
            rate,
            repl_err,
            repl_answered,
            repl_wall,
            norepl_err,
            norepl_answered,
            norepl_wall,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_buys_exactness_and_faults_cost_time() {
        let r = run_e18().unwrap();
        for (i, row) in r.rows.iter().enumerate() {
            let (repl_err, repl_answered) = (row[1], row[2]);
            assert_eq!(repl_answered, 1.0, "row {i}: replication answers fully");
            assert!(
                repl_err < 1e-9,
                "row {i}: replicated answers stay exact: {repl_err}"
            );
        }
        // The crashed partition is simply missing without replication.
        let last = r.rows.last().unwrap();
        assert!(
            last[5] < 1.0,
            "unreplicated arm degrades: answered {}",
            last[5]
        );
        assert!(last[4] > 0.0, "partial answers are inexact: {}", last[4]);
        // Fault handling is billed: the replicated arm's wall-clock grows
        // with the injected fault rate (retries + backoff).
        let wall0 = r.value(0, "repl_wall_us").unwrap();
        let wall3 = r.value(3, "repl_wall_us").unwrap();
        assert!(wall3 > wall0, "faults cost time: {wall0} -> {wall3}");
    }

    #[test]
    fn fault_telemetry_reaches_the_sink() {
        let sink = TelemetrySink::recording();
        run_e18_with(&sink).unwrap();
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("query.retries") > 0, "transients were retried");
        assert!(snap.counter("query.failovers") > 0, "replicas served reads");
        assert!(
            snap.counter("query.degraded") > 0,
            "partitions went missing"
        );
    }
}
