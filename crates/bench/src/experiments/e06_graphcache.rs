//! E6 — subgraph-query semantic caching (\[34\], \[35\]).
//!
//! Shape target: on workloads with realistic pattern reuse the cache cuts
//! isomorphism verifications by large factors — "up to 40X" at high
//! overlap.

use sea_common::Result;
use sea_graph::{GraphCache, GraphDb, GraphGenerator};
use sea_telemetry::TelemetrySink;

use crate::Report;

/// Runs E6 without telemetry.
pub fn run_e6() -> Result<Report> {
    run_e6_with(&TelemetrySink::noop())
}

/// Runs E6. Columns: distinct patterns in a 200-query workload,
/// verifications without cache, with cache, and the speedup factor.
/// `GraphDb` has no simulated cluster underneath, so telemetry here is
/// bench-level: one span per workload sweep plus verification counters.
pub fn run_e6_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E6",
        "subgraph queries: semantic cache vs no cache",
        &[
            "distinct_patterns",
            "uncached_verifs",
            "cached_verifs",
            "factor",
        ],
    );
    // Database: 400 labelled graphs.
    let data_gen = GraphGenerator::new(4, 0.22, 42);
    let mut db = GraphDb::new();
    for i in 0..400 {
        db.add_graph(data_gen.generate(14 + (i % 8), i as u64));
    }
    let query_gen = GraphGenerator::new(4, 0.5, 9);

    for &distinct in &[2usize, 5, 20, 100] {
        let sweep = sink.span("bench.e6.sweep");
        sweep.tag("distinct_patterns", distinct);
        let patterns: Vec<_> = (0..distinct)
            .map(|i| query_gen.generate(3 + (i % 3), 500 + i as u64))
            .collect();
        let mut uncached = 0usize;
        let mut cached = 0usize;
        let mut cache = GraphCache::new(128);
        for i in 0..200 {
            let q = &patterns[i % distinct];
            let (_, cold) = db.query(q);
            uncached += cold.verifications;
            let (_, warm) = cache.query(&db, q);
            cached += warm.verifications;
        }
        sink.incr("bench.e6.uncached_verifications", uncached as u64);
        sink.incr("bench.e6.cached_verifications", cached as u64);
        drop(sweep);
        report.push_row(vec![
            distinct as f64,
            uncached as f64,
            cached as f64,
            uncached as f64 / cached.max(1) as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_overlap_gives_tens_of_x() {
        let r = run_e6().unwrap();
        let factors = r.column("factor");
        assert!(
            factors[0] > 20.0,
            "2-pattern workload caches hard: {factors:?}"
        );
        assert!(
            factors[0] > *factors.last().unwrap(),
            "factor shrinks as overlap drops: {factors:?}"
        );
    }
}
