//! E5 — distributed kNN: coordinator–cohort vs MapReduce (\[33\]).
//!
//! Shape target: the cohort operator's advantage grows with data size
//! toward the paper's "three orders of magnitude"; its cost scales with
//! k, not with n.

use sea_common::{CostModel, Point, Result};
use sea_knn::{mapreduce_knn, DistributedKnnIndex};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E5 without telemetry.
pub fn run_e5() -> Result<Report> {
    run_e5_with(&TelemetrySink::noop())
}

/// Runs E5. Columns: records, k, time factor, disk-bytes factor.
pub fn run_e5_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E5",
        "kNN: coordinator-cohort vs MapReduce",
        &["records", "k", "time_factor", "bytes_factor"],
    );
    let model = CostModel::default();
    let mut qid = 0u64;
    for &n in &[50_000usize, 200_000, 500_000] {
        let mut cluster = uniform_cluster(n, 8, 2)?;
        cluster.set_telemetry(sink.clone());
        let build_span = sink.span("bench.e5.index_build");
        let index = DistributedKnnIndex::build(&cluster, "t", &model)?;
        drop(build_span);
        for &k in &[1usize, 10, 50] {
            let q = Point::new(vec![42.0, 37.0]);
            let span = query_span(sink, qid);
            qid += 1;
            let mr = mapreduce_knn(&cluster, "t", &q, k, &model)?;
            let cc = index.query(&q, k, &model)?;
            span.record_sim_us(mr.cost.wall_us + cc.cost.wall_us);
            drop(span);
            observe_query_us(sink, cc.cost.wall_us);
            report.push_row(vec![
                n as f64,
                k as f64,
                mr.cost.wall_us / cc.cost.wall_us.max(1e-9),
                mr.cost.totals.disk_bytes as f64 / (cc.cost.totals.disk_bytes.max(1)) as f64,
            ]);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_grows_with_n() {
        let r = run_e5().unwrap();
        // Compare k=10 rows across sizes.
        let rows: Vec<(f64, f64)> = r
            .rows
            .iter()
            .filter(|row| row[1] == 10.0)
            .map(|row| (row[0], row[2]))
            .collect();
        assert!(rows.len() == 3);
        assert!(rows[2].1 > rows[0].1, "factor grows with n: {rows:?}");
        assert!(rows[2].1 > 100.0, "large-n factor: {rows:?}");
    }
}
