//! E13 — scalable missing-value imputation (\[36\]).
//!
//! Shape target: the grid-partitioned imputer matches the full-scan
//! baseline's accuracy while examining a small fraction of the candidates
//! and finishing far faster, with the gap widening as data grows.

use sea_common::{CostModel, Record, Rect, Result};
use sea_imputation::{fullscan_impute, GridImputer};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span};
use crate::Report;

fn cluster(n: u64) -> Result<StorageCluster> {
    let mut c = StorageCluster::new(8, 512);
    let per_x = (n / 100).max(1);
    let records: Vec<Record> = (0..n)
        .map(|i| {
            let x = (i / per_x) as f64;
            Record::new(i, vec![x, 2.0 * x + 5.0, 100.0 - x])
        })
        .collect();
    c.load_table(
        "t",
        records,
        Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 8),
        },
    )?;
    Ok(c)
}

fn probes() -> Vec<Record> {
    (0..25)
        .map(|i| {
            let x = 2.0 + (i * 4) as f64;
            Record::new(900_000 + i as u64, vec![x, f64::NAN, 100.0 - x])
        })
        .collect()
}

/// Runs E13 without telemetry.
pub fn run_e13() -> Result<Report> {
    run_e13_with(&TelemetrySink::noop())
}

/// Runs E13. Columns: table size, full-scan vs grid time factor,
/// candidates factor, and each method's RMSE against ground truth.
pub fn run_e13_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E13",
        "missing-value imputation: grid-partitioned vs full scan",
        &[
            "records",
            "time_factor",
            "candidates_factor",
            "full_rmse",
            "grid_rmse",
        ],
    );
    let model = CostModel::default();
    let domain = Rect::new(vec![0.0, 0.0, 0.0], vec![100.0, 205.0, 100.0])?;
    for (qid, &n) in [20_000u64, 100_000, 400_000].iter().enumerate() {
        let mut c = cluster(n)?;
        c.set_telemetry(sink.clone());
        let probes = probes();
        let span = query_span(sink, qid as u64);
        let full = fullscan_impute(&c, "t", &probes, 5, &model)?;
        let imputer = GridImputer::new(domain.clone(), 50)?;
        let grid = imputer.impute(&c, "t", &probes, 5, &model)?;
        span.record_sim_us(full.cost.wall_us + grid.cost.wall_us);
        drop(span);
        observe_query_us(sink, grid.cost.wall_us);

        let rmse = |imputed: &[Record]| -> f64 {
            let mut sum = 0.0;
            for (probe, rec) in probes.iter().zip(imputed) {
                let truth = 2.0 * probe.value(0) + 5.0;
                sum += (rec.value(1) - truth).powi(2);
            }
            (sum / probes.len() as f64).sqrt()
        };
        report.push_row(vec![
            n as f64,
            full.cost.wall_us / grid.cost.wall_us.max(1e-9),
            full.candidates_examined as f64 / grid.candidates_examined.max(1) as f64,
            rmse(&full.imputed),
            rmse(&grid.imputed),
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_faster_and_as_accurate() {
        let r = run_e13().unwrap();
        let time = r.column("time_factor");
        assert!(time.last().unwrap() > &time[0], "gap widens: {time:?}");
        assert!(time.last().unwrap() > &3.0, "{time:?}");
        for row in &r.rows {
            let (full_rmse, grid_rmse) = (row[3], row[4]);
            assert!(grid_rmse <= full_rmse + 0.5, "accuracy holds: {row:?}");
            assert!(grid_rmse < 1.0, "near-exact recovery: {row:?}");
        }
    }
}
