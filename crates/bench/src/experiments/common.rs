//! Shared workload/cluster construction for the experiment runners, plus
//! the telemetry conventions instrumented experiments share.

use sea_common::{AggregateKind, AnalyticalQuery, Record, Rect, Result};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::{SpanGuard, TelemetrySink};
use sea_workload::{DataGenerator, DataSpec, QueryGenerator, QuerySpec};

/// Histogram every instrumented experiment feeds per-query simulated
/// latency into (the p50/p95/p99 source in `metrics.json`).
pub const QUERY_LATENCY_HISTOGRAM: &str = "bench.query_sim_us";

/// Opens the root `bench.query` span for one experiment query and tags
/// subsequent events with `id`. Spans opened further down the stack
/// (pipeline, executor, storage) nest under the returned guard; callers
/// should [`SpanGuard::record_sim_us`] the query's modelled cost before
/// dropping it.
#[must_use]
pub fn query_span(sink: &TelemetrySink, id: u64) -> SpanGuard {
    sink.begin_query(id);
    sink.incr("bench.queries", 1);
    sink.span("bench.query")
}

/// Records one query's simulated wall-clock microseconds into
/// [`QUERY_LATENCY_HISTOGRAM`].
pub fn observe_query_us(sink: &TelemetrySink, wall_us: f64) {
    sink.observe(QUERY_LATENCY_HISTOGRAM, wall_us);
}

/// A uniform 2-D cluster over `[0, 100]²` with `n` records on `nodes`
/// nodes (hash partitioning, 512-record blocks).
pub fn uniform_cluster(n: usize, nodes: usize, seed: u64) -> Result<StorageCluster> {
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    let gen = DataGenerator::new(DataSpec::Uniform { domain }, seed);
    let mut cluster = StorageCluster::new(nodes, 512);
    cluster.load_table("t", gen.generate(n)?, Partitioning::Hash)?;
    Ok(cluster)
}

/// A 3-D linearly-correlated cluster: attr1 = 2·attr0 + 5 + N(0, noise),
/// attr2 = −attr0 + 100 + N(0, noise); attr0 uniform on [0, 100].
pub fn correlated_cluster(n: usize, nodes: usize, noise: f64, seed: u64) -> Result<StorageCluster> {
    let gen = DataGenerator::new(
        DataSpec::LinearCorrelated {
            x_lo: 0.0,
            x_hi: 100.0,
            slope: vec![2.0, -1.0],
            intercept: vec![5.0, 100.0],
            noise_sigma: vec![noise, noise],
        },
        seed,
    );
    let mut cluster = StorageCluster::new(nodes, 512);
    cluster.load_table("t", gen.generate(n)?, Partitioning::Hash)?;
    Ok(cluster)
}

/// A hotspot COUNT workload over `[0, 100]²` centred at (50, 50).
pub fn count_workload(extent_lo: f64, extent_hi: f64, seed: u64) -> Result<QueryGenerator> {
    let spec = QuerySpec::simple_count(vec![50.0, 50.0], 3.0, (extent_lo, extent_hi))?;
    QueryGenerator::new(spec, seed)
}

/// A rank-join pair of tables with `n` tuples each over `keys` join keys
/// (attr 0 = key, attr 1 = score, attr 2 = payload).
pub fn rankjoin_cluster(n: u64, keys: u64, nodes: usize) -> Result<StorageCluster> {
    let mut c = StorageCluster::new(nodes, 512);
    let score =
        |i: u64, salt: u64| ((i.wrapping_mul(2654435761).wrapping_add(salt)) % 10_000) as f64;
    let left: Vec<Record> = (0..n)
        .map(|i| Record::new(i, vec![(i % keys) as f64, score(i, 17), 1.0]))
        .collect();
    let right: Vec<Record> = (0..n)
        .map(|i| Record::new(i, vec![(i % keys) as f64, score(i, 91), 2.0]))
        .collect();
    c.load_table("l", left, Partitioning::Hash)?;
    c.load_table("r", right, Partitioning::Hash)?;
    Ok(c)
}

/// Mean relative error of `f(query)` against exact ground truth over a
/// probe set drawn from `gen`. Queries whose exact answer is undefined
/// (empty subspaces) are skipped.
pub fn mean_relative_error(
    cluster: &StorageCluster,
    gen: &mut QueryGenerator,
    probes: usize,
    mut f: impl FnMut(&AnalyticalQuery) -> Option<sea_common::AnswerValue>,
) -> Result<f64> {
    let exec = sea_query::Executor::new(cluster);
    let mut total = 0.0;
    let mut n = 0usize;
    let mut attempts = 0usize;
    while n < probes && attempts < probes * 4 {
        attempts += 1;
        let q = gen.next_query();
        let Ok(exact) = exec.execute_direct("t", &q) else {
            continue;
        };
        let Some(pred) = f(&q) else { continue };
        total += pred.relative_error(&exact.answer);
        n += 1;
    }
    Ok(if n == 0 { f64::NAN } else { total / n as f64 })
}

/// A single-hotspot workload with an arbitrary aggregate and centre.
pub fn aggregate_workload(
    center: Vec<f64>,
    spread: f64,
    extents: (f64, f64),
    aggregate: AggregateKind,
    seed: u64,
) -> Result<QueryGenerator> {
    let mut spec = QuerySpec::simple_count(center, spread, extents)?;
    spec.aggregates = vec![aggregate];
    QueryGenerator::new(spec, seed)
}
