//! E8 — storage footprint: SEA models vs sampling AQP vs synopsis caches.
//!
//! The paper's §II critique: Data-Canopy-style caches "can grow
//! prohibitively large", BlinkDB-style "sample sizes can become
//! prohibitively large", DBL additionally stores query history. The
//! agent's models are bounded by quanta × pair-cap.

use sea_baselines::{DataCanopy, LearnedAqp, SamplingAqp};
use sea_common::{AggregateKind, AnalyticalQuery, Rect, Region, Result};
use sea_core::{AgentConfig, SeaAgent};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{count_workload, observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E8 without telemetry.
pub fn run_e8() -> Result<Report> {
    run_e8_with(&TelemetrySink::noop())
}

/// Runs E8. Columns: queries processed, then bytes held by the agent,
/// the stratified sample, the canopy cache, and the DBL-style layer.
pub fn run_e8_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E8",
        "storage footprint of each approach (bytes)",
        &["queries", "agent", "blinkdb_sample", "canopy", "dbl"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 23)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])?;
    // BlinkDB-style sample sized to reach roughly the agent's accuracy on
    // this workload (32 strata × 64 records).
    let sample = SamplingAqp::build(&cluster, "t", domain.clone(), 8, 64, 7)?;
    let mut dbl = LearnedAqp::new(
        SamplingAqp::build(&cluster, "t", domain.clone(), 8, 64, 9)?,
        5,
    )?;
    let mut canopy = DataCanopy::new(&cluster, "t", domain.clone(), 100)?;
    let mut agent = SeaAgent::new(2, AgentConfig::default())?;

    let mut gen = count_workload(4.0, 14.0, 41)?;
    let mut processed = 0usize;
    for checkpoint in [50usize, 200, 500] {
        while processed < checkpoint {
            let q = gen.next_query();
            let span = query_span(sink, processed as u64);
            processed += 1;
            if let Ok(exact) = exec.execute_direct("t", &q) {
                span.record_sim_us(exact.cost.wall_us);
                observe_query_us(sink, exact.cost.wall_us);
                agent.train(&q, &exact.answer)?;
                let _ = dbl.observe(&q, &exact.answer);
            }
            drop(span);
            // The canopy answers 1-D slab statistics; feed it the query's
            // dim-0 slab so its cache grows with the workload's footprint.
            let bbox = q.region.bounding_rect();
            let slab = AnalyticalQuery::new(
                Region::Range(Rect::new(
                    vec![bbox.lo()[0], 0.0],
                    vec![bbox.hi()[0], 100.0],
                )?),
                AggregateKind::Count,
            );
            let _ = canopy.query(&slab);
        }
        report.push_row(vec![
            processed as f64,
            agent.stats().memory_bytes as f64,
            sample.storage_bytes() as f64,
            canopy.storage_bytes() as f64,
            dbl.storage_bytes() as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_stays_smallest_and_bounded() {
        let r = run_e8().unwrap();
        let last = r.rows.last().unwrap();
        let (agent, sample, dbl) = (last[1], last[2], last[4]);
        assert!(agent < sample, "agent {agent} vs sample {sample}");
        assert!(agent < dbl, "agent {agent} vs dbl {dbl}");
        // The agent's growth flattens once per-quantum pair caps bite:
        // going from 200 to 500 queries costs far less than 50 → 200 did.
        let g1 = r.value(1, "agent").unwrap() / r.value(0, "agent").unwrap();
        let g2 = r.value(2, "agent").unwrap() / r.value(1, "agent").unwrap();
        assert!(g2 < g1, "growth flattens: {g1} then {g2}");
    }
}
