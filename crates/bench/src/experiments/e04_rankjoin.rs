//! E4 — rank-join: surgical statistical-index access vs MapReduce (\[30\]).
//!
//! Shape target: the surgical operator wins by orders of magnitude in
//! bytes moved and money, and by a time factor that *grows with data
//! size* (the paper reports up to 6 orders of magnitude on real
//! deployments).

use sea_common::{AggregateKind, AnalyticalQuery, CostMeter, CostModel, Rect, Region, Result};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::Executor;
use sea_rankjoin::{mapreduce_rank_join, surgical_rank_join, ScoreIndex};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span, rankjoin_cluster};
use crate::Report;

/// Runs E4 without telemetry.
pub fn run_e4() -> Result<Report> {
    run_e4_with(&TelemetrySink::noop())
}

/// Agent-assisted planning phase: before committing to a join strategy,
/// the system answers COUNT cardinality probes over the left table with
/// the learned agent (falling back to exact scans while untrained).
/// This exercises the full predict-vs-exact decision path — it feeds
/// `agent.predicted` / `agent.fallback` events and deep span trees into
/// `sink` — and deliberately never touches the report rows, so E4's
/// result table is identical with or without a recording sink.
fn plan_cardinalities(sink: &TelemetrySink, qid: &mut u64) -> Result<()> {
    let mut cluster = rankjoin_cluster(10_000, 200, 8)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);
    let mut pipe = AgentPipeline::new(3, AgentConfig::default(), "l", 0.3, ExecMode::Direct)?
        .with_telemetry(sink.clone());
    for i in 0..40u64 {
        let e = 20.0 + (i % 8) as f64;
        let rect = Rect::new(vec![100.0 - e, 0.0, 0.0], vec![100.0 + e, 10_000.0, 3.0])?;
        let q = AnalyticalQuery::new(Region::Range(rect), AggregateKind::Count);
        let span = query_span(sink, *qid);
        *qid += 1;
        if let Ok(out) = pipe.process(&exec, &q) {
            span.record_sim_us(out.cost.wall_us);
            drop(span);
            observe_query_us(sink, out.cost.wall_us);
        }
    }
    Ok(())
}

/// Runs E4. Columns: tuples per table, time factor, bytes factor, money
/// factor, tuples retrieved by each side. Join-level spans, per-query
/// latency histograms, and planning-phase agent events flow into `sink`.
pub fn run_e4_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E4",
        "rank-join: surgical index vs MapReduce shuffle",
        &[
            "tuples",
            "time_factor",
            "bytes_factor",
            "money_factor",
            "surgical_tuples",
            "mapreduce_tuples",
        ],
    );
    let mut qid = 0u64;
    plan_cardinalities(sink, &mut qid)?;
    let model = CostModel::default();
    for &n in &[10_000u64, 50_000, 200_000] {
        let mut cluster = rankjoin_cluster(n, n / 50, 8)?;
        cluster.set_telemetry(sink.clone());
        let span = query_span(sink, qid);
        qid += 1;
        let li = ScoreIndex::build(&cluster, "l", &mut CostMeter::new())?;
        let ri = ScoreIndex::build(&cluster, "r", &mut CostMeter::new())?;
        let surgical = surgical_rank_join(&li, &ri, 10, 256, &model)?;
        let mr = mapreduce_rank_join(&cluster, "l", "r", 10, &model)?;
        span.record_sim_us(surgical.cost.wall_us + mr.cost.wall_us);
        drop(span);
        observe_query_us(sink, surgical.cost.wall_us);
        observe_query_us(sink, mr.cost.wall_us);
        let bytes = |o: &sea_rankjoin::RankJoinOutcome| {
            (o.cost.totals.disk_bytes + o.cost.totals.lan_bytes) as f64
        };
        report.push_row(vec![
            n as f64,
            mr.cost.wall_us / surgical.cost.wall_us,
            bytes(&mr) / bytes(&surgical),
            mr.cost.money / surgical.cost.money.max(1e-12),
            surgical.tuples_retrieved as f64,
            mr.tuples_retrieved as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_grow_with_data_size() {
        let r = run_e4().unwrap();
        let time = r.column("time_factor");
        let bytes = r.column("bytes_factor");
        assert!(
            time.last().unwrap() > &time[0],
            "time advantage widens: {time:?}"
        );
        assert!(time.last().unwrap() > &5.0, "{time:?}");
        assert!(bytes.last().unwrap() > &10.0, "{bytes:?}");
    }
}
