//! E4 — rank-join: surgical statistical-index access vs MapReduce (\[30\]).
//!
//! Shape target: the surgical operator wins by orders of magnitude in
//! bytes moved and money, and by a time factor that *grows with data
//! size* (the paper reports up to 6 orders of magnitude on real
//! deployments).

use sea_common::{CostMeter, CostModel, Result};
use sea_rankjoin::{mapreduce_rank_join, surgical_rank_join, ScoreIndex};

use crate::experiments::common::rankjoin_cluster;
use crate::Report;

/// Runs E4. Columns: tuples per table, time factor, bytes factor, money
/// factor, tuples retrieved by each side.
pub fn run_e4() -> Result<Report> {
    let mut report = Report::new(
        "E4",
        "rank-join: surgical index vs MapReduce shuffle",
        &[
            "tuples",
            "time_factor",
            "bytes_factor",
            "money_factor",
            "surgical_tuples",
            "mapreduce_tuples",
        ],
    );
    let model = CostModel::default();
    for &n in &[10_000u64, 50_000, 200_000] {
        let cluster = rankjoin_cluster(n, n / 50, 8)?;
        let li = ScoreIndex::build(&cluster, "l", &mut CostMeter::new())?;
        let ri = ScoreIndex::build(&cluster, "r", &mut CostMeter::new())?;
        let surgical = surgical_rank_join(&li, &ri, 10, 256, &model)?;
        let mr = mapreduce_rank_join(&cluster, "l", "r", 10, &model)?;
        let bytes = |o: &sea_rankjoin::RankJoinOutcome| {
            (o.cost.totals.disk_bytes + o.cost.totals.lan_bytes) as f64
        };
        report.push_row(vec![
            n as f64,
            mr.cost.wall_us / surgical.cost.wall_us,
            bytes(&mr) / bytes(&surgical),
            mr.cost.money / surgical.cost.money.max(1e-12),
            surgical.tuples_retrieved as f64,
            mr.tuples_retrieved as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_grow_with_data_size() {
        let r = run_e4().unwrap();
        let time = r.column("time_factor");
        let bytes = r.column("bytes_factor");
        assert!(
            time.last().unwrap() > &time[0],
            "time advantage widens: {time:?}"
        );
        assert!(time.last().unwrap() > &5.0, "{time:?}");
        assert!(bytes.last().unwrap() > &10.0, "{bytes:?}");
    }
}
