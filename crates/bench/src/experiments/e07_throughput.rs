//! E7 — system throughput: sustainable queries/second.
//!
//! The paper's scalability complaint is that the system "cannot scale as
//! query arrival rates increase". Sustainable throughput is the inverse of
//! mean service time; the agent answers most queries from models and so
//! sustains orders of magnitude higher arrival rates.

use sea_common::Result;
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{count_workload, observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E7 without telemetry.
pub fn run_e7() -> Result<Report> {
    run_e7_with(&TelemetrySink::noop())
}

/// Runs E7. Columns: records, sustainable qps for BDAS-only, direct-only,
/// and the trained agent pipeline. Per-query spans, latency histograms,
/// and agent decision events flow into `sink`.
pub fn run_e7_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E7",
        "sustainable throughput (queries/second)",
        &["records", "bdas_qps", "direct_qps", "agent_qps"],
    );
    let mut qid = 0u64;
    for &n in &[50_000usize, 200_000] {
        let mut cluster = uniform_cluster(n, 8, 19)?;
        cluster.set_telemetry(sink.clone());
        let exec = Executor::new(&cluster);

        let mut gen = count_workload(5.0, 15.0, 23)?;
        let mut bdas_us = 0.0;
        let mut direct_us = 0.0;
        for _ in 0..15 {
            let q = gen.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            let b = exec.execute_bdas("t", &q)?.cost.wall_us;
            let d = exec.execute_direct("t", &q)?.cost.wall_us;
            span.record_sim_us(b + d);
            drop(span);
            observe_query_us(sink, b);
            observe_query_us(sink, d);
            bdas_us += b;
            direct_us += d;
        }
        bdas_us /= 15.0;
        direct_us /= 15.0;

        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)?
            .with_refresh_every(32)
            .with_telemetry(sink.clone());
        let mut train = count_workload(5.0, 15.0, 27)?;
        for _ in 0..150 {
            let q = train.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            if let Ok(out) = pipe.process(&exec, &q) {
                span.record_sim_us(out.cost.wall_us);
            }
        }
        // Prediction-phase service time: the model prediction itself is
        // ~0.1 ms of agent compute plus the amortized audit.
        let mut probe = count_workload(5.0, 15.0, 37)?;
        let mut agent_us = 0.0;
        const PREDICT_US: f64 = 100.0;
        for _ in 0..60 {
            let q = probe.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            let Ok(out) = pipe.process(&exec, &q) else {
                continue;
            };
            span.record_sim_us(out.cost.wall_us);
            drop(span);
            observe_query_us(sink, PREDICT_US + out.cost.wall_us);
            agent_us += PREDICT_US + out.cost.wall_us;
        }
        agent_us /= 60.0;

        report.push_row(vec![
            n as f64,
            1e6 / bdas_us,
            1e6 / direct_us,
            1e6 / agent_us,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_sustains_far_higher_rates() {
        let r = run_e7().unwrap();
        for row in &r.rows {
            let (bdas, agent) = (row[1], row[3]);
            assert!(agent > bdas * 5.0, "agent {agent} vs bdas {bdas}");
        }
        // BDAS throughput degrades with data size; the agent's does not
        // degrade anywhere near as fast.
        let bdas = r.column("bdas_qps");
        assert!(bdas[1] < bdas[0], "{bdas:?}");
    }
}
