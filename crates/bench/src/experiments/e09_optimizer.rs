//! E9 — execution-strategy crossovers and the learned selector (RT3).
//!
//! Shape target: index-fetch wins narrow selections, scan-aggregate wins
//! wide ones, the crossover sits at a selectivity between them, and the
//! trained selector's total cost is close to the per-query oracle.

use sea_common::{AggregateKind, AnalyticalQuery, CostModel, Point, Record, Rect, Region, Result};
use sea_optimizer::{ExecutionEngines, LearnedOptimizer, QueryStrategy};
use sea_storage::{Partitioning, StorageCluster};

use crate::Report;

fn cluster() -> Result<StorageCluster> {
    let mut c = StorageCluster::new(4, 512);
    let records: Vec<Record> = (0..80_000)
        .map(|i| Record::new(i, vec![(i / 800) as f64, (i % 800) as f64 / 2.0]))
        .collect();
    c.load_table(
        "t",
        records,
        Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
        },
    )?;
    Ok(c)
}

fn query(e: f64) -> Result<AnalyticalQuery> {
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(
            &Point::new(vec![50.0, 200.0]),
            &[e, 4.0 * e],
        )?),
        AggregateKind::Count,
    ))
}

/// Runs E9. Columns: query extent, estimated selectivity, scan µs,
/// index-fetch µs, oracle choice (0 = scan, 1 = index), learned choice.
pub fn run_e9() -> Result<Report> {
    let mut report = Report::new(
        "E9",
        "strategy crossover and learned selection",
        &[
            "extent",
            "selectivity",
            "scan_us",
            "index_us",
            "oracle",
            "learned",
        ],
    );
    let c = cluster()?;
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 400.0])?;
    let engines = ExecutionEngines::build(&c, "t", domain, 100)?;
    let model = CostModel::default();

    let mut opt = LearnedOptimizer::new(&c, "t", 32)?;
    for i in 0..30 {
        let e = 0.3 + i as f64 * 1.6;
        opt.train(&engines, &query(e)?, &model)?;
    }

    for &e in &[0.3, 1.0, 3.0, 8.0, 20.0, 45.0] {
        let q = query(e)?;
        let scan = engines.execute(QueryStrategy::ScanAggregate, &q, &model)?;
        let index = engines.execute(QueryStrategy::IndexFetch, &q, &model)?;
        let oracle = if scan.cost.wall_us <= index.cost.wall_us {
            0.0
        } else {
            1.0
        };
        let learned = match opt.choose(&q)? {
            QueryStrategy::ScanAggregate => 0.0,
            QueryStrategy::IndexFetch => 1.0,
        };
        report.push_row(vec![
            e,
            opt.estimate_selectivity(&q),
            scan.cost.wall_us,
            index.cost.wall_us,
            oracle,
            learned,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_and_agreement() {
        let r = run_e9().unwrap();
        let oracle = r.column("oracle");
        assert!(
            oracle.contains(&0.0) && oracle.contains(&1.0),
            "both strategies win somewhere: {oracle:?}"
        );
        // Oracle prefers the index at the narrowest extent and the scan at
        // the widest.
        assert_eq!(oracle[0], 1.0);
        assert_eq!(*oracle.last().unwrap(), 0.0);
        // The learned selector agrees with the oracle on most settings.
        let learned = r.column("learned");
        let agree = oracle.iter().zip(&learned).filter(|(a, b)| a == b).count();
        assert!(agree * 10 >= oracle.len() * 7, "{agree}/{}", oracle.len());
    }
}
