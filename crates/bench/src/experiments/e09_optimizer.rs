//! E9 — execution-strategy crossovers and the learned selector (RT3).
//!
//! Shape target: index-fetch wins narrow selections, scan-aggregate wins
//! wide ones, the crossover sits at a selectivity between them, and the
//! trained selector's total cost is close to the per-query oracle.

use sea_common::{AggregateKind, AnalyticalQuery, CostModel, Point, Record, Rect, Region, Result};
use sea_optimizer::{ExecutionEngines, LearnedOptimizer, QueryStrategy};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span};
use crate::Report;

fn cluster() -> Result<StorageCluster> {
    let mut c = StorageCluster::new(4, 512);
    let records: Vec<Record> = (0..80_000)
        .map(|i| Record::new(i, vec![(i / 800) as f64, (i % 800) as f64 / 2.0]))
        .collect();
    c.load_table(
        "t",
        records,
        Partitioning::Range {
            dim: 0,
            splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
        },
    )?;
    Ok(c)
}

fn query(e: f64) -> Result<AnalyticalQuery> {
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(
            &Point::new(vec![50.0, 200.0]),
            &[e, 4.0 * e],
        )?),
        AggregateKind::Count,
    ))
}

/// Runs E9 without telemetry.
pub fn run_e9() -> Result<Report> {
    run_e9_with(&TelemetrySink::noop())
}

/// Runs E9. Columns: query extent, estimated selectivity, scan µs,
/// index-fetch µs, oracle choice (0 = scan, 1 = index), learned choice.
pub fn run_e9_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E9",
        "strategy crossover and learned selection",
        &[
            "extent",
            "selectivity",
            "scan_us",
            "index_us",
            "oracle",
            "learned",
        ],
    );
    let mut c = cluster()?;
    c.set_telemetry(sink.clone());
    let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 400.0])?;
    let engines = ExecutionEngines::build(&c, "t", domain, 100)?;
    let model = CostModel::default();

    let train_span = sink.span("bench.e9.optimizer_train");
    let mut opt = LearnedOptimizer::new(&c, "t", 32)?;
    for i in 0..30 {
        let e = 0.3 + i as f64 * 1.6;
        opt.train(&engines, &query(e)?, &model)?;
    }
    drop(train_span);

    for (qid, &e) in [0.3, 1.0, 3.0, 8.0, 20.0, 45.0].iter().enumerate() {
        let q = query(e)?;
        let span = query_span(sink, qid as u64);
        let scan = engines.execute(QueryStrategy::ScanAggregate, &q, &model)?;
        let index = engines.execute(QueryStrategy::IndexFetch, &q, &model)?;
        let oracle = if scan.cost.wall_us <= index.cost.wall_us {
            0.0
        } else {
            1.0
        };
        let learned = match opt.choose(&q)? {
            QueryStrategy::ScanAggregate => 0.0,
            QueryStrategy::IndexFetch => 1.0,
        };
        span.record_sim_us(scan.cost.wall_us + index.cost.wall_us);
        drop(span);
        observe_query_us(sink, scan.cost.wall_us.min(index.cost.wall_us));
        report.push_row(vec![
            e,
            opt.estimate_selectivity(&q),
            scan.cost.wall_us,
            index.cost.wall_us,
            oracle,
            learned,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_and_agreement() {
        let r = run_e9().unwrap();
        let oracle = r.column("oracle");
        assert!(
            oracle.contains(&0.0) && oracle.contains(&1.0),
            "both strategies win somewhere: {oracle:?}"
        );
        // Oracle prefers the index at the narrowest extent and the scan at
        // the widest.
        assert_eq!(oracle[0], 1.0);
        assert_eq!(*oracle.last().unwrap(), 0.0);
        // The learned selector agrees with the oracle on most settings.
        let learned = r.column("learned");
        let agree = oracle.iter().zip(&learned).filter(|(a, b)| a == b).count();
        assert!(agree * 10 >= oracle.len() * 7, "{agree}/{}", oracle.len());
    }
}
