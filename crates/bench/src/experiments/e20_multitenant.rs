//! E20 — multi-tenant serving with a noisy neighbor under admission
//! control.
//!
//! Three tenants share one [`QueryService`] front door over the same
//! cluster: `alpha` and `bravo` submit modest, well-behaved streams;
//! `noisy` floods eight times as many (and wider, costlier) queries per
//! round. The noisy tenant runs under a simulated-money budget (25 % of
//! its uncapped spend) plus a token-bucket rate limit; the well-behaved
//! tenants are unconstrained. Each tenant's stream is also run through
//! its own *single-tenant* open service as the isolation baseline.
//!
//! The table shows the serving tier doing its job: the noisy tenant's
//! spend is hard-capped (bounded overshoot of one query) with the
//! overflow visible as `rejected_rate` / `rejected_budget` rows, while
//! the well-behaved tenants' per-query cost and simulated latency are
//! *bit-identical* to their solo baselines — admission isolates tenants
//! without perturbing anyone else's bill. Every number is simulated, so
//! the whole experiment (and its `--stats-out` ledger sidecar) is
//! deterministic at any `SEA_EXEC_THREADS` setting.

use sea_common::{AggregateKind, AnalyticalQuery, Result};
use sea_query::Executor;
use sea_service::{QueryService, StatsReport, StatsService, TenantConfig};
use sea_telemetry::TelemetrySink;
use sea_workload::{QueryGenerator, QuerySpec};

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

const RECORDS: usize = 20_000;
const NODES: usize = 8;
const DATA_SEED: u64 = 53;
const ROUNDS: usize = 20;
/// Queries per round: well-behaved tenants pace themselves; the noisy
/// tenant floods.
const WELL_BEHAVED_PER_ROUND: usize = 1;
const NOISY_PER_ROUND: usize = 8;
/// Simulated idle time between rounds (refills token buckets).
const ROUND_GAP_US: f64 = 2_000_000.0;
/// The noisy tenant's budget as a fraction of its uncapped spend.
const NOISY_BUDGET_FRACTION: f64 = 0.25;

const TENANTS: [&str; 3] = ["alpha", "bravo", "noisy"];

/// Deterministic per-tenant query stream. Well-behaved tenants ask
/// narrow counts (constant-size partials on the wire); the noisy
/// tenant floods wide *median* queries — holistic, so every selected
/// value ships to the coordinator and cost scales with selectivity.
fn stream(tenant: &str) -> Result<Vec<AnalyticalQuery>> {
    let (per_round, extent, seed) = match tenant {
        "alpha" => (WELL_BEHAVED_PER_ROUND, (4.0, 8.0), 211),
        "bravo" => (WELL_BEHAVED_PER_ROUND, (4.0, 8.0), 223),
        _ => (NOISY_PER_ROUND, (20.0, 35.0), 227),
    };
    let mut spec = QuerySpec::simple_count(vec![50.0, 50.0], 22.0, extent)?;
    if tenant == "noisy" {
        spec.aggregates = vec![AggregateKind::Median { dim: 0 }];
    }
    let mut gen = QueryGenerator::new(spec, seed)?;
    Ok((0..ROUNDS * per_round).map(|_| gen.next_query()).collect())
}

/// Per-tenant outcome of one serving run.
struct TenantRow {
    submitted: f64,
    answered: f64,
    rejected_budget: f64,
    rejected_rate: f64,
    money: f64,
    mean_us: f64,
}

/// Runs `queries` for one tenant through its own open single-tenant
/// service: the isolation baseline (what the tenant's bill looks like
/// with nobody else on the system and no admission policy).
fn run_solo(sink: &TelemetrySink, tenant: &str, queries: &[AnalyticalQuery]) -> Result<TenantRow> {
    let mut cluster = uniform_cluster(RECORDS, NODES, DATA_SEED)?;
    cluster.set_telemetry(sink.clone());
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant(tenant, TenantConfig::default())?;
    let per_round = queries.len() / ROUNDS;
    for (i, q) in queries.iter().enumerate() {
        svc.submit(tenant, q)?;
        if (i + 1) % per_round == 0 {
            svc.advance_clock(ROUND_GAP_US);
        }
    }
    Ok(usage_row(&svc, tenant))
}

fn usage_row(svc: &QueryService<'_>, tenant: &str) -> TenantRow {
    let u = svc.tenant_usage(tenant).expect("registered");
    TenantRow {
        submitted: u.submitted as f64,
        answered: u.answered as f64,
        rejected_budget: u.rejected_budget as f64,
        rejected_rate: u.rejected_rate as f64,
        money: u.money,
        mean_us: if u.answered > 0 {
            u.wall_us / u.answered as f64
        } else {
            0.0
        },
    }
}

/// Runs the shared multi-tenant service: round-robin rounds in which
/// each tenant submits its per-round quota, with simulated idle gaps
/// between rounds. Returns per-tenant rows plus the full stats report
/// over the service ledger (the `--stats-out` sidecar).
fn run_multi(sink: &TelemetrySink, noisy_budget: f64) -> Result<(Vec<TenantRow>, StatsReport)> {
    let mut cluster = uniform_cluster(RECORDS, NODES, DATA_SEED)?;
    cluster.set_telemetry(sink.clone());
    let mut svc = QueryService::new(Executor::new(&cluster), "t");
    svc.register_tenant("alpha", TenantConfig::default())?;
    svc.register_tenant("bravo", TenantConfig::default())?;
    svc.register_tenant(
        "noisy",
        TenantConfig {
            money_budget: Some(noisy_budget),
            rate_per_sec: Some(2.0),
            burst: 4.0,
            ..TenantConfig::default()
        },
    )?;
    let streams: Vec<Vec<AnalyticalQuery>> = TENANTS
        .iter()
        .map(|t| stream(t))
        .collect::<Result<Vec<_>>>()?;
    let mut query_id = 0u64;
    for round in 0..ROUNDS {
        for (tenant, queries) in TENANTS.iter().zip(&streams) {
            let per_round = queries.len() / ROUNDS;
            for q in &queries[round * per_round..(round + 1) * per_round] {
                let span = query_span(sink, query_id);
                query_id += 1;
                let out = svc.submit(tenant, q)?;
                span.record_sim_us(out.row.wall_us);
                observe_query_us(sink, out.row.wall_us);
            }
        }
        svc.advance_clock(ROUND_GAP_US);
    }
    let rows = TENANTS.iter().map(|t| usage_row(&svc, t)).collect();
    let stats = StatsService::new(&svc.ledger(), sink.clone());
    Ok((rows, stats.report(5)))
}

/// The noisy tenant's uncapped solo spend, which calibrates its budget.
fn noisy_uncapped(sink: &TelemetrySink) -> Result<TenantRow> {
    run_solo(sink, "noisy", &stream("noisy")?)
}

/// Runs E20 without telemetry.
pub fn run_e20() -> Result<Report> {
    run_e20_with(&TelemetrySink::noop())
}

/// Runs E20. One row per tenant (0 = alpha, 1 = bravo, 2 = noisy).
pub fn run_e20_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E20",
        "multi-tenant serving: noisy neighbor capped by budget/rate admission, well-behaved bills unchanged",
        &[
            "tenant",
            "submitted",
            "answered",
            "rejected_budget",
            "rejected_rate",
            "money",
            "solo_money",
            "mean_us",
            "solo_mean_us",
        ],
    );
    let noisy_open = noisy_uncapped(sink)?;
    let budget = noisy_open.money * NOISY_BUDGET_FRACTION;
    let (multi, _) = run_multi(sink, budget)?;
    for (i, tenant) in TENANTS.iter().enumerate() {
        let solo = if *tenant == "noisy" {
            // The calibration run already measured this; recompute
            // against a noop sink so the recording sink is not charged
            // twice for the same baseline.
            noisy_uncapped(&TelemetrySink::noop())?
        } else {
            run_solo(sink, tenant, &stream(tenant)?)?
        };
        let m = &multi[i];
        report.push_row(vec![
            i as f64,
            m.submitted,
            m.answered,
            m.rejected_budget,
            m.rejected_rate,
            m.money,
            solo.money,
            m.mean_us,
            solo.mean_us,
        ]);
    }
    Ok(report)
}

/// The multi-tenant run's full ledger stats report (the `--stats-out`
/// sidecar): summary, tenant × aggregate × source breakdown, top-5 most
/// expensive queries, telemetry counters. Deterministic, so this rerun
/// matches the run [`run_e20_with`] measured.
pub fn e20_stats_with(sink: &TelemetrySink) -> Result<StatsReport> {
    let budget = noisy_uncapped(&TelemetrySink::noop())?.money * NOISY_BUDGET_FRACTION;
    let (_, stats) = run_multi(sink, budget)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_is_capped_and_well_behaved_tenants_are_unperturbed() {
        let r = run_e20().unwrap();
        // Well-behaved tenants: everything admitted, bill bit-identical
        // to the solo baseline.
        for i in [0, 1] {
            assert_eq!(r.value(i, "submitted"), r.value(i, "answered"));
            assert_eq!(r.value(i, "rejected_budget"), Some(0.0));
            assert_eq!(r.value(i, "rejected_rate"), Some(0.0));
            assert_eq!(r.value(i, "money"), r.value(i, "solo_money"));
            assert_eq!(r.value(i, "mean_us"), r.value(i, "solo_mean_us"));
        }
        // The noisy tenant is capped: spend stays within budget plus at
        // most one query of overshoot, far below its uncapped appetite.
        let money = r.value(2, "money").unwrap();
        let solo = r.value(2, "solo_money").unwrap();
        let answered = r.value(2, "answered").unwrap();
        let budget = solo * NOISY_BUDGET_FRACTION;
        let per_query = solo / (ROUNDS * NOISY_PER_ROUND) as f64;
        assert!(
            money <= budget + 2.0 * per_query,
            "spend {money} vs budget {budget}"
        );
        assert!(money < 0.5 * solo, "cap bites: {money} vs uncapped {solo}");
        assert!(answered < r.value(2, "submitted").unwrap());
        // Both rejection mechanisms fired.
        assert!(r.value(2, "rejected_rate").unwrap() > 0.0);
        assert!(r.value(2, "rejected_budget").unwrap() > 0.0);
    }

    #[test]
    fn stats_sidecar_reflects_the_multi_tenant_ledger() {
        let stats = e20_stats_with(&TelemetrySink::noop()).unwrap();
        let total = ROUNDS * (2 * WELL_BEHAVED_PER_ROUND + NOISY_PER_ROUND);
        assert_eq!(stats.summary.queries, total as u64);
        assert!(stats.summary.rejected_budget > 0);
        assert!(stats.summary.rejected_rate > 0);
        assert_eq!(stats.top_expensive.len(), 5);
        // The noisy tenant's wide queries dominate the expensive list.
        assert!(stats.top_expensive.iter().all(|r| r.tenant == "noisy"));
        let tenants: Vec<&str> = stats.breakdown.iter().map(|c| c.tenant.as_str()).collect();
        for t in TENANTS {
            assert!(tenants.contains(&t), "breakdown covers {t}");
        }
        let json = stats.to_json().unwrap();
        assert!(json.contains("\"rejected_budget\""));
    }

    #[test]
    fn service_telemetry_reaches_the_sink() {
        let sink = TelemetrySink::recording();
        run_e20_with(&sink).unwrap();
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("query.executor.direct_queries") > 0);
    }
}
