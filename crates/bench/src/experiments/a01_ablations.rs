//! A1 — ablations of the agent's design choices (DESIGN.md: audits,
//! distance penalty, forgetting under drift, quantizer granularity).
//!
//! Each ablation removes one mechanism and measures what breaks, so the
//! mechanism's contribution is attributable rather than assumed.

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region, Result};
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_ml::quantize::QuantizerParams;
use sea_query::Executor;
use sea_telemetry::TelemetrySink;
use sea_workload::{DriftKind, DriftingWorkload, QueryGenerator, QuerySpec};

use crate::Report;
use sea_storage::{Partitioning, StorageCluster};
use sea_workload::{DataGenerator, DataSpec, GaussianComponent};

fn query(cx: f64, e: f64) -> AnalyticalQuery {
    AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![cx, 50.0]), &[e, e]).unwrap()),
        AggregateKind::Count,
    )
}

/// Runs A1. Rows are (variant, tail relative error, exact fraction):
///
/// * 0 — full agent (audits on, distance penalty on, forgetting on)
/// * 1 — no audits (`refresh_every = 0`)
/// * 2 — no distance penalty (`distance_penalty = 0`)
/// * 3 — no forgetting (`forget = 1.0`) under a drifting answer function
/// * 4 — coarse quantizer (one giant quantum)
pub fn run_a1() -> Result<Report> {
    run_a1_with(&TelemetrySink::noop())
}

/// Runs A1, feeding spans and per-variant counters into `sink`.
pub fn run_a1_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "A1",
        "agent ablations under a drifting workload",
        &["variant", "tail_rel_err", "exact_fraction"],
    );
    // Two blobs of very different local density: a single global linear
    // model cannot fit both, so quantization (local models) matters.
    let comps = vec![
        GaussianComponent::new(vec![30.0, 50.0], vec![6.0, 6.0], 1.0)?,
        GaussianComponent::new(vec![70.0, 50.0], vec![18.0, 18.0], 1.0)?,
    ];
    let data = DataGenerator::new(DataSpec::GaussianMixture { components: comps }, 77)
        .generate(100_000)?;
    let mut cluster = StorageCluster::new(8, 512);
    cluster.load_table("t", data, Partitioning::Hash)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);

    let variants: Vec<(u64, AgentConfig)> = vec![
        (
            16,
            AgentConfig {
                forget: 0.995,
                ..AgentConfig::default()
            },
        ),
        (
            0,
            AgentConfig {
                forget: 0.995,
                ..AgentConfig::default()
            },
        ),
        (
            16,
            AgentConfig {
                forget: 0.995,
                distance_penalty: 0.0,
                ..AgentConfig::default()
            },
        ),
        (
            16,
            AgentConfig {
                forget: 1.0,
                ..AgentConfig::default()
            },
        ),
        (
            16,
            AgentConfig {
                forget: 0.995,
                quantizer: QuantizerParams {
                    spawn_distance: 1e9,
                    ..QuantizerParams::default()
                },
                ..AgentConfig::default()
            },
        ),
    ];

    for (variant, (refresh, config)) in variants.into_iter().enumerate() {
        let variant_span = sink.span("bench.a1.variant");
        variant_span.tag("variant", variant);
        let mut pipe = AgentPipeline::new(2, config, "t", 0.15, ExecMode::Direct)?
            .with_refresh_every(refresh)
            .with_telemetry(sink.clone());
        // A drifting hotspot: centre jumps from (30, 50) to (70, 50) at
        // query 200 (drift via the workload, not via data).
        let spec = QuerySpec::simple_count(vec![30.0, 50.0], 2.0, (4.0, 12.0))?;
        let gen = QueryGenerator::new(spec, 81)?;
        let mut workload = DriftingWorkload::new(
            gen,
            DriftKind::Jump {
                at_step: 200,
                offset: vec![40.0, 0.0],
            },
        );
        let mut tail_err = 0.0;
        let mut tail_exact = 0.0;
        let mut tail_n = 0usize;
        for step in 0..400 {
            let q = workload.next_query()?;
            let Ok(truth) = exec.execute_direct("t", &q) else {
                continue;
            };
            let out = pipe.process(&exec, &q)?;
            if step >= 300 {
                tail_err += out.answer.relative_error(&truth.answer);
                if matches!(out.source, sea_core::AnswerSource::Exact) {
                    tail_exact += 1.0;
                }
                tail_n += 1;
            }
        }
        let _ = query(30.0, 5.0);
        report.push_row(vec![
            variant as f64,
            tail_err / tail_n.max(1) as f64,
            tail_exact / tail_n.max(1) as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_mechanism_earns_its_keep() {
        let r = run_a1().unwrap();
        let full = r.value(0, "tail_rel_err").unwrap();
        assert!(full < 0.1, "full agent tracks the jump: {full}");
        // Removing audits must not *improve* the tail error.
        let no_audit = r.value(1, "tail_rel_err").unwrap();
        assert!(
            no_audit >= full * 0.5,
            "audits never hurt: {no_audit} vs {full}"
        );
        // The coarse quantizer (one giant quantum mixing both hotspots)
        // must be worse than the full agent on error or on exact cost.
        let coarse_err = r.value(4, "tail_rel_err").unwrap();
        let coarse_exact = r.value(4, "exact_fraction").unwrap();
        let full_exact = r.value(0, "exact_fraction").unwrap();
        assert!(
            coarse_err > full || coarse_exact > full_exact,
            "coarse quantization costs accuracy or exactness: err {coarse_err} vs {full}, \
             exact {coarse_exact} vs {full_exact}"
        );
    }
}
