//! E1 — Fig 1 vs Fig 2: traditional BDAS processing vs the data-less
//! agent, as the dataset grows.
//!
//! Shape target: BDAS and even direct exact execution grow with data
//! size; the trained agent's per-query cost is flat (and ~zero), because
//! "query processing times become de facto insensitive to data sizes".

use sea_common::Result;
use sea_core::{AgentConfig, AgentPipeline, ExecMode};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{count_workload, observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E1 without telemetry.
pub fn run_e1() -> Result<Report> {
    run_e1_with(&TelemetrySink::noop())
}

/// Runs E1. Columns: dataset size, mean per-query simulated µs for the
/// BDAS path, the direct path, and the trained agent (predictions only),
/// plus the agent's mean relative error and nodes touched per query.
/// Spans, per-query latency histograms, and agent decision events flow
/// into `sink`.
pub fn run_e1_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E1",
        "data-less processing vs BDAS (Fig 1 vs Fig 2)",
        &[
            "records",
            "bdas_us",
            "direct_us",
            "agent_us",
            "agent_rel_err",
            "bdas_nodes",
            "agent_bytes_moved",
        ],
    );
    let mut qid = 0u64;
    for &n in &[20_000usize, 80_000, 320_000] {
        let mut cluster = uniform_cluster(n, 8, 7)?;
        cluster.set_telemetry(sink.clone());
        let exec = Executor::new(&cluster);

        // Exact costs, averaged over 20 probe queries.
        let mut gen = count_workload(5.0, 15.0, 11)?;
        let mut bdas_us = 0.0;
        let mut direct_us = 0.0;
        let mut bdas_nodes = 0.0;
        let probes = 20;
        for _ in 0..probes {
            let q = gen.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            let b = exec.execute_bdas("t", &q)?;
            let d = exec.execute_direct("t", &q)?;
            span.record_sim_us(b.cost.wall_us + d.cost.wall_us);
            drop(span);
            observe_query_us(sink, b.cost.wall_us);
            observe_query_us(sink, d.cost.wall_us);
            bdas_us += b.cost.wall_us;
            direct_us += d.cost.wall_us;
            bdas_nodes += b.cost.totals.nodes_touched as f64;
        }
        bdas_us /= probes as f64;
        direct_us /= probes as f64;
        bdas_nodes /= probes as f64;

        // Agent: train on 150 queries, then measure prediction-phase cost
        // and accuracy on fresh queries.
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)?
            .with_refresh_every(16)
            .with_telemetry(sink.clone());
        let mut train_gen = count_workload(5.0, 15.0, 13)?;
        for _ in 0..150 {
            let q = train_gen.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            let out = pipe.process(&exec, &q);
            if let Ok(out) = &out {
                span.record_sim_us(out.cost.wall_us);
                observe_query_us(sink, out.cost.wall_us);
            }
        }
        let mut probe_gen = count_workload(5.0, 15.0, 17)?;
        let mut agent_us = 0.0;
        let mut rel = 0.0;
        let mut bytes = 0u64;
        let mut n_probe = 0;
        for _ in 0..40 {
            let q = probe_gen.next_query();
            let Ok(exact) = exec.execute_direct("t", &q) else {
                continue;
            };
            let span = query_span(sink, qid);
            qid += 1;
            let out = pipe.process(&exec, &q)?;
            span.record_sim_us(out.cost.wall_us);
            drop(span);
            observe_query_us(sink, out.cost.wall_us);
            agent_us += out.cost.wall_us;
            bytes += out.cost.totals.disk_bytes + out.cost.totals.lan_bytes;
            rel += out.answer.relative_error(&exact.answer);
            n_probe += 1;
        }
        report.push_row(vec![
            n as f64,
            bdas_us,
            direct_us,
            agent_us / n_probe as f64,
            rel / n_probe as f64,
            bdas_nodes,
            bytes as f64 / n_probe as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_cost_is_flat_and_tiny_while_bdas_grows() {
        let r = run_e1().unwrap();
        let bdas = r.column("bdas_us");
        let agent = r.column("agent_us");
        assert!(bdas.last().unwrap() > &(bdas[0] * 2.0), "BDAS grows with n");
        // The agent's mean per-query cost is dominated by the occasional
        // audit; it stays far below BDAS at every size.
        for (a, b) in agent.iter().zip(&bdas) {
            assert!(a * 5.0 < *b, "agent {a} vs bdas {b}");
        }
        // Accuracy holds.
        for e in r.column("agent_rel_err") {
            assert!(e < 0.25, "rel err {e}");
        }
    }
}
