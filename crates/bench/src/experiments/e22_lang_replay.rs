//! E22 — declarative workload replay: `sea-lang` statements reproduce
//! hand-built queries bit-identically.
//!
//! Replays `data/e22_replay.sea` (one statement per line) through the
//! [`sea_lang::Frontend`] against the E2 cluster, then executes
//! hand-constructed [`AnalyticalQuery`] equivalents of every statement
//! through the same [`Executor`] entry points (`execute_batch` for
//! multi-aggregate statements, `execute_direct` otherwise). The
//! declarative surface must add zero semantics: every answer and every
//! simulated cost must match the hand-built path bit-for-bit, at any
//! `SEA_EXEC_THREADS` setting (pinned across pool sizes by
//! `tests/lang_determinism.rs`).

use sea_common::{AggregateKind, AnalyticalQuery, AnswerValue, Ball, Point, Rect, Region, Result};
use sea_lang::{Frontend, TableSchema};
use sea_query::{ExecPool, Executor};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// The checked-in replay workload (embedded so the experiment has no
/// runtime file dependency).
pub const E22_REPLAY: &str = include_str!("../../data/e22_replay.sea");

/// The replay statements: one per non-blank, non-comment line.
pub fn e22_statements() -> Vec<&'static str> {
    E22_REPLAY
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .collect()
}

/// Hand-built equivalents of every replay statement, in file order.
/// These are written out long-hand on purpose: the experiment's claim is
/// that the declarative file above and this Rust below are the same
/// workload. Unconstrained dimensions use `domain`, mirroring the
/// planner's documented default.
fn hand_built(domain: &Rect) -> Result<Vec<Vec<AnalyticalQuery>>> {
    let (dlo, dhi) = (domain.lo().to_vec(), domain.hi().to_vec());
    let boxed = |lo: [f64; 2], hi: [f64; 2]| -> Result<Region> {
        Ok(Region::Range(Rect::new(lo.to_vec(), hi.to_vec())?))
    };
    // d0 constrained, d1 spanning the domain (and vice versa).
    let d0_only = |lo: f64, hi: f64| -> Result<Region> {
        Ok(Region::Range(Rect::new(
            vec![lo, dlo[1]],
            vec![hi, dhi[1]],
        )?))
    };
    let d1_only = |lo: f64, hi: f64| -> Result<Region> {
        Ok(Region::Range(Rect::new(
            vec![dlo[0], lo],
            vec![dhi[0], hi],
        )?))
    };
    let ball = |c: [f64; 2], r: f64| -> Result<Region> {
        Ok(Region::Radius(Ball::new(Point::new(c.to_vec()), r)?))
    };
    let q = |region: &Region, kind: AggregateKind| AnalyticalQuery::new(region.clone(), kind);

    let mut stmts = Vec::new();
    let r = boxed([40.0, 40.0], [60.0, 60.0])?;
    stmts.push(vec![q(&r, AggregateKind::Count)]);
    let r = boxed([10.0, 20.0], [30.0, 50.0])?;
    stmts.push(vec![
        q(&r, AggregateKind::Count),
        q(&r, AggregateKind::Mean { dim: 0 }),
    ]);
    let r = d0_only(0.0, 25.0)?;
    stmts.push(vec![
        q(&r, AggregateKind::Sum { dim: 1 }),
        q(&r, AggregateKind::Min { dim: 0 }),
        q(&r, AggregateKind::Max { dim: 0 }),
    ]);
    let r = d1_only(60.0, 90.0)?;
    stmts.push(vec![
        q(&r, AggregateKind::Mean { dim: 1 }),
        q(&r, AggregateKind::Quantile { dim: 1, q: 0.95 }),
    ]);
    let r = boxed([25.0, 25.0], [75.0, 75.0])?;
    stmts.push(vec![q(&r, AggregateKind::Median { dim: 0 })]);
    let r = ball([50.0, 50.0], 10.0)?;
    stmts.push(vec![q(&r, AggregateKind::Count)]);
    let r = ball([30.0, 70.0], 15.0)?;
    stmts.push(vec![
        q(&r, AggregateKind::Mean { dim: 0 }),
        q(&r, AggregateKind::Variance { dim: 1 }),
    ]);
    let r = d0_only(0.0, 50.0)?;
    stmts.push(vec![q(&r, AggregateKind::Correlation { x: 0, y: 1 })]);
    let r = d1_only(0.0, 50.0)?;
    stmts.push(vec![q(&r, AggregateKind::Regression { x: 0, y: 1 })]);
    let r = Region::Range(domain.clone());
    stmts.push(vec![
        q(&r, AggregateKind::Count),
        q(&r, AggregateKind::Mean { dim: 0 }),
    ]);
    Ok(stmts)
}

fn bits_eq(a: &AnswerValue, b: &AnswerValue) -> bool {
    match (a, b) {
        (AnswerValue::Scalar(x), AnswerValue::Scalar(y)) => x.to_bits() == y.to_bits(),
        (AnswerValue::Pair(x0, x1), AnswerValue::Pair(y0, y1)) => {
            x0.to_bits() == y0.to_bits() && x1.to_bits() == y1.to_bits()
        }
        _ => false,
    }
}

/// Runs E22 without telemetry.
pub fn run_e22() -> Result<Report> {
    run_e22_with(&TelemetrySink::noop())
}

/// Runs E22 on the process-global pool.
pub fn run_e22_with(sink: &TelemetrySink) -> Result<Report> {
    run_e22_with_pool(sink, None)
}

/// Runs E22. Columns: statement index (file order), aggregates in the
/// statement, first aggregate's answer, declarative path's summed
/// simulated wall microseconds, and whether every answer **and** cost
/// matched the hand-built path bit-for-bit (1.0 = yes).
///
/// Also bumps the `lang.statements` counter per replayed statement and
/// `lang.mismatch` per statement that diverged (a healthy run leaves it
/// at zero — perfbaseline tracks both as non-gated trends).
///
/// # Errors
///
/// Parse, planning, or execution errors.
pub fn run_e22_with_pool(sink: &TelemetrySink, pool: Option<ExecPool>) -> Result<Report> {
    let mut report = Report::new(
        "E22",
        "declarative replay vs hand-built queries",
        &["stmt", "aggs", "answer0", "sim_wall_us", "bit_identical"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 3)?;
    cluster.set_telemetry(sink.clone());
    let mut exec = Executor::new(&cluster);
    if let Some(pool) = pool {
        exec = exec.with_pool(pool);
    }
    let schema = TableSchema::infer(&cluster, "t")?;
    let mut front = Frontend::new(exec.clone(), "t")?;
    let hand = hand_built(schema.domain())?;
    let statements = e22_statements();
    assert_eq!(
        statements.len(),
        hand.len(),
        "replay file and hand-built workload drifted apart"
    );

    for (idx, (stmt, hand_queries)) in statements.iter().zip(&hand).enumerate() {
        sink.incr("lang.statements", 1);
        let out = front.run(stmt)?;

        // The hand-built path mirrors the front end's execution shape:
        // multi-aggregate statements share one batched superset scan.
        let hand_out: Vec<_> = if hand_queries.len() > 1 {
            exec.execute_batch("t", hand_queries)
                .into_iter()
                .collect::<Result<_>>()?
        } else {
            hand_queries
                .iter()
                .map(|q| exec.execute_direct("t", q))
                .collect::<Result<_>>()?
        };

        let mut identical = out.results.len() == hand_out.len();
        let mut sim_us = 0.0;
        for (r, h) in out.results.iter().zip(&hand_out) {
            identical &= bits_eq(&r.answer, &h.answer)
                && r.cost.wall_us.to_bits() == h.cost.wall_us.to_bits()
                && r.cost.money.to_bits() == h.cost.money.to_bits();
            sim_us += r.cost.wall_us;
        }
        if !identical {
            sink.incr("lang.mismatch", 1);
        }
        let span = query_span(sink, idx as u64);
        span.record_sim_us(sim_us);
        observe_query_us(sink, sim_us);
        let answer0 = match out.results[0].answer {
            AnswerValue::Scalar(v) => v,
            AnswerValue::Pair(a, _) => a,
            // `AnswerValue` is non_exhaustive; no other variants exist today.
            _ => f64::NAN,
        };
        report.push_row(vec![
            idx as f64,
            out.results.len() as f64,
            answer0,
            sim_us,
            f64::from(u8::from(identical)),
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_statement_is_bit_identical() {
        let r = run_e22().unwrap();
        assert_eq!(r.rows.len(), e22_statements().len());
        for row in &r.rows {
            assert_eq!(row[4], 1.0, "statement {} diverged from hand-built", row[0]);
        }
    }

    #[test]
    fn mismatch_counter_stays_zero() {
        let sink = TelemetrySink::recording();
        run_e22_with(&sink).unwrap();
        let snap = sink.snapshot().unwrap();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert_eq!(get("lang.statements"), e22_statements().len() as u64);
        assert_eq!(get("lang.mismatch"), 0);
    }
}
