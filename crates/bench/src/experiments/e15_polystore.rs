//! E15 — multi-system (polystore) analytics (RT1-5).
//!
//! Shape target: migrating raw data between constituent systems moves
//! orders of magnitude more inter-system bytes than exchanging results,
//! and the agent-based alternative additionally eliminates local
//! base-data work on confident systems.

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region, Result};
use sea_core::agent::AgentConfig;
use sea_geo::{ConstituentSystem, Polystore};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::TelemetrySink;

use crate::Report;

fn make_cluster(shift: u64, n: u64) -> Result<StorageCluster> {
    let mut c = StorageCluster::new(4, 512);
    let records: Vec<sea_common::Record> = (0..n)
        .map(|i| {
            sea_common::Record::new(
                i,
                vec![
                    ((i + shift * 37) % 100) as f64,
                    ((i / 100 + shift * 13) % 80) as f64,
                ],
            )
        })
        .collect();
    c.load_table("t", records, Partitioning::Hash)?;
    Ok(c)
}

fn count_query(e: f64) -> Result<AnalyticalQuery> {
    Ok(AnalyticalQuery::new(
        Region::Range(Rect::centered(&Point::new(vec![50.0, 40.0]), &[e, e])?),
        AggregateKind::Count,
    ))
}

/// Runs E15 without telemetry.
pub fn run_e15() -> Result<Report> {
    run_e15_with(&TelemetrySink::noop())
}

/// Runs E15. Columns: strategy (0 = migrate data, 1 = exchange results,
/// 2 = exchange model answers), inter-system kilobytes, total simulated
/// ms, and the answer's relative error vs exact. All three constituent
/// clusters share `sink`, so the `geo.polystore.*` span trees cover every
/// system's local execution.
pub fn run_e15_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E15",
        "polystore: migrate data vs exchange results vs exchange models",
        &["strategy", "inter_system_kb", "total_ms", "rel_err"],
    );
    let mut c1 = make_cluster(0, 40_000)?;
    let mut c2 = make_cluster(1, 40_000)?;
    let mut c3 = make_cluster(2, 40_000)?;
    c1.set_telemetry(sink.clone());
    c2.set_telemetry(sink.clone());
    c3.set_telemetry(sink.clone());
    let systems = vec![
        ConstituentSystem::new(&c1, "t", AgentConfig::default())?,
        ConstituentSystem::new(&c2, "t", AgentConfig::default())?,
        ConstituentSystem::new(&c3, "t", AgentConfig::default())?,
    ];
    let mut store = Polystore::new(systems, 0.15)?;
    let training: Vec<AnalyticalQuery> = (0..120)
        .map(|i| count_query(6.0 + (i % 15) as f64 * 0.5))
        .collect::<Result<Vec<_>>>()?;
    store.train_agents(&training)?;

    // Probe across 15 fresh queries, averaging.
    let mut rows = [[0.0f64; 3]; 3];
    let probes = 15;
    for i in 0..probes {
        let q = count_query(6.2 + i as f64 * 0.5)?;
        sink.begin_query(i as u64);
        let exact = store.query_exchange_results(&q)?;
        let outcomes = [
            store.query_migrate_data(&q)?,
            store.query_exchange_results(&q)?,
            store.query_exchange_models(&q)?,
        ];
        for (row, out) in rows.iter_mut().zip(&outcomes) {
            row[0] += out.inter_system_bytes as f64 / 1e3;
            row[1] += out.cost.wall_us / 1e3;
            row[2] += out.answer.relative_error(&exact.answer);
        }
    }
    for (strategy, row) in rows.iter().enumerate() {
        report.push_row(vec![
            strategy as f64,
            row[0] / probes as f64,
            row[1] / probes as f64,
            row[2] / probes as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_migration_is_the_worst_and_models_are_cheapest() {
        let r = run_e15().unwrap();
        let migrate_kb = r.value(0, "inter_system_kb").unwrap();
        let results_kb = r.value(1, "inter_system_kb").unwrap();
        assert!(
            migrate_kb > results_kb * 50.0,
            "raw migration moves bulk data: {migrate_kb} vs {results_kb}"
        );
        let results_ms = r.value(1, "total_ms").unwrap();
        let models_ms = r.value(2, "total_ms").unwrap();
        assert!(
            models_ms < results_ms,
            "model answers skip local execution: {models_ms} vs {results_ms}"
        );
        let rel = r.value(2, "rel_err").unwrap();
        assert!(rel < 0.1, "model answers stay accurate: {rel}");
    }
}
