//! One runner per experiment in DESIGN.md's experiment index.

mod a01_ablations;
pub mod common;
mod e01_dataless;
mod e02_count_accuracy;
mod e03_avg_regression;
mod e04_rankjoin;
mod e05_knn;
mod e06_graphcache;
mod e07_throughput;
mod e08_storage;
mod e09_optimizer;
mod e10_geo;
mod e11_drift;
mod e12_explanations;
mod e13_imputation;
mod e14_model_selection;
mod e15_polystore;
mod e16_raw_data;
mod e17_calibration;
mod e18_faults;
mod e19_semantic_cache;
mod e20_multitenant;
mod e21_watch;
mod e22_lang_replay;

pub use a01_ablations::{run_a1, run_a1_with};
pub use e01_dataless::{run_e1, run_e1_with};
pub use e02_count_accuracy::{run_e2, run_e2_with};
pub use e03_avg_regression::{run_e3, run_e3_with};
pub use e04_rankjoin::{run_e4, run_e4_with};
pub use e05_knn::{run_e5, run_e5_with};
pub use e06_graphcache::{run_e6, run_e6_with};
pub use e07_throughput::{run_e7, run_e7_with};
pub use e08_storage::{run_e8, run_e8_with};
pub use e09_optimizer::{run_e9, run_e9_with};
pub use e10_geo::{run_e10, run_e10_with};
pub use e11_drift::{run_e11, run_e11_with};
pub use e12_explanations::{run_e12, run_e12_with};
pub use e13_imputation::{run_e13, run_e13_with};
pub use e14_model_selection::{run_e14, run_e14_with};
pub use e15_polystore::{run_e15, run_e15_with};
pub use e16_raw_data::{run_e16, run_e16_with};
pub use e17_calibration::{run_e17, run_e17_with};
pub use e18_faults::{run_e18, run_e18_with};
pub use e19_semantic_cache::{run_e19, run_e19_with};
pub use e20_multitenant::{e20_stats_with, run_e20, run_e20_with};
pub use e21_watch::{
    e21_arms_with_pool, e21_watch_with, run_e21, run_e21_with, WatchArm, WatchReport,
};
pub use e22_lang_replay::{e22_statements, run_e22, run_e22_with, run_e22_with_pool, E22_REPLAY};

use crate::Report;

/// Runs one experiment by id (`"e1"`…`"e22"` or `"a1"`,
/// case-insensitive) without telemetry.
///
/// # Errors
///
/// Unknown id or experiment-internal errors.
pub fn run_by_id(id: &str) -> sea_common::Result<Report> {
    run_by_id_with(id, &sea_telemetry::TelemetrySink::noop())
}

/// Runs one experiment by id, feeding telemetry into `sink`. Every
/// experiment is instrumented: cluster-backed ones propagate `sink` down
/// to storage-node spans; the purely in-memory ones (E6, E14, E16) emit
/// bench-level spans and counters.
///
/// # Errors
///
/// Unknown id or experiment-internal errors.
pub fn run_by_id_with(id: &str, sink: &sea_telemetry::TelemetrySink) -> sea_common::Result<Report> {
    let report = match id.to_ascii_lowercase().as_str() {
        "e1" => run_e1_with(sink),
        "e2" => run_e2_with(sink),
        "e3" => run_e3_with(sink),
        "e4" => run_e4_with(sink),
        "e5" => run_e5_with(sink),
        "e6" => run_e6_with(sink),
        "e7" => run_e7_with(sink),
        "e8" => run_e8_with(sink),
        "e9" => run_e9_with(sink),
        "e10" => run_e10_with(sink),
        "e11" => run_e11_with(sink),
        "e12" => run_e12_with(sink),
        "e13" => run_e13_with(sink),
        "e14" => run_e14_with(sink),
        "e15" => run_e15_with(sink),
        "e16" => run_e16_with(sink),
        "e17" => run_e17_with(sink),
        "e18" => run_e18_with(sink),
        "e19" => run_e19_with(sink),
        "e20" => run_e20_with(sink),
        "e21" => run_e21_with(sink),
        "e22" => run_e22_with(sink),
        "a1" => run_a1_with(sink),
        other => Err(sea_common::SeaError::NotFound(format!(
            "experiment {other}"
        ))),
    }?;
    // A runner that swallowed a malformed row still announces the loss:
    // JSON consumers see `rows_dropped`, telemetry consumers see this.
    if report.rows_dropped > 0 {
        sink.incr("report.rows_dropped", report.rows_dropped);
    }
    Ok(report)
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 23] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22", "a1",
];

/// Per-query ledger stats for experiments that run through the
/// `sea-service` front door (currently E20): the JSON `--stats-out`
/// sidecar. Returns `None` for experiments without a service ledger.
///
/// # Errors
///
/// Experiment-internal errors while re-running the workload.
pub fn stats_json_by_id(
    id: &str,
    sink: &sea_telemetry::TelemetrySink,
) -> Option<sea_common::Result<String>> {
    match id.to_ascii_lowercase().as_str() {
        "e20" => Some(e20_stats_with(sink).and_then(|s| s.to_json())),
        _ => None,
    }
}

/// The watch-layer report for experiments that run behind a
/// [`sea_watch::WatchHub`] tap (currently E21): the JSON `--watch-out`
/// sidecar.
/// Returns `None` for experiments without a watch layer.
///
/// # Errors
///
/// Experiment-internal errors while re-running the workload.
pub fn watch_json_by_id(
    id: &str,
    sink: &sea_telemetry::TelemetrySink,
) -> Option<sea_common::Result<String>> {
    match id.to_ascii_lowercase().as_str() {
        "e21" => Some(e21_watch_with(sink)),
        _ => None,
    }
}
