//! One runner per experiment in DESIGN.md's experiment index.

mod a01_ablations;
pub mod common;
mod e01_dataless;
mod e02_count_accuracy;
mod e03_avg_regression;
mod e04_rankjoin;
mod e05_knn;
mod e06_graphcache;
mod e07_throughput;
mod e08_storage;
mod e09_optimizer;
mod e10_geo;
mod e11_drift;
mod e12_explanations;
mod e13_imputation;
mod e14_model_selection;
mod e15_polystore;
mod e16_raw_data;
mod e17_calibration;

pub use a01_ablations::run_a1;
pub use e01_dataless::{run_e1, run_e1_with};
pub use e02_count_accuracy::run_e2;
pub use e03_avg_regression::run_e3;
pub use e04_rankjoin::{run_e4, run_e4_with};
pub use e05_knn::run_e5;
pub use e06_graphcache::run_e6;
pub use e07_throughput::{run_e7, run_e7_with};
pub use e08_storage::run_e8;
pub use e09_optimizer::run_e9;
pub use e10_geo::run_e10;
pub use e11_drift::run_e11;
pub use e12_explanations::run_e12;
pub use e13_imputation::run_e13;
pub use e14_model_selection::run_e14;
pub use e15_polystore::run_e15;
pub use e16_raw_data::run_e16;
pub use e17_calibration::run_e17;

use crate::Report;

/// Runs one experiment by id (`"e1"`…`"e14"`, case-insensitive).
///
/// # Errors
///
/// Unknown id or experiment-internal errors.
pub fn run_by_id(id: &str) -> sea_common::Result<Report> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => run_e1(),
        "e2" => run_e2(),
        "e3" => run_e3(),
        "e4" => run_e4(),
        "e5" => run_e5(),
        "e6" => run_e6(),
        "e7" => run_e7(),
        "e8" => run_e8(),
        "e9" => run_e9(),
        "e10" => run_e10(),
        "e11" => run_e11(),
        "e12" => run_e12(),
        "e13" => run_e13(),
        "e14" => run_e14(),
        "e15" => run_e15(),
        "e16" => run_e16(),
        "e17" => run_e17(),
        "a1" => run_a1(),
        other => Err(sea_common::SeaError::NotFound(format!(
            "experiment {other}"
        ))),
    }
}

/// Runs one experiment by id, feeding telemetry into `sink` where the
/// experiment is instrumented (E1, E4, E7); other ids run uninstrumented.
///
/// # Errors
///
/// Unknown id or experiment-internal errors.
pub fn run_by_id_with(id: &str, sink: &sea_telemetry::TelemetrySink) -> sea_common::Result<Report> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => run_e1_with(sink),
        "e4" => run_e4_with(sink),
        "e7" => run_e7_with(sink),
        other => run_by_id(other),
    }
}

/// All experiment ids in order.
pub const ALL_IDS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "a1",
];
