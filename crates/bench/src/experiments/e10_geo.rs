//! E10 — geo-distributed SEA (Fig 3, RT5).
//!
//! Shape target: edge agents slash WAN bytes and mean response time
//! against the all-queries-to-core baseline; lowering the error threshold
//! trades WAN traffic for accuracy via the fallback rate.

use sea_common::Result;
use sea_geo::{GeoConfig, GeoSystem};
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{count_workload, uniform_cluster};
use crate::Report;

/// Runs E10 without telemetry.
pub fn run_e10() -> Result<Report> {
    run_e10_with(&TelemetrySink::noop())
}

/// Runs E10. Columns: error threshold (−1 marks the all-to-core
/// baseline), fallback rate, WAN kilobytes, mean response ms. The geo
/// system inherits `sink` through the cluster, so `geo.*` spans,
/// counters, and events all land here.
pub fn run_e10_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E10",
        "geo-distributed deployment: WAN traffic vs error threshold",
        &["threshold", "fallback_rate", "wan_kb", "mean_response_ms"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 31)?;
    cluster.set_telemetry(sink.clone());

    // Baseline: everything to the core.
    let mut baseline = GeoSystem::new(&cluster, "t", GeoConfig::default())?;
    let mut gen = count_workload(4.0, 14.0, 61)?;
    let mut qid = 0u64;
    for _ in 0..300 {
        let q = gen.next_query();
        sink.begin_query(qid);
        qid += 1;
        let _ = baseline.submit_all_to_core(&q);
    }
    report.push_row(vec![
        -1.0,
        baseline.stats().fallback_rate(),
        baseline.stats().wan_bytes as f64 / 1e3,
        baseline.stats().mean_response_us() / 1e3,
    ]);

    for &threshold in &[0.02f64, 0.1, 0.2, 0.4] {
        let mut geo = GeoSystem::new(
            &cluster,
            "t",
            GeoConfig {
                error_threshold: threshold,
                ..GeoConfig::default()
            },
        )?;
        let mut gen = count_workload(4.0, 14.0, 61)?;
        for _ in 0..300 {
            let q = gen.next_query();
            sink.begin_query(qid);
            qid += 1;
            let _ = geo.submit(0, &q);
        }
        report.push_row(vec![
            threshold,
            geo.stats().fallback_rate(),
            geo.stats().wan_bytes as f64 / 1e3,
            geo.stats().mean_response_us() / 1e3,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_beat_baseline_and_threshold_trades_off() {
        let r = run_e10().unwrap();
        let baseline_wan = r.value(0, "wan_kb").unwrap();
        let lax_wan = r.value(4, "wan_kb").unwrap();
        assert!(lax_wan * 2.0 < baseline_wan, "{lax_wan} vs {baseline_wan}");
        // Fallback rate decreases monotonically-ish with the threshold.
        let rates = r.column("fallback_rate");
        assert!(rates[1] >= rates[4], "strict ≥ lax: {rates:?}");
        // Mean response: edges below baseline.
        let base_ms = r.value(0, "mean_response_ms").unwrap();
        let edge_ms = r.value(3, "mean_response_ms").unwrap();
        assert!(edge_ms < base_ms, "{edge_ms} vs {base_ms}");
    }
}
