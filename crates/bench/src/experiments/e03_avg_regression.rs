//! E3 — data-less AVG and regression-coefficient queries (\[28\], \[29\]).
//!
//! Shape target: both operators reach low relative error after training;
//! regression queries recover the (known, by construction) slope.

use sea_common::{AggregateKind, Result};
use sea_core::{AgentConfig, SeaAgent};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{
    aggregate_workload, correlated_cluster, mean_relative_error, observe_query_us, query_span,
};
use crate::Report;

/// Runs E3 without telemetry.
pub fn run_e3() -> Result<Report> {
    run_e3_with(&TelemetrySink::noop())
}

/// Runs E3. Columns: training size, AVG relative error, regression
/// relative error (max of slope/intercept component errors).
pub fn run_e3_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E3",
        "AVG and regression-query accuracy vs training size",
        &["training", "avg_rel_err", "reg_rel_err"],
    );
    // attr1 = 2·attr0 + 5 + N(0, 3); hotspot centred where the data lives.
    let mut cluster = correlated_cluster(80_000, 8, 3.0, 5)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);
    let center = vec![50.0, 105.0, 50.0];
    let mut qid = 0u64;
    for &t in &[50usize, 150, 400] {
        // AVG pool.
        let mut avg_agent = SeaAgent::new(3, AgentConfig::default())?;
        let mut avg_train = aggregate_workload(
            center.clone(),
            5.0,
            (8.0, 25.0),
            AggregateKind::Mean { dim: 1 },
            41,
        )?;
        for _ in 0..t {
            let q = avg_train.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            if let Ok(exact) = exec.execute_direct("t", &q) {
                span.record_sim_us(exact.cost.wall_us);
                observe_query_us(sink, exact.cost.wall_us);
                avg_agent.train(&q, &exact.answer)?;
            }
        }
        let mut avg_probe = aggregate_workload(
            center.clone(),
            5.0,
            (8.0, 25.0),
            AggregateKind::Mean { dim: 1 },
            43,
        )?;
        let avg_rel = mean_relative_error(&cluster, &mut avg_probe, 40, |q| {
            avg_agent.predict(q).ok().map(|p| p.answer)
        })?;

        // Regression pool: slope/intercept of attr1 on attr0.
        let mut reg_agent = SeaAgent::new(3, AgentConfig::default())?;
        let mut reg_train = aggregate_workload(
            center.clone(),
            5.0,
            (8.0, 25.0),
            AggregateKind::Regression { x: 0, y: 1 },
            47,
        )?;
        for _ in 0..t {
            let q = reg_train.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            if let Ok(exact) = exec.execute_direct("t", &q) {
                span.record_sim_us(exact.cost.wall_us);
                observe_query_us(sink, exact.cost.wall_us);
                reg_agent.train(&q, &exact.answer)?;
            }
        }
        let mut reg_probe = aggregate_workload(
            center.clone(),
            5.0,
            (8.0, 25.0),
            AggregateKind::Regression { x: 0, y: 1 },
            53,
        )?;
        let reg_rel = mean_relative_error(&cluster, &mut reg_probe, 40, |q| {
            reg_agent.predict(q).ok().map(|p| p.answer)
        })?;

        report.push_row(vec![t as f64, avg_rel, reg_rel]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_operators_reach_low_error() {
        let r = run_e3().unwrap();
        let avg = r.column("avg_rel_err");
        let reg = r.column("reg_rel_err");
        assert!(avg.last().unwrap() < &0.05, "avg errors {avg:?}");
        assert!(reg.last().unwrap() < &0.35, "regression errors {reg:?}");
    }
}
