//! E12 — query-answer explanations (RT4-2).
//!
//! Shape target: the explanation model predicts the answers of the
//! analyst's *related* queries (same subspace, varied extent) accurately
//! enough that issuing them is unnecessary — each avoided query saves the
//! full exact-execution cost.

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region, Result};
use sea_core::{AgentConfig, Explanation, SeaAgent};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E12 without telemetry.
pub fn run_e12() -> Result<Report> {
    run_e12_with(&TelemetrySink::noop())
}

/// Runs E12. Columns: derived queries evaluated from the explanation,
/// their mean relative error, and the simulated milliseconds saved by not
/// issuing them.
pub fn run_e12_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E12",
        "explanations answer related queries without issuing them",
        &["derived_queries", "explanation_rel_err", "saved_ms"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 53)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);

    // Train the agent on the hotspot.
    let mut agent = SeaAgent::new(2, AgentConfig::default())?;
    let query_at = |e: f64| -> Result<AnalyticalQuery> {
        Ok(AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![50.0, 50.0]), &[e, e])?),
            AggregateKind::Count,
        ))
    };
    for i in 0..200u64 {
        let e = 4.0 + (i % 25) as f64 * 0.4;
        let q = query_at(e)?;
        let span = query_span(sink, i);
        if let Ok(exact) = exec.execute_direct("t", &q) {
            span.record_sim_us(exact.cost.wall_us);
            observe_query_us(sink, exact.cost.wall_us);
            agent.train(&q, &exact.answer)?;
        }
    }
    let anchor = query_at(8.0)?;
    let explanation = Explanation::for_query(&agent, &anchor)?;

    for &m in &[5usize, 10, 20] {
        let mut rel = 0.0;
        let mut saved_us = 0.0;
        for i in 0..m {
            let e = 4.5 + i as f64 * (9.0 / m as f64);
            let q = query_at(e)?;
            let exact = exec.execute_direct("t", &q)?;
            let vol = q.region.volume();
            let from_explanation = explanation.answer_at_volume(vol);
            let truth = exact.answer.as_scalar().expect("count is scalar");
            rel += (from_explanation - truth).abs() / truth.max(1.0);
            saved_us += exact.cost.wall_us;
        }
        report.push_row(vec![m as f64, rel / m as f64, saved_us / 1e3]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explanations_are_accurate_and_save_work() {
        let r = run_e12().unwrap();
        for row in &r.rows {
            assert!(row[1] < 0.15, "explanation rel err {row:?}");
            assert!(row[2] > 0.0, "saved time {row:?}");
        }
        // Savings grow with the number of avoided queries.
        let saved = r.column("saved_ms");
        assert!(saved.last().unwrap() > &saved[0]);
    }
}
