//! E17 — error-estimate calibration (RT1-3 / RT5-5).
//!
//! The whole error-driven architecture — thresholded fallback, edge
//! filtering, confident interrogations — rests on the agent's error
//! estimates *meaning something*: predictions flagged with higher
//! estimated error should actually err more. This experiment buckets
//! predictions by their estimated error and measures the realized error
//! per bucket; the shape target is a monotone calibration curve.

use sea_common::Result;
use sea_core::{AgentConfig, SeaAgent};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;
use sea_workload::{QueryGenerator, QuerySpec};

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

/// Runs E17 without telemetry.
pub fn run_e17() -> Result<Report> {
    run_e17_with(&TelemetrySink::noop())
}

/// Runs E17. Columns: bucket's upper estimated-error bound, predictions
/// in the bucket, mean realized relative error.
pub fn run_e17_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E17",
        "error-estimate calibration",
        &["est_err_upper", "predictions", "realized_err"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 91)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);

    // Train on one hotspot; probe across a spectrum of distances from it,
    // so estimated errors span their full range.
    let mut agent = SeaAgent::new(2, AgentConfig::default())?;
    let spec = QuerySpec::simple_count(vec![35.0, 50.0], 4.0, (4.0, 14.0))?;
    let mut train = QueryGenerator::new(spec, 97)?;
    for qid in 0..250u64 {
        let q = train.next_query();
        let span = query_span(sink, qid);
        if let Ok(exact) = exec.execute_direct("t", &q) {
            span.record_sim_us(exact.cost.wall_us);
            observe_query_us(sink, exact.cost.wall_us);
            agent.train(&q, &exact.answer)?;
        }
    }

    // Probes: centres sliding away from the hotspot.
    let buckets = [0.05f64, 0.1, 0.2, 0.5, f64::INFINITY];
    let mut sums = vec![(0usize, 0.0f64); buckets.len()];
    for i in 0..300 {
        let cx = 35.0 + (i % 30) as f64 * 1.5; // 35 .. 80
        let e = 4.0 + (i % 10) as f64;
        let spec = QuerySpec::simple_count(vec![cx, 50.0], 0.5, (e, e + 0.5))?;
        let mut g = QueryGenerator::new(spec, 200 + i as u64)?;
        let q = g.next_query();
        let (Ok(pred), Ok(exact)) = (agent.predict(&q), exec.execute_direct("t", &q)) else {
            continue;
        };
        let realized = pred.answer.relative_error(&exact.answer);
        let b = buckets
            .iter()
            .position(|&ub| pred.estimated_error <= ub)
            .unwrap_or(buckets.len() - 1);
        sums[b].0 += 1;
        sums[b].1 += realized;
    }
    for (i, &(n, total)) in sums.iter().enumerate() {
        report.push_row(vec![
            if buckets[i].is_finite() {
                buckets[i]
            } else {
                99.0
            },
            n as f64,
            if n > 0 { total / n as f64 } else { f64::NAN },
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_curve_is_informative() {
        let r = run_e17().unwrap();
        // Gather the non-empty buckets in order.
        let rows: Vec<(f64, f64, f64)> = r
            .rows
            .iter()
            .filter(|row| row[1] > 0.0 && row[2].is_finite())
            .map(|row| (row[0], row[1], row[2]))
            .collect();
        assert!(rows.len() >= 2, "several buckets populated: {rows:?}");
        // The lowest-estimate bucket realizes lower error than the
        // highest-estimate bucket — the estimate carries real signal.
        let first = rows.first().unwrap().2;
        let last = rows.last().unwrap().2;
        assert!(
            first < last,
            "calibration signal: low-estimate err {first} < high-estimate err {last}"
        );
        // And within-budget predictions really are accurate.
        assert!(first < 0.1, "confident bucket err {first}");
    }
}
