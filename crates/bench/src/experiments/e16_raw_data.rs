//! E16 — raw-data analytics via adaptive indexing (RT2-3).
//!
//! Shape target: the cracker index's per-query touched-element count
//! collapses as a hotspot workload repeats, while a re-scanning baseline
//! stays flat — "data-to-insight" cost amortizes with use, with zero
//! up-front indexing.

use sea_common::Result;
use sea_index::CrackerIndex;
use sea_telemetry::TelemetrySink;

use crate::Report;

/// Runs E16 without telemetry.
pub fn run_e16() -> Result<Report> {
    run_e16_with(&TelemetrySink::noop())
}

/// Runs E16. Columns: query batch (of 10), mean elements touched per
/// query by the cracker, by a full re-scan baseline, and cracks held.
/// The cracker is a single in-memory column — no cluster — so telemetry
/// is bench-level: a span per batch plus touched-element counters.
pub fn run_e16_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E16",
        "raw-data analytics: adaptive cracking vs rescan",
        &["batch", "cracker_touched", "rescan_touched", "cracks"],
    );
    let n = 200_000u64;
    let column: Vec<(f64, u64)> = (0..n)
        .map(|i| ((i.wrapping_mul(2654435761) % n) as f64, i))
        .collect();
    let mut cracker = CrackerIndex::new(column.clone())?;

    // Hotspot workload: analysts revisit a dashboard of 9 recurring
    // ranges inside [80k, 118k), plus one brand-new range per batch.
    let recurring: Vec<(f64, f64)> = (0..9)
        .map(|j| {
            let lo = 80_000.0 + (j * 3_313 % 30_000) as f64;
            (lo, lo + 8_000.0)
        })
        .collect();
    let mut batch_idx = 0.0;
    for batch in 0..5 {
        let span = sink.span("bench.e16.batch");
        span.tag("batch", batch as u64);
        let mut cracked = 0usize;
        let mut scanned = 0usize;
        for (lo, hi) in &recurring {
            let (_, touched) = cracker.count(*lo, *hi)?;
            cracked += touched;
            scanned += column.len();
        }
        // One exploratory (new) range per batch.
        let lo = 80_000.0 + (batch * 977 % 30_000) as f64 + 0.5;
        let (_, touched) = cracker.count(lo, lo + 8_000.0)?;
        cracked += touched;
        scanned += column.len();
        sink.incr("bench.e16.elements_touched", cracked as u64);
        drop(span);
        batch_idx += 1.0;
        report.push_row(vec![
            batch_idx,
            cracked as f64 / 10.0,
            scanned as f64 / 10.0,
            cracker.num_cracks() as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cracking_amortizes_to_near_zero() {
        let r = run_e16().unwrap();
        let first = r.value(0, "cracker_touched").unwrap();
        let last = r.rows.last().unwrap()[1];
        assert!(
            last * 10.0 < first,
            "touched work collapses: {first} → {last}"
        );
        let rescan = r.value(4, "rescan_touched").unwrap();
        assert!(last * 100.0 < rescan, "vs rescan {rescan}: {last}");
    }
}
