//! E2 — data-less COUNT accuracy vs training-set size (\[26\], \[27\]).
//!
//! Shape target: relative error decreases as the agent sees more training
//! queries, reaching ~10% or better on a stable hotspot workload.

use sea_common::Result;
use sea_core::{AgentConfig, SeaAgent};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::experiments::common::{
    count_workload, mean_relative_error, observe_query_us, query_span, uniform_cluster,
};
use crate::Report;

/// Runs E2 without telemetry.
pub fn run_e2() -> Result<Report> {
    run_e2_with(&TelemetrySink::noop())
}

/// Runs E2. Columns: training queries, mean relative error over 60
/// fresh probe queries, quanta formed, model memory bytes.
pub fn run_e2_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E2",
        "COUNT-query accuracy vs training size",
        &["training", "rel_err", "quanta", "model_bytes"],
    );
    let mut cluster = uniform_cluster(100_000, 8, 3)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);
    let mut qid = 0u64;
    for &t in &[10usize, 30, 100, 300] {
        let mut agent = SeaAgent::new(2, AgentConfig::default())?;
        let mut train_gen = count_workload(2.0, 20.0, 29)?;
        for _ in 0..t {
            let q = train_gen.next_query();
            let span = query_span(sink, qid);
            qid += 1;
            if let Ok(exact) = exec.execute_direct("t", &q) {
                span.record_sim_us(exact.cost.wall_us);
                observe_query_us(sink, exact.cost.wall_us);
                agent.train(&q, &exact.answer)?;
            }
        }
        let mut probe_gen = count_workload(2.0, 20.0, 31)?;
        let rel = mean_relative_error(&cluster, &mut probe_gen, 60, |q| {
            agent.predict(q).ok().map(|p| p.answer)
        })?;
        let stats = agent.stats();
        report.push_row(vec![
            t as f64,
            rel,
            stats.quanta as f64,
            stats.memory_bytes as f64,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_decreases_with_training() {
        let r = run_e2().unwrap();
        let errs = r.column("rel_err");
        let early = errs[..2].iter().cloned().fold(f64::INFINITY, f64::min);
        let late = errs[errs.len() - 2..]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(late <= early, "more training, less error: {errs:?}");
        assert!(errs.last().unwrap() < &0.12, "final error {errs:?}");
    }
}
