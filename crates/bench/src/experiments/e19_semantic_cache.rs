//! E19 — semantic-cache hit rate and cost under workload overlap.
//!
//! A query stream over a fixed table mixes fresh hotspot queries with
//! *reused* interest regions: at overlap `p`, `p` of every ten queries
//! revisit one of five fixed rectangles, alternating between the exact
//! rectangle (an exact hit once cached) and a shrunken sub-rectangle
//! (a containment hit, re-derived from the cached per-node fragments).
//! The *cached* arm runs the stream through an [`Executor`] wearing a
//! [`SemanticCache`]; the *uncached* arm runs the identical stream cold.
//! Sweeping overlap 0→90 % shows the crossover the cache is for: the
//! hit rate climbs monotonically with reuse and the simulated cost
//! ratio (cached / uncached) falls well below one at high overlap,
//! while at zero overlap the two arms cost the same.
//!
//! Cost-based admission and charge-aware eviction are exercised by
//! `sea-cache`'s own unit tests; here admission is left wide open so
//! the sweep isolates the effect of workload overlap alone. Answers
//! from the two arms are bit-identical by the cache's re-derivation
//! contract (asserted in this module's tests).

use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, AnswerValue, Rect, Region, Result};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;
use sea_workload::{QueryGenerator, QuerySpec};

use crate::experiments::common::{observe_query_us, query_span, uniform_cluster};
use crate::Report;

const RECORDS: usize = 20_000;
const NODES: usize = 8;
const DATA_SEED: u64 = 47;
const QUERIES: usize = 80;

/// The five interest regions the reused slice of the stream revisits.
const HOTSPOTS: [(f64, f64); 5] = [
    (30.0, 30.0),
    (50.0, 50.0),
    (70.0, 40.0),
    (40.0, 70.0),
    (60.0, 60.0),
];

fn hotspot_rect(center: (f64, f64)) -> Result<Rect> {
    Rect::new(
        vec![center.0 - 6.0, center.1 - 6.0],
        vec![center.0 + 6.0, center.1 + 6.0],
    )
}

/// A sub-rectangle strictly inside [`hotspot_rect`], shifted
/// deterministically by `i` so repeats are not all byte-identical.
fn hotspot_subrect(center: (f64, f64), i: usize) -> Result<Rect> {
    let shift = (i % 3) as f64 - 1.0;
    Rect::new(
        vec![center.0 - 3.0 + shift, center.1 - 3.0],
        vec![center.0 + 3.0 + shift, center.1 + 3.0],
    )
}

/// The deterministic query stream for one overlap level: `overlap` of
/// every ten queries revisit a hotspot (even revisits use the exact
/// cached rectangle, odd ones a contained sub-rectangle), the rest come
/// fresh from the workload generator.
fn stream(overlap: f64) -> Result<Vec<AnalyticalQuery>> {
    let reuse_per_decade = (overlap * 10.0).round() as usize;
    // Fresh queries scatter widely with narrow, similar extents, so two
    // random ones almost never contain each other — accidental cache
    // hits stay negligible and the sweep isolates deliberate reuse.
    let mut gen = QueryGenerator::new(
        QuerySpec::simple_count(vec![50.0, 50.0], 20.0, (4.0, 8.0))?,
        131,
    )?;
    let mut queries = Vec::with_capacity(QUERIES);
    for i in 0..QUERIES {
        if i % 10 < reuse_per_decade {
            let center = HOTSPOTS[(i / 3) % HOTSPOTS.len()];
            let rect = if i % 2 == 0 {
                hotspot_rect(center)?
            } else {
                hotspot_subrect(center, i)?
            };
            queries.push(AnalyticalQuery::new(
                Region::Range(rect),
                AggregateKind::Count,
            ));
        } else {
            queries.push(gen.next_query());
        }
    }
    Ok(queries)
}

/// Runs one arm over the stream, returning per-query answers and the
/// mean simulated wall-clock.
fn run_arm(
    sink: &TelemetrySink,
    queries: &[AnalyticalQuery],
    cache: Option<&SemanticCache>,
    query_id: &mut u64,
) -> Result<(Vec<AnswerValue>, f64)> {
    let mut cluster = uniform_cluster(RECORDS, NODES, DATA_SEED)?;
    cluster.set_telemetry(sink.clone());
    let exec = Executor::new(&cluster);
    let exec = match cache {
        Some(cache) => exec.with_cache(cache),
        None => exec,
    };
    let mut answers = Vec::with_capacity(queries.len());
    let mut wall = 0.0;
    for q in queries {
        let span = query_span(sink, *query_id);
        *query_id += 1;
        let out = exec.execute_direct("t", q)?;
        span.record_sim_us(out.cost.wall_us);
        observe_query_us(sink, out.cost.wall_us);
        wall += out.cost.wall_us;
        answers.push(out.answer);
    }
    Ok((answers, wall / queries.len() as f64))
}

fn fresh_cache(sink: &TelemetrySink) -> SemanticCache {
    // Admission wide open: the sweep studies overlap, not thresholds.
    SemanticCache::new(CacheConfig {
        admit_min_cost_us: 0.0,
        ..CacheConfig::default()
    })
    .with_telemetry(sink.clone())
}

/// Runs E19 without telemetry.
pub fn run_e19() -> Result<Report> {
    run_e19_with(&TelemetrySink::noop())
}

/// Runs E19. One row per workload-overlap level; a fresh cache per
/// level so hit rates do not bleed across rows.
pub fn run_e19_with(sink: &TelemetrySink) -> Result<Report> {
    let mut report = Report::new(
        "E19",
        "semantic cache: hit rate and simulated-cost ratio vs workload overlap",
        &[
            "overlap",
            "hit_rate",
            "exact_hits",
            "containment_hits",
            "misses",
            "cached_mean_us",
            "uncached_mean_us",
            "cost_ratio",
        ],
    );
    let mut query_id = 0u64;
    for overlap in [0.0, 0.3, 0.5, 0.7, 0.9] {
        let queries = stream(overlap)?;
        let cache = fresh_cache(sink);
        let (_, cached_mean) = run_arm(sink, &queries, Some(&cache), &mut query_id)?;
        let (_, uncached_mean) = run_arm(sink, &queries, None, &mut query_id)?;
        let stats = cache.stats();
        report.push_row(vec![
            overlap,
            stats.hit_rate(),
            stats.hits as f64,
            stats.containment_hits as f64,
            stats.misses as f64,
            cached_mean,
            uncached_mean,
            cached_mean / uncached_mean,
        ]);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_climbs_and_cost_crosses_over() {
        let r = run_e19().unwrap();
        let rates = r.column("hit_rate");
        for w in rates.windows(2) {
            assert!(w[1] >= w[0], "hit rate grows with overlap: {rates:?}");
        }
        assert!(
            rates.last().unwrap() > &0.5,
            "90% overlap mostly hits: {rates:?}"
        );
        // At zero overlap the cache cannot help; at 90% it must.
        let first = r.value(0, "cost_ratio").unwrap();
        let last = r.rows.last().unwrap();
        let last_ratio = r.value(r.rows.len() - 1, "cost_ratio").unwrap();
        assert!(first > 0.9, "no reuse, no win: {first}");
        assert!(
            last_ratio < 0.5,
            "high overlap more than halves simulated cost: {last_ratio}"
        );
        assert!(last[2] > 0.0 && last[3] > 0.0, "both hit classes occur");
    }

    #[test]
    fn cached_answers_match_uncached_answers() {
        let sink = TelemetrySink::noop();
        for overlap in [0.3, 0.9] {
            let queries = stream(overlap).unwrap();
            let cache = fresh_cache(&sink);
            let mut id = 0u64;
            let (cached, _) = run_arm(&sink, &queries, Some(&cache), &mut id).unwrap();
            let (cold, _) = run_arm(&sink, &queries, None, &mut id).unwrap();
            assert_eq!(cached, cold, "overlap {overlap}: cache is transparent");
        }
    }

    #[test]
    fn cache_telemetry_reaches_the_sink() {
        let sink = TelemetrySink::recording();
        run_e19_with(&sink).unwrap();
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("cache.hits") > 0, "exact hits counted");
        assert!(
            snap.counter("cache.containment_hits") > 0,
            "containment hits counted"
        );
        assert!(snap.counter("cache.misses") > 0, "misses counted");
        assert!(snap.counter("cache.insertions") > 0, "admissions counted");
        assert!(snap.event_count("cache.hit") > 0, "per-query hit events");
    }
}
