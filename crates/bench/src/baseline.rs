//! The continuous bench-regression harness behind the `perfbaseline`
//! binary.
//!
//! A fixed subset of experiments runs under a recording
//! [`TelemetrySink`]; headline metrics (simulated I/O ops, bytes moved,
//! nodes touched, mean simulated per-query latency, predicted-vs-exact
//! hit rate) are extracted from the telemetry snapshot into a
//! schema-versioned [`BenchBaseline`]. Comparing a fresh collection
//! against the committed `BENCH_baseline.json` with a relative tolerance
//! turns silent performance regressions into loud exit codes.
//!
//! Simulated metrics are deterministic — same code, same numbers — so
//! the committed baseline only changes when behaviour changes. Host
//! wall-clock is recorded per experiment too, but is informational only
//! and never gated: it varies with the machine running the suite.

use serde::{Deserialize, Serialize};

use crate::experiments::common::{count_workload, uniform_cluster};
use crate::experiments::run_by_id_with;
use sea_query::{ExecPool, Executor};
use sea_telemetry::TelemetrySink;

/// Version of the on-disk baseline layout. Bump on any change to the
/// JSON shape or to the metric definitions; files with a different
/// version are never compared against, only replaced.
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// The fixed experiment subset the harness runs: E1 (data-less vs
/// BDAS), E4 (rank join), E7 (throughput), E8 (storage footprint) —
/// together they exercise the executor, storage, pipeline, and agent
/// layers — plus E18 (fault tolerance), E19 (semantic cache), E20
/// (multi-tenant admission), E21 (watch layer), and E22 (declarative
/// replay), whose metrics are recorded for trend-watching only
/// (injected faults measure the recovery machinery, cache arms
/// deliberately skip scans, admission deliberately rejects load, and
/// the replay re-executes every statement twice by design, so none of
/// them measures the steady-state query path and none of them gate).
pub const BASELINE_EXPERIMENTS: [&str; 9] =
    ["e1", "e4", "e7", "e8", "e18", "e19", "e20", "e21", "e22"];

/// Default relative tolerance for [`compare`]: a gated metric may move
/// up to this fraction in its bad direction before it counts as a
/// regression.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One headline metric of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineMetric {
    /// Metric name, e.g. `sim_io_ops`.
    pub name: String,
    /// Observed value.
    pub value: f64,
    /// Direction: `true` if larger values are better (hit rates),
    /// `false` if smaller values are better (I/O, bytes, latency).
    pub higher_is_better: bool,
    /// Whether [`compare`] gates on this metric. Non-gated metrics are
    /// recorded for trend-watching only.
    pub gate: bool,
}

/// One experiment's headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentBaseline {
    /// Experiment id (`e1`, `e4`, …).
    pub id: String,
    /// Host wall-clock for the whole experiment, milliseconds.
    /// Machine-dependent; informational only, never gated.
    pub wall_clock_ms: f64,
    /// The extracted metrics.
    pub metrics: Vec<HeadlineMetric>,
}

/// The whole baseline file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchBaseline {
    /// See [`BASELINE_SCHEMA_VERSION`].
    pub schema_version: u64,
    /// One entry per [`BASELINE_EXPERIMENTS`] id, in order.
    pub experiments: Vec<ExperimentBaseline>,
}

/// One gated metric that moved past tolerance in its bad direction.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id.
    pub experiment: String,
    /// Metric name.
    pub metric: String,
    /// Committed (old) value.
    pub baseline: f64,
    /// Freshly collected value.
    pub current: f64,
    /// Signed relative change, positive = metric grew.
    pub change: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} -> {} ({:+.1}%)",
            self.experiment,
            self.metric,
            self.baseline,
            self.current,
            self.change * 100.0
        )
    }
}

/// Measures host wall-clock speedup of [`Executor::execute_batch`] over
/// a sequential per-query loop on an E1-style COUNT workload.
///
/// The answers and simulated costs are identical by the executor's
/// determinism contract — only host wall-clock differs. The speedup is
/// **algorithmic**, not thread-parallel: an all-rectangular batch shares
/// one superset scan (the union of the query boxes, gathered once per
/// node) and each query evaluates its predicate over that small shared
/// subset, so even a single-core runner reports a multiple-fold speedup.
/// That core-count independence is what lets this gate (`gate: true`).
///
/// # Errors
///
/// Workload-generation or execution errors.
pub fn measure_batch_speedup() -> sea_common::Result<f64> {
    let cluster = uniform_cluster(200_000, 8, 7)?;
    let mut gen = count_workload(5.0, 15.0, 11)?;
    let queries: Vec<_> = (0..48).map(|_| gen.next_query()).collect();

    let sequential = Executor::new(&cluster).with_pool(ExecPool::sequential());
    // Warm caches so neither side pays first-touch costs.
    sequential.execute_direct("t", &queries[0])?;
    let started = std::time::Instant::now();
    for q in &queries {
        sequential.execute_direct("t", q)?;
    }
    let seq_s = started.elapsed().as_secs_f64();

    let parallel = Executor::new(&cluster).with_pool(ExecPool::from_env());
    let started = std::time::Instant::now();
    for r in parallel.execute_batch("t", &queries) {
        r?;
    }
    let par_s = started.elapsed().as_secs_f64();

    Ok(seq_s / par_s.max(1e-9))
}

/// Runs [`BASELINE_EXPERIMENTS`] under recording sinks and extracts
/// headline metrics from each telemetry snapshot.
///
/// # Errors
///
/// Experiment-internal errors.
pub fn collect() -> sea_common::Result<BenchBaseline> {
    let mut experiments = Vec::new();
    for id in BASELINE_EXPERIMENTS {
        let sink = TelemetrySink::recording();
        let started = std::time::Instant::now();
        run_by_id_with(id, &sink)?;
        let wall_clock_ms = started.elapsed().as_secs_f64() * 1e3;
        let snap = sink.snapshot().expect("recording sink has a snapshot");

        let mut metrics = vec![
            HeadlineMetric {
                name: "sim_io_ops".to_string(),
                value: snap.counter("storage.node.blocks_read") as f64,
                higher_is_better: false,
                gate: true,
            },
            HeadlineMetric {
                name: "sim_bytes_moved".to_string(),
                value: snap.counter("storage.node.bytes_read") as f64,
                higher_is_better: false,
                gate: true,
            },
            HeadlineMetric {
                name: "nodes_touched".to_string(),
                value: snap.counter("storage.node.scans") as f64,
                higher_is_better: false,
                gate: true,
            },
        ];
        if let Some(h) = snap.histogram(crate::experiments::common::QUERY_LATENCY_HISTOGRAM) {
            metrics.push(HeadlineMetric {
                name: "query_sim_us_mean".to_string(),
                value: h.mean,
                higher_is_better: false,
                gate: true,
            });
        }
        let predicted = snap.event_count("agent.predicted") as f64;
        let fallback = snap.event_count("agent.fallback") as f64;
        if predicted + fallback > 0.0 {
            metrics.push(HeadlineMetric {
                name: "predict_hit_rate".to_string(),
                value: predicted / (predicted + fallback),
                higher_is_better: true,
                gate: true,
            });
        }
        if id == "e1" {
            metrics.push(HeadlineMetric {
                name: "batch_wall_speedup".to_string(),
                value: measure_batch_speedup()?,
                higher_is_better: true,
                gate: true,
            });
        }
        if id == "e18" {
            // Deliberately injected faults: every number here measures
            // the fault-handling machinery (retries, failovers, partial
            // answers), so nothing gates — recorded as trends only.
            for m in &mut metrics {
                m.gate = false;
            }
            for (name, counter) in [
                ("fault_retries", "query.retries"),
                ("fault_failovers", "query.failovers"),
                ("fault_degraded", "query.degraded"),
            ] {
                metrics.push(HeadlineMetric {
                    name: name.to_string(),
                    value: snap.counter(counter) as f64,
                    higher_is_better: false,
                    gate: false,
                });
            }
        }
        if id == "e19" {
            // The cached arm answers most of the stream without touching
            // storage, so the storage counters measure cache behaviour,
            // not the scan path — recorded as trends only, like E18.
            for m in &mut metrics {
                m.gate = false;
            }
            for (name, counter, higher_is_better) in [
                ("cache_hits", "cache.hits", true),
                ("cache_containment_hits", "cache.containment_hits", true),
                ("cache_misses", "cache.misses", false),
                ("cache_insertions", "cache.insertions", false),
            ] {
                metrics.push(HeadlineMetric {
                    name: name.to_string(),
                    value: snap.counter(counter) as f64,
                    higher_is_better,
                    gate: false,
                });
            }
        }
        if id == "e20" {
            // The admission tier deliberately rejects part of the load,
            // so storage counters here measure policy (how much the
            // noisy tenant got through), not the scan path — trends
            // only, like E18/E19.
            for m in &mut metrics {
                m.gate = false;
            }
            for (name, counter) in [
                ("service_answered", "service.answered"),
                ("service_rejected_budget", "service.rejected_budget"),
                ("service_rejected_rate", "service.rejected_rate"),
            ] {
                metrics.push(HeadlineMetric {
                    name: name.to_string(),
                    value: snap.counter(counter) as f64,
                    higher_is_better: false,
                    gate: false,
                });
            }
        }
        if id == "e21" {
            // E21 injects the E18 fault plans behind the watch layer,
            // so every number measures detection/alerting machinery
            // under deliberate faults — trends only, like E18.
            for m in &mut metrics {
                m.gate = false;
            }
            for (name, counter) in [
                ("watch_alerts", "watch.alerts"),
                ("watch_suspects", "watch.suspects"),
            ] {
                metrics.push(HeadlineMetric {
                    name: name.to_string(),
                    value: snap.counter(counter) as f64,
                    higher_is_better: false,
                    gate: false,
                });
            }
        }
        if id == "e22" {
            // The replay runs every statement through both the
            // declarative and the hand-built path, so storage counters
            // are doubled by construction and measure the comparison
            // harness, not the query path — trends only, like E18.
            for m in &mut metrics {
                m.gate = false;
            }
            for (name, counter) in [
                ("lang_statements", "lang.statements"),
                ("lang_mismatch", "lang.mismatch"),
            ] {
                metrics.push(HeadlineMetric {
                    name: name.to_string(),
                    value: snap.counter(counter) as f64,
                    higher_is_better: false,
                    gate: false,
                });
            }
        }
        experiments.push(ExperimentBaseline {
            id: id.to_string(),
            wall_clock_ms,
            metrics,
        });
    }
    Ok(BenchBaseline {
        schema_version: BASELINE_SCHEMA_VERSION,
        experiments,
    })
}

/// Compares `current` against `baseline`, returning every gated metric
/// that moved more than `tolerance` (relative) in its bad direction.
/// Metrics present on only one side are skipped (they are new or
/// retired, not regressed); experiments are matched by id.
pub fn compare(
    baseline: &BenchBaseline,
    current: &BenchBaseline,
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for cur_exp in &current.experiments {
        let Some(base_exp) = baseline.experiments.iter().find(|e| e.id == cur_exp.id) else {
            continue;
        };
        for cur in &cur_exp.metrics {
            if !cur.gate {
                continue;
            }
            let Some(base) = base_exp.metrics.iter().find(|m| m.name == cur.name) else {
                continue;
            };
            // A zero baseline can't anchor a relative comparison; treat
            // any growth from zero on a lower-is-better metric as
            // regressed only if it exceeds tolerance in absolute terms.
            let denom = base.value.abs().max(1e-12);
            let change = (cur.value - base.value) / denom;
            let regressed = if cur.higher_is_better {
                change < -tolerance
            } else {
                change > tolerance
            };
            if regressed {
                regressions.push(Regression {
                    experiment: cur_exp.id.clone(),
                    metric: cur.name.clone(),
                    baseline: base.value,
                    current: cur.value,
                    change,
                });
            }
        }
    }
    regressions
}

/// Serializes a baseline to pretty JSON (trailing newline included, so
/// the committed file is POSIX-friendly).
///
/// # Errors
///
/// Serialization errors from the JSON layer.
pub fn to_json(baseline: &BenchBaseline) -> sea_common::Result<String> {
    let mut s = serde_json::to_string_pretty(baseline)
        .map_err(|e| sea_common::SeaError::invalid(e.to_string()))?;
    s.push('\n');
    Ok(s)
}

/// Parses a baseline from JSON.
///
/// # Errors
///
/// Malformed JSON or missing fields.
pub fn from_json(text: &str) -> sea_common::Result<BenchBaseline> {
    serde_json::from_str(text).map_err(|e| sea_common::SeaError::invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, higher_is_better: bool) -> HeadlineMetric {
        HeadlineMetric {
            name: name.to_string(),
            value,
            higher_is_better,
            gate: true,
        }
    }

    fn baseline_with(metrics: Vec<HeadlineMetric>) -> BenchBaseline {
        BenchBaseline {
            schema_version: BASELINE_SCHEMA_VERSION,
            experiments: vec![ExperimentBaseline {
                id: "e1".to_string(),
                wall_clock_ms: 10.0,
                metrics,
            }],
        }
    }

    #[test]
    fn comparison_is_direction_aware() {
        let base = baseline_with(vec![
            metric("sim_io_ops", 1000.0, false),
            metric("predict_hit_rate", 0.8, true),
        ]);
        // I/O grew 30%, hit rate fell 30%: both regressions at 15%.
        let bad = baseline_with(vec![
            metric("sim_io_ops", 1300.0, false),
            metric("predict_hit_rate", 0.56, true),
        ]);
        let regs = compare(&base, &bad, DEFAULT_TOLERANCE);
        assert_eq!(regs.len(), 2, "{regs:?}");
        // I/O *fell* 30%, hit rate *rose*: improvements, not regressions.
        let good = baseline_with(vec![
            metric("sim_io_ops", 700.0, false),
            metric("predict_hit_rate", 0.95, true),
        ]);
        assert!(compare(&base, &good, DEFAULT_TOLERANCE).is_empty());
        // Within tolerance: quiet.
        let near = baseline_with(vec![
            metric("sim_io_ops", 1100.0, false),
            metric("predict_hit_rate", 0.75, true),
        ]);
        assert!(compare(&base, &near, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn ungated_and_unmatched_metrics_never_fire() {
        let base = baseline_with(vec![metric("sim_io_ops", 1000.0, false)]);
        let mut cur = baseline_with(vec![
            metric("sim_io_ops", 1001.0, false),
            metric("brand_new_metric", 1e9, false),
        ]);
        cur.experiments[0].metrics.push(HeadlineMetric {
            name: "wall_informational".to_string(),
            value: 1e12,
            higher_is_better: false,
            gate: false,
        });
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_baseline() {
        let base = baseline_with(vec![
            metric("sim_io_ops", 1234.0, false),
            metric("predict_hit_rate", 0.875, true),
        ]);
        let text = to_json(&base).unwrap();
        assert!(text.ends_with('\n'));
        let back = from_json(&text).unwrap();
        assert_eq!(back, base);
    }
}
