//! A tiny named-column table for experiment results.

use std::fmt;

use sea_common::{Result, SeaError};
use serde::{Deserialize, Serialize};

/// One experiment's result table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id, e.g. "E4".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of values, one per parameter setting.
    pub rows: Vec<Vec<f64>>,
    /// Number of rows rejected by [`Report::try_push_row`] for arity
    /// mismatch. Serialized so a JSON consumer can tell a short table
    /// from a silently truncated one; defaults to zero when absent so
    /// pre-existing report files still parse.
    #[serde(default)]
    pub rows_dropped: u64,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            rows_dropped: 0,
        }
    }

    /// Appends a row, rejecting one whose arity differs from the column
    /// count.
    ///
    /// # Errors
    ///
    /// [`SeaError::InvalidArgument`] on an arity mismatch; the table is
    /// left unchanged and [`Report::rows_dropped`] is incremented, so a
    /// caller that swallows the error still leaves an audit trail in the
    /// serialized report.
    pub fn try_push_row(&mut self, row: Vec<f64>) -> Result<()> {
        if row.len() != self.columns.len() {
            self.rows_dropped += 1;
            return Err(SeaError::invalid(format!(
                "row arity mismatch in report {}: got {} values for {} columns",
                self.id,
                row.len(),
                self.columns.len()
            )));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the column count (programmer
    /// error in an experiment runner); use [`Report::try_push_row`] to
    /// handle the mismatch instead.
    pub fn push_row(&mut self, row: Vec<f64>) {
        if let Err(e) = self.try_push_row(row) {
            panic!("{e}");
        }
    }

    /// Serializes the report (id, title, columns, rows, and the
    /// dropped-row count) as pretty JSON — the machine-readable sibling
    /// of the `Display` markdown table.
    ///
    /// # Errors
    ///
    /// Serialization failures surface as [`SeaError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| SeaError::Serde(e.to_string()))
    }

    /// Value at `(row, column-name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|n| n == column)?;
        self.rows.get(row).and_then(|r| r.get(c)).copied()
    }

    /// All values of one column.
    pub fn column(&self, column: &str) -> Vec<f64> {
        let Some(c) = self.columns.iter().position(|n| n == column) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r.get(c).copied()).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| format_value(*v)).collect())
            .collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:>w$} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &cells {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 && v.abs() < 1e6 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut r = Report::new("E0", "demo", &["n", "time_us"]);
        r.push_row(vec![1000.0, 42.5]);
        r.push_row(vec![2000.0, 99.0]);
        assert_eq!(r.value(0, "time_us"), Some(42.5));
        assert_eq!(r.value(1, "n"), Some(2000.0));
        assert_eq!(r.value(0, "nope"), None);
        assert_eq!(r.column("n"), vec![1000.0, 2000.0]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("E0", "demo", &["a", "b"]);
        r.push_row(vec![1.0]);
    }

    #[test]
    fn try_push_row_rejects_bad_arity_without_mutating() {
        let mut r = Report::new("E0", "demo", &["a", "b"]);
        assert!(r.try_push_row(vec![1.0, 2.0]).is_ok());
        let err = r.try_push_row(vec![1.0]).unwrap_err();
        assert!(
            err.to_string().contains("row arity mismatch in report E0"),
            "{err}"
        );
        assert!(r.try_push_row(vec![1.0, 2.0, 3.0]).is_err());
        assert_eq!(r.rows.len(), 1, "failed pushes leave the table alone");
        assert_eq!(r.rows_dropped, 2, "dropped rows are counted");
    }

    #[test]
    fn json_round_trip() {
        let mut r = Report::new("E0", "demo", &["n", "time_us"]);
        r.push_row(vec![1000.0, 42.5]);
        let _ = r.try_push_row(vec![1.0]);
        let json = r.to_json().unwrap();
        assert!(json.contains("\"columns\""));
        assert!(
            json.contains("\"rows_dropped\": 1"),
            "dropped rows are visible to JSON consumers: {json}"
        );
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn reports_without_a_dropped_count_still_parse() {
        let legacy = r#"{"id":"E0","title":"demo","columns":["a"],"rows":[[1.0]]}"#;
        let r: Report = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.rows_dropped, 0);
    }

    #[test]
    fn display_renders_markdown_table() {
        let mut r = Report::new("E0", "demo", &["n", "factor"]);
        r.push_row(vec![1e7, 123.456789]);
        let s = r.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| 1.000e7 |") || s.contains("1.000e7"));
        assert!(s.contains("123.4568"));
    }
}
