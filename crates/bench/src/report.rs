//! A tiny named-column table for experiment results.

use std::fmt;

/// One experiment's result table.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Experiment id, e.g. "E4".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows of values, one per parameter setting.
    pub rows: Vec<Vec<f64>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the column count (programmer
    /// error in an experiment runner).
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch in report {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Value at `(row, column-name)`, if present.
    pub fn value(&self, row: usize, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|n| n == column)?;
        self.rows.get(row).and_then(|r| r.get(c)).copied()
    }

    /// All values of one column.
    pub fn column(&self, column: &str) -> Vec<f64> {
        let Some(c) = self.columns.iter().position(|n| n == column) else {
            return Vec::new();
        };
        self.rows.iter().filter_map(|r| r.get(c).copied()).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {} — {}", self.id, self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| format_value(*v)).collect())
            .collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:>w$} |")?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &cells {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else if (v - v.round()).abs() < 1e-9 && v.abs() < 1e6 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut r = Report::new("E0", "demo", &["n", "time_us"]);
        r.push_row(vec![1000.0, 42.5]);
        r.push_row(vec![2000.0, 99.0]);
        assert_eq!(r.value(0, "time_us"), Some(42.5));
        assert_eq!(r.value(1, "n"), Some(2000.0));
        assert_eq!(r.value(0, "nope"), None);
        assert_eq!(r.column("n"), vec![1000.0, 2000.0]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Report::new("E0", "demo", &["a", "b"]);
        r.push_row(vec![1.0]);
    }

    #[test]
    fn display_renders_markdown_table() {
        let mut r = Report::new("E0", "demo", &["n", "factor"]);
        r.push_row(vec![1e7, 123.456789]);
        let s = r.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| 1.000e7 |") || s.contains("1.000e7"));
        assert!(s.contains("123.4568"));
    }
}
