//! # sea-bench
//!
//! The experiment harness: one runner per experiment in DESIGN.md's
//! experiment index (E1–E19 plus the A1 ablations), each regenerating
//! the corresponding table/claim of the paper on the simulated
//! substrate. The [`baseline`] module turns a fixed subset of them into
//! the continuous bench-regression harness behind the `perfbaseline`
//! binary.
//!
//! Every runner returns a [`report::Report`] — a small named-column table —
//! so results can be printed, asserted on, and recorded in EXPERIMENTS.md.
//! The `experiments` binary runs any or all of them:
//!
//! ```text
//! cargo run -p sea-bench --release --bin experiments          # all
//! cargo run -p sea-bench --release --bin experiments -- e4   # one
//! ```
//!
//! Criterion benches over the same kernels live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod report;

pub use report::Report;
