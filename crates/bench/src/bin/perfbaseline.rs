//! Continuous bench-regression harness.
//!
//! ```text
//! cargo run -p sea-bench --release --bin perfbaseline              # refresh
//! cargo run -p sea-bench --release --bin perfbaseline -- --check  # CI gate
//! ```
//!
//! Runs the fixed experiment subset (see
//! [`sea_bench::baseline::BASELINE_EXPERIMENTS`]), extracts headline
//! metrics, and compares them against the committed baseline file:
//!
//! * default mode — compare (if a baseline exists), then rewrite the
//!   baseline with the fresh numbers so an intentional change can be
//!   reviewed and committed; exits 1 if any gated metric regressed.
//! * `--check` — compare only, never overwrite an existing baseline;
//!   exits 1 on regression. If no baseline exists yet (or its schema
//!   version differs), writes one and succeeds, so the gate
//!   bootstraps itself.
//!
//! `--tolerance <frac>` (default 0.15) sets the allowed relative drift;
//! `--out <path>` (default `BENCH_baseline.json`) sets the file.

use std::path::PathBuf;
use std::process::ExitCode;

use sea_bench::baseline::{
    collect, compare, from_json, to_json, BenchBaseline, BASELINE_SCHEMA_VERSION, DEFAULT_TOLERANCE,
};

fn main() -> ExitCode {
    let mut check = false;
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut out = PathBuf::from("BENCH_baseline.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance requires a non-negative number");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out = PathBuf::from(p),
                None => {
                    eprintln!("--out requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perfbaseline [--check] [--tolerance <frac>] [--out <path>]");
                return ExitCode::from(2);
            }
        }
    }

    println!("collecting baseline metrics (this runs the benchmark subset)...");
    let current = match collect() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("collection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for exp in &current.experiments {
        println!("  {} ({:.0} ms wall):", exp.id, exp.wall_clock_ms);
        for m in &exp.metrics {
            println!("    {:<20} {}", m.name, m.value);
        }
    }

    let previous: Option<BenchBaseline> = match std::fs::read_to_string(&out) {
        Ok(text) => match from_json(&text) {
            Ok(b) if b.schema_version == BASELINE_SCHEMA_VERSION => Some(b),
            Ok(b) => {
                eprintln!(
                    "baseline {} has schema v{} (current v{}); skipping comparison",
                    out.display(),
                    b.schema_version,
                    BASELINE_SCHEMA_VERSION
                );
                None
            }
            Err(e) => {
                eprintln!(
                    "baseline {} is unreadable ({e}); skipping comparison",
                    out.display()
                );
                None
            }
        },
        Err(_) => None,
    };

    let mut regressed = false;
    match &previous {
        Some(prev) => {
            let regressions = compare(prev, &current, tolerance);
            if regressions.is_empty() {
                println!(
                    "no regressions against {} (tolerance {:.0}%)",
                    out.display(),
                    tolerance * 100.0
                );
            } else {
                regressed = true;
                eprintln!(
                    "{} regression(s) against {} (tolerance {:.0}%):",
                    regressions.len(),
                    out.display(),
                    tolerance * 100.0
                );
                for r in &regressions {
                    eprintln!("  {r}");
                }
            }
        }
        None => println!("no comparable baseline at {}", out.display()),
    }

    // --check never overwrites a comparable committed baseline; every
    // other path rewrites it so intentional shifts show up as a diff.
    let write = !check || previous.is_none();
    if write {
        match to_json(&current) {
            Ok(text) => {
                if let Err(e) = std::fs::write(&out, text) {
                    eprintln!("writing {} failed: {e}", out.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", out.display());
            }
            Err(e) => {
                eprintln!("serializing baseline failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
