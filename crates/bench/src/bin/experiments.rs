//! CLI entry point regenerating the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p sea-bench --release --bin experiments           # all
//! cargo run -p sea-bench --release --bin experiments -- e4 e5  # subset
//! ```

use sea_bench::experiments::{run_by_id, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ALL_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut failures = 0;
    for id in ids {
        match run_by_id(id) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
