//! CLI entry point regenerating the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p sea-bench --release --bin experiments           # all
//! cargo run -p sea-bench --release --bin experiments -- e4 e5  # subset
//! cargo run -p sea-bench --release --bin experiments -- --json-out out e1
//! cargo run -p sea-bench --release --bin experiments -- --trace-out traces e1
//! ```
//!
//! With `--json-out <dir>`, each experiment runs against a recording
//! [`TelemetrySink`] and writes `<dir>/<id>/report.json` (the result
//! table) plus `<dir>/<id>/metrics.json` (the telemetry snapshot:
//! counters, gauges, latency histograms, span trees, per-query events).
//! With `--trace-out <dir>`, each experiment additionally writes
//! `<dir>/<id>/trace.json` (Chrome `trace_event` JSON — load it in
//! `about:tracing` or <https://ui.perfetto.dev>) and
//! `<dir>/<id>/metrics.prom` (Prometheus text exposition). With
//! `--stats-out <dir>`, experiments that serve through the
//! `sea-service` front door (E20) write `<dir>/<id>/stats.json` — the
//! per-query ledger's summary / breakdown / top-N report. With
//! `--watch-out <dir>`, experiments that run behind a `sea-watch` tap
//! (E21) write `<dir>/<id>/watch.json` — windowed metric summaries,
//! SLO alert log, and anomaly suspicions per fault-rate arm. With
//! `--log-out <dir>`, each experiment writes `<dir>/<id>/events.jsonl`
//! (the bounded event ring as JSON-Lines, one event per line). Without
//! any flag, experiments run against the no-op sink and print the same
//! tables they always have.

use std::path::PathBuf;

use sea_bench::experiments::{run_by_id_with, stats_json_by_id, watch_json_by_id, ALL_IDS};
use sea_telemetry::TelemetrySink;

fn main() {
    let mut json_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut stats_out: Option<PathBuf> = None;
    let mut watch_out: Option<PathBuf> = None;
    let mut log_out: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if matches!(
            arg.as_str(),
            "--json-out" | "--trace-out" | "--stats-out" | "--watch-out" | "--log-out"
        ) {
            match args.next() {
                Some(dir) if arg == "--json-out" => json_out = Some(PathBuf::from(dir)),
                Some(dir) if arg == "--stats-out" => stats_out = Some(PathBuf::from(dir)),
                Some(dir) if arg == "--watch-out" => watch_out = Some(PathBuf::from(dir)),
                Some(dir) if arg == "--log-out" => log_out = Some(PathBuf::from(dir)),
                Some(dir) => trace_out = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("{arg} requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg);
        }
    }
    let ids: Vec<&str> = if ids.is_empty() {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let recording = json_out.is_some() || trace_out.is_some() || log_out.is_some();
    let mut failures = 0;
    for id in ids {
        let sink = if recording {
            TelemetrySink::recording()
        } else {
            TelemetrySink::noop()
        };
        match run_by_id_with(id, &sink) {
            Ok(report) => {
                println!("{report}");
                if let Some(dir) = &json_out {
                    if let Err(e) = write_sidecars(dir, id, &report, &sink) {
                        eprintln!("experiment {id}: writing json sidecars failed: {e}");
                        failures += 1;
                    }
                }
                if let Some(dir) = &trace_out {
                    if let Err(e) = write_traces(dir, id, &sink) {
                        eprintln!("experiment {id}: writing trace sidecars failed: {e}");
                        failures += 1;
                    }
                }
                if let Some(dir) = &stats_out {
                    if let Err(e) = write_stats(dir, id) {
                        eprintln!("experiment {id}: writing stats sidecar failed: {e}");
                        failures += 1;
                    }
                }
                if let Some(dir) = &watch_out {
                    if let Err(e) = write_watch(dir, id) {
                        eprintln!("experiment {id}: writing watch sidecar failed: {e}");
                        failures += 1;
                    }
                }
                if let Some(dir) = &log_out {
                    if let Err(e) = write_events(dir, id, &sink) {
                        eprintln!("experiment {id}: writing event log failed: {e}");
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Writes `<dir>/<id>/stats.json` (the service ledger's stats report)
/// for experiments that have one; a no-op for the rest.
fn write_stats(dir: &std::path::Path, id: &str) -> std::io::Result<()> {
    let Some(json) = stats_json_by_id(id, &TelemetrySink::noop()) else {
        return Ok(());
    };
    let json = json.map_err(|e| std::io::Error::other(e.to_string()))?;
    let exp_dir = dir.join(id);
    std::fs::create_dir_all(&exp_dir)?;
    std::fs::write(exp_dir.join("stats.json"), json)
}

/// Writes `<dir>/<id>/watch.json` (the watch layer's windowed metrics,
/// alert log, and suspicions) for experiments that run behind a
/// `WatchHub` tap; a no-op for the rest.
fn write_watch(dir: &std::path::Path, id: &str) -> std::io::Result<()> {
    let Some(json) = watch_json_by_id(id, &TelemetrySink::noop()) else {
        return Ok(());
    };
    let json = json.map_err(|e| std::io::Error::other(e.to_string()))?;
    let exp_dir = dir.join(id);
    std::fs::create_dir_all(&exp_dir)?;
    std::fs::write(exp_dir.join("watch.json"), json)
}

/// Writes `<dir>/<id>/events.jsonl` — the sink's bounded event ring as
/// JSON-Lines, one event per line in recording order.
fn write_events(dir: &std::path::Path, id: &str, sink: &TelemetrySink) -> std::io::Result<()> {
    let Some(snapshot) = sink.snapshot() else {
        return Ok(());
    };
    let jsonl = sea_telemetry::export::events_jsonl(&snapshot)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let exp_dir = dir.join(id);
    std::fs::create_dir_all(&exp_dir)?;
    std::fs::write(exp_dir.join("events.jsonl"), jsonl)
}

/// Writes `<dir>/<id>/trace.json` (Chrome `trace_event` JSON) and
/// `<dir>/<id>/metrics.prom` (Prometheus text exposition).
fn write_traces(dir: &std::path::Path, id: &str, sink: &TelemetrySink) -> std::io::Result<()> {
    let Some(snapshot) = sink.snapshot() else {
        return Ok(());
    };
    let exp_dir = dir.join(id);
    std::fs::create_dir_all(&exp_dir)?;
    std::fs::write(
        exp_dir.join("trace.json"),
        sea_telemetry::export::chrome_trace_json(&snapshot),
    )?;
    std::fs::write(
        exp_dir.join("metrics.prom"),
        sea_telemetry::export::prometheus_text(&snapshot),
    )?;
    Ok(())
}

/// Writes `<dir>/<id>/report.json` and, if the sink recorded anything,
/// `<dir>/<id>/metrics.json`.
fn write_sidecars(
    dir: &std::path::Path,
    id: &str,
    report: &sea_bench::Report,
    sink: &TelemetrySink,
) -> std::io::Result<()> {
    let exp_dir = dir.join(id);
    std::fs::create_dir_all(&exp_dir)?;
    let report_json = report
        .to_json()
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(exp_dir.join("report.json"), report_json)?;
    if let Some(snapshot) = sink.snapshot() {
        let metrics_json = serde_json::to_string_pretty(&snapshot)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        std::fs::write(exp_dir.join("metrics.json"), metrics_json)?;
    }
    Ok(())
}
