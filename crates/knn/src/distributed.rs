//! MapReduce-style vs coordinator–cohort distributed kNN.

use sea_common::{CostMeter, CostModel, CostReport, Point, Record, Rect, Result, SeaError};
use sea_index::kdtree::{KdTree, Neighbor};
use sea_storage::{NodeId, StorageCluster, BDAS_LAYERS, DIRECT_LAYERS};

/// A kNN answer plus its resource bill.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnOutcome {
    /// The k nearest neighbours, ascending distance.
    pub neighbors: Vec<Neighbor>,
    /// The cost of finding them.
    pub cost: CostReport,
    /// Data nodes that actually did work.
    pub nodes_engaged: usize,
}

/// MapReduce-style kNN: full scan of every node's partition through the
/// BDAS stack; each node ships its local top-k; the coordinator merges.
///
/// # Errors
///
/// Missing table, `k == 0`, or dimension mismatch.
pub fn mapreduce_knn(
    cluster: &StorageCluster,
    table: &str,
    query: &Point,
    k: usize,
    cost_model: &CostModel,
) -> Result<KnnOutcome> {
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    SeaError::check_dims(cluster.dims(table)?, query.dims())?;
    let mut node_meters = Vec::new();
    let mut merged: Vec<Neighbor> = Vec::new();
    for node in 0..cluster.num_nodes() {
        let mut meter = CostMeter::new();
        meter.touch_node(BDAS_LAYERS);
        let records = cluster.scan_node(table, node, &mut meter)?;
        let mut local: Vec<Neighbor> = records
            .iter()
            .map(|r| Neighbor {
                id: r.id,
                distance: dist(query, r),
            })
            .collect();
        // Tie-break on record id: a node's local top-k must not depend
        // on its block storage order when distances are equal, or the
        // merged answer becomes order-unstable.
        local.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        });
        local.truncate(k);
        meter.charge_lan(local.len() as u64 * 16);
        merged.extend(local);
        node_meters.push(meter);
    }
    let mut coord = CostMeter::new();
    coord.charge_cpu(merged.len() as u64);
    merged.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("finite")
            .then(a.id.cmp(&b.id))
    });
    merged.truncate(k);
    let nodes = cluster.num_nodes();
    Ok(KnnOutcome {
        neighbors: merged,
        cost: coord.report_parallel(node_meters.iter(), cost_model),
        nodes_engaged: nodes,
    })
}

fn dist(q: &Point, r: &Record) -> f64 {
    q.coords()
        .iter()
        .zip(&r.values)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// The coordinator–cohort kNN operator: one k-d tree per data node, plus
/// each partition's bounding rectangle for node-level pruning.
#[derive(Debug, Clone)]
pub struct DistributedKnnIndex {
    trees: Vec<Option<KdTree>>,
    bounds: Vec<Option<Rect>>,
    dims: usize,
    record_bytes: u64,
    build_cost: CostReport,
}

impl DistributedKnnIndex {
    /// Builds the per-node trees with one offline pass over `table`.
    ///
    /// # Errors
    ///
    /// Missing table.
    pub fn build(cluster: &StorageCluster, table: &str, cost_model: &CostModel) -> Result<Self> {
        let dims = cluster.dims(table)?;
        let mut node_meters = Vec::new();
        let mut trees = Vec::with_capacity(cluster.num_nodes());
        let mut bounds = Vec::with_capacity(cluster.num_nodes());
        for node in 0..cluster.num_nodes() {
            let mut meter = CostMeter::new();
            meter.touch_node(DIRECT_LAYERS);
            let records: Vec<Record> = cluster.scan_node(table, node, &mut meter)?;
            if records.is_empty() {
                trees.push(None);
                bounds.push(None);
            } else {
                let mut lo = records[0].values.clone();
                let mut hi = records[0].values.clone();
                for r in &records {
                    for d in 0..dims {
                        lo[d] = lo[d].min(r.value(d));
                        hi[d] = hi[d].max(r.value(d));
                    }
                }
                bounds.push(Some(Rect::new(lo, hi)?));
                trees.push(Some(KdTree::build(&records)?));
            }
            node_meters.push(meter);
        }
        let coord = CostMeter::new();
        Ok(DistributedKnnIndex {
            trees,
            bounds,
            dims,
            record_bytes: 8 + 8 * dims as u64,
            build_cost: coord.report_parallel(node_meters.iter(), cost_model),
        })
    }

    /// The one-time index construction bill.
    pub fn build_cost(&self) -> &CostReport {
        &self.build_cost
    }

    /// Data dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Answers a kNN query: nodes are visited in ascending
    /// distance-from-partition order; once `k` neighbours are known and the
    /// next node's partition lies farther than the current k-th distance,
    /// the remaining nodes are never engaged.
    ///
    /// # Errors
    ///
    /// `k == 0` or dimension mismatch.
    pub fn query(&self, query: &Point, k: usize, cost_model: &CostModel) -> Result<KnnOutcome> {
        self.query_budgeted(query, k, usize::MAX, cost_model)
    }

    /// Approximate kNN (RT2-1): like [`DistributedKnnIndex::query`] but
    /// engages at most `max_nodes` partitions. With hash partitioning the
    /// first partitions already contain a uniform sample of the data, so
    /// small budgets trade a little recall for a large cost reduction;
    /// `usize::MAX` recovers the exact operator.
    ///
    /// # Errors
    ///
    /// `k == 0`, `max_nodes == 0`, or dimension mismatch.
    pub fn query_budgeted(
        &self,
        query: &Point,
        k: usize,
        max_nodes: usize,
        cost_model: &CostModel,
    ) -> Result<KnnOutcome> {
        if max_nodes == 0 {
            return Err(SeaError::invalid("max_nodes must be positive"));
        }
        self.query_inner(query, k, max_nodes, cost_model)
    }

    fn query_inner(
        &self,
        query: &Point,
        k: usize,
        max_nodes: usize,
        cost_model: &CostModel,
    ) -> Result<KnnOutcome> {
        if k == 0 {
            return Err(SeaError::invalid("k must be positive"));
        }
        SeaError::check_dims(self.dims, query.dims())?;

        // Visit order: ascending minimum distance from query to partition.
        let mut order: Vec<(f64, NodeId)> = Vec::new();
        for (node, b) in self.bounds.iter().enumerate() {
            if let Some(rect) = b {
                order.push((rect.min_distance(query)?, node));
            }
        }
        order.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));

        let mut coord = CostMeter::new();
        let mut node_meters = Vec::new();
        let mut merged: Vec<Neighbor> = Vec::new();
        let mut engaged = 0usize;
        for (min_dist, node) in order {
            if engaged >= max_nodes {
                break; // approximate budget exhausted
            }
            let kth = merged
                .get(k - 1)
                .map(|n| n.distance)
                .unwrap_or(f64::INFINITY);
            if merged.len() >= k && min_dist > kth {
                break; // this and all farther nodes are irrelevant
            }
            engaged += 1;
            coord.charge_lan(48); // the query message
            let mut meter = CostMeter::new();
            meter.touch_node(DIRECT_LAYERS);
            let tree = self.trees[node].as_ref().expect("ordered over Some");
            let local = tree.nearest(query, k)?;
            // Index traversal: ~log2(n) node inspections per result.
            // The tree (holding the vectors) is memory-resident on its
            // node — the offline build already paid the disk pass — so a
            // query costs only the logarithmic traversal plus shipping the
            // k winners.
            let visits = (tree.len().max(2) as f64).log2().ceil() as u64 * k as u64;
            meter.charge_cpu(visits);
            meter.charge_lan(local.len() as u64 * self.record_bytes.max(16));
            merged.extend(local);
            merged.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("finite")
                    .then(a.id.cmp(&b.id))
            });
            merged.truncate(k);
            node_meters.push(meter);
        }
        coord.charge_cpu(merged.len() as u64);
        Ok(KnnOutcome {
            neighbors: merged,
            cost: coord.report_parallel(node_meters.iter(), cost_model),
            nodes_engaged: engaged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::RecordId;
    use sea_storage::Partitioning;

    fn cluster(n: u64, partitioning: Partitioning) -> StorageCluster {
        let mut c = StorageCluster::new(8, 256);
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    i,
                    vec![(i % 1000) as f64 / 10.0, (i / 1000) as f64 * 3.7 % 100.0],
                )
            })
            .collect();
        c.load_table("t", records, partitioning).unwrap();
        c
    }

    fn brute(c: &StorageCluster, q: &Point, k: usize) -> Vec<(RecordId, f64)> {
        let mut all: Vec<(RecordId, f64)> = c
            .all_records("t")
            .unwrap()
            .iter()
            .map(|r| (r.id, dist(q, r)))
            .collect();
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn both_strategies_match_brute_force() {
        let c = cluster(10_000, Partitioning::Hash);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        for q in [
            Point::new(vec![50.0, 50.0]),
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![99.9, 13.0]),
        ] {
            for k in [1, 10, 50] {
                let want = brute(&c, &q, k);
                let mr = mapreduce_knn(&c, "t", &q, k, &model).unwrap();
                let cc = idx.query(&q, k, &model).unwrap();
                let mr_d: Vec<f64> = mr.neighbors.iter().map(|n| n.distance).collect();
                let cc_d: Vec<f64> = cc.neighbors.iter().map(|n| n.distance).collect();
                let want_d: Vec<f64> = want.iter().map(|(_, d)| *d).collect();
                for (got, want) in mr_d.iter().zip(&want_d) {
                    assert!((got - want).abs() < 1e-9, "mapreduce distances");
                }
                for (got, want) in cc_d.iter().zip(&want_d) {
                    assert!((got - want).abs() < 1e-9, "cohort distances");
                }
            }
        }
    }

    #[test]
    fn coordinator_is_orders_cheaper() {
        let c = cluster(50_000, Partitioning::Hash);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![42.0, 37.0]);
        let mr = mapreduce_knn(&c, "t", &q, 10, &model).unwrap();
        let cc = idx.query(&q, 10, &model).unwrap();
        let factor = mr.cost.wall_us / cc.cost.wall_us;
        assert!(factor > 50.0, "speedup factor {factor}");
        assert!(cc.cost.totals.disk_bytes * 100 < mr.cost.totals.disk_bytes);
    }

    #[test]
    fn range_partitioning_engages_fewer_nodes() {
        let c = cluster(
            50_000,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 8),
            },
        );
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![42.0, 37.0]);
        let out = idx.query(&q, 10, &model).unwrap();
        assert!(
            out.nodes_engaged <= 3,
            "pruned to the partitions near the query: {}",
            out.nodes_engaged
        );
        // Results still exact.
        let want = brute(&c, &q, 10);
        for (n, (_, d)) in out.neighbors.iter().zip(&want) {
            assert!((n.distance - d).abs() < 1e-9);
        }
    }

    #[test]
    fn k_larger_than_table() {
        let c = cluster(20, Partitioning::Hash);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![1.0, 1.0]);
        let out = idx.query(&q, 100, &model).unwrap();
        assert_eq!(out.neighbors.len(), 20);
        let mr = mapreduce_knn(&c, "t", &q, 100, &model).unwrap();
        assert_eq!(mr.neighbors.len(), 20);
    }

    #[test]
    fn validations() {
        let c = cluster(100, Partitioning::Hash);
        let model = CostModel::default();
        let q = Point::new(vec![1.0, 1.0]);
        assert!(mapreduce_knn(&c, "t", &q, 0, &model).is_err());
        assert!(mapreduce_knn(&c, "missing", &q, 5, &model).is_err());
        let bad_q = Point::new(vec![1.0]);
        assert!(mapreduce_knn(&c, "t", &bad_q, 5, &model).is_err());
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        assert!(idx.query(&q, 0, &model).is_err());
        assert!(idx.query(&bad_q, 5, &model).is_err());
    }

    #[test]
    fn equidistant_neighbors_break_ties_by_id_not_storage_order() {
        // Two records equidistant from the query, stored with the HIGHER
        // id first: a distance-only stable sort would return id 10.
        let mut c = StorageCluster::new(1, 64);
        c.load_table(
            "t",
            vec![
                Record::new(10, vec![1.0, 0.0]),
                Record::new(5, vec![-1.0, 0.0]),
            ],
            Partitioning::Hash,
        )
        .unwrap();
        let model = CostModel::default();
        let q = Point::new(vec![0.0, 0.0]);
        let mr = mapreduce_knn(&c, "t", &q, 1, &model).unwrap();
        assert_eq!(mr.neighbors[0].id, 5, "lowest id wins the tie");
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let cc = idx.query(&q, 1, &model).unwrap();
        assert_eq!(cc.neighbors[0].id, 5);
        // Both ids surface, deterministically ordered, at k = 2.
        let both = mapreduce_knn(&c, "t", &q, 2, &model).unwrap();
        let ids: Vec<_> = both.neighbors.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![5, 10]);
    }

    #[test]
    fn build_cost_reflects_full_scan() {
        let c = cluster(10_000, Partitioning::Hash);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        assert!(idx.build_cost().totals.disk_bytes >= c.stats("t").unwrap().bytes);
    }
}

#[cfg(test)]
mod approximate_tests {
    use super::*;
    use sea_storage::Partitioning;

    fn cluster(n: u64) -> StorageCluster {
        let mut c = StorageCluster::new(8, 256);
        let records: Vec<Record> = (0..n)
            .map(|i| {
                Record::new(
                    i,
                    vec![(i % 1000) as f64 / 10.0, (i / 1000) as f64 * 3.7 % 100.0],
                )
            })
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    #[test]
    fn full_budget_equals_exact() {
        let c = cluster(20_000);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![42.0, 37.0]);
        let exact = idx.query(&q, 10, &model).unwrap();
        let budgeted = idx.query_budgeted(&q, 10, usize::MAX, &model).unwrap();
        let a: Vec<f64> = exact.neighbors.iter().map(|n| n.distance).collect();
        let b: Vec<f64> = budgeted.neighbors.iter().map(|n| n.distance).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn small_budget_trades_recall_for_cost() {
        let c = cluster(40_000);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![42.0, 37.0]);
        let exact = idx.query(&q, 20, &model).unwrap();
        let approx = idx.query_budgeted(&q, 20, 2, &model).unwrap();
        assert!(approx.nodes_engaged <= 2);
        assert!(approx.cost.wall_us <= exact.cost.wall_us);
        // Recall: fraction of exact ids that the approximate answer found.
        let exact_ids: std::collections::HashSet<_> =
            exact.neighbors.iter().map(|n| n.id).collect();
        let hits = approx
            .neighbors
            .iter()
            .filter(|n| exact_ids.contains(&n.id))
            .count();
        let recall = hits as f64 / exact.neighbors.len() as f64;
        // Hash partitioning: 2 of 8 nodes ≈ a 25% uniform sample, so
        // recall is imperfect but far above zero, and distances are close.
        assert!(recall > 0.1, "recall {recall}");
        let worst_exact = exact.neighbors.last().unwrap().distance;
        let worst_approx = approx.neighbors.last().unwrap().distance;
        assert!(worst_approx < worst_exact * 4.0 + 1.0);
    }

    #[test]
    fn zero_budget_is_invalid() {
        let c = cluster(1_000);
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![1.0, 1.0]);
        assert!(idx.query_budgeted(&q, 5, 0, &model).is_err());
    }
}
