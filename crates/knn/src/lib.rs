//! # sea-knn
//!
//! Distributed k-nearest-neighbour query processing (P3, second bullet;
//! \[33\]: "Scaling kNN queries (the right way)", three orders of magnitude
//! over MapReduce-style processing).
//!
//! * [`mapreduce_knn`] — the baseline: every node scans its full partition
//!   through the BDAS stack, computes a local top-k, and ships it to a
//!   coordinator for the final merge. Scales with *data size*.
//! * [`DistributedKnnIndex`] — the coordinator–cohort operator: per-node
//!   k-d trees (built offline) answer local kNN in logarithmic work; the
//!   coordinator visits nodes in ascending distance-to-partition order and
//!   stops as soon as the running k-th distance proves remaining nodes
//!   irrelevant. Scales with *k*, not data size.
//!
//! Variants required by RT2-1 are included: reverse kNN, kNN joins, and
//! all-pairs kNN, all built on the same cohort primitive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod distributed;
pub mod variants;

pub use aggregate::{knn_aggregate, KnnAggregateOutcome};
pub use distributed::{mapreduce_knn, DistributedKnnIndex, KnnOutcome};
pub use variants::{all_pairs_knn, knn_join, reverse_knn};
