//! kNN-selection analytical queries (§III-A selection operator (iii)):
//! "Nearest-Neighbour queries, which select a given number of data items
//! that are closest to a given data point" — here combined with an
//! analytical operator over the selected items, completing the paper's
//! three selection types (range, radius, kNN).

use sea_common::{
    AggregateKind, AnswerValue, CostMeter, CostModel, CostReport, Point, Record, Result, SeaError,
};
use sea_storage::StorageCluster;

use crate::distributed::DistributedKnnIndex;

/// The outcome of a kNN-selection aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnAggregateOutcome {
    /// The aggregate over the k nearest records.
    pub answer: AnswerValue,
    /// Resource bill: the cohort kNN search plus the record fetches.
    pub cost: CostReport,
}

/// Computes `aggregate` over the `k` records nearest to `query`.
///
/// The cohort index finds the ids; the matching records are then fetched
/// with random point reads (charged per record) and aggregated at the
/// coordinator.
///
/// # Errors
///
/// `k == 0`, dimension mismatch, missing table, or aggregate errors
/// (including an empty table).
pub fn knn_aggregate(
    index: &DistributedKnnIndex,
    cluster: &StorageCluster,
    table: &str,
    query: &Point,
    k: usize,
    aggregate: AggregateKind,
    cost_model: &CostModel,
) -> Result<KnnAggregateOutcome> {
    aggregate.validate(cluster.dims(table)?)?;
    let knn = index.query(query, k, cost_model)?;
    if knn.neighbors.is_empty() {
        return Err(SeaError::Empty("kNN selection over an empty table".into()));
    }
    // Fetch the winners by id: point reads spread across the cluster.
    let ids: std::collections::HashSet<u64> = knn.neighbors.iter().map(|n| n.id).collect();
    let record_bytes = 8 + 8 * cluster.dims(table)? as u64;
    let mut fetch = CostMeter::new();
    for _ in &ids {
        fetch.charge_point_read(record_bytes);
        fetch.charge_lan(record_bytes);
    }
    fetch.charge_cpu(ids.len() as u64);
    // The record contents come from the table image (cost charged above).
    let selected: Vec<Record> = cluster
        .all_records(table)?
        .into_iter()
        .filter(|r| ids.contains(&r.id))
        .collect();
    let answer = aggregate.compute(&selected)?;
    let fetch_cost = fetch.report_sequential(cost_model);
    Ok(KnnAggregateOutcome {
        answer,
        cost: knn.cost.then(&fetch_cost),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_storage::Partitioning;

    fn setup() -> (StorageCluster, CostModel) {
        let mut c = StorageCluster::new(4, 256);
        let records: Vec<Record> = (0..5_000)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                Record::new(i as u64, vec![x, y, x + y])
            })
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        (c, CostModel::default())
    }

    #[test]
    fn knn_mean_matches_brute_force() {
        let (c, model) = setup();
        let index = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![50.0, 25.0, 75.0]);
        let out = knn_aggregate(
            &index,
            &c,
            "t",
            &q,
            9,
            AggregateKind::Mean { dim: 2 },
            &model,
        )
        .unwrap();
        // Brute force: 9 nearest by full-vector distance.
        let all = c.all_records("t").unwrap();
        let mut d: Vec<(f64, f64)> = all
            .iter()
            .map(|r| {
                let dist: f64 = r
                    .values
                    .iter()
                    .zip(q.coords())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (dist, r.value(2))
            })
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let want: f64 = d[..9].iter().map(|(_, v)| v).sum::<f64>() / 9.0;
        let got = out.answer.as_scalar().unwrap();
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        assert!(out.cost.wall_us > 0.0);
        assert!(out.cost.totals.disk_point_reads >= 9);
    }

    #[test]
    fn knn_count_is_k() {
        let (c, model) = setup();
        let index = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![10.0, 10.0, 20.0]);
        let out = knn_aggregate(&index, &c, "t", &q, 25, AggregateKind::Count, &model).unwrap();
        assert_eq!(out.answer, AnswerValue::Scalar(25.0));
    }

    #[test]
    fn validations() {
        let (c, model) = setup();
        let index = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        let q = Point::new(vec![0.0, 0.0, 0.0]);
        assert!(knn_aggregate(&index, &c, "t", &q, 0, AggregateKind::Count, &model).is_err());
        assert!(knn_aggregate(
            &index,
            &c,
            "t",
            &q,
            5,
            AggregateKind::Mean { dim: 9 },
            &model
        )
        .is_err());
        let bad_q = Point::new(vec![0.0]);
        assert!(knn_aggregate(&index, &c, "t", &bad_q, 5, AggregateKind::Count, &model).is_err());
    }
}
