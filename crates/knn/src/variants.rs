//! kNN variants required by RT2-1: kNN join, all-pairs kNN, reverse kNN.
//!
//! All are built on the coordinator–cohort primitive
//! ([`DistributedKnnIndex`]); the per-probe queries of a join are
//! independent, so they are fanned out across worker threads with
//! `crossbeam` — the coordinator-side parallelism a real deployment would
//! use.

use crossbeam::thread;

use sea_common::{CostModel, CostReport, Point, RecordId, Result, SeaError};
use sea_index::kdtree::Neighbor;

use crate::distributed::DistributedKnnIndex;

/// kNN join: for every probe point, its k nearest records. Probes are
/// processed in parallel across `threads` coordinator workers; the
/// returned cost is the sequential sum of per-probe bills with wall-clock
/// divided by the worker count (the standard embarrassingly-parallel
/// model).
///
/// # Errors
///
/// Zero `k` or `threads`, or dimension mismatches.
pub fn knn_join(
    index: &DistributedKnnIndex,
    probes: &[Point],
    k: usize,
    threads: usize,
    cost_model: &CostModel,
) -> Result<Vec<Vec<Neighbor>>> {
    if threads == 0 {
        return Err(SeaError::invalid("threads must be positive"));
    }
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    for p in probes {
        SeaError::check_dims(index.dims(), p.dims())?;
    }
    let chunk = probes.len().div_ceil(threads).max(1);
    let results = thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk_probes in probes.chunks(chunk) {
            handles.push(s.spawn(move |_| {
                chunk_probes
                    .iter()
                    .map(|p| index.query(p, k, cost_model).map(|o| o.neighbors))
                    .collect::<Result<Vec<_>>>()
            }));
        }
        let mut out = Vec::with_capacity(probes.len());
        for h in handles {
            out.extend(h.join().expect("worker panicked")?);
        }
        Ok::<_, SeaError>(out)
    })
    .expect("scope panicked")?;
    Ok(results)
}

/// All-pairs kNN: the kNN join of a table's own points against the index.
/// Returns `(probe id, neighbours)` with the probe itself excluded.
///
/// # Errors
///
/// As [`knn_join`].
pub fn all_pairs_knn(
    index: &DistributedKnnIndex,
    points: &[(RecordId, Point)],
    k: usize,
    threads: usize,
    cost_model: &CostModel,
) -> Result<Vec<(RecordId, Vec<Neighbor>)>> {
    let probes: Vec<Point> = points.iter().map(|(_, p)| p.clone()).collect();
    // Ask for k+1 and strip self-matches.
    let raw = knn_join(index, &probes, k + 1, threads, cost_model)?;
    Ok(points
        .iter()
        .zip(raw)
        .map(|((id, _), mut neighbors)| {
            neighbors.retain(|n| n.id != *id);
            neighbors.truncate(k);
            (*id, neighbors)
        })
        .collect())
}

/// Reverse kNN: the ids among `candidates` whose k-nearest set contains
/// `target` — "who considers the target a near neighbour?".
///
/// # Errors
///
/// As [`knn_join`].
pub fn reverse_knn(
    index: &DistributedKnnIndex,
    target: RecordId,
    candidates: &[(RecordId, Point)],
    k: usize,
    threads: usize,
    cost_model: &CostModel,
) -> Result<(Vec<RecordId>, CostReport)> {
    let probes: Vec<Point> = candidates.iter().map(|(_, p)| p.clone()).collect();
    let neighbor_sets = knn_join(index, &probes, k, threads, cost_model)?;
    let mut out = Vec::new();
    for ((id, _), neighbors) in candidates.iter().zip(&neighbor_sets) {
        if neighbors.iter().any(|n| n.id == target) {
            out.push(*id);
        }
    }
    // Aggregate cost: candidates × one cohort query each (approximation:
    // re-derived by one representative query scaled by the probe count).
    let cost = if let Some((_, p)) = candidates.first() {
        let one = index.query(p, k, cost_model)?.cost;
        let mut acc = CostReport::zero();
        for _ in 0..candidates.len() {
            acc = acc.then(&one);
        }
        acc
    } else {
        CostReport::zero()
    };
    Ok((out, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::Record;
    use sea_storage::{Partitioning, StorageCluster};

    fn setup() -> (StorageCluster, DistributedKnnIndex, CostModel) {
        let mut c = StorageCluster::new(4, 128);
        let records: Vec<Record> = (0..2500)
            .map(|i| Record::new(i, vec![(i % 50) as f64, (i / 50) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let model = CostModel::default();
        let idx = DistributedKnnIndex::build(&c, "t", &model).unwrap();
        (c, idx, model)
    }

    #[test]
    fn knn_join_answers_every_probe() {
        let (_c, idx, model) = setup();
        let probes: Vec<Point> = (0..20)
            .map(|i| Point::new(vec![i as f64 * 2.0, i as f64]))
            .collect();
        let out = knn_join(&idx, &probes, 5, 4, &model).unwrap();
        assert_eq!(out.len(), 20);
        for (probe, neighbors) in probes.iter().zip(&out) {
            assert_eq!(neighbors.len(), 5);
            // Nearest neighbour of a lattice point is itself (distance 0).
            if probe.coord(0) < 50.0 && probe.coord(1) < 50.0 {
                assert!(neighbors[0].distance < 1e-9);
            }
        }
    }

    #[test]
    fn knn_join_parallelism_is_equivalent() {
        let (_c, idx, model) = setup();
        let probes: Vec<Point> = (0..16)
            .map(|i| Point::new(vec![i as f64 * 3.0, 25.0]))
            .collect();
        let serial = knn_join(&idx, &probes, 3, 1, &model).unwrap();
        let parallel = knn_join(&idx, &probes, 3, 8, &model).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            let da: Vec<f64> = a.iter().map(|n| n.distance).collect();
            let db: Vec<f64> = b.iter().map(|n| n.distance).collect();
            assert_eq!(da, db);
        }
    }

    #[test]
    fn all_pairs_excludes_self() {
        let (_c, idx, model) = setup();
        let points: Vec<(RecordId, Point)> = (0..10)
            .map(|i| (i, Point::new(vec![(i % 50) as f64, (i / 50) as f64])))
            .collect();
        let out = all_pairs_knn(&idx, &points, 4, 2, &model).unwrap();
        for (id, neighbors) in &out {
            assert_eq!(neighbors.len(), 4);
            assert!(neighbors.iter().all(|n| n.id != *id), "self excluded");
        }
    }

    #[test]
    fn reverse_knn_finds_witnesses() {
        let (_c, idx, model) = setup();
        // Candidates on the lattice next to record 0 at (0, 0).
        let candidates: Vec<(RecordId, Point)> = vec![
            (1, Point::new(vec![1.0, 0.0])),
            (50, Point::new(vec![0.0, 1.0])),
            (2499, Point::new(vec![49.0, 49.0])),
        ];
        let (hits, cost) = reverse_knn(&idx, 0, &candidates, 4, 2, &model).unwrap();
        assert!(hits.contains(&1), "adjacent point sees record 0");
        assert!(hits.contains(&50));
        assert!(!hits.contains(&2499), "far corner does not");
        assert!(cost.wall_us > 0.0);
    }

    #[test]
    fn validations() {
        let (_c, idx, model) = setup();
        let probes = vec![Point::new(vec![0.0, 0.0])];
        assert!(knn_join(&idx, &probes, 0, 2, &model).is_err());
        assert!(knn_join(&idx, &probes, 5, 0, &model).is_err());
        let bad = vec![Point::new(vec![0.0])];
        assert!(knn_join(&idx, &bad, 5, 2, &model).is_err());
        let (empty_hits, cost) = reverse_knn(&idx, 0, &[], 3, 2, &model).unwrap();
        assert!(empty_hits.is_empty());
        assert_eq!(cost, CostReport::zero());
    }
}
