//! The edge/core geo-distributed system.

use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AnalyticalQuery, AnswerValue, CostModel, CostReport, Rect, Result, SeaError};
use sea_core::agent::{AgentConfig, SeaAgent};
use sea_query::{Executor, RetryPolicy};
use sea_storage::StorageCluster;
use sea_telemetry::TelemetrySink;

/// Configuration of the geo-distributed deployment.
#[derive(Debug, Clone)]
pub struct GeoConfig {
    /// The edge agents' configuration.
    pub agent: AgentConfig,
    /// Predictions with estimated error above this threshold are escalated
    /// to the core.
    pub error_threshold: f64,
    /// Number of edge nodes.
    pub edges: usize,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            agent: AgentConfig::default(),
            error_threshold: 0.15,
            edges: 4,
        }
    }
}

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoSource {
    /// Answered by the edge's local semantic cache — an *exact* answer
    /// with no WAN traffic ([`GeoSystem::with_edge_caches`]).
    EdgeCache,
    /// Answered by the edge's local model — no WAN traffic.
    EdgeModel,
    /// Answered by a sibling edge's model (one inter-edge hop; RT5-4).
    SiblingEdge {
        /// The edge whose model produced the answer.
        edge: usize,
    },
    /// Escalated to the core for exact execution.
    CoreExact,
}

/// The outcome of one geo-distributed query.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoOutcome {
    /// The answer returned to the analyst.
    pub answer: AnswerValue,
    /// End-to-end simulated response time in microseconds.
    pub response_us: f64,
    /// WAN bytes this query moved.
    pub wan_bytes: u64,
    /// Provenance.
    pub source: GeoSource,
}

/// Aggregate statistics of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoStats {
    /// Queries submitted in total.
    pub queries: u64,
    /// Queries answered at an edge.
    pub edge_answered: u64,
    /// Subset of `edge_answered` served by an edge's semantic cache
    /// (exact answers, zero WAN traffic).
    pub cache_answered: u64,
    /// Queries escalated to the core.
    pub core_answered: u64,
    /// Total WAN bytes moved.
    pub wan_bytes: u64,
    /// Total WAN messages.
    pub wan_msgs: u64,
    /// Sum of response times (µs) — divide by `queries` for the mean.
    pub total_response_us: f64,
}

impl GeoStats {
    /// Fraction of queries escalated to the core.
    pub fn fallback_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.core_answered as f64 / self.queries as f64
        }
    }

    /// Mean response time in microseconds.
    pub fn mean_response_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_response_us / self.queries as f64
        }
    }
}

struct EdgeNode {
    agent: SeaAgent,
    /// Edge-local semantic answer cache (RT5 flavoured): exact repeats
    /// of escalated queries are answered at the edge without a WAN round
    /// trip. `None` unless [`GeoSystem::with_edge_caches`] opted in.
    cache: Option<SemanticCache>,
}

/// The geo-distributed SEA deployment of Fig 3.
pub struct GeoSystem<'a> {
    executor: Executor<'a>,
    table: String,
    edges: Vec<EdgeNode>,
    master: SeaAgent,
    config: GeoConfig,
    cost_model: CostModel,
    /// Edge→core WAN retry policy: a transient core failure (the core's
    /// own node-level retries exhausted) is resubmitted over the WAN,
    /// paying a fresh round trip plus simulated backoff per attempt.
    wan_retry: RetryPolicy,
    stats: GeoStats,
    /// Inherited from the cluster; `geo.*` spans and events flow here.
    telemetry: TelemetrySink,
}

impl<'a> GeoSystem<'a> {
    /// Creates a deployment over `cluster`/`table` with `config.edges`
    /// edge nodes.
    ///
    /// # Errors
    ///
    /// Missing table, zero edges, or invalid agent configuration.
    pub fn new(cluster: &'a StorageCluster, table: &str, config: GeoConfig) -> Result<Self> {
        if config.edges == 0 {
            return Err(SeaError::invalid("need at least one edge node"));
        }
        let dims = cluster.dims(table)?;
        let mut edges = Vec::with_capacity(config.edges);
        for _ in 0..config.edges {
            edges.push(EdgeNode {
                agent: SeaAgent::new(dims, config.agent.clone())?,
                cache: None,
            });
        }
        Ok(GeoSystem {
            executor: Executor::new(cluster),
            table: table.to_string(),
            edges,
            master: SeaAgent::new(dims, config.agent.clone())?,
            config,
            cost_model: CostModel::default(),
            wan_retry: RetryPolicy::default(),
            stats: GeoStats {
                queries: 0,
                edge_answered: 0,
                cache_answered: 0,
                core_answered: 0,
                wan_bytes: 0,
                wan_msgs: 0,
                total_response_us: 0.0,
            },
            telemetry: cluster.telemetry().clone(),
        })
    }

    /// Overrides the edge→core WAN retry policy. Each retry resubmits the
    /// query after a transient core failure, charging one extra WAN round
    /// trip plus the policy's (doubling) simulated backoff.
    #[must_use]
    pub fn with_wan_retry(mut self, policy: RetryPolicy) -> Self {
        self.wan_retry = policy;
        self
    }

    /// Reconfigures the core executor's node-level retry policy — the
    /// WAN-level retry of [`GeoSystem::with_wan_retry`] only engages once
    /// the core has exhausted these.
    #[must_use]
    pub fn with_core_retry(mut self, policy: RetryPolicy) -> Self {
        self.executor = self.executor.clone().with_retry_policy(policy);
        self
    }

    /// Equips every edge with a local [`SemanticCache`]: exact repeats
    /// of previously escalated queries are answered at the edge — no WAN
    /// round trip, no core execution — and counted as
    /// [`GeoSource::EdgeCache`]. Edge entries are admitted answer-only
    /// (shipping per-node record fragments over the WAN would cost more
    /// than the round trips they could save), so only exact hits apply;
    /// the admission cost threshold is charged against the full
    /// WAN + core bill an escalation pays. Invalidate across workload
    /// drift with [`GeoSystem::advance_cache_epoch`].
    #[must_use]
    pub fn with_edge_caches(mut self, config: CacheConfig) -> Self {
        for e in &mut self.edges {
            e.cache =
                Some(SemanticCache::new(config.clone()).with_telemetry(self.telemetry.clone()));
        }
        self
    }

    /// Starts a new drift epoch on every edge cache, dropping all
    /// entries admitted before the bump. Call when the workload
    /// generator shifts interest regions (or data mutates): cached
    /// answers for the old regions are no longer worth their memory — or
    /// no longer true. Returns the new epoch (0 when no caches are
    /// attached).
    pub fn advance_cache_epoch(&mut self) -> u64 {
        let mut epoch = 0;
        for e in &mut self.edges {
            if let Some(cache) = &e.cache {
                epoch = cache.advance_epoch();
            }
        }
        epoch
    }

    /// A specific edge's semantic cache, if caches are enabled (`None`
    /// for unknown edges too).
    pub fn edge_cache(&self, edge: usize) -> Option<&SemanticCache> {
        self.edges.get(edge).and_then(|e| e.cache.as_ref())
    }

    /// The system's telemetry sink (inherited from the cluster).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Number of edge nodes.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Deployment statistics so far.
    pub fn stats(&self) -> &GeoStats {
        &self.stats
    }

    /// The master agent's state (for inspection).
    pub fn master_stats(&self) -> sea_core::agent::AgentStats {
        self.master.stats()
    }

    /// A specific edge's agent (for inspection).
    ///
    /// # Errors
    ///
    /// Unknown edge.
    pub fn edge_agent(&self, edge: usize) -> Result<&SeaAgent> {
        self.edges
            .get(edge)
            .map(|e| &e.agent)
            .ok_or_else(|| SeaError::NotFound(format!("edge {edge}")))
    }

    /// Submits an analyst query at edge `edge`: edge cache (if enabled),
    /// then the edge's local model, then escalation to the core.
    ///
    /// # Errors
    ///
    /// Unknown edge, or exact-execution errors when escalated.
    pub fn submit(&mut self, edge: usize, query: &AnalyticalQuery) -> Result<GeoOutcome> {
        self.submit_inner(edge, query, true)
    }

    /// Probes edge `edge`'s semantic cache; on a hit, serves it and does
    /// all the bookkeeping. Shared by [`GeoSystem::submit`] and
    /// [`GeoSystem::submit_routed`] (which consults *before* its sibling
    /// polls and must not consult again when it finally escalates).
    fn serve_from_edge_cache(
        &mut self,
        edge: usize,
        query: &AnalyticalQuery,
    ) -> Option<GeoOutcome> {
        // Edge-local lookup: a hash probe plus (for containment hits)
        // the re-derivation, all on edge silicon.
        const EDGE_CACHE_US: f64 = 20.0;
        let out = {
            let cache = self.edges.get(edge)?.cache.as_ref()?;
            match self.executor.clone().with_cache(cache).cache_lookup(query) {
                Some(Ok(out)) => out,
                // An Err from a containment re-derivation (operator
                // undefined on the empty sub-selection) falls through to
                // the normal path, which owns error handling.
                Some(Err(_)) | None => return None,
            }
        };
        let response_us = EDGE_CACHE_US + out.cost.wall_us;
        self.stats.queries += 1;
        self.stats.edge_answered += 1;
        self.stats.cache_answered += 1;
        self.stats.total_response_us += response_us;
        if self.telemetry.is_enabled() {
            self.telemetry.incr("geo.cache_answered", 1);
            self.telemetry
                .event("geo.cache_answered", &[("edge", edge.into())]);
        }
        Some(GeoOutcome {
            answer: out.answer,
            response_us,
            wan_bytes: 0,
            source: GeoSource::EdgeCache,
        })
    }

    fn submit_inner(
        &mut self,
        edge: usize,
        query: &AnalyticalQuery,
        consult_cache: bool,
    ) -> Result<GeoOutcome> {
        let span = self.telemetry.span("geo.edge.submit");
        span.tag("edge", edge);
        if self.edges.get(edge).is_none() {
            return Err(SeaError::NotFound(format!("edge {edge}")));
        }
        if consult_cache {
            if let Some(out) = self.serve_from_edge_cache(edge, query) {
                span.record_sim_us(out.response_us);
                if self.telemetry.is_enabled() {
                    span.tag("source", "edge_cache");
                }
                return Ok(out);
            }
        }
        let threshold = self.config.error_threshold;
        let edge_node = self
            .edges
            .get_mut(edge)
            .ok_or_else(|| SeaError::NotFound(format!("edge {edge}")))?;

        // Local attempt: a model prediction costs ~0.1 ms of edge compute.
        const EDGE_PREDICT_US: f64 = 100.0;
        if let Ok(pred) = edge_node.agent.predict(query) {
            if pred.estimated_error <= threshold {
                self.stats.queries += 1;
                self.stats.edge_answered += 1;
                self.stats.total_response_us += EDGE_PREDICT_US;
                span.record_sim_us(EDGE_PREDICT_US);
                if self.telemetry.is_enabled() {
                    span.tag("source", "edge_model");
                    self.telemetry.incr("geo.edge_answered", 1);
                    self.telemetry.event(
                        "geo.edge_answered",
                        &[
                            ("edge", edge.into()),
                            ("est_error", pred.estimated_error.into()),
                        ],
                    );
                }
                return Ok(GeoOutcome {
                    answer: pred.answer,
                    response_us: EDGE_PREDICT_US,
                    wan_bytes: 0,
                    source: GeoSource::EdgeModel,
                });
            }
        }

        // Escalate: WAN round trip (request + response) plus core execution.
        // The core executor's span tree hangs under this escalation span,
        // so the edge → core hop stays one coherent trace.
        let query_bytes = 16 * query.region.dims() as u64 + 32;
        let answer_bytes = 24u64;
        let escalate = self
            .telemetry
            .span_child_of(&span.ctx(), "geo.core.escalate");
        let round_trip_bytes = query_bytes + answer_bytes;
        let round_trip_us = 2.0 * self.cost_model.wan_msg_us
            + round_trip_bytes as f64 * self.cost_model.wan_byte_us;
        let mut retries = 0u32;
        let mut retry_us = 0.0;
        let core = loop {
            match self
                .executor
                .execute_direct_traced(&self.table, query, &escalate.ctx())
            {
                Ok(out) => break out,
                Err(ref e) if e.is_transient() && retries < self.wan_retry.max_retries => {
                    // The failed attempt still crossed the WAN both ways;
                    // the edge backs off and resubmits.
                    retry_us += round_trip_us + self.wan_retry.backoff_us(retries) as f64;
                    retries += 1;
                    self.telemetry.incr("query.retries", 1);
                    self.telemetry.event(
                        "geo.core_retried",
                        &[("edge", edge.into()), ("retry", retries.into())],
                    );
                }
                Err(e) => return Err(e),
            }
        };
        let wan_trips = 1 + u64::from(retries);
        let wan_bytes = round_trip_bytes * wan_trips;
        let wan_us = round_trip_us + retry_us;
        let response_us = EDGE_PREDICT_US + wan_us + core.cost.wall_us;
        escalate.record_sim_us(wan_us + core.cost.wall_us);
        if self.telemetry.is_enabled() {
            escalate.tag("wan_bytes", wan_bytes);
            escalate.tag("retries", retries);
            span.tag("source", "core_exact");
            self.telemetry.incr("geo.core_answered", 1);
            self.telemetry.incr("geo.wan_bytes", wan_bytes);
            self.telemetry.incr("geo.wan_msgs", 2 * wan_trips);
            self.telemetry.event(
                "geo.core_escalated",
                &[("edge", edge.into()), ("wan_bytes", wan_bytes.into())],
            );
        }
        drop(escalate);

        // The exact answer trains both the edge and the master.
        let edge_node = self
            .edges
            .get_mut(edge)
            .ok_or_else(|| SeaError::NotFound(format!("edge {edge}")))?;
        edge_node.agent.train(query, &core.answer)?;
        // Offer the escalated answer to the edge's cache (answer-only —
        // no fragments crossed the WAN). The recompute cost is what a
        // repeat would pay: the WAN round trip plus core execution.
        if let Some(cache) = &edge_node.cache {
            cache.admit(
                &query.aggregate,
                &query.region,
                &core.answer,
                None,
                wan_us + core.cost.wall_us,
            );
        }
        self.master.train(query, &core.answer)?;

        self.stats.queries += 1;
        self.stats.core_answered += 1;
        self.stats.wan_bytes += wan_bytes;
        self.stats.wan_msgs += 2 * wan_trips;
        self.stats.total_response_us += response_us;
        // The escalation span carries the WAN + core cost; only the local
        // predict attempt is this span's own share.
        span.record_sim_us(EDGE_PREDICT_US);
        Ok(GeoOutcome {
            answer: core.answer,
            response_us,
            wan_bytes,
            source: GeoSource::CoreExact,
        })
    }

    /// Routed submission (RT5-4): try the local edge, then poll sibling
    /// edges (one inter-edge WAN hop each, at half the core round-trip
    /// latency — regional peering), and only then escalate to the core.
    /// A sibling's confident answer avoids the expensive core path
    /// entirely; this is how overlapping interests across edges pay off
    /// before any explicit model sync.
    ///
    /// # Errors
    ///
    /// Unknown edge, or exact-execution errors when escalated.
    pub fn submit_routed(&mut self, edge: usize, query: &AnalyticalQuery) -> Result<GeoOutcome> {
        let span = self.telemetry.span("geo.edge.submit_routed");
        span.tag("edge", edge);
        let threshold = self.config.error_threshold;
        if edge >= self.edges.len() {
            return Err(SeaError::NotFound(format!("edge {edge}")));
        }
        // 0. Edge cache: an exact answer beats any model poll.
        if let Some(out) = self.serve_from_edge_cache(edge, query) {
            span.record_sim_us(out.response_us);
            if self.telemetry.is_enabled() {
                span.tag("source", "edge_cache");
            }
            return Ok(out);
        }
        const EDGE_PREDICT_US: f64 = 100.0;
        // 1. Local model.
        if let Ok(pred) = self.edges[edge].agent.predict(query) {
            if pred.estimated_error <= threshold {
                self.stats.queries += 1;
                self.stats.edge_answered += 1;
                self.stats.total_response_us += EDGE_PREDICT_US;
                span.record_sim_us(EDGE_PREDICT_US);
                if self.telemetry.is_enabled() {
                    span.tag("source", "edge_model");
                    self.telemetry.incr("geo.edge_answered", 1);
                }
                return Ok(GeoOutcome {
                    answer: pred.answer,
                    response_us: EDGE_PREDICT_US,
                    wan_bytes: 0,
                    source: GeoSource::EdgeModel,
                });
            }
        }
        // 2. Sibling edges, nearest-neighbour style: one query+answer hop
        // per polled sibling; stop at the first confident one.
        let query_bytes = 16 * query.region.dims() as u64 + 32;
        let answer_bytes = 24u64;
        let mut polled = 0u64;
        for sibling in 0..self.edges.len() {
            if sibling == edge {
                continue;
            }
            polled += 1;
            let sibling_span = self
                .telemetry
                .span_child_of(&span.ctx(), "geo.edge.sibling_poll");
            sibling_span.tag("sibling", sibling);
            if let Ok(pred) = self.edges[sibling].agent.predict(query) {
                if pred.estimated_error <= threshold {
                    let hop_bytes = polled * (query_bytes + answer_bytes);
                    let hop_us = polled as f64
                        * (self.cost_model.wan_msg_us
                            + (query_bytes + answer_bytes) as f64 * self.cost_model.wan_byte_us);
                    let response_us = EDGE_PREDICT_US + hop_us;
                    self.stats.queries += 1;
                    self.stats.edge_answered += 1;
                    self.stats.wan_bytes += hop_bytes;
                    self.stats.wan_msgs += 2 * polled;
                    self.stats.total_response_us += response_us;
                    sibling_span.record_sim_us(hop_us);
                    if self.telemetry.is_enabled() {
                        span.tag("source", "sibling_edge");
                        self.telemetry.incr("geo.sibling_answered", 1);
                        self.telemetry.incr("geo.wan_bytes", hop_bytes);
                        self.telemetry.event(
                            "geo.sibling_answered",
                            &[
                                ("edge", edge.into()),
                                ("sibling", sibling.into()),
                                ("polled", polled.into()),
                                ("wan_bytes", hop_bytes.into()),
                            ],
                        );
                    }
                    return Ok(GeoOutcome {
                        answer: pred.answer,
                        response_us,
                        wan_bytes: hop_bytes,
                        source: GeoSource::SiblingEdge { edge: sibling },
                    });
                }
            }
        }
        // 3. Core, accounting for the sibling polls that failed. The
        // edge cache was already consulted in step 0.
        let wasted_bytes = polled * (query_bytes + answer_bytes);
        let wasted_us = polled as f64
            * (self.cost_model.wan_msg_us
                + (query_bytes + answer_bytes) as f64 * self.cost_model.wan_byte_us);
        let mut out = self.submit_inner(edge, query, false)?;
        out.response_us += wasted_us;
        out.wan_bytes += wasted_bytes;
        self.stats.wan_bytes += wasted_bytes;
        self.stats.wan_msgs += 2 * polled;
        self.stats.total_response_us += wasted_us;
        Ok(out)
    }

    /// Baseline submission: always escalate to the core (Fig 1 shipped to
    /// a WAN world). Does not train any model.
    ///
    /// # Errors
    ///
    /// Exact-execution errors.
    pub fn submit_all_to_core(&mut self, query: &AnalyticalQuery) -> Result<GeoOutcome> {
        let span = self.telemetry.span("geo.core.submit");
        let query_bytes = 16 * query.region.dims() as u64 + 32;
        let answer_bytes = 24u64;
        let round_trip_bytes = query_bytes + answer_bytes;
        let round_trip_us = 2.0 * self.cost_model.wan_msg_us
            + round_trip_bytes as f64 * self.cost_model.wan_byte_us;
        let mut retries = 0u32;
        let mut retry_us = 0.0;
        let core = loop {
            match self
                .executor
                .execute_direct_traced(&self.table, query, &span.ctx())
            {
                Ok(out) => break out,
                Err(ref e) if e.is_transient() && retries < self.wan_retry.max_retries => {
                    retry_us += round_trip_us + self.wan_retry.backoff_us(retries) as f64;
                    retries += 1;
                    self.telemetry.incr("query.retries", 1);
                    self.telemetry
                        .event("geo.core_retried", &[("retry", retries.into())]);
                }
                Err(e) => return Err(e),
            }
        };
        let wan_trips = 1 + u64::from(retries);
        let wan_bytes = round_trip_bytes * wan_trips;
        let wan_us = round_trip_us + retry_us;
        let response_us = wan_us + core.cost.wall_us;
        self.stats.queries += 1;
        self.stats.core_answered += 1;
        self.stats.wan_bytes += wan_bytes;
        self.stats.wan_msgs += 2 * wan_trips;
        self.stats.total_response_us += response_us;
        // The executor subtree carries the core cost; the WAN hop is
        // this span's own share.
        span.record_sim_us(wan_us);
        if self.telemetry.is_enabled() {
            self.telemetry.incr("geo.core_answered", 1);
            self.telemetry.incr("geo.wan_bytes", wan_bytes);
            self.telemetry.incr("geo.wan_msgs", 2 * wan_trips);
        }
        Ok(GeoOutcome {
            answer: core.answer,
            response_us,
            wan_bytes,
            source: GeoSource::CoreExact,
        })
    }

    /// Ships the master agent's models to edge `edge` (distributed model
    /// building, RT5-2): the edge replaces its agent with a copy of the
    /// master, paying the model size in WAN bytes. Returns the bytes
    /// shipped.
    ///
    /// # Errors
    ///
    /// Unknown edge.
    pub fn sync_edge(&mut self, edge: usize) -> Result<u64> {
        if edge >= self.edges.len() {
            return Err(SeaError::NotFound(format!("edge {edge}")));
        }
        // Ship the real serialized model state: the JSON length is the
        // honest WAN bill, and the edge reconstructs its agent from it.
        let payload = self.master.to_json()?;
        let bytes = payload.len() as u64;
        self.edges[edge].agent = SeaAgent::from_json(&payload)?;
        self.stats.wan_bytes += bytes;
        self.stats.wan_msgs += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.incr("geo.wan_bytes", bytes);
            self.telemetry.event(
                "geo.model_synced",
                &[
                    ("edge", edge.into()),
                    ("bytes", bytes.into()),
                    ("selective", false.into()),
                ],
            );
        }
        Ok(bytes)
    }

    /// Selective model placement (RT5-3): ships to `edge` only the
    /// master's quanta whose interest regions intersect `region` — the
    /// subspaces that edge's analysts actually query. Costs proportionally
    /// fewer WAN bytes than a full [`GeoSystem::sync_edge`]. Returns the
    /// bytes shipped.
    ///
    /// # Errors
    ///
    /// Unknown edge or dimension mismatch.
    pub fn sync_edge_region(&mut self, edge: usize, region: &Rect) -> Result<u64> {
        if edge >= self.edges.len() {
            return Err(SeaError::NotFound(format!("edge {edge}")));
        }
        let subset = self.master.subset_for_region(region)?;
        let payload = subset.to_json()?;
        let bytes = payload.len() as u64;
        self.edges[edge].agent = SeaAgent::from_json(&payload)?;
        self.stats.wan_bytes += bytes;
        self.stats.wan_msgs += 1;
        if self.telemetry.is_enabled() {
            self.telemetry.incr("geo.wan_bytes", bytes);
            self.telemetry.event(
                "geo.model_synced",
                &[
                    ("edge", edge.into()),
                    ("bytes", bytes.into()),
                    ("selective", true.into()),
                ],
            );
        }
        Ok(bytes)
    }

    /// Resets the statistics counters (e.g. between experiment phases),
    /// keeping all trained models.
    pub fn reset_stats(&mut self) {
        self.stats = GeoStats {
            queries: 0,
            edge_answered: 0,
            cache_answered: 0,
            core_answered: 0,
            wan_bytes: 0,
            wan_msgs: 0,
            total_response_us: 0.0,
        };
    }

    /// Purges stale quanta on every edge and the master (RT5-3).
    pub fn purge_stale(&mut self, max_age: u64) -> usize {
        let mut purged = self.master.purge_stale(max_age);
        for e in &mut self.edges {
            purged += e.agent.purge_stale(max_age);
        }
        purged
    }
}

/// Convenience: the simulated cost of answering one exact query at the
/// core, for baseline comparisons.
pub fn core_exact_cost(
    cluster: &StorageCluster,
    table: &str,
    query: &AnalyticalQuery,
) -> Result<CostReport> {
    Ok(Executor::new(cluster).execute_direct(table, query)?.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{AggregateKind, Point, Record, Rect, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 256);
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn query(cx: f64, e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, 50.0]), &[e, e]).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn edges_learn_to_filter_queries() {
        let c = cluster();
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        for i in 0..200 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            geo.submit(0, &query(50.0, e)).unwrap();
        }
        let stats = geo.stats();
        assert_eq!(stats.queries, 200);
        assert!(
            stats.fallback_rate() < 0.4,
            "most queries served at the edge: {}",
            stats.fallback_rate()
        );
        assert!(stats.edge_answered > 100);
    }

    #[test]
    fn edge_deployment_slashes_wan_traffic_and_latency() {
        let c = cluster();
        let mut with_edges = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        let mut baseline = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        for i in 0..200 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            with_edges.submit(0, &query(50.0, e)).unwrap();
            baseline.submit_all_to_core(&query(50.0, e)).unwrap();
        }
        let a = with_edges.stats();
        let b = baseline.stats();
        assert!(
            a.wan_bytes * 2 < b.wan_bytes,
            "edge agents halve WAN bytes at least: {} vs {}",
            a.wan_bytes,
            b.wan_bytes
        );
        assert!(
            a.mean_response_us() < b.mean_response_us() / 2.0,
            "latency drops: {} vs {}",
            a.mean_response_us(),
            b.mean_response_us()
        );
    }

    #[test]
    fn lower_threshold_means_more_fallbacks() {
        let c = cluster();
        let strict = GeoConfig {
            error_threshold: 0.01,
            ..GeoConfig::default()
        };
        let lax = GeoConfig {
            error_threshold: 0.3,
            ..GeoConfig::default()
        };
        let mut s = GeoSystem::new(&c, "t", strict).unwrap();
        let mut l = GeoSystem::new(&c, "t", lax).unwrap();
        for i in 0..150 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            s.submit(0, &query(50.0, e)).unwrap();
            l.submit(0, &query(50.0, e)).unwrap();
        }
        assert!(
            s.stats().fallback_rate() > l.stats().fallback_rate(),
            "strict {} vs lax {}",
            s.stats().fallback_rate(),
            l.stats().fallback_rate()
        );
    }

    #[test]
    fn model_sync_bootstraps_fresh_edges() {
        let c = cluster();
        let mut geo = GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 2,
                ..GeoConfig::default()
            },
        )
        .unwrap();
        // Edge 0 trains the master through its fallbacks.
        for i in 0..150 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            geo.submit(0, &query(50.0, e)).unwrap();
        }
        // Edge 1, WITHOUT sync, would fall back on its first queries.
        geo.reset_stats();
        let bytes = geo.sync_edge(1).unwrap();
        assert!(bytes > 0, "model shipping costs WAN bytes");
        let mut edge_hits = 0;
        for i in 0..40 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            let out = geo.submit(1, &query(50.0, e)).unwrap();
            if out.source == GeoSource::EdgeModel {
                edge_hits += 1;
            }
        }
        assert!(
            edge_hits > 30,
            "synced edge answers locally straight away: {edge_hits}"
        );
    }

    #[test]
    fn answers_are_accurate() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        for i in 0..200 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            geo.submit(0, &query(50.0, e)).unwrap();
        }
        let mut total_rel = 0.0;
        let mut n = 0;
        for i in 0..20 {
            let e = 3.1 + i as f64 * 0.25;
            let q = query(50.0, e);
            let out = geo.submit(0, &q).unwrap();
            let truth = exec.execute_direct("t", &q).unwrap().answer;
            total_rel += out.answer.relative_error(&truth);
            n += 1;
        }
        let mean_rel = total_rel / n as f64;
        assert!(mean_rel < 0.25, "mean rel err {mean_rel}");
    }

    #[test]
    fn validations() {
        let c = cluster();
        assert!(GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 0,
                ..GeoConfig::default()
            }
        )
        .is_err());
        assert!(GeoSystem::new(&c, "missing", GeoConfig::default()).is_err());
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        assert!(geo.submit(99, &query(50.0, 1.0)).is_err());
        assert!(geo.sync_edge(99).is_err());
        assert!(geo.edge_agent(0).is_ok());
        assert_eq!(geo.num_edges(), 4);
    }

    #[test]
    fn escalation_trace_spans_edge_to_storage() {
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        // First query is always escalated (untrained edge).
        geo.submit(0, &query(50.0, 3.0)).unwrap();
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "geo.edge.submit");
        let escalate = root.find("geo.core.escalate").unwrap();
        assert_eq!(escalate.parent_span_id, root.span_id);
        let exec = escalate.find("query.executor.direct").unwrap();
        assert_eq!(exec.trace_id, root.trace_id);
        let scan = exec.find("storage.node.scan").unwrap();
        assert_eq!(scan.trace_id, root.trace_id, "trace reaches storage");
        assert!(escalate.sim_us > 0.0, "WAN + core cost attributed");
        assert_eq!(snap.event_count("geo.core_escalated"), 1);
        assert!(snap.counter("geo.wan_bytes") > 0);
    }

    #[test]
    fn transient_core_faults_are_retried_over_the_wan() {
        use sea_storage::FaultPlan;
        let mut c = StorageCluster::new(1, 256);
        let records: Vec<Record> = (0..2_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let truth = Executor::new(&c)
            .execute_direct("t", &query(50.0, 5.0))
            .unwrap()
            .answer;
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        c.set_fault_plan(FaultPlan::new(11).with_transient(0.5, 1));
        // Disable the core's node-level retries so transients surface to
        // the edge, and give the WAN layer a generous budget.
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default())
            .unwrap()
            .with_core_retry(RetryPolicy::none())
            .with_wan_retry(RetryPolicy {
                max_retries: 16,
                backoff_base_us: 1_000,
            });
        let out = geo.submit(0, &query(50.0, 5.0)).unwrap();
        assert_eq!(out.answer, truth, "retries converge on the exact answer");
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("query.retries") >= 1, "at least one WAN retry");
        assert!(snap.event_count("geo.core_retried") >= 1);
        // One round trip is 2 msgs and 88 bytes for this query shape; the
        // failed trips are billed on top.
        assert!(
            geo.stats().wan_msgs > 2,
            "failed round trips are billed: {} msgs",
            geo.stats().wan_msgs
        );
        assert!(out.wan_bytes > 88, "retries move bytes: {}", out.wan_bytes);

        // A policy with no WAN retries propagates the transient error.
        let mut c2 = StorageCluster::new(1, 256);
        let records: Vec<Record> = (0..2_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        c2.load_table("t", records, Partitioning::Hash).unwrap();
        c2.set_fault_plan(FaultPlan::new(11).with_transient(0.5, 1));
        let mut strict = GeoSystem::new(&c2, "t", GeoConfig::default())
            .unwrap()
            .with_core_retry(RetryPolicy::none())
            .with_wan_retry(RetryPolicy::none());
        assert!(matches!(
            strict.submit(0, &query(50.0, 5.0)),
            Err(SeaError::Transient(_))
        ));
    }

    #[test]
    fn edge_cache_answers_repeats_without_wan_traffic() {
        let c = cluster();
        // Threshold 0 keeps the models out of the way: every miss
        // escalates, every repeat must come from the cache.
        let config = GeoConfig {
            error_threshold: 0.0,
            ..GeoConfig::default()
        };
        let mut geo = GeoSystem::new(&c, "t", config)
            .unwrap()
            .with_edge_caches(CacheConfig {
                admit_min_cost_us: 0.0,
                ..CacheConfig::default()
            });
        let q = query(50.0, 5.0);
        let cold = geo.submit(0, &q).unwrap();
        assert_eq!(cold.source, GeoSource::CoreExact);
        let wan_after_cold = geo.stats().wan_bytes;

        let hot = geo.submit(0, &q).unwrap();
        assert_eq!(hot.source, GeoSource::EdgeCache);
        assert_eq!(hot.answer, cold.answer, "cache hits are exact");
        assert_eq!(hot.wan_bytes, 0);
        assert_eq!(
            geo.stats().wan_bytes,
            wan_after_cold,
            "no WAN traffic for the repeat"
        );
        assert!(hot.response_us < cold.response_us / 10.0);
        assert_eq!(geo.stats().cache_answered, 1);

        // Caches are edge-local: the same query at another edge misses.
        let other = geo.submit(1, &q).unwrap();
        assert_eq!(other.source, GeoSource::CoreExact);

        // Routed submission consults the cache before polling siblings.
        let routed = geo.submit_routed(0, &q).unwrap();
        assert_eq!(routed.source, GeoSource::EdgeCache);
    }

    #[test]
    fn drift_epoch_invalidates_edge_caches() {
        let c = cluster();
        let config = GeoConfig {
            error_threshold: 0.0,
            ..GeoConfig::default()
        };
        let mut geo = GeoSystem::new(&c, "t", config)
            .unwrap()
            .with_edge_caches(CacheConfig {
                admit_min_cost_us: 0.0,
                ..CacheConfig::default()
            });
        let q = query(50.0, 5.0);
        geo.submit(0, &q).unwrap();
        assert_eq!(geo.submit(0, &q).unwrap().source, GeoSource::EdgeCache);

        // The workload generator shifts interest regions: pre-drift
        // entries are dropped on every edge.
        assert_eq!(geo.advance_cache_epoch(), 1);
        assert!(geo.edge_cache(0).unwrap().is_empty());
        let post_drift = geo.submit(0, &q).unwrap();
        assert_eq!(post_drift.source, GeoSource::CoreExact);
        // ... and the re-escalated answer is re-admitted in the new epoch.
        assert_eq!(geo.submit(0, &q).unwrap().source, GeoSource::EdgeCache);
    }

    #[test]
    fn purge_stale_runs_across_edges() {
        let c = cluster();
        let mut geo = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        for _ in 0..20 {
            geo.submit(0, &query(20.0, 2.0)).unwrap();
        }
        for _ in 0..200 {
            geo.submit(0, &query(80.0, 2.0)).unwrap();
        }
        let purged = geo.purge_stale(5);
        assert!(purged >= 1, "abandoned subspace purged: {purged}");
    }
}

#[cfg(test)]
mod routing_tests {
    use super::*;
    use sea_common::{AggregateKind, Point, Record, Rect, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 256);
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn query(e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![50.0, 50.0]), &[e, e]).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn sibling_routing_avoids_the_core() {
        let c = cluster();
        let mut geo = GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 3,
                ..GeoConfig::default()
            },
        )
        .unwrap();
        // Edge 0 learns the hotspot.
        for i in 0..150 {
            geo.submit(0, &query(3.0 + (i % 20) as f64 * 0.3)).unwrap();
        }
        geo.reset_stats();
        // Edge 1, untrained, routes through siblings.
        let mut sibling_hits = 0;
        let mut core_hits = 0;
        for i in 0..40 {
            let out = geo
                .submit_routed(1, &query(3.0 + (i % 20) as f64 * 0.3))
                .unwrap();
            match out.source {
                GeoSource::SiblingEdge { edge } => {
                    assert_eq!(edge, 0, "edge 0 holds the models");
                    sibling_hits += 1;
                }
                GeoSource::CoreExact => core_hits += 1,
                GeoSource::EdgeModel | GeoSource::EdgeCache => {}
            }
        }
        assert!(sibling_hits > 30, "siblings answered: {sibling_hits}");
        assert!(core_hits < 5, "core mostly avoided: {core_hits}");
    }

    #[test]
    fn sibling_answer_is_cheaper_than_core() {
        let c = cluster();
        let mut geo = GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 2,
                ..GeoConfig::default()
            },
        )
        .unwrap();
        for i in 0..150 {
            geo.submit(0, &query(3.0 + (i % 20) as f64 * 0.3)).unwrap();
        }
        let routed = geo.submit_routed(1, &query(4.2)).unwrap();
        let mut baseline = GeoSystem::new(&c, "t", GeoConfig::default()).unwrap();
        let core = baseline.submit_all_to_core(&query(4.2)).unwrap();
        if let GeoSource::SiblingEdge { .. } = routed.source {
            assert!(
                routed.response_us < core.response_us,
                "sibling {} vs core {}",
                routed.response_us,
                core.response_us
            );
        } else {
            panic!("expected a sibling answer, got {:?}", routed.source);
        }
    }

    #[test]
    fn selective_sync_ships_less_and_still_serves_the_region() {
        let c = cluster();
        let mut geo = GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 2,
                ..GeoConfig::default()
            },
        )
        .unwrap();
        // Train the master on two separated hotspots via edge 0.
        for i in 0..120 {
            let e = 3.0 + (i % 15) as f64 * 0.3;
            let left = AnalyticalQuery::new(
                Region::Range(Rect::centered(&Point::new(vec![25.0, 50.0]), &[e, e]).unwrap()),
                AggregateKind::Count,
            );
            geo.submit(0, &left).unwrap();
            let right = AnalyticalQuery::new(
                Region::Range(Rect::centered(&Point::new(vec![75.0, 50.0]), &[e, e]).unwrap()),
                AggregateKind::Count,
            );
            geo.submit(0, &right).unwrap();
        }
        geo.reset_stats();
        let full = geo.sync_edge(1).unwrap();
        let left_region = Rect::new(vec![10.0, 30.0], vec![40.0, 70.0]).unwrap();
        let selective = geo.sync_edge_region(1, &left_region).unwrap();
        assert!(
            selective < full,
            "selective placement ships less: {selective} vs {full}"
        );
        // The selectively-synced edge still answers left-hotspot queries
        // locally.
        let mut local = 0;
        for i in 0..20 {
            let e = 3.0 + (i % 15) as f64 * 0.3;
            let q = AnalyticalQuery::new(
                Region::Range(Rect::centered(&Point::new(vec![25.0, 50.0]), &[e, e]).unwrap()),
                AggregateKind::Count,
            );
            if geo.submit(1, &q).unwrap().source == GeoSource::EdgeModel {
                local += 1;
            }
        }
        assert!(local > 15, "local answers in the placed region: {local}");
    }

    #[test]
    fn routing_falls_back_to_core_when_nobody_knows() {
        let c = cluster();
        let mut geo = GeoSystem::new(
            &c,
            "t",
            GeoConfig {
                edges: 3,
                ..GeoConfig::default()
            },
        )
        .unwrap();
        let out = geo.submit_routed(1, &query(5.0)).unwrap();
        assert_eq!(out.source, GeoSource::CoreExact);
        assert!(geo.submit_routed(99, &query(5.0)).is_err());
    }
}
