//! Multi-system (polystore) analytics (RT1-5).
//!
//! "Emerging applications … wish to access data stored at different
//! systems. Invariably this requires moving data from one system to the
//! other, which is a time-consuming and resource wasting process. … The
//! central idea is to develop and deploy agents within each constituent
//! system … instead of migrating large volumes of data between
//! constituent systems, either (i) only approximate results of performing
//! operators on the local data are sent, or (ii) the models themselves
//! are migrated."
//!
//! A [`Polystore`] holds several constituent systems (each its own
//! simulated cluster + table + resident agent). A cross-system aggregate
//! can be answered three ways, mirroring the paper's alternatives:
//!
//! * [`Polystore::query_migrate_data`] — the status quo: every remote
//!   system ships its matching raw records to the coordinator system.
//! * [`Polystore::query_exchange_results`] — alternative (i): each system
//!   answers locally (exactly) and ships only a constant-size partial.
//! * [`Polystore::query_exchange_models`] — alternative (ii): systems
//!   whose resident agent is confident answer from models (free), the
//!   rest fall back to local exact execution; only answers move.

use sea_common::{
    AggregateKind, AnalyticalQuery, AnswerValue, CostMeter, CostModel, CostReport, Record, Result,
    SeaError,
};
use sea_core::agent::{AgentConfig, SeaAgent};
use sea_query::Executor;
use sea_storage::{StorageCluster, DIRECT_LAYERS};
use sea_telemetry::TelemetrySink;

/// One constituent system of the polystore.
pub struct ConstituentSystem<'a> {
    cluster: &'a StorageCluster,
    table: String,
    agent: SeaAgent,
}

impl<'a> ConstituentSystem<'a> {
    /// Wraps a cluster + table with a fresh resident agent.
    ///
    /// # Errors
    ///
    /// Missing table or invalid agent config.
    pub fn new(cluster: &'a StorageCluster, table: &str, config: AgentConfig) -> Result<Self> {
        let dims = cluster.dims(table)?;
        Ok(ConstituentSystem {
            cluster,
            table: table.to_string(),
            agent: SeaAgent::new(dims, config)?,
        })
    }
}

/// The outcome of one polystore query.
#[derive(Debug, Clone, PartialEq)]
pub struct PolystoreOutcome {
    /// The combined answer.
    pub answer: AnswerValue,
    /// Total resource bill (local execution + inter-system transfer).
    pub cost: CostReport,
    /// Bytes moved *between systems* (the metric RT1-5 targets).
    pub inter_system_bytes: u64,
    /// How many systems answered from models rather than base data.
    pub model_answers: usize,
}

/// Several constituent systems answering cross-system aggregates.
pub struct Polystore<'a> {
    systems: Vec<ConstituentSystem<'a>>,
    cost_model: CostModel,
    /// Error budget for model answers in
    /// [`Polystore::query_exchange_models`].
    error_threshold: f64,
    /// Inherited from the coordinator (first) system's cluster;
    /// `geo.polystore.*` spans and events flow here.
    telemetry: TelemetrySink,
}

impl<'a> Polystore<'a> {
    /// Creates a polystore over the given systems.
    ///
    /// # Errors
    ///
    /// Empty system list or mismatched dimensionalities.
    pub fn new(systems: Vec<ConstituentSystem<'a>>, error_threshold: f64) -> Result<Self> {
        let Some(first) = systems.first() else {
            return Err(SeaError::Empty(
                "polystore needs at least one system".into(),
            ));
        };
        let dims = first.agent.dims();
        let telemetry = first.cluster.telemetry().clone();
        for s in &systems {
            SeaError::check_dims(dims, s.agent.dims())?;
        }
        Ok(Polystore {
            systems,
            cost_model: CostModel::default(),
            error_threshold,
            telemetry,
        })
    }

    /// Number of constituent systems.
    pub fn num_systems(&self) -> usize {
        self.systems.len()
    }

    /// Trains every system's resident agent on `n` queries drawn from
    /// `queries` (each executed exactly against that system's own data).
    ///
    /// # Errors
    ///
    /// Execution errors (systems whose subspace is empty skip the query).
    pub fn train_agents(&mut self, queries: &[AnalyticalQuery]) -> Result<()> {
        for s in &mut self.systems {
            let exec = Executor::new(s.cluster);
            for q in queries {
                if let Ok(exact) = exec.execute_direct(&s.table, q) {
                    s.agent.train(q, &exact.answer)?;
                }
            }
        }
        Ok(())
    }

    /// Cross-system COUNT/SUM: ship all matching raw records from every
    /// system to the first (coordinator) system, then aggregate there.
    ///
    /// # Errors
    ///
    /// Unsupported aggregate, or execution errors.
    pub fn query_migrate_data(&self, query: &AnalyticalQuery) -> Result<PolystoreOutcome> {
        check_supported(&query.aggregate)?;
        let span = self.telemetry.span("geo.polystore.migrate_data");
        let mut cost = CostReport::zero();
        let mut inter_bytes = 0u64;
        let mut all: Vec<Record> = Vec::new();
        for (i, s) in self.systems.iter().enumerate() {
            let sys_span = self
                .telemetry
                .span_child_of(&span.ctx(), "geo.polystore.system");
            sys_span.tag("system", i);
            let bbox = query.region.bounding_rect();
            let nodes = s.cluster.nodes_for_region(&s.table, &bbox)?;
            let mut node_meters = Vec::new();
            let mut matched: Vec<Record> = Vec::new();
            for node in nodes {
                let mut meter = CostMeter::new();
                meter.touch_node(DIRECT_LAYERS);
                let records = s.cluster.scan_node_region_traced(
                    &s.table,
                    node,
                    &bbox,
                    &sys_span.ctx(),
                    &mut meter,
                )?;
                matched.extend(
                    records
                        .into_iter()
                        .filter(|r| query.region.contains_record(r)),
                );
                node_meters.push(meter);
            }
            let mut coord = CostMeter::new();
            if i != 0 {
                // Inter-system transfer of the raw records (WAN-priced:
                // constituent systems live in different deployments).
                let bytes: u64 = matched.iter().map(Record::storage_bytes).sum();
                coord.charge_wan(bytes);
                inter_bytes += bytes;
                self.telemetry
                    .incr("geo.polystore.inter_system_bytes", bytes);
            }
            let report = coord.report_parallel(node_meters.iter(), &self.cost_model);
            sys_span.record_sim_us(report.wall_us);
            cost = cost.then(&report);
            all.extend(matched);
        }
        span.tag("inter_system_bytes", inter_bytes);
        let answer = query.aggregate.compute(&all)?;
        Ok(PolystoreOutcome {
            answer,
            cost,
            inter_system_bytes: inter_bytes,
            model_answers: 0,
        })
    }

    /// Cross-system COUNT/SUM: each system computes its exact partial
    /// locally and ships only the partial (alternative (i)).
    ///
    /// # Errors
    ///
    /// Unsupported aggregate, or execution errors.
    pub fn query_exchange_results(&self, query: &AnalyticalQuery) -> Result<PolystoreOutcome> {
        check_supported(&query.aggregate)?;
        let span = self.telemetry.span("geo.polystore.exchange_results");
        let mut cost = CostReport::zero();
        let mut inter_bytes = 0u64;
        let mut total = 0.0;
        for (i, s) in self.systems.iter().enumerate() {
            let sys_span = self
                .telemetry
                .span_child_of(&span.ctx(), "geo.polystore.system");
            sys_span.tag("system", i);
            let exec = Executor::new(s.cluster);
            let out = exec.execute_direct_traced(&s.table, query, &sys_span.ctx())?;
            total += out.answer.as_scalar().unwrap_or(0.0);
            cost = cost.then(&out.cost);
            if i != 0 {
                let mut m = CostMeter::new();
                m.charge_wan(24);
                inter_bytes += 24;
                self.telemetry.incr("geo.polystore.inter_system_bytes", 24);
                let wan = m.report_sequential(&self.cost_model);
                // The executor's own spans carry the local execution cost;
                // this span carries only the inter-system hop.
                sys_span.record_sim_us(wan.wall_us);
                cost = cost.then(&wan);
            }
        }
        span.tag("inter_system_bytes", inter_bytes);
        Ok(PolystoreOutcome {
            answer: AnswerValue::Scalar(total),
            cost,
            inter_system_bytes: inter_bytes,
            model_answers: 0,
        })
    }

    /// Cross-system COUNT/SUM via resident agents (alternative (ii)):
    /// systems whose agent is confident answer data-lessly; the rest
    /// execute locally. Only scalar answers cross system boundaries.
    ///
    /// # Errors
    ///
    /// Unsupported aggregate, or execution errors on fallback systems.
    pub fn query_exchange_models(&self, query: &AnalyticalQuery) -> Result<PolystoreOutcome> {
        check_supported(&query.aggregate)?;
        let span = self.telemetry.span("geo.polystore.exchange_models");
        let mut cost = CostReport::zero();
        let mut inter_bytes = 0u64;
        let mut total = 0.0;
        let mut model_answers = 0usize;
        for (i, s) in self.systems.iter().enumerate() {
            let sys_span = self
                .telemetry
                .span_child_of(&span.ctx(), "geo.polystore.system");
            sys_span.tag("system", i);
            let local = match s.agent.predict(query) {
                Ok(pred) if pred.estimated_error <= self.error_threshold => {
                    model_answers += 1;
                    if self.telemetry.is_enabled() {
                        sys_span.tag("source", "model");
                        self.telemetry.event(
                            "geo.polystore.model_answered",
                            &[("system", (i as u64).into())],
                        );
                    }
                    self.telemetry.incr("geo.polystore.model_answers", 1);
                    pred.answer.as_scalar().unwrap_or(0.0)
                }
                _ => {
                    if self.telemetry.is_enabled() {
                        sys_span.tag("source", "local_exact");
                    }
                    let exec = Executor::new(s.cluster);
                    let out = exec.execute_direct_traced(&s.table, query, &sys_span.ctx())?;
                    cost = cost.then(&out.cost);
                    out.answer.as_scalar().unwrap_or(0.0)
                }
            };
            total += local;
            if i != 0 {
                let mut m = CostMeter::new();
                m.charge_wan(24);
                inter_bytes += 24;
                self.telemetry.incr("geo.polystore.inter_system_bytes", 24);
                let wan = m.report_sequential(&self.cost_model);
                sys_span.record_sim_us(wan.wall_us);
                cost = cost.then(&wan);
            }
        }
        if self.telemetry.is_enabled() {
            span.tag("inter_system_bytes", inter_bytes);
            span.tag("model_answers", model_answers as u64);
        }
        Ok(PolystoreOutcome {
            answer: AnswerValue::Scalar(total),
            cost,
            inter_system_bytes: inter_bytes,
            model_answers,
        })
    }
}

fn check_supported(agg: &AggregateKind) -> Result<()> {
    match agg {
        AggregateKind::Count | AggregateKind::Sum { .. } => Ok(()),
        other => Err(SeaError::invalid(format!(
            "polystore cross-system aggregation supports Count/Sum, not {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Point, Rect, Region};
    use sea_storage::Partitioning;
    use sea_telemetry::FieldValue;

    fn make_cluster(seed_shift: u64) -> StorageCluster {
        let mut c = StorageCluster::new(4, 256);
        let records: Vec<Record> = (0..8_000)
            .map(|i| {
                Record::new(
                    i,
                    vec![
                        ((i + seed_shift * 37) % 100) as f64,
                        ((i / 100 + seed_shift * 13) % 80) as f64,
                    ],
                )
            })
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn count_query(e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![50.0, 40.0]), &[e, e]).unwrap()),
            AggregateKind::Count,
        )
    }

    fn training_queries() -> Vec<AnalyticalQuery> {
        (0..120)
            .map(|i| count_query(4.0 + (i % 15) as f64 * 0.5))
            .collect()
    }

    #[test]
    fn all_three_strategies_agree_when_exact() {
        let c1 = make_cluster(0);
        let c2 = make_cluster(1);
        let systems = vec![
            ConstituentSystem::new(&c1, "t", AgentConfig::default()).unwrap(),
            ConstituentSystem::new(&c2, "t", AgentConfig::default()).unwrap(),
        ];
        let store = Polystore::new(systems, 0.15).unwrap();
        let q = count_query(6.0);
        let a = store.query_migrate_data(&q).unwrap();
        let b = store.query_exchange_results(&q).unwrap();
        assert_eq!(a.answer, b.answer);
        assert!(
            a.inter_system_bytes > b.inter_system_bytes * 10,
            "raw migration moves far more: {} vs {}",
            a.inter_system_bytes,
            b.inter_system_bytes
        );
    }

    #[test]
    fn model_exchange_avoids_even_local_execution() {
        let c1 = make_cluster(0);
        let c2 = make_cluster(1);
        let systems = vec![
            ConstituentSystem::new(&c1, "t", AgentConfig::default()).unwrap(),
            ConstituentSystem::new(&c2, "t", AgentConfig::default()).unwrap(),
        ];
        let mut store = Polystore::new(systems, 0.15).unwrap();
        store.train_agents(&training_queries()).unwrap();
        let q = count_query(6.3);
        let models = store.query_exchange_models(&q).unwrap();
        let results = store.query_exchange_results(&q).unwrap();
        assert_eq!(models.model_answers, 2, "both agents confident");
        // Both variants ship one partial over the WAN (the shared floor);
        // the model variant additionally skips ALL local base-data work.
        assert!(
            models.cost.wall_us < results.cost.wall_us,
            "models {} vs exact-exchange {}",
            models.cost.wall_us,
            results.cost.wall_us
        );
        assert_eq!(models.cost.totals.disk_bytes, 0, "no base data touched");
        assert_eq!(models.cost.totals.records_processed, 0);
        // And the answer is close to the exact one.
        let rel = models.answer.relative_error(&results.answer);
        assert!(rel < 0.15, "model answer rel err {rel}");
    }

    #[test]
    fn untrained_agents_fall_back_to_local_execution() {
        let c1 = make_cluster(0);
        let systems = vec![ConstituentSystem::new(&c1, "t", AgentConfig::default()).unwrap()];
        let store = Polystore::new(systems, 0.15).unwrap();
        let q = count_query(6.0);
        let out = store.query_exchange_models(&q).unwrap();
        assert_eq!(out.model_answers, 0);
        let exact = store.query_exchange_results(&q).unwrap();
        assert_eq!(out.answer, exact.answer);
    }

    #[test]
    fn polystore_spans_cover_every_system() {
        let sink = sea_telemetry::TelemetrySink::recording();
        let mut c1 = make_cluster(0);
        c1.set_telemetry(sink.clone());
        let mut c2 = make_cluster(1);
        c2.set_telemetry(sink.clone());
        let systems = vec![
            ConstituentSystem::new(&c1, "t", AgentConfig::default()).unwrap(),
            ConstituentSystem::new(&c2, "t", AgentConfig::default()).unwrap(),
        ];
        let store = Polystore::new(systems, 0.15).unwrap();
        let q = count_query(6.0);
        store.query_migrate_data(&q).unwrap();
        store.query_exchange_results(&q).unwrap();
        let snap = store.telemetry.snapshot().unwrap();
        let migrate = snap
            .spans
            .roots
            .iter()
            .find(|s| s.name == "geo.polystore.migrate_data")
            .expect("migrate_data root span");
        let sys_spans: Vec<_> = migrate
            .children
            .iter()
            .filter(|c| c.name == "geo.polystore.system")
            .collect();
        assert_eq!(sys_spans.len(), 2, "one child span per constituent system");
        for (i, s) in sys_spans.iter().enumerate() {
            assert_eq!(s.trace_id, migrate.trace_id);
            assert_eq!(s.parent_span_id, migrate.span_id);
            assert_eq!(s.tag("system"), Some(&FieldValue::U64(i as u64)));
            assert!(
                s.find("storage.node.scan").is_some(),
                "system {i} span reaches storage"
            );
        }
        let exchange = snap
            .spans
            .roots
            .iter()
            .find(|s| s.name == "geo.polystore.exchange_results")
            .expect("exchange_results root span");
        assert!(exchange.find("query.executor.direct").is_some());
        assert!(snap.counter("geo.polystore.inter_system_bytes") > 0);
    }

    #[test]
    fn validations() {
        assert!(Polystore::new(vec![], 0.1).is_err());
        let c1 = make_cluster(0);
        let systems = vec![ConstituentSystem::new(&c1, "t", AgentConfig::default()).unwrap()];
        let store = Polystore::new(systems, 0.1).unwrap();
        let bad = AnalyticalQuery::new(count_query(5.0).region, AggregateKind::Median { dim: 0 });
        assert!(store.query_migrate_data(&bad).is_err());
        assert!(store.query_exchange_results(&bad).is_err());
        assert!(store.query_exchange_models(&bad).is_err());
    }
}
