//! # sea-geo
//!
//! Research theme RT5: global-scale geo-distributed SEA (Fig 3).
//!
//! The simulated topology has **core** sites that store the base data and
//! can answer exactly, and **edge** nodes that hold only models and answer
//! approximately. Analysts submit queries at edges; an edge answers
//! locally when its model's estimated error is below threshold and
//! otherwise pays a WAN round-trip to the core — whose exact answer also
//! trains both the edge's local agent and the core's *master* agent.
//! Optionally each edge carries its own [`sea_cache::SemanticCache`]
//! ([`GeoSystem::with_edge_caches`]): a repeated interest region is then
//! answered from the edge for free instead of re-crossing the WAN, and
//! [`GeoSystem::advance_cache_epoch`] invalidates every edge's entries
//! when the workload's interest regions drift.
//!
//! Distributed model building (RT5-2) is realized through the master
//! agent: because training queries from *all* edges reach the core, the
//! master learns every active subspace; [`GeoSystem::sync_edge`] ships the
//! master's models to an edge (charged as WAN bytes), so a freshly joined
//! edge can filter queries it never trained on itself.
//!
//! The E10 experiment measures what the paper targets: "reduce WAN-based
//! inter-datacentre communication" — WAN bytes, mean response time, and
//! fallback rate as functions of the error threshold, against the
//! all-queries-to-core baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod polystore;
pub mod system;

pub use polystore::{ConstituentSystem, Polystore, PolystoreOutcome};
pub use system::{GeoConfig, GeoOutcome, GeoSource, GeoStats, GeoSystem};
