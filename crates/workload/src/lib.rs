//! # sea-workload
//!
//! Synthetic data and query workload generators for the SEA experiments.
//!
//! The paper's data-less paradigm (P2) rests on one empirical workload
//! property: "queries define overlapping data subspaces" (§IV, citing
//! BlinkDB, SciBORQ, DBL, Data Canopy). This crate makes that property a
//! tunable parameter: analyst populations concentrate their queries on a
//! small number of *interest regions* (hotspots), whose location can drift
//! over time (RT1-4 model maintenance experiments).
//!
//! Data generators cover the distributions the experiments sweep over:
//! uniform, Gaussian mixtures (clustered real-world-like data), Zipf-skewed
//! attributes, and linearly-correlated attribute pairs (for the regression
//! and correlation operators).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod drift;
pub mod queries;

pub use data::{DataGenerator, DataSpec, GaussianComponent};
pub use drift::{DriftKind, DriftingWorkload};
pub use queries::{Hotspot, QueryGenerator, QuerySpec, RegionShape};
