//! Analyst query workload generation.
//!
//! An analyst population's queries concentrate on a handful of *interest
//! regions* of the data space (the overlapping-subspace property P2 relies
//! on). A [`QueryGenerator`] samples a hotspot (weighted), then a query
//! centre near the hotspot's own centre, then a query extent, producing an
//! [`AnalyticalQuery`] stream that is deterministic in its seed.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::Normal;
use serde::{Deserialize, Serialize};

use sea_common::{AggregateKind, AnalyticalQuery, Ball, Point, Rect, Region, Result, SeaError};

/// An analyst interest region: query centres are drawn from
/// `N(center, spread²)` per dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hotspot {
    /// Centre of the interest region.
    pub center: Vec<f64>,
    /// Standard deviation of query centres around `center`, per dimension.
    pub spread: Vec<f64>,
    /// Relative share of queries hitting this hotspot.
    pub weight: f64,
}

impl Hotspot {
    /// Creates a hotspot.
    ///
    /// # Errors
    ///
    /// Returns an error on mismatched lengths, negative spread, or a
    /// non-positive weight.
    pub fn new(center: Vec<f64>, spread: Vec<f64>, weight: f64) -> Result<Self> {
        SeaError::check_dims(center.len(), spread.len())?;
        if spread.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(SeaError::invalid("spread must be finite and non-negative"));
        }
        if weight.is_nan() || weight <= 0.0 {
            return Err(SeaError::invalid("hotspot weight must be positive"));
        }
        Ok(Hotspot {
            center,
            spread,
            weight,
        })
    }
}

/// The shape of generated selection regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegionShape {
    /// Axis-aligned hyper-rectangles (range queries).
    Range,
    /// Hyper-spheres (radius queries).
    Radius,
}

/// Full specification of a query workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Interest regions queries cluster around.
    pub hotspots: Vec<Hotspot>,
    /// Range of query half-widths (uniformly sampled per query); for radius
    /// queries this is the radius range.
    pub extent_range: (f64, f64),
    /// Shape of the selection regions.
    pub shape: RegionShape,
    /// Aggregate operators to cycle through, weighted uniformly.
    pub aggregates: Vec<AggregateKind>,
}

impl QuerySpec {
    /// A convenient single-hotspot COUNT workload used widely in tests.
    ///
    /// # Errors
    ///
    /// Propagates hotspot validation errors.
    pub fn simple_count(center: Vec<f64>, spread: f64, extent_range: (f64, f64)) -> Result<Self> {
        let dims = center.len();
        Ok(QuerySpec {
            hotspots: vec![Hotspot::new(center, vec![spread; dims], 1.0)?],
            extent_range,
            shape: RegionShape::Range,
            aggregates: vec![AggregateKind::Count],
        })
    }

    /// Dimensionality of the query space.
    pub fn dims(&self) -> usize {
        self.hotspots.first().map_or(0, |h| h.center.len())
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when there are no hotspots or aggregates, hotspot
    /// dimensionalities disagree, or the extent range is invalid.
    pub fn validate(&self) -> Result<()> {
        if self.hotspots.is_empty() {
            return Err(SeaError::Empty("query spec has no hotspots".into()));
        }
        if self.aggregates.is_empty() {
            return Err(SeaError::Empty("query spec has no aggregates".into()));
        }
        let dims = self.dims();
        for h in &self.hotspots {
            SeaError::check_dims(dims, h.center.len())?;
        }
        let (lo, hi) = self.extent_range;
        if !(lo.is_finite() && hi.is_finite()) || lo < 0.0 || lo > hi {
            return Err(SeaError::invalid("extent range must satisfy 0 <= lo <= hi"));
        }
        Ok(())
    }
}

/// Deterministic, seeded generator of analyst query streams.
///
/// # Examples
///
/// ```
/// use sea_workload::{QueryGenerator, QuerySpec};
///
/// let spec = QuerySpec::simple_count(vec![50.0, 50.0], 5.0, (1.0, 4.0)).unwrap();
/// let mut gen = QueryGenerator::new(spec, 9).unwrap();
/// let queries = gen.take_queries(100);
/// assert_eq!(queries.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    spec: QuerySpec,
    rng: StdRng,
}

impl QueryGenerator {
    /// Creates a generator after validating `spec`.
    ///
    /// # Errors
    ///
    /// Propagates [`QuerySpec::validate`] errors.
    pub fn new(spec: QuerySpec, seed: u64) -> Result<Self> {
        spec.validate()?;
        Ok(QueryGenerator {
            spec,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The generator's spec.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Replaces the hotspots (used by drifting workloads).
    ///
    /// # Errors
    ///
    /// Returns an error when the new hotspot set is empty or mismatched in
    /// dimensionality.
    pub fn set_hotspots(&mut self, hotspots: Vec<Hotspot>) -> Result<()> {
        let candidate = QuerySpec {
            hotspots,
            ..self.spec.clone()
        };
        candidate.validate()?;
        self.spec = candidate;
        Ok(())
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> AnalyticalQuery {
        let spec = &self.spec;
        let total_w: f64 = spec.hotspots.iter().map(|h| h.weight).sum();
        let mut pick = self.rng.gen_range(0.0..total_w);
        let mut hs = &spec.hotspots[0];
        for h in &spec.hotspots {
            if pick < h.weight {
                hs = h;
                break;
            }
            pick -= h.weight;
        }
        let center: Vec<f64> = (0..hs.center.len())
            .map(|d| {
                if hs.spread[d] == 0.0 {
                    hs.center[d]
                } else {
                    Normal::new(hs.center[d], hs.spread[d])
                        .expect("validated")
                        .sample(&mut self.rng)
                }
            })
            .collect();
        let (lo, hi) = spec.extent_range;
        let extent = if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        };
        let region = match spec.shape {
            RegionShape::Range => {
                let extents = vec![extent; center.len()];
                Region::Range(
                    Rect::centered(&Point::new(center), &extents).expect("validated extents"),
                )
            }
            RegionShape::Radius => {
                Region::Radius(Ball::new(Point::new(center), extent).expect("validated radius"))
            }
        };
        let agg = spec.aggregates[self.rng.gen_range(0..spec.aggregates.len())];
        AnalyticalQuery::new(region, agg)
    }

    /// Draws the next `n` queries.
    pub fn take_queries(&mut self, n: usize) -> Vec<AnalyticalQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_per_seed() {
        let spec = QuerySpec::simple_count(vec![0.0, 0.0], 1.0, (0.5, 2.0)).unwrap();
        let a = QueryGenerator::new(spec.clone(), 1)
            .unwrap()
            .take_queries(50);
        let b = QueryGenerator::new(spec.clone(), 1)
            .unwrap()
            .take_queries(50);
        let c = QueryGenerator::new(spec, 2).unwrap().take_queries(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn queries_cluster_near_hotspot() {
        let spec = QuerySpec::simple_count(vec![100.0, 100.0], 2.0, (1.0, 1.5)).unwrap();
        let qs = QueryGenerator::new(spec, 3).unwrap().take_queries(200);
        for q in &qs {
            let c = q.region.center();
            assert!((c.coord(0) - 100.0).abs() < 15.0, "centre far from hotspot");
            assert!((c.coord(1) - 100.0).abs() < 15.0);
        }
    }

    #[test]
    fn hotspot_weights_bias_selection() {
        let spec = QuerySpec {
            hotspots: vec![
                Hotspot::new(vec![0.0], vec![0.1], 9.0).unwrap(),
                Hotspot::new(vec![1000.0], vec![0.1], 1.0).unwrap(),
            ],
            extent_range: (1.0, 1.0),
            shape: RegionShape::Range,
            aggregates: vec![AggregateKind::Count],
        };
        let qs = QueryGenerator::new(spec, 4).unwrap().take_queries(1000);
        let near_zero = qs
            .iter()
            .filter(|q| q.region.center().coord(0) < 500.0)
            .count();
        assert!(near_zero > 820 && near_zero < 980, "got {near_zero}");
    }

    #[test]
    fn radius_shape_produces_balls() {
        let spec = QuerySpec {
            hotspots: vec![Hotspot::new(vec![0.0, 0.0], vec![1.0, 1.0], 1.0).unwrap()],
            extent_range: (2.0, 3.0),
            shape: RegionShape::Radius,
            aggregates: vec![AggregateKind::Count],
        };
        let qs = QueryGenerator::new(spec, 5).unwrap().take_queries(20);
        for q in &qs {
            match &q.region {
                Region::Radius(b) => assert!(b.radius() >= 2.0 && b.radius() <= 3.0),
                other => panic!("expected radius region, got {other:?}"),
            }
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let no_hotspots = QuerySpec {
            hotspots: vec![],
            extent_range: (0.0, 1.0),
            shape: RegionShape::Range,
            aggregates: vec![AggregateKind::Count],
        };
        assert!(QueryGenerator::new(no_hotspots, 0).is_err());

        let bad_extent = QuerySpec {
            hotspots: vec![Hotspot::new(vec![0.0], vec![1.0], 1.0).unwrap()],
            extent_range: (2.0, 1.0),
            shape: RegionShape::Range,
            aggregates: vec![AggregateKind::Count],
        };
        assert!(QueryGenerator::new(bad_extent, 0).is_err());

        let no_aggs = QuerySpec {
            hotspots: vec![Hotspot::new(vec![0.0], vec![1.0], 1.0).unwrap()],
            extent_range: (0.5, 1.0),
            shape: RegionShape::Range,
            aggregates: vec![],
        };
        assert!(QueryGenerator::new(no_aggs, 0).is_err());
    }

    #[test]
    fn aggregates_cycle_through_spec() {
        let spec = QuerySpec {
            hotspots: vec![Hotspot::new(vec![0.0], vec![1.0], 1.0).unwrap()],
            extent_range: (1.0, 1.0),
            shape: RegionShape::Range,
            aggregates: vec![AggregateKind::Count, AggregateKind::Mean { dim: 0 }],
        };
        let qs = QueryGenerator::new(spec, 6).unwrap().take_queries(100);
        let counts = qs
            .iter()
            .filter(|q| q.aggregate == AggregateKind::Count)
            .count();
        assert!(
            counts > 25 && counts < 75,
            "both operators appear: {counts}"
        );
    }

    #[test]
    fn set_hotspots_validates() {
        let spec = QuerySpec::simple_count(vec![0.0, 0.0], 1.0, (0.5, 1.0)).unwrap();
        let mut gen = QueryGenerator::new(spec, 7).unwrap();
        assert!(gen.set_hotspots(vec![]).is_err());
        let moved = Hotspot::new(vec![50.0, 50.0], vec![1.0, 1.0], 1.0).unwrap();
        gen.set_hotspots(vec![moved]).unwrap();
        let q = gen.next_query();
        assert!((q.region.center().coord(0) - 50.0).abs() < 10.0);
    }
}
