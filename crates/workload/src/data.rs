//! Synthetic dataset generators.

use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Normal, Zipf};
use serde::{Deserialize, Serialize};

use sea_common::{Record, Rect, Result, SeaError};

/// One component of a Gaussian mixture: a spherical-ish Gaussian with
/// per-dimension standard deviation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianComponent {
    /// Component mean.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviation.
    pub sigma: Vec<f64>,
    /// Relative sampling weight (need not be normalized).
    pub weight: f64,
}

impl GaussianComponent {
    /// Creates a component.
    ///
    /// # Errors
    ///
    /// Returns an error when `mean` and `sigma` lengths differ, any sigma is
    /// negative, or the weight is not positive.
    pub fn new(mean: Vec<f64>, sigma: Vec<f64>, weight: f64) -> Result<Self> {
        SeaError::check_dims(mean.len(), sigma.len())?;
        if sigma.iter().any(|s| !s.is_finite() || *s < 0.0) {
            return Err(SeaError::invalid("sigma must be finite and non-negative"));
        }
        if weight.is_nan() || weight <= 0.0 {
            return Err(SeaError::invalid("component weight must be positive"));
        }
        Ok(GaussianComponent {
            mean,
            sigma,
            weight,
        })
    }
}

/// Specification of a synthetic dataset's distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DataSpec {
    /// Uniform over an axis-aligned domain rectangle.
    Uniform {
        /// The data domain.
        domain: Rect,
    },
    /// Mixture of axis-aligned Gaussians (values are *not* clipped to any
    /// domain; tails extend beyond component means).
    GaussianMixture {
        /// Mixture components.
        components: Vec<GaussianComponent>,
    },
    /// Each dimension is an independent Zipf-distributed positive value
    /// (rank drawn from Zipf(`n_elements`, `exponent`)), modelling heavily
    /// skewed attributes such as degree or frequency counts.
    Zipf {
        /// Number of dimensions.
        dims: usize,
        /// Universe size per dimension.
        n_elements: u64,
        /// Skew exponent (s > 0; larger = more skew).
        exponent: f64,
    },
    /// Attribute 0 is uniform on `[x_lo, x_hi]`; every further attribute d
    /// is `slope[d-1] * x + intercept[d-1] + N(0, noise_sigma[d-1])` —
    /// the workload for regression/correlation operators whose ground truth
    /// is known by construction.
    LinearCorrelated {
        /// Lower bound of the explanatory attribute.
        x_lo: f64,
        /// Upper bound of the explanatory attribute.
        x_hi: f64,
        /// Slope per dependent attribute.
        slope: Vec<f64>,
        /// Intercept per dependent attribute.
        intercept: Vec<f64>,
        /// Gaussian noise sigma per dependent attribute.
        noise_sigma: Vec<f64>,
    },
}

impl DataSpec {
    /// Dimensionality of records generated under this spec.
    pub fn dims(&self) -> usize {
        match self {
            DataSpec::Uniform { domain } => domain.dims(),
            DataSpec::GaussianMixture { components } => {
                components.first().map_or(0, |c| c.mean.len())
            }
            DataSpec::Zipf { dims, .. } => *dims,
            DataSpec::LinearCorrelated { slope, .. } => slope.len() + 1,
        }
    }
}

/// Deterministic, seeded generator of synthetic datasets.
///
/// # Examples
///
/// ```
/// use sea_common::Rect;
/// use sea_workload::{DataGenerator, DataSpec};
///
/// let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
/// let gen = DataGenerator::new(DataSpec::Uniform { domain }, 42);
/// let records = gen.generate(1_000).unwrap();
/// assert_eq!(records.len(), 1_000);
/// assert_eq!(records[0].dims(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DataGenerator {
    spec: DataSpec,
    seed: u64,
}

impl DataGenerator {
    /// Creates a generator for `spec`, seeded with `seed`. The same
    /// `(spec, seed, n)` always yields the same dataset.
    pub fn new(spec: DataSpec, seed: u64) -> Self {
        DataGenerator { spec, seed }
    }

    /// The generator's data spec.
    pub fn spec(&self) -> &DataSpec {
        &self.spec
    }

    /// Generates `n` records with ids `0..n`.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec is internally inconsistent (e.g. an
    /// empty Gaussian mixture or mismatched slope/intercept lengths).
    pub fn generate(&self, n: usize) -> Result<Vec<Record>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(n);
        match &self.spec {
            DataSpec::Uniform { domain } => {
                for id in 0..n {
                    let values = (0..domain.dims())
                        .map(|d| rng.gen_range(domain.lo()[d]..=domain.hi()[d]))
                        .collect();
                    out.push(Record::new(id as u64, values));
                }
            }
            DataSpec::GaussianMixture { components } => {
                if components.is_empty() {
                    return Err(SeaError::Empty("Gaussian mixture has no components".into()));
                }
                let dims = components[0].mean.len();
                for c in components {
                    SeaError::check_dims(dims, c.mean.len())?;
                }
                let total_w: f64 = components.iter().map(|c| c.weight).sum();
                for id in 0..n {
                    let mut pick = rng.gen_range(0.0..total_w);
                    let mut comp = &components[0];
                    for c in components {
                        if pick < c.weight {
                            comp = c;
                            break;
                        }
                        pick -= c.weight;
                    }
                    let values = (0..dims)
                        .map(|d| {
                            if comp.sigma[d] == 0.0 {
                                comp.mean[d]
                            } else {
                                let normal = Normal::new(comp.mean[d], comp.sigma[d])
                                    .expect("sigma validated");
                                normal.sample(&mut rng)
                            }
                        })
                        .collect();
                    out.push(Record::new(id as u64, values));
                }
            }
            DataSpec::Zipf {
                dims,
                n_elements,
                exponent,
            } => {
                if *dims == 0 {
                    return Err(SeaError::invalid("Zipf spec needs at least 1 dimension"));
                }
                let zipf = Zipf::new(*n_elements, *exponent)
                    .map_err(|e| SeaError::invalid(format!("bad Zipf parameters: {e}")))?;
                for id in 0..n {
                    let values = (0..*dims).map(|_| zipf.sample(&mut rng)).collect();
                    out.push(Record::new(id as u64, values));
                }
            }
            DataSpec::LinearCorrelated {
                x_lo,
                x_hi,
                slope,
                intercept,
                noise_sigma,
            } => {
                SeaError::check_dims(slope.len(), intercept.len())?;
                SeaError::check_dims(slope.len(), noise_sigma.len())?;
                if x_lo.partial_cmp(x_hi) != Some(std::cmp::Ordering::Less) {
                    return Err(SeaError::invalid("x_lo must be < x_hi"));
                }
                for id in 0..n {
                    let x = rng.gen_range(*x_lo..*x_hi);
                    let mut values = Vec::with_capacity(slope.len() + 1);
                    values.push(x);
                    for d in 0..slope.len() {
                        let noise = if noise_sigma[d] == 0.0 {
                            0.0
                        } else {
                            Normal::new(0.0, noise_sigma[d])
                                .expect("validated")
                                .sample(&mut rng)
                        };
                        values.push(slope[d] * x + intercept[d] + noise);
                    }
                    out.push(Record::new(id as u64, values));
                }
            }
        }
        Ok(out)
    }

    /// Generates `n` records and then blanks attribute values to `f64::NAN`
    /// independently with probability `missing_rate`, for the imputation
    /// experiments (E13). Attribute 0 (the "key" attribute) is never
    /// blanked so every record stays locatable.
    ///
    /// # Errors
    ///
    /// As [`DataGenerator::generate`], plus an invalid-argument error when
    /// `missing_rate` is outside `[0, 1)`.
    pub fn generate_with_missing(&self, n: usize, missing_rate: f64) -> Result<Vec<Record>> {
        if !(0.0..1.0).contains(&missing_rate) {
            return Err(SeaError::invalid("missing_rate must be in [0, 1)"));
        }
        let mut records = self.generate(n)?;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0x5EA));
        for r in &mut records {
            for d in 1..r.values.len() {
                if rng.gen_bool(missing_rate) {
                    r.values[d] = f64::NAN;
                }
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_gen(seed: u64) -> DataGenerator {
        let domain = Rect::new(vec![0.0, -5.0], vec![10.0, 5.0]).unwrap();
        DataGenerator::new(DataSpec::Uniform { domain }, seed)
    }

    #[test]
    fn uniform_stays_in_domain_and_is_deterministic() {
        let gen = uniform_gen(7);
        let a = gen.generate(500).unwrap();
        let b = gen.generate(500).unwrap();
        assert_eq!(a, b, "same seed, same data");
        for r in &a {
            assert!(r.value(0) >= 0.0 && r.value(0) <= 10.0);
            assert!(r.value(1) >= -5.0 && r.value(1) <= 5.0);
        }
        let c = uniform_gen(8).generate(500).unwrap();
        assert_ne!(a, c, "different seed, different data");
    }

    #[test]
    fn gaussian_mixture_clusters_around_means() {
        let comps = vec![
            GaussianComponent::new(vec![0.0, 0.0], vec![0.5, 0.5], 1.0).unwrap(),
            GaussianComponent::new(vec![100.0, 100.0], vec![0.5, 0.5], 1.0).unwrap(),
        ];
        let gen = DataGenerator::new(DataSpec::GaussianMixture { components: comps }, 1);
        let recs = gen.generate(1000).unwrap();
        let near_a = recs
            .iter()
            .filter(|r| r.value(0).abs() < 5.0 && r.value(1).abs() < 5.0)
            .count();
        let near_b = recs
            .iter()
            .filter(|r| (r.value(0) - 100.0).abs() < 5.0 && (r.value(1) - 100.0).abs() < 5.0)
            .count();
        assert_eq!(near_a + near_b, 1000, "every point near one of the modes");
        assert!(near_a > 350 && near_b > 350, "roughly balanced weights");
    }

    #[test]
    fn gaussian_mixture_respects_weights() {
        let comps = vec![
            GaussianComponent::new(vec![0.0], vec![0.1], 9.0).unwrap(),
            GaussianComponent::new(vec![100.0], vec![0.1], 1.0).unwrap(),
        ];
        let gen = DataGenerator::new(DataSpec::GaussianMixture { components: comps }, 3);
        let recs = gen.generate(2000).unwrap();
        let heavy = recs.iter().filter(|r| r.value(0) < 50.0).count();
        assert!(
            heavy > 1650 && heavy < 1950,
            "≈90% from the heavy mode, got {heavy}"
        );
    }

    #[test]
    fn empty_mixture_is_an_error() {
        let gen = DataGenerator::new(DataSpec::GaussianMixture { components: vec![] }, 0);
        assert!(gen.generate(10).is_err());
    }

    #[test]
    fn zipf_is_skewed() {
        let gen = DataGenerator::new(
            DataSpec::Zipf {
                dims: 1,
                n_elements: 1000,
                exponent: 1.2,
            },
            5,
        );
        let recs = gen.generate(2000).unwrap();
        let ones = recs.iter().filter(|r| r.value(0) == 1.0).count();
        assert!(ones > 300, "rank 1 should dominate, got {ones}");
        assert!(recs.iter().all(|r| r.value(0) >= 1.0));
    }

    #[test]
    fn linear_correlated_recovers_slope() {
        let gen = DataGenerator::new(
            DataSpec::LinearCorrelated {
                x_lo: 0.0,
                x_hi: 100.0,
                slope: vec![2.0],
                intercept: vec![5.0],
                noise_sigma: vec![0.0],
            },
            11,
        );
        let recs = gen.generate(100).unwrap();
        for r in &recs {
            assert!((r.value(1) - (2.0 * r.value(0) + 5.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_injection_rate_and_key_preservation() {
        let gen = DataGenerator::new(
            DataSpec::LinearCorrelated {
                x_lo: 0.0,
                x_hi: 1.0,
                slope: vec![1.0, 1.0],
                intercept: vec![0.0, 0.0],
                noise_sigma: vec![0.1, 0.1],
            },
            13,
        );
        let recs = gen.generate_with_missing(2000, 0.2).unwrap();
        let missing: usize = recs
            .iter()
            .map(|r| r.values.iter().filter(|v| v.is_nan()).count())
            .sum();
        let frac = missing as f64 / (2000.0 * 2.0);
        assert!((frac - 0.2).abs() < 0.03, "got missing fraction {frac}");
        assert!(recs.iter().all(|r| !r.value(0).is_nan()), "key attr intact");
        assert!(gen.generate_with_missing(10, 1.5).is_err());
    }

    #[test]
    fn spec_dims() {
        assert_eq!(uniform_gen(0).spec().dims(), 2);
        let spec = DataSpec::LinearCorrelated {
            x_lo: 0.0,
            x_hi: 1.0,
            slope: vec![1.0, 2.0],
            intercept: vec![0.0, 0.0],
            noise_sigma: vec![0.0, 0.0],
        };
        assert_eq!(spec.dims(), 3);
    }
}
