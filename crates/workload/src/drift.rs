//! Analyst-interest drift processes.
//!
//! RT1-4 (model maintenance) requires workloads whose interest regions move
//! over time: "query patterns \[change\] as analysts' interests drift". A
//! [`DriftingWorkload`] wraps a [`QueryGenerator`] and relocates its
//! hotspots as a function of a logical time step, supporting both gradual
//! linear drift and abrupt jumps.

use serde::{Deserialize, Serialize};

use sea_common::{AnalyticalQuery, Result};

use crate::queries::{Hotspot, QueryGenerator};

/// How hotspot centres move with logical time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DriftKind {
    /// No movement (control case).
    None,
    /// Each hotspot centre moves by `velocity` per time step (gradual
    /// concept drift).
    Linear {
        /// Per-dimension displacement per step.
        velocity: Vec<f64>,
    },
    /// At step `at_step` every hotspot centre jumps by `offset`
    /// (abrupt interest shift).
    Jump {
        /// Step at which the jump occurs.
        at_step: u64,
        /// Per-dimension displacement applied at the jump.
        offset: Vec<f64>,
    },
}

/// A query stream whose hotspots move over logical time.
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    base_hotspots: Vec<Hotspot>,
    generator: QueryGenerator,
    drift: DriftKind,
    step: u64,
}

impl DriftingWorkload {
    /// Wraps `generator` with drift behaviour `drift`.
    pub fn new(generator: QueryGenerator, drift: DriftKind) -> Self {
        DriftingWorkload {
            base_hotspots: generator.spec().hotspots.clone(),
            generator,
            drift,
            step: 0,
        }
    }

    /// Current logical time step (number of queries issued).
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Hotspot centres effective at step `t`.
    pub fn hotspots_at(&self, t: u64) -> Vec<Hotspot> {
        self.base_hotspots
            .iter()
            .map(|h| {
                let mut center = h.center.clone();
                match &self.drift {
                    DriftKind::None => {}
                    DriftKind::Linear { velocity } => {
                        for (d, v) in velocity.iter().enumerate().take(center.len()) {
                            center[d] += v * t as f64;
                        }
                    }
                    DriftKind::Jump { at_step, offset } => {
                        if t >= *at_step {
                            for (d, o) in offset.iter().enumerate().take(center.len()) {
                                center[d] += o;
                            }
                        }
                    }
                }
                Hotspot {
                    center,
                    spread: h.spread.clone(),
                    weight: h.weight,
                }
            })
            .collect()
    }

    /// Draws the next query, advancing logical time by one step.
    ///
    /// # Errors
    ///
    /// Propagates hotspot validation errors (cannot occur for drift kinds
    /// constructed with dimensionality matching the base hotspots).
    pub fn next_query(&mut self) -> Result<AnalyticalQuery> {
        let hs = self.hotspots_at(self.step);
        self.generator.set_hotspots(hs)?;
        self.step += 1;
        Ok(self.generator.next_query())
    }

    /// Draws the next `n` queries.
    ///
    /// # Errors
    ///
    /// As [`DriftingWorkload::next_query`].
    pub fn take_queries(&mut self, n: usize) -> Result<Vec<AnalyticalQuery>> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::QuerySpec;

    fn base_gen() -> QueryGenerator {
        let spec = QuerySpec::simple_count(vec![0.0, 0.0], 0.5, (1.0, 1.0)).unwrap();
        QueryGenerator::new(spec, 42).unwrap()
    }

    #[test]
    fn no_drift_keeps_hotspots_fixed() {
        let w = DriftingWorkload::new(base_gen(), DriftKind::None);
        assert_eq!(w.hotspots_at(0)[0].center, vec![0.0, 0.0]);
        assert_eq!(w.hotspots_at(1000)[0].center, vec![0.0, 0.0]);
    }

    #[test]
    fn linear_drift_moves_centres() {
        let mut w = DriftingWorkload::new(
            base_gen(),
            DriftKind::Linear {
                velocity: vec![1.0, 0.0],
            },
        );
        assert_eq!(w.hotspots_at(10)[0].center, vec![10.0, 0.0]);
        // After 100 queries, the generated centres should be far from origin.
        let qs = w.take_queries(100).unwrap();
        let last = qs.last().unwrap().region.center();
        assert!(
            last.coord(0) > 80.0,
            "drifted centre, got {}",
            last.coord(0)
        );
        assert_eq!(w.step(), 100);
    }

    #[test]
    fn jump_drift_is_abrupt() {
        let w = DriftingWorkload::new(
            base_gen(),
            DriftKind::Jump {
                at_step: 50,
                offset: vec![100.0, 100.0],
            },
        );
        assert_eq!(w.hotspots_at(49)[0].center, vec![0.0, 0.0]);
        assert_eq!(w.hotspots_at(50)[0].center, vec![100.0, 100.0]);
    }

    #[test]
    fn queries_follow_the_jump() {
        let mut w = DriftingWorkload::new(
            base_gen(),
            DriftKind::Jump {
                at_step: 10,
                offset: vec![500.0, 0.0],
            },
        );
        let qs = w.take_queries(20).unwrap();
        assert!(qs[5].region.center().coord(0) < 250.0);
        assert!(qs[15].region.center().coord(0) > 250.0);
    }
}
