//! Query-answer explanations (RT4-2).
//!
//! "Consider Penny receiving the answer that the population within a data
//! subspace is 273. […] We need systems that offer rich, compact, and
//! accurate explanations, which will accompany answers" — concretely, "a
//! (piecewise) linear regression model showing how [the answer] depends on
//! the size of the subspace". An [`Explanation`] packages exactly that:
//!
//! * first-order sensitivities of the answer to every query parameter
//!   (centre coordinate and extent per dimension), read directly off the
//!   serving quantum's linear model, and
//! * a piecewise-linear curve of the answer as a function of subspace
//!   *volume*, fitted to the quantum's retained training pairs,
//!
//! so the analyst can "simply plug in values for parameters" instead of
//! issuing more queries.

use serde::{Deserialize, Serialize};

use sea_common::{AnalyticalQuery, AnswerValue, Result, SeaError};
use sea_ml::PiecewiseLinear;

use crate::agent::SeaAgent;

/// A compact model of how a query's answer depends on its parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Explanation {
    /// ∂answer/∂centre_d for each data dimension.
    pub centre_sensitivity: Vec<f64>,
    /// ∂answer/∂extent_d for each data dimension.
    pub extent_sensitivity: Vec<f64>,
    /// ∂answer/∂volume.
    pub volume_sensitivity: f64,
    /// Intercept of the local linear model.
    pub intercept: f64,
    /// Piecewise-linear model of answer vs subspace volume (present when
    /// the quantum retained enough training pairs).
    pub answer_vs_volume: Option<PiecewiseLinear>,
    /// How many training pairs supported this explanation.
    pub support: usize,
}

impl Explanation {
    /// Builds the explanation for `query` from the agent's serving quantum.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] when the quantum is missing or undertrained
    /// (no reliable local model exists yet).
    pub fn for_query(agent: &SeaAgent, query: &AnalyticalQuery) -> Result<Self> {
        let (weights, intercept) = agent
            .quantum_weights(query)
            .ok_or_else(|| SeaError::Empty("no trained quantum to explain this query".into()))?;
        let dims = agent.dims();
        // Features are [centre_0..d, extent_0..d, volume].
        let centre_sensitivity = weights[..dims].to_vec();
        let extent_sensitivity = weights[dims..2 * dims].to_vec();
        let volume_sensitivity = weights[2 * dims];

        let pairs = agent.quantum_pairs(query);
        let mut vols = Vec::with_capacity(pairs.len());
        let mut answers = Vec::with_capacity(pairs.len());
        for (features, ans) in &pairs {
            if let AnswerValue::Scalar(v) = ans {
                vols.push(features[2 * dims]);
                answers.push(*v);
            }
        }
        let answer_vs_volume = if vols.len() >= 4 {
            PiecewiseLinear::fit(&vols, &answers, 4, 3, 1e-6).ok()
        } else {
            None
        };
        Ok(Explanation {
            centre_sensitivity,
            extent_sensitivity,
            volume_sensitivity,
            intercept,
            answer_vs_volume,
            support: pairs.len(),
        })
    }

    /// Evaluates the first-order model at explicit parameters
    /// `[centre…, extents…, volume]`.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn eval_parameters(&self, params: &[f64]) -> Result<f64> {
        let expect = self.centre_sensitivity.len() + self.extent_sensitivity.len() + 1;
        SeaError::check_dims(expect, params.len())?;
        let dims = self.centre_sensitivity.len();
        let mut acc = self.intercept;
        for (w, p) in self.centre_sensitivity.iter().zip(&params[..dims]) {
            acc += w * p;
        }
        for (w, p) in self.extent_sensitivity.iter().zip(&params[dims..2 * dims]) {
            acc += w * p;
        }
        acc += self.volume_sensitivity * params[2 * dims];
        Ok(acc)
    }

    /// Predicted answer if the queried subspace had volume `v` (uses the
    /// piecewise curve when available, otherwise the first-order volume
    /// term around the intercept).
    pub fn answer_at_volume(&self, v: f64) -> f64 {
        match &self.answer_vs_volume {
            Some(pw) => pw.eval(v),
            None => self.intercept + self.volume_sensitivity * v,
        }
    }

    /// Marginal effect of subspace volume at `v`: the slope of the
    /// piecewise curve there (falls back to the first-order weight). This
    /// — not the raw linear weight, which shares credit with the
    /// correlated extent features — is the number an analyst should read
    /// as "answers grow by X per unit of volume".
    pub fn volume_slope_at(&self, v: f64) -> f64 {
        match &self.answer_vs_volume {
            Some(pw) => {
                let h = (v.abs() * 1e-3).max(1e-6);
                (pw.eval(v + h) - pw.eval(v - h)) / (2.0 * h)
            }
            None => self.volume_sensitivity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use sea_common::{AggregateKind, Point, Rect, Region};

    fn count_query(center: &[f64], e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(
                Rect::centered(&Point::new(center.to_vec()), &vec![e; center.len()]).unwrap(),
            ),
            AggregateKind::Count,
        )
    }

    fn trained_agent() -> SeaAgent {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        // Density 2 per unit volume.
        for i in 0..200 {
            let e = 1.0 + (i % 25) as f64 / 10.0;
            let q = count_query(&[50.0, 50.0], e);
            let truth = AnswerValue::Scalar(2.0 * q.region.volume());
            agent.train(&q, &truth).unwrap();
        }
        agent
    }

    #[test]
    fn explanation_tracks_volume_dependence() {
        let agent = trained_agent();
        let q = count_query(&[50.0, 50.0], 2.0);
        let ex = Explanation::for_query(&agent, &q).unwrap();
        assert!(ex.support > 100);
        // True answer at volume v is 2v; the explanation curve should be
        // close over the trained volume range (4..49).
        for v in [9.0, 16.0, 25.0, 36.0] {
            let got = ex.answer_at_volume(v);
            assert!((got - 2.0 * v).abs() < 0.15 * 2.0 * v, "at v={v}: {got}");
        }
    }

    #[test]
    fn explanation_answers_related_queries_without_issuing_them() {
        // The E12 scenario: instead of issuing N queries with varied
        // extents, the analyst evaluates the explanation.
        let agent = trained_agent();
        let q = count_query(&[50.0, 50.0], 1.5);
        let ex = Explanation::for_query(&agent, &q).unwrap();
        let mut max_rel = 0.0f64;
        for i in 0..10 {
            let e = 1.2 + i as f64 * 0.2;
            let vol = (2.0 * e) * (2.0 * e);
            let truth = 2.0 * vol;
            let got = ex.answer_at_volume(vol);
            max_rel = max_rel.max((got - truth).abs() / truth);
        }
        assert!(max_rel < 0.25, "max rel err {max_rel}");
    }

    #[test]
    fn eval_parameters_is_first_order_model() {
        let agent = trained_agent();
        let q = count_query(&[50.0, 50.0], 2.0);
        let ex = Explanation::for_query(&agent, &q).unwrap();
        let params = vec![50.0, 50.0, 2.0, 2.0, 16.0];
        let v = ex.eval_parameters(&params).unwrap();
        assert!((v - 32.0).abs() < 8.0, "first-order estimate {v}");
        assert!(ex.eval_parameters(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn untrained_query_has_no_explanation() {
        let agent = trained_agent();
        let q = AnalyticalQuery::new(
            count_query(&[50.0, 50.0], 1.0).region,
            AggregateKind::Mean { dim: 0 },
        );
        assert!(matches!(
            Explanation::for_query(&agent, &q),
            Err(SeaError::Empty(_))
        ));
    }
}
