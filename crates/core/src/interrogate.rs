//! Higher-level interrogations (RT4-1).
//!
//! The paper's example: "return the data subspaces where the correlation
//! coefficient between attributes is greater than a threshold value". With
//! a trained agent, such an interrogation sweeps a lattice of candidate
//! subspaces over *predictions only* — no base-data access — exactly the
//! indirect-scalability argument of §III-A: the analyst gets a data-space
//! overview for the cost of zero queries to the system.

use sea_common::{AggregateKind, AnalyticalQuery, Point, Rect, Region, Result, SeaError};

use crate::agent::SeaAgent;

/// One candidate subspace and the agent's verdict about it.
#[derive(Debug, Clone, PartialEq)]
pub struct SubspaceReport {
    /// The candidate subspace.
    pub region: Rect,
    /// The predicted statistic.
    pub predicted: f64,
    /// The agent's error estimate for that prediction.
    pub estimated_error: f64,
}

/// Sweeps a `cells_per_dim`-per-dimension lattice of subspaces with
/// per-dimension half-widths `extents` over `domain`, predicting
/// `aggregate` on each, and
/// returns the subspaces whose predicted scalar exceeds `threshold`,
/// sorted descending by predicted value.
///
/// Subspaces the agent cannot predict yet (no quantum) are skipped — they
/// are *unknown*, not uninteresting; callers wanting completeness should
/// widen training first. Predictions whose estimated error exceeds
/// `max_estimated_error` are likewise skipped: a confident interrogation
/// only reports subspaces the models actually know (use `f64::INFINITY`
/// to disable the filter).
///
/// # Errors
///
/// Invalid lattice parameters or dimension mismatches.
pub fn interesting_subspaces(
    agent: &SeaAgent,
    domain: &Rect,
    cells_per_dim: usize,
    extents: &[f64],
    aggregate: AggregateKind,
    threshold: f64,
    max_estimated_error: f64,
) -> Result<Vec<SubspaceReport>> {
    if cells_per_dim == 0 {
        return Err(SeaError::invalid("cells_per_dim must be positive"));
    }
    if extents.iter().any(|e| e.is_nan() || *e <= 0.0) {
        return Err(SeaError::invalid("extents must be positive"));
    }
    SeaError::check_dims(agent.dims(), domain.dims())?;
    SeaError::check_dims(domain.dims(), extents.len())?;
    let dims = domain.dims();
    let total = (cells_per_dim as u64)
        .checked_pow(dims as u32)
        .filter(|t| *t <= 1 << 20)
        .ok_or_else(|| SeaError::invalid("lattice too large (over 2^20 candidates)"))?;

    let mut out = Vec::new();
    for flat in 0..total {
        // Decode the lattice coordinate.
        let mut rest = flat;
        let mut centre = vec![0.0; dims];
        for d in (0..dims).rev() {
            let c = (rest % cells_per_dim as u64) as f64;
            rest /= cells_per_dim as u64;
            let w = (domain.hi()[d] - domain.lo()[d]) / cells_per_dim as f64;
            centre[d] = domain.lo()[d] + w * (c + 0.5);
        }
        let region = Rect::centered(&Point::new(centre), extents)?;
        let query = AnalyticalQuery::new(Region::Range(region.clone()), aggregate);
        let Ok(pred) = agent.predict(&query) else {
            continue;
        };
        if pred.estimated_error > max_estimated_error {
            continue;
        }
        if let Some(v) = pred.answer.as_scalar() {
            if v > threshold {
                out.push(SubspaceReport {
                    region,
                    predicted: v,
                    estimated_error: pred.estimated_error,
                });
            }
        }
    }
    out.sort_by(|a, b| b.predicted.partial_cmp(&a.predicted).expect("finite"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentConfig;
    use sea_common::AnswerValue;

    /// Agent trained so that correlation is high only around (25, 25).
    fn trained_agent() -> SeaAgent {
        let mut agent = SeaAgent::new(
            2,
            AgentConfig {
                quantizer: sea_ml::quantize::QuantizerParams {
                    spawn_distance: 15.0,
                    ..Default::default()
                },
                ..AgentConfig::default()
            },
        )
        .unwrap();
        for i in 0..400 {
            let cx = (i % 20) as f64 * 5.0 + 2.5; // 2.5..97.5
            let cy = ((i / 20) % 20) as f64 * 5.0 + 2.5;
            let q = AnalyticalQuery::new(
                Region::Range(Rect::centered(&Point::new(vec![cx, cy]), &[3.0, 3.0]).unwrap()),
                AggregateKind::Correlation { x: 0, y: 1 },
            );
            // Correlation peaks near (25, 25), decaying with distance.
            let d = ((cx - 25.0).powi(2) + (cy - 25.0).powi(2)).sqrt();
            let corr = (1.0 - d / 40.0).max(0.0);
            agent.train(&q, &AnswerValue::Scalar(corr)).unwrap();
        }
        agent
    }

    #[test]
    fn finds_high_correlation_subspaces() {
        let agent = trained_agent();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let hits = interesting_subspaces(
            &agent,
            &domain,
            10,
            &[3.0, 3.0],
            AggregateKind::Correlation { x: 0, y: 1 },
            0.6,
            f64::INFINITY,
        )
        .unwrap();
        assert!(!hits.is_empty(), "some subspaces qualify");
        // The best hit should be near (25, 25).
        let top = &hits[0];
        let c = top.region.center();
        assert!(
            (c.coord(0) - 25.0).abs() < 11.0 && (c.coord(1) - 25.0).abs() < 11.0,
            "top at {:?}",
            c
        );
        // Sorted descending.
        for w in hits.windows(2) {
            assert!(w[0].predicted >= w[1].predicted);
        }
        // Far-away subspaces must not qualify.
        for h in &hits {
            let c = h.region.center();
            let d = ((c.coord(0) - 25.0).powi(2) + (c.coord(1) - 25.0).powi(2)).sqrt();
            assert!(d < 45.0, "qualified subspace too far: {d}");
        }
    }

    #[test]
    fn threshold_filters_everything_when_high() {
        let agent = trained_agent();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let hits = interesting_subspaces(
            &agent,
            &domain,
            10,
            &[3.0, 3.0],
            AggregateKind::Correlation { x: 0, y: 1 },
            1.5,
            f64::INFINITY,
        )
        .unwrap();
        assert!(hits.is_empty(), "correlation is clamped to ≤ 1");
    }

    #[test]
    fn parameter_validation() {
        let agent = trained_agent();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let agg = AggregateKind::Correlation { x: 0, y: 1 };
        assert!(interesting_subspaces(&agent, &domain, 0, &[3.0, 3.0], agg, 0.5, 1.0).is_err());
        assert!(interesting_subspaces(&agent, &domain, 10, &[0.0, 3.0], agg, 0.5, 1.0).is_err());
        assert!(interesting_subspaces(&agent, &domain, 10, &[3.0], agg, 0.5, 1.0).is_err());
        let bad_domain = Rect::new(vec![0.0], vec![1.0]).unwrap();
        assert!(interesting_subspaces(&agent, &bad_domain, 10, &[1.0], agg, 0.5, 1.0).is_err());
    }

    #[test]
    fn untrained_operator_yields_no_hits() {
        let agent = trained_agent();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let hits = interesting_subspaces(
            &agent,
            &domain,
            5,
            &[3.0, 3.0],
            AggregateKind::Count,
            0.0,
            1.0,
        )
        .unwrap();
        assert!(hits.is_empty(), "count pool was never trained");
    }
}
