//! The SEA agent: query-space quantization, per-quantum answer models,
//! prediction with error estimation, and model maintenance.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use sea_common::{AggregateKind, AnalyticalQuery, AnswerValue, Rect, Result, SeaError};
use sea_ml::linreg::RecursiveLeastSquares;
use sea_ml::quantize::{OnlineQuantizer, QuantizerParams};
use sea_ml::Regressor;
use sea_telemetry::TelemetrySink;

/// Configuration of a [`SeaAgent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Query-space quantizer parameters. `spawn_distance` is in query-vector
    /// units (centre ⊕ extents), so it should scale with the data domain.
    pub quantizer: QuantizerParams,
    /// Minimum training queries a quantum needs before its local model is
    /// trusted for prediction.
    pub min_training: u64,
    /// RLS forgetting factor in `(0, 1]`; below 1 the agent tracks drifting
    /// answer functions.
    pub forget: f64,
    /// Neighbours used by the raw-pair fallback predictor.
    pub knn_k: usize,
    /// Cap on stored raw training pairs per quantum (memory bound; also
    /// the explanation sample).
    pub max_pairs_per_quantum: usize,
    /// Weight of the distance-to-prototype term in the error estimate.
    pub distance_penalty: f64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            quantizer: QuantizerParams {
                spawn_distance: 10.0,
                learning_rate: 0.1,
                decay: 0.02,
                max_prototypes: 0,
            },
            min_training: 8,
            forget: 1.0,
            knn_k: 5,
            max_pairs_per_quantum: 256,
            distance_penalty: 0.05,
        }
    }
}

/// A prediction produced without touching base data.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The predicted answer.
    pub answer: AnswerValue,
    /// Estimated relative error (prequential residual mean of the quantum,
    /// inflated with the query's distance from the quantum prototype).
    pub estimated_error: f64,
    /// Index of the quantum that produced the prediction (within its
    /// operator pool).
    pub quantum: usize,
    /// Training queries the quantum has absorbed.
    pub quantum_training: u64,
}

/// Running prequential error statistics of one quantum.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct ResidualStats {
    n: u64,
    mean_abs_rel: f64,
}

impl ResidualStats {
    /// Exponentially-smoothed absolute relative error.
    fn push(&mut self, rel_err: f64) {
        self.n += 1;
        let alpha = (2.0 / (1.0 + self.n as f64)).max(0.05);
        self.mean_abs_rel += alpha * (rel_err - self.mean_abs_rel);
    }

    fn estimate(&self) -> f64 {
        if self.n == 0 {
            f64::INFINITY
        } else {
            self.mean_abs_rel
        }
    }
}

/// The local model of one quantum: incremental linear model(s) over query
/// geometry plus the retained raw pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuantumModel {
    /// Primary model (scalar answers; slope for pair answers).
    primary: RecursiveLeastSquares,
    /// Secondary model (intercept of pair answers), if the pool's operator
    /// returns pairs.
    secondary: Option<RecursiveLeastSquares>,
    residuals: ResidualStats,
    training: u64,
    /// Retained `(features, answer)` pairs for kNN fallback + explanations.
    pairs: Vec<(Vec<f64>, AnswerValue)>,
}

impl QuantumModel {
    fn new(feature_dims: usize, pair_answer: bool, forget: f64) -> Result<Self> {
        Ok(QuantumModel {
            primary: RecursiveLeastSquares::new(feature_dims, 100.0, forget)?,
            secondary: if pair_answer {
                Some(RecursiveLeastSquares::new(feature_dims, 100.0, forget)?)
            } else {
                None
            },
            residuals: ResidualStats::default(),
            training: 0,
            pairs: Vec::new(),
        })
    }

    fn predict(&self, features: &[f64]) -> AnswerValue {
        match &self.secondary {
            None => AnswerValue::Scalar(self.primary.predict(features)),
            Some(s) => AnswerValue::Pair(self.primary.predict(features), s.predict(features)),
        }
    }

    fn train(&mut self, features: &[f64], answer: &AnswerValue, max_pairs: usize) -> Result<()> {
        // Prequential residual: evaluate before updating.
        if self.training > 0 {
            let pred = self.predict(features);
            self.residuals.push(pred.relative_error(answer).min(10.0));
        }
        match (answer, &mut self.secondary) {
            (AnswerValue::Scalar(v), None) => self.primary.update(features, *v)?,
            (AnswerValue::Pair(a, b), Some(s)) => {
                self.primary.update(features, *a)?;
                s.update(features, *b)?;
            }
            _ => {
                return Err(SeaError::Model(
                    "answer shape inconsistent with operator pool".into(),
                ))
            }
        }
        self.training += 1;
        if self.pairs.len() >= max_pairs {
            self.pairs.remove(0);
        }
        self.pairs.push((features.to_vec(), *answer));
        Ok(())
    }

    fn knn_predict(&self, features: &[f64], k: usize) -> Option<AnswerValue> {
        if self.pairs.is_empty() {
            return None;
        }
        let mut dists: Vec<(f64, &AnswerValue)> = self
            .pairs
            .iter()
            .map(|(x, a)| {
                let d: f64 = x.iter().zip(features).map(|(p, q)| (p - q) * (p - q)).sum();
                (d.sqrt(), a)
            })
            .collect();
        let k = k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let neigh = &dists[..k];
        let mut w_sum = 0.0;
        let mut acc = (0.0, 0.0);
        let mut is_pair = false;
        for (d, a) in neigh {
            let w = 1.0 / (d + 1e-9);
            w_sum += w;
            match a {
                AnswerValue::Scalar(v) => acc.0 += w * v,
                AnswerValue::Pair(x, y) => {
                    is_pair = true;
                    acc.0 += w * x;
                    acc.1 += w * y;
                }
                _ => {}
            }
        }
        Some(if is_pair {
            AnswerValue::Pair(acc.0 / w_sum, acc.1 / w_sum)
        } else {
            AnswerValue::Scalar(acc.0 / w_sum)
        })
    }

    fn memory_bytes(&self) -> u64 {
        let rls = |m: &RecursiveLeastSquares| (m.dims() as u64 + 1).pow(2) * 8 + 64;
        let pairs: u64 = self
            .pairs
            .iter()
            .map(|(x, _)| 8 * x.len() as u64 + 24)
            .sum();
        rls(&self.primary) + self.secondary.as_ref().map_or(0, rls) + pairs + 64
    }
}

/// One operator pool: a quantizer plus per-quantum models for a single
/// aggregate operator.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Pool {
    quantizer: OnlineQuantizer,
    models: Vec<QuantumModel>,
    pair_answer: bool,
}

/// Hashable key identifying an operator pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
struct AggKey {
    tag: u8,
    a: usize,
    b: usize,
    qbits: u64,
}

fn agg_key(agg: &AggregateKind) -> AggKey {
    match *agg {
        AggregateKind::Count => AggKey {
            tag: 0,
            a: 0,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Sum { dim } => AggKey {
            tag: 1,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Mean { dim } => AggKey {
            tag: 2,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Variance { dim } => AggKey {
            tag: 3,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Min { dim } => AggKey {
            tag: 4,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Max { dim } => AggKey {
            tag: 5,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Median { dim } => AggKey {
            tag: 6,
            a: dim,
            b: 0,
            qbits: 0,
        },
        AggregateKind::Quantile { dim, q } => AggKey {
            tag: 7,
            a: dim,
            b: 0,
            qbits: q.to_bits(),
        },
        AggregateKind::Correlation { x, y } => AggKey {
            tag: 8,
            a: x,
            b: y,
            qbits: 0,
        },
        AggregateKind::Regression { x, y } => AggKey {
            tag: 9,
            a: x,
            b: y,
            qbits: 0,
        },
        _ => AggKey {
            tag: u8::MAX,
            a: 0,
            b: 0,
            qbits: 0,
        },
    }
}

fn is_pair_answer(agg: &AggregateKind) -> bool {
    matches!(agg, AggregateKind::Regression { .. })
}

/// Aggregate statistics about an agent's state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentStats {
    /// Operator pools held.
    pub pools: usize,
    /// Total quanta across pools.
    pub quanta: usize,
    /// Total training queries absorbed.
    pub training_queries: u64,
    /// Approximate memory footprint in bytes (the E8 metric).
    pub memory_bytes: u64,
}

/// The intelligent agent of Fig 2.
///
/// # Examples
///
/// ```
/// use sea_common::{AggregateKind, AnalyticalQuery, AnswerValue, Point, Rect, Region};
/// use sea_core::{AgentConfig, SeaAgent};
///
/// let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
/// // Train: count grows linearly with volume in this synthetic answer fn.
/// for i in 0..50 {
///     let e = 1.0 + (i % 10) as f64 / 10.0;
///     let region = Region::Range(
///         Rect::centered(&Point::new(vec![50.0, 50.0]), &[e, e]).unwrap(),
///     );
///     let q = AnalyticalQuery::new(region, AggregateKind::Count);
///     let truth = AnswerValue::Scalar(4.0 * e * e * 3.0);
///     agent.train(&q, &truth).unwrap();
/// }
/// let probe = AnalyticalQuery::new(
///     Region::Range(Rect::centered(&Point::new(vec![50.0, 50.0]), &[1.5, 1.5]).unwrap()),
///     AggregateKind::Count,
/// );
/// let pred = agent.predict(&probe).unwrap();
/// assert!((pred.answer.as_scalar().unwrap() - 27.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct SeaAgent {
    config: AgentConfig,
    dims: usize,
    pools: HashMap<AggKey, Pool>,
    training_queries: u64,
    /// Telemetry sink for `core.agent.*` counters/events; not part of the
    /// serialized model state.
    telemetry: TelemetrySink,
}

/// The wire form of a [`SeaAgent`]: pools as explicit pairs (JSON maps
/// need string keys, so the HashMap is flattened for transport).
#[derive(Debug, Serialize, Deserialize)]
struct AgentWire {
    config: AgentConfig,
    dims: usize,
    pools: Vec<(AggKey, Pool)>,
    training_queries: u64,
}

impl SeaAgent {
    /// Creates an agent for `dims`-dimensional data.
    ///
    /// # Errors
    ///
    /// Zero dims or invalid configuration parameters.
    pub fn new(dims: usize, config: AgentConfig) -> Result<Self> {
        if dims == 0 {
            return Err(SeaError::invalid("agent needs at least one data dimension"));
        }
        if config.knn_k == 0 {
            return Err(SeaError::invalid("knn_k must be positive"));
        }
        if config.max_pairs_per_quantum == 0 {
            return Err(SeaError::invalid("max_pairs_per_quantum must be positive"));
        }
        // Validate quantizer params eagerly by constructing a throwaway.
        OnlineQuantizer::new(2 * dims, config.quantizer.clone())?;
        RecursiveLeastSquares::new(1, 100.0, config.forget)?;
        Ok(SeaAgent {
            config,
            dims,
            pools: HashMap::new(),
            training_queries: 0,
            telemetry: TelemetrySink::default(),
        })
    }

    /// Attaches a telemetry sink for `core.agent.*` counters and events
    /// (quantum spawns, train/predict volume).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.telemetry = sink;
    }

    /// Data dimensionality this agent serves.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Feature embedding of a query: `[centre, extents, volume]`.
    fn features(&self, query: &AnalyticalQuery) -> Vec<f64> {
        let mut f = query.to_query_vector();
        f.push(query.region.volume());
        f
    }

    /// Absorbs one `(query, exact answer)` training observation.
    ///
    /// # Errors
    ///
    /// Dimension mismatch between query and agent, or an answer shape that
    /// does not match the operator (e.g. a scalar for a regression query).
    pub fn train(&mut self, query: &AnalyticalQuery, answer: &AnswerValue) -> Result<()> {
        SeaError::check_dims(self.dims, query.region.dims())?;
        let key = agg_key(&query.aggregate);
        let qvec = query.to_query_vector();
        let features = self.features(query);
        let feature_dims = features.len();
        let pair = is_pair_answer(&query.aggregate);
        let forget = self.config.forget;
        let quant_params = self.config.quantizer.clone();
        let pool = match self.pools.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => e.insert(Pool {
                quantizer: OnlineQuantizer::new(qvec.len(), quant_params)?,
                models: Vec::new(),
                pair_answer: pair,
            }),
        };
        let (idx, spawned) = pool.quantizer.absorb(&qvec)?;
        if spawned {
            debug_assert_eq!(idx, pool.models.len());
            pool.models
                .push(QuantumModel::new(feature_dims, pair, forget)?);
            self.telemetry.event(
                "core.agent.quantum_spawned",
                &[
                    ("quantum", idx.into()),
                    ("pool_quanta", pool.models.len().into()),
                ],
            );
        }
        pool.models[idx].train(&features, answer, self.config.max_pairs_per_quantum)?;
        self.training_queries += 1;
        self.telemetry.incr("core.agent.train_total", 1);
        Ok(())
    }

    /// Predicts the answer to `query` without touching base data.
    ///
    /// # Errors
    ///
    /// [`SeaError::Empty`] when no quantum can serve the operator yet (the
    /// caller should execute exactly and [`SeaAgent::train`] on the
    /// result), or a dimension mismatch.
    pub fn predict(&self, query: &AnalyticalQuery) -> Result<Prediction> {
        SeaError::check_dims(self.dims, query.region.dims())?;
        self.telemetry.incr("core.agent.predict_total", 1);
        let key = agg_key(&query.aggregate);
        let pool = self
            .pools
            .get(&key)
            .ok_or_else(|| SeaError::Empty("no model pool for this operator yet".into()))?;
        let qvec = query.to_query_vector();
        let (idx, dist_sq) = pool
            .quantizer
            .nearest_prototype(&qvec)
            .ok_or_else(|| SeaError::Empty("operator pool has no quanta".into()))?;
        let model = &pool.models[idx];
        let features = self.features(query);

        let answer = if model.training >= self.config.min_training {
            let mut a = model.predict(&features);
            // Counts and spreads cannot be negative.
            a = clamp_answer(&query.aggregate, a);
            a
        } else {
            let a = model
                .knn_predict(&features, self.config.knn_k)
                .ok_or_else(|| SeaError::Empty("quantum has no training pairs".into()))?;
            clamp_answer(&query.aggregate, a)
        };

        let dist = dist_sq.sqrt();
        let base_err = model.residuals.estimate();
        let distance_term =
            self.config.distance_penalty * dist / self.config.quantizer.spawn_distance;
        let estimated_error = if model.training < self.config.min_training || !base_err.is_finite()
        {
            // Undertrained quantum: be pessimistic (but finite, so callers
            // can still rank candidates) until enough exact answers have
            // been absorbed.
            (1.0 + distance_term).max(base_err.min(10.0))
        } else {
            base_err + distance_term
        };
        Ok(Prediction {
            answer,
            estimated_error,
            quantum: idx,
            quantum_training: model.training,
        })
    }

    /// Training pairs retained by the quantum that would serve `query`
    /// (used by explanation fitting). Empty when the operator pool is
    /// missing.
    pub fn quantum_pairs(&self, query: &AnalyticalQuery) -> Vec<(Vec<f64>, AnswerValue)> {
        let key = agg_key(&query.aggregate);
        let Some(pool) = self.pools.get(&key) else {
            return Vec::new();
        };
        let qvec = query.to_query_vector();
        let Some((idx, _)) = pool.quantizer.nearest_prototype(&qvec) else {
            return Vec::new();
        };
        pool.models[idx].pairs.clone()
    }

    /// Linear weights of the quantum model serving `query`:
    /// `(weights over [centre, extents, volume], intercept)`. `None` when
    /// the quantum is missing or undertrained. These weights *are* a
    /// first-order explanation of how the answer depends on each query
    /// parameter.
    pub fn quantum_weights(&self, query: &AnalyticalQuery) -> Option<(Vec<f64>, f64)> {
        let pool = self.pools.get(&agg_key(&query.aggregate))?;
        let (idx, _) = pool.quantizer.nearest_prototype(&query.to_query_vector())?;
        let model = &pool.models[idx];
        if model.training < self.config.min_training {
            return None;
        }
        let lm = model.primary.model();
        Some((lm.weights().to_vec(), lm.intercept()))
    }

    /// Drops quanta (across all pools) not used by the last `max_age`
    /// training queries of their pool — the query-drift half of model
    /// maintenance. Returns how many quanta were purged.
    pub fn purge_stale(&mut self, max_age: u64) -> usize {
        let mut purged = 0;
        for pool in self.pools.values_mut() {
            let dropped = pool.quantizer.purge_stale(max_age);
            // Remove models at dropped indices, descending so indices stay
            // valid.
            for &i in dropped.iter().rev() {
                pool.models.remove(i);
                purged += 1;
            }
        }
        purged
    }

    /// Invalidates every quantum whose interest region (prototype centre ±
    /// extents) intersects `region` — the base-data-update half of model
    /// maintenance: after inserts/deletes inside `region`, models there
    /// are stale and must relearn. Returns how many quanta were reset.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn invalidate_region(&mut self, region: &Rect) -> Result<usize> {
        SeaError::check_dims(self.dims, region.dims())?;
        let mut reset = 0;
        let forget = self.config.forget;
        for pool in self.pools.values_mut() {
            let pair = pool.pair_answer;
            for (proto, model) in pool
                .quantizer
                .prototypes()
                .iter()
                .zip(pool.models.iter_mut())
            {
                let dims = region.dims();
                let centre = &proto.position[..dims];
                let extents = &proto.position[dims..2 * dims];
                let overlaps = (0..dims).all(|d| {
                    let lo = centre[d] - extents[d].abs();
                    let hi = centre[d] + extents[d].abs();
                    lo <= region.hi()[d] && region.lo()[d] <= hi
                });
                if overlaps {
                    let feature_dims = 2 * dims + 1;
                    *model = QuantumModel::new(feature_dims, pair, forget)
                        .expect("validated at construction");
                    reset += 1;
                }
            }
        }
        Ok(reset)
    }

    /// Extracts the sub-agent whose quanta's interest regions intersect
    /// `region` — the model-placement primitive of RT5-3 ("only models for
    /// the (much smaller) data subspaces of interest are built" and
    /// "carefully distributed at edge nodes"). The result predicts
    /// identically to `self` inside `region` and knows nothing elsewhere;
    /// shipping it costs proportionally fewer bytes than the full agent.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn subset_for_region(&self, region: &Rect) -> Result<SeaAgent> {
        SeaError::check_dims(self.dims, region.dims())?;
        let mut out = SeaAgent::new(self.dims, self.config.clone())?;
        for (key, pool) in &self.pools {
            let mut new_pool: Option<Pool> = None;
            for (proto, model) in pool.quantizer.prototypes().iter().zip(pool.models.iter()) {
                let dims = region.dims();
                let centre = &proto.position[..dims];
                let extents = &proto.position[dims..2 * dims];
                let overlaps = (0..dims).all(|d| {
                    let lo = centre[d] - extents[d].abs();
                    let hi = centre[d] + extents[d].abs();
                    lo <= region.hi()[d] && region.lo()[d] <= hi
                });
                if !overlaps {
                    continue;
                }
                let p = new_pool.get_or_insert_with(|| Pool {
                    quantizer: OnlineQuantizer::new(
                        proto.position.len(),
                        self.config.quantizer.clone(),
                    )
                    .expect("validated config"),
                    models: Vec::new(),
                    pair_answer: pool.pair_answer,
                });
                // Re-absorb the prototype position so the subset's
                // quantizer routes queries exactly as the original would
                // within the region. Prototypes that drifted within one
                // spawn distance of an already-absorbed one merge into it
                // (their model is dropped; its neighbour serves the area),
                // keeping quantizer and model lists aligned.
                let (_, spawned) = p
                    .quantizer
                    .absorb(&proto.position)
                    .expect("dims match by construction");
                if spawned {
                    p.models.push(model.clone());
                }
            }
            if let Some(p) = new_pool {
                out.pools.insert(*key, p);
            }
        }
        out.training_queries = self.training_queries;
        Ok(out)
    }

    /// Serializes the agent's full model state to JSON — the payload of
    /// "the models themselves are migrated" (RT1-5) and of edge model
    /// shipping (RT5-2). The byte length is the honest WAN bill.
    ///
    /// # Errors
    ///
    /// Serialization failures surface as [`SeaError::Serde`].
    pub fn to_json(&self) -> Result<String> {
        let wire = AgentWire {
            config: self.config.clone(),
            dims: self.dims,
            pools: self.pools.iter().map(|(k, p)| (*k, p.clone())).collect(),
            training_queries: self.training_queries,
        };
        serde_json::to_string(&wire).map_err(|e| SeaError::Serde(e.to_string()))
    }

    /// Reconstructs an agent from [`SeaAgent::to_json`] output.
    ///
    /// # Errors
    ///
    /// Malformed JSON surfaces as [`SeaError::Serde`].
    pub fn from_json(json: &str) -> Result<Self> {
        let wire: AgentWire =
            serde_json::from_str(json).map_err(|e| SeaError::Serde(e.to_string()))?;
        Ok(SeaAgent {
            config: wire.config,
            dims: wire.dims,
            pools: wire.pools.into_iter().collect(),
            training_queries: wire.training_queries,
            telemetry: TelemetrySink::default(),
        })
    }

    /// Aggregate statistics, including the memory footprint used by
    /// experiment E8.
    pub fn stats(&self) -> AgentStats {
        let quanta = self.pools.values().map(|p| p.models.len()).sum();
        let memory_bytes = self
            .pools
            .values()
            .map(|p| {
                let proto: u64 = p
                    .quantizer
                    .prototypes()
                    .iter()
                    .map(|pr| 8 * pr.position.len() as u64 + 24)
                    .sum();
                let models: u64 = p.models.iter().map(QuantumModel::memory_bytes).sum();
                proto + models + 64
            })
            .sum();
        AgentStats {
            pools: self.pools.len(),
            quanta,
            training_queries: self.training_queries,
            memory_bytes,
        }
    }
}

fn clamp_answer(agg: &AggregateKind, a: AnswerValue) -> AnswerValue {
    match (agg, a) {
        (AggregateKind::Count, AnswerValue::Scalar(v)) => AnswerValue::Scalar(v.max(0.0)),
        (AggregateKind::Variance { .. }, AnswerValue::Scalar(v)) => AnswerValue::Scalar(v.max(0.0)),
        (AggregateKind::Correlation { .. }, AnswerValue::Scalar(v)) => {
            AnswerValue::Scalar(v.clamp(-1.0, 1.0))
        }
        (_, other) => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Point, Region};

    fn count_query(center: &[f64], extent: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(
                Rect::centered(&Point::new(center.to_vec()), &vec![extent; center.len()]).unwrap(),
            ),
            AggregateKind::Count,
        )
    }

    /// Synthetic ground truth: density 3 records per unit volume.
    fn count_truth(q: &AnalyticalQuery) -> AnswerValue {
        AnswerValue::Scalar(3.0 * q.region.volume())
    }

    fn trained_agent() -> SeaAgent {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        for i in 0..100 {
            let e = 1.0 + (i % 20) as f64 / 10.0;
            let cx = 50.0 + (i % 5) as f64;
            let q = count_query(&[cx, 50.0], e);
            agent.train(&q, &count_truth(&q)).unwrap();
        }
        agent
    }

    #[test]
    fn predicts_counts_in_trained_region() {
        let agent = trained_agent();
        let q = count_query(&[52.0, 50.0], 1.7);
        let pred = agent.predict(&q).unwrap();
        let truth = count_truth(&q).as_scalar().unwrap();
        let rel = (pred.answer.as_scalar().unwrap() - truth).abs() / truth;
        assert!(rel < 0.15, "rel error {rel}");
        assert!(pred.estimated_error.is_finite());
    }

    #[test]
    fn error_estimate_grows_away_from_training() {
        let agent = trained_agent();
        let near = agent.predict(&count_query(&[51.0, 50.0], 1.5)).unwrap();
        let far = agent.predict(&count_query(&[500.0, 500.0], 1.5)).unwrap();
        assert!(
            far.estimated_error > near.estimated_error,
            "near {} far {}",
            near.estimated_error,
            far.estimated_error
        );
    }

    #[test]
    fn unknown_operator_pool_is_empty_error() {
        let agent = trained_agent();
        let q = AnalyticalQuery::new(
            count_query(&[50.0, 50.0], 1.0).region,
            AggregateKind::Mean { dim: 0 },
        );
        assert!(matches!(agent.predict(&q), Err(SeaError::Empty(_))));
    }

    #[test]
    fn separate_pools_per_operator() {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        let q = count_query(&[0.0, 0.0], 1.0);
        agent.train(&q, &AnswerValue::Scalar(5.0)).unwrap();
        let mean_q = AnalyticalQuery::new(q.region.clone(), AggregateKind::Mean { dim: 1 });
        agent.train(&mean_q, &AnswerValue::Scalar(7.0)).unwrap();
        assert_eq!(agent.stats().pools, 2);
    }

    #[test]
    fn regression_queries_predict_pairs() {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        for i in 0..60 {
            let e = 1.0 + (i % 10) as f64 / 5.0;
            let q = AnalyticalQuery::new(
                count_query(&[10.0, 10.0], e).region,
                AggregateKind::Regression { x: 0, y: 1 },
            );
            // Constant true line regardless of window.
            agent.train(&q, &AnswerValue::Pair(2.0, -1.0)).unwrap();
        }
        let probe = AnalyticalQuery::new(
            count_query(&[10.0, 10.0], 1.5).region,
            AggregateKind::Regression { x: 0, y: 1 },
        );
        let pred = agent.predict(&probe).unwrap();
        let (s, i) = pred.answer.as_pair().unwrap();
        assert!((s - 2.0).abs() < 0.1, "slope {s}");
        assert!((i + 1.0).abs() < 0.1, "intercept {i}");
    }

    #[test]
    fn mismatched_answer_shape_is_model_error() {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        let q = AnalyticalQuery::new(
            count_query(&[0.0, 0.0], 1.0).region,
            AggregateKind::Regression { x: 0, y: 1 },
        );
        assert!(matches!(
            agent.train(&q, &AnswerValue::Scalar(1.0)),
            Err(SeaError::Model(_))
        ));
    }

    #[test]
    fn count_predictions_clamp_at_zero() {
        let mut agent = SeaAgent::new(1, AgentConfig::default()).unwrap();
        // Teach a steeply decreasing function so extrapolation goes negative.
        for i in 0..30 {
            let e = 1.0 + i as f64 / 30.0;
            let q = count_query(&[0.0], e);
            agent
                .train(&q, &AnswerValue::Scalar(100.0 - 90.0 * (e - 1.0)))
                .unwrap();
        }
        let extreme = count_query(&[0.0], 50.0);
        let pred = agent.predict(&extreme).unwrap();
        assert!(pred.answer.as_scalar().unwrap() >= 0.0);
    }

    #[test]
    fn purge_stale_drops_abandoned_quanta() {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        for _ in 0..10 {
            let q = count_query(&[0.0, 0.0], 1.0);
            agent.train(&q, &AnswerValue::Scalar(5.0)).unwrap();
        }
        for _ in 0..100 {
            let q = count_query(&[500.0, 500.0], 1.0);
            agent.train(&q, &AnswerValue::Scalar(9.0)).unwrap();
        }
        assert_eq!(agent.stats().quanta, 2);
        let purged = agent.purge_stale(50);
        assert_eq!(purged, 1);
        assert_eq!(agent.stats().quanta, 1);
        // Remaining quantum still predicts the active region.
        let pred = agent.predict(&count_query(&[500.0, 500.0], 1.0)).unwrap();
        assert!((pred.answer.as_scalar().unwrap() - 9.0).abs() < 1.0);
    }

    #[test]
    fn invalidate_region_resets_overlapping_quanta() {
        let mut agent = trained_agent();
        let before = agent.predict(&count_query(&[52.0, 50.0], 1.5)).unwrap();
        assert!(before.quantum_training > 0);
        let reset = agent
            .invalidate_region(&Rect::new(vec![40.0, 40.0], vec![60.0, 60.0]).unwrap())
            .unwrap();
        assert!(reset >= 1);
        let after = agent.predict(&count_query(&[52.0, 50.0], 1.5));
        // Quantum exists but has no pairs → Empty, or training reset to 0.
        match after {
            Err(SeaError::Empty(_)) => {}
            Ok(p) => assert_eq!(p.quantum_training, 0),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn invalidate_elsewhere_keeps_models() {
        let mut agent = trained_agent();
        let reset = agent
            .invalidate_region(&Rect::new(vec![900.0, 900.0], vec![910.0, 910.0]).unwrap())
            .unwrap();
        assert_eq!(reset, 0);
        assert!(agent.predict(&count_query(&[52.0, 50.0], 1.5)).is_ok());
    }

    #[test]
    fn memory_is_bounded_by_pair_cap() {
        let mut agent = SeaAgent::new(
            2,
            AgentConfig {
                max_pairs_per_quantum: 10,
                ..AgentConfig::default()
            },
        )
        .unwrap();
        for i in 0..1000 {
            let q = count_query(&[0.0, 0.0], 1.0 + (i % 7) as f64 * 0.01);
            agent.train(&q, &AnswerValue::Scalar(5.0)).unwrap();
        }
        let stats = agent.stats();
        assert_eq!(stats.training_queries, 1000);
        assert!(
            stats.memory_bytes < 10_000,
            "memory stays bounded: {}",
            stats.memory_bytes
        );
    }

    #[test]
    fn config_validation() {
        assert!(SeaAgent::new(0, AgentConfig::default()).is_err());
        assert!(SeaAgent::new(
            2,
            AgentConfig {
                knn_k: 0,
                ..AgentConfig::default()
            }
        )
        .is_err());
        assert!(SeaAgent::new(
            2,
            AgentConfig {
                forget: 0.0,
                ..AgentConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn radius_queries_form_their_own_geometry() {
        // The agent serves radius selections through the same embedding;
        // a radius workload trains and predicts like a range workload.
        use sea_common::{Ball, Region};
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        for i in 0..80 {
            let r = 2.0 + (i % 16) as f64 * 0.25;
            let q = AnalyticalQuery::new(
                Region::Radius(Ball::new(Point::new(vec![40.0, 40.0]), r).unwrap()),
                AggregateKind::Count,
            );
            // Density 3 per unit area: count = 3·πr².
            let truth = AnswerValue::Scalar(3.0 * std::f64::consts::PI * r * r);
            agent.train(&q, &truth).unwrap();
        }
        let probe = AnalyticalQuery::new(
            Region::Radius(Ball::new(Point::new(vec![40.0, 40.0]), 3.3).unwrap()),
            AggregateKind::Count,
        );
        let pred = agent.predict(&probe).unwrap();
        let truth = 3.0 * std::f64::consts::PI * 3.3 * 3.3;
        let rel = (pred.answer.as_scalar().unwrap() - truth).abs() / truth;
        assert!(rel < 0.1, "radius workload rel err {rel}");
    }

    #[test]
    fn distinct_quantile_levels_use_distinct_pools() {
        let mut agent = SeaAgent::new(1, AgentConfig::default()).unwrap();
        let region = count_query(&[0.0], 1.0).region;
        let q25 = AnalyticalQuery::new(region.clone(), AggregateKind::Quantile { dim: 0, q: 0.25 });
        let q75 = AnalyticalQuery::new(region.clone(), AggregateKind::Quantile { dim: 0, q: 0.75 });
        agent.train(&q25, &AnswerValue::Scalar(10.0)).unwrap();
        agent.train(&q75, &AnswerValue::Scalar(90.0)).unwrap();
        assert_eq!(agent.stats().pools, 2, "different q = different pool");
    }

    #[test]
    fn subset_for_region_preserves_local_predictions() {
        let mut agent = SeaAgent::new(2, AgentConfig::default()).unwrap();
        // Two separated hotspots with different densities.
        for i in 0..120 {
            let e = 1.0 + (i % 12) as f64 / 6.0;
            let qa = count_query(&[20.0, 20.0], e);
            agent
                .train(&qa, &AnswerValue::Scalar(2.0 * qa.region.volume()))
                .unwrap();
            let qb = count_query(&[80.0, 80.0], e);
            agent
                .train(&qb, &AnswerValue::Scalar(9.0 * qb.region.volume()))
                .unwrap();
        }
        let region = Rect::new(vec![10.0, 10.0], vec![30.0, 30.0]).unwrap();
        let subset = agent.subset_for_region(&region).unwrap();
        assert!(subset.stats().quanta < agent.stats().quanta);
        assert!(subset.stats().memory_bytes < agent.stats().memory_bytes);
        // Inside the region: identical predictions.
        let probe = count_query(&[20.0, 20.0], 1.5);
        let a = agent.predict(&probe).unwrap();
        let b = subset.predict(&probe).unwrap();
        assert_eq!(a.answer, b.answer);
        // Outside: the subset honestly reports high error (or no pool).
        let far = count_query(&[80.0, 80.0], 1.5);
        match subset.predict(&far) {
            Ok(p) => assert!(p.estimated_error > agent.predict(&far).unwrap().estimated_error),
            Err(SeaError::Empty(_)) => {}
            Err(e) => panic!("unexpected {e}"),
        }
        // Shipping the subset costs fewer bytes.
        assert!(subset.to_json().unwrap().len() < agent.to_json().unwrap().len());
    }

    #[test]
    fn json_roundtrip_preserves_predictions() {
        let agent = trained_agent();
        let json = agent.to_json().unwrap();
        assert!(
            json.len() > 500,
            "non-trivial payload: {} bytes",
            json.len()
        );
        let back = SeaAgent::from_json(&json).unwrap();
        for e in [1.2, 1.8, 2.4] {
            let q = count_query(&[52.0, 50.0], e);
            let a = agent.predict(&q).unwrap();
            let b = back.predict(&q).unwrap();
            assert_eq!(a.answer, b.answer);
            assert!((a.estimated_error - b.estimated_error).abs() < 1e-12);
        }
        assert_eq!(agent.stats().quanta, back.stats().quanta);
        assert!(SeaAgent::from_json("{broken").is_err());
    }

    #[test]
    fn quantum_weights_expose_linear_explanation() {
        let agent = trained_agent();
        let q = count_query(&[52.0, 50.0], 1.5);
        let (weights, _) = agent.quantum_weights(&q).unwrap();
        assert_eq!(weights.len(), 5, "[cx, cy, ex, ey, volume]");
        // Count grows with volume → the volume weight should carry most of
        // the signal and be positive... combined with extents.
        let pairs = agent.quantum_pairs(&q);
        assert!(!pairs.is_empty());
    }
}
