//! # sea-core
//!
//! The paper's primary contribution: the **intelligent agent** that sits
//! between analysts and the big data system (Fig 2) and realizes *data-less
//! big data analytics* (principle P2).
//!
//! The agent:
//!
//! 1. **Quantizes the query space** (O1): incoming queries, embedded as
//!    geometry vectors, are clustered online into *quanta* representing
//!    analysts' current interest regions.
//! 2. **Models the answer space** (O2): each quantum carries incremental
//!    local models (recursive least squares over query geometry, plus a
//!    kNN fallback over raw training pairs) mapping query → answer.
//! 3. **Associates and predicts** (O3): an unseen query routes to its
//!    quantum and is answered from the local model, with an **error
//!    estimate** derived from the quantum's prequential residuals, so the
//!    system (or the analyst) "can choose to proceed with the predicted
//!    answer or to obtain an exact answer by accessing the base data"
//!    (RT1-3).
//! 4. **Maintains the models** (RT1-4): query-pattern drift moves and
//!    spawns/purges quanta; base-data updates invalidate the quanta whose
//!    subspaces they touch.
//! 5. **Explains answers** (RT4-2): every prediction can be accompanied by
//!    an [`explain::Explanation`] — a model of how the answer depends on
//!    the query's parameters, which the analyst can evaluate at arbitrary
//!    parameter settings instead of issuing more queries.
//! 6. **Answers higher-level interrogations** (RT4-1): e.g. "return the
//!    data subspaces where the correlation coefficient exceeds θ", swept
//!    entirely over predictions ([`interrogate`]).
//!
//! The full serving stack is assembled by [`pipeline::AgentPipeline`]:
//! an optional [`sea_cache::SemanticCache`] sits *in front of* the
//! predict-vs-exact branch ([`AgentPipeline::with_cache`]), so a cached
//! exact answer short-circuits both prediction and execution while
//! still feeding the agent a training example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod explain;
pub mod interrogate;
pub mod pipeline;

pub use agent::{AgentConfig, AgentStats, Prediction, SeaAgent};
pub use explain::Explanation;
pub use interrogate::{interesting_subspaces, SubspaceReport};
pub use pipeline::{AgentPipeline, AnswerSource, ExecMode, ProcessOutcome};
