//! The agent-in-front-of-the-system processing loop (Fig 2).
//!
//! Queries are submitted to the pipeline exactly as they would be to the
//! BDAS. The first queries are *training queries*: they execute exactly and
//! their answers train the agent. Once a query's quantum is confident (its
//! estimated error falls below the caller's threshold), the pipeline
//! answers from the model — "all future queries need not access any base
//! data" — while still falling back to exact execution whenever the error
//! estimate is too high (RT1-3).

use std::sync::Arc;

use sea_cache::SemanticCache;
use sea_common::{AnalyticalQuery, AnswerValue, CostReport, Result};
use sea_query::Executor;
use sea_telemetry::TelemetrySink;

use crate::agent::{AgentConfig, SeaAgent};

/// Which exact-execution regime the pipeline falls back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// MapReduce-style over all nodes through the full BDAS stack.
    Bdas,
    /// Coordinator–cohort with partition/block pruning.
    Direct,
}

/// Where an answer came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnswerSource {
    /// Served by the agent without touching base data.
    Predicted {
        /// The agent's error estimate at prediction time.
        estimated_error: f64,
    },
    /// Executed exactly against the base data (and used for training).
    Exact,
    /// Served by the semantic cache ([`AgentPipeline::with_cache`])
    /// without touching base data — and, like exact answers, used for
    /// training: cache hits are exact, so they feed the agent a free
    /// training example without re-execution.
    Cached,
    /// Exact execution failed and the pipeline served the agent's best
    /// available prediction instead (opt-in via
    /// [`AgentPipeline::with_degraded_fallback`]). Degraded answers are
    /// never used for training.
    Degraded {
        /// The agent's error estimate at prediction time — typically
        /// *above* the pipeline's threshold, which is why exact execution
        /// was attempted in the first place.
        estimated_error: f64,
    },
}

impl AnswerSource {
    /// Short stable provenance name: the grouping key used by cost
    /// ledgers and stats breakdowns (parameters like the error estimate
    /// are dropped so all predictions land in one `predicted` bucket).
    pub fn label(&self) -> &'static str {
        match self {
            AnswerSource::Predicted { .. } => "predicted",
            AnswerSource::Exact => "exact",
            AnswerSource::Cached => "cached",
            AnswerSource::Degraded { .. } => "degraded",
        }
    }
}

/// The outcome of one query through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessOutcome {
    /// The answer returned to the analyst.
    pub answer: AnswerValue,
    /// Resource bill (zero for predictions).
    pub cost: CostReport,
    /// Provenance of the answer.
    pub source: AnswerSource,
}

/// An agent bound to a table with an error-threshold policy.
#[derive(Debug)]
pub struct AgentPipeline {
    agent: SeaAgent,
    table: String,
    /// Predictions with estimated relative error above this threshold fall
    /// back to exact execution.
    error_threshold: f64,
    mode: ExecMode,
    /// Every `refresh_every`-th would-be prediction is executed exactly
    /// anyway and used for training — the model-error-maintenance audit
    /// (RT1-4/RT5-5) that keeps residual estimates honest and lets models
    /// keep improving after the training phase. 0 disables audits.
    refresh_every: u64,
    predictions_since_audit: u64,
    /// When exact execution fails (node down, injected fault) and the
    /// agent had produced a prediction, serve that prediction as a
    /// [`AnswerSource::Degraded`] answer instead of an error.
    degraded_fallback: bool,
    /// Semantic answer cache consulted *before* the predict-vs-exact
    /// branch; exact executions populate it.
    cache: Option<Arc<SemanticCache>>,
    telemetry: TelemetrySink,
}

impl AgentPipeline {
    /// Creates a pipeline over `table` with the given error threshold.
    ///
    /// # Errors
    ///
    /// Propagates agent-construction errors.
    pub fn new(
        dims: usize,
        config: AgentConfig,
        table: impl Into<String>,
        error_threshold: f64,
        mode: ExecMode,
    ) -> Result<Self> {
        Ok(AgentPipeline {
            agent: SeaAgent::new(dims, config)?,
            table: table.into(),
            error_threshold,
            mode,
            refresh_every: 8,
            predictions_since_audit: 0,
            degraded_fallback: false,
            cache: None,
            telemetry: TelemetrySink::default(),
        })
    }

    /// Sets the audit period: every `n`-th would-be prediction executes
    /// exactly and trains the agent (0 disables audits entirely).
    #[must_use]
    pub fn with_refresh_every(mut self, n: u64) -> Self {
        self.refresh_every = n;
        self
    }

    /// Opt-in graceful degradation: when exact execution fails but the
    /// agent had produced a prediction for the query (even one whose
    /// error estimate is above the threshold), the pipeline returns that
    /// prediction as an [`AnswerSource::Degraded`] answer instead of
    /// propagating the error. Degraded answers never train the agent, so
    /// a flaky cluster cannot poison the model. Off by default: failures
    /// surface as errors.
    #[must_use]
    pub fn with_degraded_fallback(mut self, on: bool) -> Self {
        self.degraded_fallback = on;
        self
    }

    /// Attaches a [`SemanticCache`] in front of the predict-vs-exact
    /// branch: every query consults the cache first, hits are served as
    /// [`AnswerSource::Cached`] (exact answers at cache-lookup cost) and
    /// *still train the agent* — a repeated workload keeps improving the
    /// model without ever re-executing — and every exact execution's
    /// answer is offered to the cache for cost-based admission. The
    /// cache is scoped to this pipeline's table.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<SemanticCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The attached semantic cache, if any.
    pub fn cache(&self) -> Option<&SemanticCache> {
        self.cache.as_deref()
    }

    /// Attaches a telemetry sink: `core.pipeline.process` spans plus
    /// `agent.predicted` / `agent.fallback` / `agent.trained` decision
    /// events flow into it (the inner agent is instrumented too).
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.agent.set_telemetry(sink.clone());
        self.telemetry = sink;
        self
    }

    /// The inner agent.
    pub fn agent(&self) -> &SeaAgent {
        &self.agent
    }

    /// Mutable access to the inner agent (e.g. for maintenance calls).
    pub fn agent_mut(&mut self) -> &mut SeaAgent {
        &mut self.agent
    }

    /// The error threshold.
    pub fn error_threshold(&self) -> f64 {
        self.error_threshold
    }

    /// Processes one query: predict if confident, otherwise execute
    /// exactly and learn from the answer.
    ///
    /// # Errors
    ///
    /// Exact-execution errors (missing table, operators undefined on empty
    /// subspaces, …). Queries whose exact execution fails do not train the
    /// agent.
    pub fn process(
        &mut self,
        executor: &Executor<'_>,
        query: &AnalyticalQuery,
    ) -> Result<ProcessOutcome> {
        let span = self.telemetry.span("core.pipeline.process");
        let ctx = span.ctx();
        if let Some(cache) = &self.cache {
            let probe = executor.clone().with_cache(cache);
            if let Some(Ok(outcome)) = probe.cache_lookup(query) {
                // A cache hit is an exact answer obtained without base
                // data: serve it *and* learn from it, exactly like a
                // free exact execution. (An `Err` from a containment
                // re-derivation — operator undefined on the empty
                // sub-selection — falls through to the normal path,
                // which owns error handling and degraded fallback.)
                if self.telemetry.is_enabled() {
                    span.tag("branch", "cached");
                }
                span.record_sim_us(outcome.cost.wall_us);
                self.agent.train(query, &outcome.answer)?;
                self.telemetry.event(
                    "agent.cached",
                    &[(
                        "training_queries",
                        self.agent.stats().training_queries.into(),
                    )],
                );
                return Ok(ProcessOutcome {
                    answer: outcome.answer,
                    cost: outcome.cost,
                    source: AnswerSource::Cached,
                });
            }
        }
        let mut fallback_reason = "untrained";
        // −1 = the agent produced no estimate at all (kept finite so the
        // payload survives JSON round-trips).
        let mut fallback_est_error = -1.0;
        let prediction = self.agent.predict(query).ok();
        if let Some(pred) = &prediction {
            let audit_due =
                self.refresh_every > 0 && self.predictions_since_audit + 1 >= self.refresh_every;
            if pred.estimated_error <= self.error_threshold && !audit_due {
                self.predictions_since_audit += 1;
                if self.telemetry.is_enabled() {
                    span.tag("branch", "predicted");
                    let predict_span = self.telemetry.span_child_of(&ctx, "core.pipeline.predict");
                    predict_span.tag("est_error", pred.estimated_error);
                    predict_span.tag("quantum", pred.quantum);
                }
                self.telemetry.event(
                    "agent.predicted",
                    &[
                        ("est_error", pred.estimated_error.into()),
                        ("threshold", self.error_threshold.into()),
                        ("quantum", pred.quantum.into()),
                        ("quantum_training", pred.quantum_training.into()),
                    ],
                );
                return Ok(ProcessOutcome {
                    answer: pred.answer,
                    cost: CostReport::zero(),
                    source: AnswerSource::Predicted {
                        estimated_error: pred.estimated_error,
                    },
                });
            }
            fallback_reason = if audit_due {
                "audit_due"
            } else {
                "error_above_threshold"
            };
            fallback_est_error = pred.estimated_error;
        }
        if self.telemetry.is_enabled() {
            span.tag("branch", "exact");
            span.tag("fallback_reason", fallback_reason);
        }
        self.telemetry.event(
            "agent.fallback",
            &[
                ("reason", fallback_reason.into()),
                ("est_error", fallback_est_error.into()),
                ("threshold", self.error_threshold.into()),
            ],
        );
        self.predictions_since_audit = 0;
        // Populate-only: the pipeline already consulted the cache above,
        // so the executor must not count a second lookup, but its exact
        // answer (with per-node fragments) should be offered for
        // admission.
        let cached_exec;
        let exec_ref = match &self.cache {
            Some(cache) => {
                cached_exec = executor.clone().with_cache_populate_only(cache);
                &cached_exec
            }
            None => executor,
        };
        // The executor's span tree (scatter → per-node scans → gather)
        // hangs under this pipeline span via the explicit trace parent.
        let exact = match self.mode {
            ExecMode::Bdas => exec_ref.execute_bdas_traced(&self.table, query, &ctx),
            ExecMode::Direct => exec_ref.execute_direct_traced(&self.table, query, &ctx),
        };
        let outcome = match exact {
            Ok(outcome) => outcome,
            Err(err) => {
                if let (true, Some(pred)) = (self.degraded_fallback, prediction) {
                    if self.telemetry.is_enabled() {
                        span.tag("branch", "degraded");
                    }
                    self.telemetry.incr("query.degraded", 1);
                    self.telemetry.event(
                        "agent.degraded",
                        &[
                            ("est_error", pred.estimated_error.into()),
                            ("error", err.to_string().into()),
                        ],
                    );
                    return Ok(ProcessOutcome {
                        answer: pred.answer,
                        cost: CostReport::zero(),
                        source: AnswerSource::Degraded {
                            estimated_error: pred.estimated_error,
                        },
                    });
                }
                return Err(err);
            }
        };
        span.record_sim_us(outcome.cost.wall_us);
        self.agent.train(query, &outcome.answer)?;
        self.telemetry.event(
            "agent.trained",
            &[(
                "training_queries",
                self.agent.stats().training_queries.into(),
            )],
        );
        Ok(ProcessOutcome {
            answer: outcome.answer,
            cost: outcome.cost,
            source: AnswerSource::Exact,
        })
    }

    /// Processes a batch of queries, fanning the exact-execution
    /// fallbacks out across the executor's [`sea_query::ExecPool`] — the
    /// shape batched analytics workloads actually have, and where the
    /// pipeline's wall-clock is actually spent (predictions are free).
    ///
    /// Semantics relative to a sequential [`AgentPipeline::process`]
    /// loop: predict-vs-exact decisions are made **sequentially in query
    /// order against the batch-start model state** (audit cadence
    /// included), then all fallbacks execute concurrently, then their
    /// answers train the agent sequentially in query order. Training is
    /// thus deferred to the batch boundary: a query in this batch never
    /// sees a model improved by an earlier query of the same batch.
    /// Every decision, event, and answer is deterministic and
    /// independent of the pool's thread count.
    ///
    /// Each returned entry is exactly aligned with `queries`; failed
    /// exact executions surface as errors in their slot and do not train
    /// the agent.
    pub fn process_batch(
        &mut self,
        executor: &Executor<'_>,
        queries: &[AnalyticalQuery],
    ) -> Vec<Result<ProcessOutcome>> {
        let batch_span = self.telemetry.span("core.pipeline.batch");
        batch_span.tag("queries", queries.len());
        let ctx = batch_span.ctx();

        // Phase 1 — sequential decisions in query order (deterministic
        // event stream, same audit cadence as `process`). Cache lookups
        // happen here, on the coordinator, so hit/miss classification is
        // independent of the pool's thread count.
        enum Planned {
            Predicted(ProcessOutcome),
            /// Answered by the semantic cache; trains in phase 3.
            Cached(ProcessOutcome),
            /// Exact execution pending; carries the (unconfident)
            /// prediction, if any, so a failed execution can degrade to
            /// it instead of erroring when the pipeline opts in.
            Exact(Option<(AnswerValue, f64)>),
        }
        let probe = self
            .cache
            .as_ref()
            .map(|cache| executor.clone().with_cache(cache));
        let mut plan: Vec<Planned> = Vec::with_capacity(queries.len());
        let mut pending: Vec<usize> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            if let Some(probe) = &probe {
                if let Some(Ok(outcome)) = probe.cache_lookup(query) {
                    plan.push(Planned::Cached(ProcessOutcome {
                        answer: outcome.answer,
                        cost: outcome.cost,
                        source: AnswerSource::Cached,
                    }));
                    continue;
                }
            }
            let mut fallback_reason = "untrained";
            let mut fallback_est_error = -1.0;
            let mut fallback_pred = None;
            let mut planned = None;
            if let Ok(pred) = self.agent.predict(query) {
                let audit_due = self.refresh_every > 0
                    && self.predictions_since_audit + 1 >= self.refresh_every;
                if pred.estimated_error <= self.error_threshold && !audit_due {
                    self.predictions_since_audit += 1;
                    self.telemetry.event(
                        "agent.predicted",
                        &[
                            ("est_error", pred.estimated_error.into()),
                            ("threshold", self.error_threshold.into()),
                            ("quantum", pred.quantum.into()),
                            ("quantum_training", pred.quantum_training.into()),
                        ],
                    );
                    planned = Some(Planned::Predicted(ProcessOutcome {
                        answer: pred.answer,
                        cost: CostReport::zero(),
                        source: AnswerSource::Predicted {
                            estimated_error: pred.estimated_error,
                        },
                    }));
                } else {
                    fallback_reason = if audit_due {
                        "audit_due"
                    } else {
                        "error_above_threshold"
                    };
                    fallback_est_error = pred.estimated_error;
                    fallback_pred = Some((pred.answer, pred.estimated_error));
                }
            }
            plan.push(planned.unwrap_or_else(|| {
                self.telemetry.event(
                    "agent.fallback",
                    &[
                        ("reason", fallback_reason.into()),
                        ("est_error", fallback_est_error.into()),
                        ("threshold", self.error_threshold.into()),
                    ],
                );
                self.predictions_since_audit = 0;
                pending.push(i);
                Planned::Exact(fallback_pred)
            }));
        }

        // Phase 2 — concurrent exact execution of the fallbacks. Each
        // query's executor span tree attaches under the batch span from
        // its worker thread.
        let mode = self.mode;
        let table = self.table.clone();
        // Cache-less workers: concurrent admissions would make the
        // cache's contents schedule-dependent. Successful answers are
        // admitted sequentially in phase 3 instead (answer-only — the
        // fragments stay on the workers).
        let inner = executor
            .clone()
            .with_pool(sea_query::ExecPool::sequential())
            .without_cache();
        let exact_outcomes = executor.pool().run(pending.len(), |j| {
            let query = &queries[pending[j]];
            match mode {
                ExecMode::Bdas => inner.execute_bdas_traced(&table, query, &ctx),
                ExecMode::Direct => inner.execute_direct_traced(&table, query, &ctx),
            }
        });

        // Phase 3 — sequential training in query order.
        let mut exact_iter = exact_outcomes.into_iter();
        plan.into_iter()
            .zip(queries)
            .map(|(planned, query)| match planned {
                Planned::Predicted(outcome) => Ok(outcome),
                Planned::Cached(outcome) => {
                    self.agent.train(query, &outcome.answer)?;
                    self.telemetry.event(
                        "agent.cached",
                        &[(
                            "training_queries",
                            self.agent.stats().training_queries.into(),
                        )],
                    );
                    Ok(outcome)
                }
                Planned::Exact(pred) => {
                    let outcome = match exact_iter.next().expect("one result per pending query") {
                        Ok(outcome) => outcome,
                        Err(err) => {
                            if let (true, Some((answer, estimated_error))) =
                                (self.degraded_fallback, pred)
                            {
                                self.telemetry.incr("query.degraded", 1);
                                self.telemetry.event(
                                    "agent.degraded",
                                    &[
                                        ("est_error", estimated_error.into()),
                                        ("error", err.to_string().into()),
                                    ],
                                );
                                return Ok(ProcessOutcome {
                                    answer,
                                    cost: CostReport::zero(),
                                    source: AnswerSource::Degraded { estimated_error },
                                });
                            }
                            return Err(err);
                        }
                    };
                    self.agent.train(query, &outcome.answer)?;
                    self.telemetry.event(
                        "agent.trained",
                        &[(
                            "training_queries",
                            self.agent.stats().training_queries.into(),
                        )],
                    );
                    if let Some(cache) = &self.cache {
                        cache.admit(
                            &query.aggregate,
                            &query.region,
                            &outcome.answer,
                            None,
                            outcome.cost.wall_us,
                        );
                    }
                    Ok(ProcessOutcome {
                        answer: outcome.answer,
                        cost: outcome.cost,
                        source: AnswerSource::Exact,
                    })
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{AggregateKind, Point, Record, Rect, Region};
    use sea_storage::{Partitioning, StorageCluster};

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 64);
        // Uniform-ish lattice: density 1 per unit².
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn query(cx: f64, cy: f64, e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, cy]), &[e, e]).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn pipeline_transitions_from_exact_to_predicted() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();

        let mut exact = 0;
        let mut predicted = 0;
        for i in 0..200 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            let q = query(50.0 + (i % 3) as f64, 50.0, e);
            let out = pipe.process(&exec, &q).unwrap();
            match out.source {
                AnswerSource::Exact => exact += 1,
                AnswerSource::Predicted { .. } => {
                    predicted += 1;
                    assert_eq!(out.cost, CostReport::zero());
                }
                AnswerSource::Degraded { .. } => panic!("no faults injected"),
                AnswerSource::Cached => panic!("no cache attached"),
            }
        }
        assert!(
            predicted > 100,
            "mostly predicted after warmup: {predicted}"
        );
        assert!(exact >= 8, "training phase happened: {exact}");
    }

    #[test]
    fn predictions_are_accurate_after_training() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.2, ExecMode::Direct).unwrap();
        for i in 0..200 {
            let e = 3.0 + (i % 20) as f64 * 0.3;
            pipe.process(&exec, &query(50.0, 50.0, e)).unwrap();
        }
        // Probe with fresh queries and compare against ground truth.
        let mut total_rel = 0.0;
        let mut n = 0;
        for i in 0..20 {
            let e = 3.1 + i as f64 * 0.25;
            let q = query(50.0, 50.0, e);
            let out = pipe.process(&exec, &q).unwrap();
            let truth = exec.execute_direct("t", &q).unwrap().answer;
            total_rel += out.answer.relative_error(&truth);
            n += 1;
        }
        let mean_rel = total_rel / n as f64;
        assert!(mean_rel < 0.2, "mean relative error {mean_rel}");
    }

    #[test]
    fn zero_threshold_never_predicts() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Bdas).unwrap();
        for i in 0..30 {
            let out = pipe
                .process(&exec, &query(50.0, 50.0, 3.0 + (i % 5) as f64 * 0.2))
                .unwrap();
            assert_eq!(out.source, AnswerSource::Exact);
            assert!(out.cost.wall_us > 0.0);
        }
    }

    #[test]
    fn spans_tag_the_branch_and_propagate_the_trace() {
        use sea_telemetry::{FieldValue, TelemetrySink};
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
            .unwrap()
            .with_telemetry(sink.clone());
        for i in 0..60u64 {
            sink.begin_query(i);
            pipe.process(&exec, &query(50.0, 50.0, 3.0 + (i % 10) as f64 * 0.2))
                .unwrap();
        }
        let snap = sink.snapshot().unwrap();
        let branch = |r: &&sea_telemetry::SpanNode, want: &str| matches!(r.tag("branch"), Some(FieldValue::Str(s)) if s == want);
        let exact = snap
            .spans
            .roots
            .iter()
            .find(|r| branch(r, "exact"))
            .expect("at least one exact query");
        let exec_span = exact
            .find("query.executor.direct")
            .expect("executor tree under the pipeline span");
        assert_eq!(exec_span.trace_id, exact.trace_id);
        assert_eq!(exec_span.parent_span_id, exact.span_id);
        assert!(
            exact.find("storage.node.scan").is_some(),
            "trace reaches storage"
        );
        let predicted = snap
            .spans
            .roots
            .iter()
            .find(|r| branch(r, "predicted"))
            .expect("at least one predicted query");
        assert!(predicted.find("core.pipeline.predict").is_some());
        assert!(
            predicted.find("storage.node.scan").is_none(),
            "predictions touch no base data"
        );
    }

    #[test]
    fn batch_processing_is_deterministic_across_pool_sizes() {
        use sea_query::ExecPool;
        let c = cluster();
        let queries: Vec<AnalyticalQuery> = (0..60)
            .map(|i| query(50.0 + (i % 3) as f64, 50.0, 3.0 + (i % 20) as f64 * 0.3))
            .collect();
        let run = |threads: usize| {
            let exec = Executor::new(&c).with_pool(ExecPool::new(threads));
            let mut pipe =
                AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();
            let outcomes = pipe.process_batch(&exec, &queries);
            (
                outcomes
                    .into_iter()
                    .map(|r| format!("{r:?}"))
                    .collect::<Vec<_>>(),
                pipe.agent().stats().training_queries,
            )
        };
        let (base, trained) = run(1);
        assert!(trained > 0, "fresh pipeline trained on the batch");
        for threads in [2, 8] {
            assert_eq!(run(threads), (base.clone(), trained), "{threads} threads");
        }
    }

    #[test]
    fn batch_matches_sequential_processing_between_training_rounds() {
        // With training deferred to the batch boundary, a batch whose
        // decisions don't depend on intra-batch learning (here: a warmed
        // pipeline with audits disabled) must match the sequential loop
        // outcome for outcome.
        let c = cluster();
        let exec = Executor::new(&c);
        let queries: Vec<AnalyticalQuery> = (0..30)
            .map(|i| query(50.0, 50.0, 3.0 + (i % 10) as f64 * 0.3))
            .collect();
        let warmed = || {
            let mut pipe =
                AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct)
                    .unwrap()
                    .with_refresh_every(0);
            for q in &queries {
                pipe.process(&exec, q).unwrap();
            }
            pipe
        };
        let mut seq = warmed();
        let mut batched = warmed();
        let sequential: Vec<ProcessOutcome> = queries
            .iter()
            .map(|q| seq.process(&exec, q).unwrap())
            .collect();
        let batch: Vec<ProcessOutcome> = batched
            .process_batch(&exec, &queries)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(batch, sequential);
        assert!(
            batch
                .iter()
                .any(|o| matches!(o.source, AnswerSource::Predicted { .. })),
            "warmed pipeline predicts"
        );
    }

    #[test]
    fn batch_errors_stay_in_their_slot_and_skip_training() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();
        // Median over an empty region errors; its neighbours must not.
        let bad = AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![5000.0, 5000.0]), &[1.0, 1.0]).unwrap()),
            AggregateKind::Median { dim: 0 },
        );
        let queries = vec![query(50.0, 50.0, 4.0), bad, query(52.0, 50.0, 4.0)];
        let outcomes = pipe.process_batch(&exec, &queries);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        assert!(outcomes[2].is_ok());
        assert_eq!(
            pipe.agent().stats().training_queries,
            2,
            "the failed query must not train the agent"
        );
    }

    #[test]
    fn degraded_fallback_serves_predictions_when_exact_execution_fails() {
        use sea_storage::FaultPlan;
        use sea_telemetry::TelemetrySink;
        let c = cluster();
        let exec = Executor::new(&c);
        let sink = TelemetrySink::recording();
        // Threshold 0 keeps every query on the exact path while the agent
        // still produces (unconfident) predictions after warmup.
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Bdas)
            .unwrap()
            .with_degraded_fallback(true)
            .with_telemetry(sink.clone());
        for i in 0..40 {
            pipe.process(&exec, &query(50.0, 50.0, 3.0 + (i % 10) as f64 * 0.3))
                .unwrap();
        }
        let trained = pipe.agent().stats().training_queries;

        // Same data, but node 0 crashes on its first scan and there are
        // no replicas: exact execution fails.
        let mut faulted = cluster();
        faulted.set_fault_plan(FaultPlan::new(7).with_crash(0, 0));
        let exec2 = Executor::new(&faulted);
        let out = pipe.process(&exec2, &query(50.0, 50.0, 4.0)).unwrap();
        assert!(
            matches!(out.source, AnswerSource::Degraded { .. }),
            "served the model's answer: {:?}",
            out.source
        );
        assert_eq!(out.cost, CostReport::zero());
        assert_eq!(
            pipe.agent().stats().training_queries,
            trained,
            "degraded answers never train the agent"
        );
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("query.degraded"), 1);
        assert_eq!(snap.event_count("agent.degraded"), 1);

        // Without the opt-in the same failure is an error.
        let mut strict =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Bdas).unwrap();
        for i in 0..40 {
            strict
                .process(&exec, &query(50.0, 50.0, 3.0 + (i % 10) as f64 * 0.3))
                .unwrap();
        }
        assert!(strict.process(&exec2, &query(50.0, 50.0, 4.0)).is_err());
    }

    #[test]
    fn batch_degraded_fallback_stays_in_its_slot() {
        use sea_storage::FaultPlan;
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Bdas)
            .unwrap()
            .with_degraded_fallback(true);
        for i in 0..40 {
            pipe.process(&exec, &query(50.0, 50.0, 3.0 + (i % 10) as f64 * 0.3))
                .unwrap();
        }
        let trained = pipe.agent().stats().training_queries;
        let mut faulted = cluster();
        faulted.set_fault_plan(FaultPlan::new(7).with_crash(0, 0));
        let exec2 = Executor::new(&faulted);
        let queries = vec![query(50.0, 50.0, 4.0), query(52.0, 50.0, 4.0)];
        let outcomes = pipe.process_batch(&exec2, &queries);
        for out in &outcomes {
            let out = out.as_ref().expect("degraded, not failed");
            assert!(matches!(out.source, AnswerSource::Degraded { .. }));
        }
        assert_eq!(
            pipe.agent().stats().training_queries,
            trained,
            "degraded answers never train the agent"
        );
    }

    #[test]
    fn cache_hits_serve_and_train_without_reexecution() {
        use sea_cache::{CacheConfig, CacheStats, SemanticCache};
        let c = cluster();
        let exec = Executor::new(&c);
        let cache = Arc::new(SemanticCache::new(CacheConfig {
            admit_min_cost_us: 0.0,
            ..CacheConfig::default()
        }));
        // Threshold 0: the agent never predicts, isolating the cache.
        let mut pipe = AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Direct)
            .unwrap()
            .with_cache(Arc::clone(&cache));
        let q = query(50.0, 50.0, 5.0);
        let cold = pipe.process(&exec, &q).unwrap();
        assert_eq!(cold.source, AnswerSource::Exact);
        let trained_after_cold = pipe.agent().stats().training_queries;

        // Identical repeat: exact hit, same answer, cheaper, trains.
        let hot = pipe.process(&exec, &q).unwrap();
        assert_eq!(hot.source, AnswerSource::Cached);
        assert_eq!(hot.answer, cold.answer);
        assert!(hot.cost.wall_us < cold.cost.wall_us);
        assert_eq!(
            pipe.agent().stats().training_queries,
            trained_after_cold + 1,
            "cache hits feed training examples without re-execution"
        );

        // Contained repeat: served from the cached fragments,
        // bit-identical to what a cold execution would answer.
        let small = query(50.0, 50.0, 2.0);
        let want = exec.execute_direct("t", &small).unwrap().answer;
        let contained = pipe.process(&exec, &small).unwrap();
        assert_eq!(contained.source, AnswerSource::Cached);
        assert_eq!(contained.answer, want);
        let CacheStats {
            hits,
            containment_hits,
            ..
        } = cache.stats();
        assert_eq!((hits, containment_hits), (1, 1));
    }

    #[test]
    fn batch_consults_and_populates_the_cache_deterministically() {
        use sea_cache::{CacheConfig, SemanticCache};
        use sea_query::ExecPool;
        let c = cluster();
        let queries: Vec<AnalyticalQuery> = (0..12)
            .map(|i| query(50.0, 50.0, 3.0 + (i % 4) as f64))
            .collect();
        let run = |threads: usize| {
            let exec = Executor::new(&c).with_pool(ExecPool::new(threads));
            let cache = Arc::new(SemanticCache::new(CacheConfig {
                admit_min_cost_us: 0.0,
                ..CacheConfig::default()
            }));
            let mut pipe =
                AgentPipeline::new(2, AgentConfig::default(), "t", 0.0, ExecMode::Direct)
                    .unwrap()
                    .with_cache(Arc::clone(&cache));
            let first: Vec<String> = pipe
                .process_batch(&exec, &queries)
                .into_iter()
                .map(|r| format!("{r:?}"))
                .collect();
            let second: Vec<ProcessOutcome> = pipe
                .process_batch(&exec, &queries)
                .into_iter()
                .map(Result::unwrap)
                .collect();
            assert!(
                second.iter().all(|o| o.source == AnswerSource::Cached),
                "the repeated batch is answered from the cache"
            );
            (first, format!("{second:?}"), cache.stats())
        };
        let base = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), base, "{threads} threads");
        }
    }

    #[test]
    fn missing_table_propagates() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "nope", 0.1, ExecMode::Direct).unwrap();
        assert!(pipe.process(&exec, &query(0.0, 0.0, 1.0)).is_err());
    }

    #[test]
    fn novel_region_falls_back_to_exact() {
        let c = cluster();
        let exec = Executor::new(&c);
        let mut pipe =
            AgentPipeline::new(2, AgentConfig::default(), "t", 0.15, ExecMode::Direct).unwrap();
        for i in 0..100 {
            pipe.process(&exec, &query(30.0, 30.0, 3.0 + (i % 10) as f64 * 0.2))
                .unwrap();
        }
        // A query in a completely different region: the distance penalty
        // must push it back to exact execution.
        let out = pipe.process(&exec, &query(90.0, 90.0, 3.0)).unwrap();
        assert_eq!(out.source, AnswerSource::Exact);
    }
}
