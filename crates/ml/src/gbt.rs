//! Gradient-boosted regression trees ("XGBoost-lite", after \[41\] and \[42\]).
//!
//! Least-squares boosting: each round fits a depth-limited regression tree
//! to the current residuals and adds it with shrinkage. Used by the
//! inference-model selection experiments (RT3-3 / E14) as the
//! high-capacity alternative to linear and kNN models.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

use crate::Regressor;

/// Boosting hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Maximum tree depth (1 = stumps).
    pub max_depth: usize,
    /// Shrinkage / learning rate in `(0, 1]`.
    pub learning_rate: f64,
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
}

impl Default for GbtParams {
    fn default() -> Self {
        GbtParams {
            n_trees: 100,
            max_depth: 3,
            learning_rate: 0.1,
            min_leaf: 2,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum TreeNode {
    Leaf(f64),
    Split {
        dim: usize,
        threshold: f64,
        left: Box<TreeNode>,
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            TreeNode::Leaf(v) => *v,
            TreeNode::Split {
                dim,
                threshold,
                left,
                right,
            } => {
                if x[*dim] <= *threshold {
                    left.predict(x)
                } else {
                    right.predict(x)
                }
            }
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    base: f64,
    trees: Vec<TreeNode>,
    learning_rate: f64,
    dims: usize,
}

impl GradientBoostedTrees {
    /// Fits an ensemble on rows `xs` with targets `ys`.
    ///
    /// # Errors
    ///
    /// Empty input, mismatched lengths/dimensions, or invalid parameters.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &GbtParams) -> Result<Self> {
        let Some(first) = xs.first() else {
            return Err(SeaError::Empty("GBT fit with no rows".into()));
        };
        SeaError::check_dims(xs.len(), ys.len())?;
        let dims = first.len();
        for x in xs {
            SeaError::check_dims(dims, x.len())?;
        }
        if params.n_trees == 0 || params.max_depth == 0 {
            return Err(SeaError::invalid("n_trees and max_depth must be positive"));
        }
        if !(params.learning_rate > 0.0 && params.learning_rate <= 1.0) {
            return Err(SeaError::invalid("learning_rate must be in (0, 1]"));
        }
        let min_leaf = params.min_leaf.max(1);

        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();
        let mut trees = Vec::with_capacity(params.n_trees);
        let idx: Vec<usize> = (0..xs.len()).collect();

        for _ in 0..params.n_trees {
            let tree = build_tree(xs, &residuals, &idx, params.max_depth, min_leaf);
            for (i, x) in xs.iter().enumerate() {
                residuals[i] -= params.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        Ok(GradientBoostedTrees {
            base,
            trees,
            learning_rate: params.learning_rate,
            dims,
        })
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

impl Regressor for GradientBoostedTrees {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.base;
        for t in &self.trees {
            acc += self.learning_rate * t.predict(x);
        }
        acc
    }
}

/// Builds one variance-reduction regression tree over `rows` (indices into
/// `xs`/`targets`).
#[allow(clippy::needless_range_loop)] // dim indexes several parallel arrays
fn build_tree(
    xs: &[Vec<f64>],
    targets: &[f64],
    rows: &[usize],
    depth: usize,
    min_leaf: usize,
) -> TreeNode {
    let mean = rows.iter().map(|&i| targets[i]).sum::<f64>() / rows.len().max(1) as f64;
    if depth == 0 || rows.len() < 2 * min_leaf {
        return TreeNode::Leaf(mean);
    }

    let dims = xs[rows[0]].len();
    let base_sse: f64 = rows
        .iter()
        .map(|&i| {
            let e = targets[i] - mean;
            e * e
        })
        .sum();

    let mut best: Option<(usize, f64, f64)> = None; // (dim, threshold, sse)
    let mut sorted = rows.to_vec();
    for dim in 0..dims {
        sorted.sort_by(|&a, &b| {
            xs[a][dim]
                .partial_cmp(&xs[b][dim])
                .expect("finite features")
        });
        // Prefix sums for O(1) split evaluation.
        let mut prefix_sum = 0.0;
        let mut prefix_sq = 0.0;
        let total_sum: f64 = sorted.iter().map(|&i| targets[i]).sum();
        let total_sq: f64 = sorted.iter().map(|&i| targets[i] * targets[i]).sum();
        for (pos, &i) in sorted.iter().enumerate() {
            prefix_sum += targets[i];
            prefix_sq += targets[i] * targets[i];
            let n_left = pos + 1;
            let n_right = sorted.len() - n_left;
            if n_left < min_leaf || n_right < min_leaf {
                continue;
            }
            // Skip ties: can't split between equal feature values.
            if xs[i][dim] == xs[sorted[pos + 1]][dim] {
                continue;
            }
            let left_sse = prefix_sq - prefix_sum * prefix_sum / n_left as f64;
            let right_sum = total_sum - prefix_sum;
            let right_sse = (total_sq - prefix_sq) - right_sum * right_sum / n_right as f64;
            let sse = left_sse + right_sse;
            if best.map_or(sse < base_sse - 1e-12, |(_, _, b)| sse < b) {
                let threshold = (xs[i][dim] + xs[sorted[pos + 1]][dim]) / 2.0;
                best = Some((dim, threshold, sse));
            }
        }
    }

    let Some((dim, threshold, _)) = best else {
        return TreeNode::Leaf(mean);
    };
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&i| xs[i][dim] <= threshold);
    TreeNode::Split {
        dim,
        threshold,
        left: Box::new(build_tree(xs, targets, &left_rows, depth - 1, min_leaf)),
        right: Box::new(build_tree(xs, targets, &right_rows, depth - 1, min_leaf)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![(i % 20) as f64, (i / 20) as f64])
            .collect()
    }

    #[test]
    fn fits_step_function() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 100.0 { 1.0 } else { 9.0 })
            .collect();
        let m = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbtParams {
                n_trees: 20,
                max_depth: 2,
                learning_rate: 0.5,
                min_leaf: 2,
            },
        )
        .unwrap();
        assert!((m.predict(&[50.0]) - 1.0).abs() < 0.2);
        assert!((m.predict(&[150.0]) - 9.0).abs() < 0.2);
    }

    #[test]
    fn fits_nonlinear_surface_better_than_mean() {
        let xs = grid_xy(400);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        let m = GradientBoostedTrees::fit(&xs, &ys, &GbtParams::default()).unwrap();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mse_model: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (m.predict(x) - y).powi(2))
            .sum::<f64>()
            / ys.len() as f64;
        let mse_mean: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / ys.len() as f64;
        assert!(
            mse_model < mse_mean / 10.0,
            "model {mse_model} vs mean {mse_mean}"
        );
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 10.0).collect();
        let small = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbtParams {
                n_trees: 5,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let large = GradientBoostedTrees::fit(
            &xs,
            &ys,
            &GbtParams {
                n_trees: 200,
                ..GbtParams::default()
            },
        )
        .unwrap();
        let mse = |m: &GradientBoostedTrees| {
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (m.predict(x) - y).powi(2))
                .sum::<f64>()
                / ys.len() as f64
        };
        assert!(mse(&large) < mse(&small) / 2.0);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let xs = grid_xy(50);
        let ys = vec![42.0; 50];
        let m = GradientBoostedTrees::fit(&xs, &ys, &GbtParams::default()).unwrap();
        assert!((m.predict(&[3.0, 1.0]) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn validations() {
        let xs = vec![vec![1.0]];
        assert!(GradientBoostedTrees::fit(&[], &[], &GbtParams::default()).is_err());
        assert!(GradientBoostedTrees::fit(&xs, &[1.0, 2.0], &GbtParams::default()).is_err());
        assert!(GradientBoostedTrees::fit(
            &xs,
            &[1.0],
            &GbtParams {
                n_trees: 0,
                ..GbtParams::default()
            }
        )
        .is_err());
        assert!(GradientBoostedTrees::fit(
            &xs,
            &[1.0],
            &GbtParams {
                learning_rate: 0.0,
                ..GbtParams::default()
            }
        )
        .is_err());
    }

    #[test]
    fn duplicate_feature_values_do_not_split_ties() {
        let xs = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![1.0, 2.0, 3.0, 4.0];
        let m = GradientBoostedTrees::fit(&xs, &ys, &GbtParams::default()).unwrap();
        assert!(
            (m.predict(&[1.0]) - 2.5).abs() < 1e-9,
            "no valid split; mean"
        );
    }
}
