//! Piecewise-linear 1-D regression: the representation of query-answer
//! *explanations* (RT4-2).
//!
//! The paper proposes that instead of a single scalar, an answer should be
//! accompanied by "a (piecewise) linear regression model showing how [the
//! answer] depends on the size of the subspace", which the analyst can
//! evaluate at arbitrary parameter values. This module fits such models by
//! greedy recursive splitting: split where the two-segment OLS fit reduces
//! squared error the most, stop when the reduction is below a tolerance or
//! segments would get too small.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// One linear segment over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Inclusive lower edge of the segment's domain.
    pub lo: f64,
    /// Exclusive upper edge (inclusive for the last segment).
    pub hi: f64,
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
}

impl Segment {
    /// Evaluates the segment's line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A fitted piecewise-linear function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    segments: Vec<Segment>,
}

impl PiecewiseLinear {
    /// Fits a piecewise-linear model to `(x, y)` pairs.
    ///
    /// * `max_segments` caps the number of segments.
    /// * `min_points` is the minimum number of points per segment.
    /// * Splitting stops early when the best split reduces total squared
    ///   error by less than `tolerance` (absolute).
    ///
    /// # Errors
    ///
    /// Fewer than 2 points, mismatched lengths, or zero `max_segments`.
    pub fn fit(
        xs: &[f64],
        ys: &[f64],
        max_segments: usize,
        min_points: usize,
        tolerance: f64,
    ) -> Result<Self> {
        SeaError::check_dims(xs.len(), ys.len())?;
        if xs.len() < 2 {
            return Err(SeaError::Empty(
                "piecewise fit needs at least 2 points".into(),
            ));
        }
        if max_segments == 0 {
            return Err(SeaError::invalid("max_segments must be positive"));
        }
        let min_points = min_points.max(2);
        let mut pairs: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        // total_cmp (NaN-safe) with a y tie-break: duplicate x values keep
        // a deterministic order, so segment cuts don't depend on input order.
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));

        // Recursive greedy splitting over index ranges.
        let mut ranges = vec![(0usize, pairs.len())];
        loop {
            if ranges.len() >= max_segments {
                break;
            }
            // Find the range whose best split helps most.
            let mut best: Option<(usize, usize, f64)> = None; // (range idx, split at, gain)
            for (ri, &(s, e)) in ranges.iter().enumerate() {
                let base_err = sse(&pairs[s..e]);
                if e - s < 2 * min_points {
                    continue;
                }
                for cut in (s + min_points)..=(e - min_points) {
                    let err = sse(&pairs[s..cut]) + sse(&pairs[cut..e]);
                    let gain = base_err - err;
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((ri, cut, gain));
                    }
                }
            }
            match best {
                Some((ri, cut, gain)) if gain > tolerance => {
                    let (s, e) = ranges[ri];
                    ranges[ri] = (s, cut);
                    ranges.insert(ri + 1, (cut, e));
                }
                _ => break,
            }
        }
        ranges.sort_unstable();

        let mut segments = Vec::with_capacity(ranges.len());
        for (i, &(s, e)) in ranges.iter().enumerate() {
            let (slope, intercept) = ols(&pairs[s..e]);
            let lo = if i == 0 {
                f64::NEG_INFINITY
            } else {
                pairs[s].0
            };
            let hi = if i == ranges.len() - 1 {
                f64::INFINITY
            } else {
                pairs[e].0
            };
            segments.push(Segment {
                lo,
                hi,
                slope,
                intercept,
            });
        }
        Ok(PiecewiseLinear { segments })
    }

    /// The fitted segments, ascending in domain.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Evaluates the model at `x` (extrapolating with the edge segments).
    pub fn eval(&self, x: f64) -> f64 {
        for s in &self.segments {
            if x < s.hi {
                return s.eval(x);
            }
        }
        self.segments.last().expect("non-empty").eval(x)
    }

    /// Mean squared error over a dataset.
    ///
    /// # Errors
    ///
    /// Mismatched lengths or empty input.
    pub fn mse(&self, xs: &[f64], ys: &[f64]) -> Result<f64> {
        SeaError::check_dims(xs.len(), ys.len())?;
        if xs.is_empty() {
            return Err(SeaError::Empty("MSE over no points".into()));
        }
        let sum: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = self.eval(x) - y;
                e * e
            })
            .sum();
        Ok(sum / xs.len() as f64)
    }
}

/// OLS line over sorted pairs; vertical data falls back to a constant.
fn ols(pairs: &[(f64, f64)]) -> (f64, f64) {
    let n = pairs.len() as f64;
    let sx: f64 = pairs.iter().map(|p| p.0).sum();
    let sy: f64 = pairs.iter().map(|p| p.1).sum();
    let sxx: f64 = pairs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pairs.iter().map(|p| p.0 * p.1).sum();
    let var = sxx - sx * sx / n;
    if var <= 1e-12 {
        return (0.0, sy / n);
    }
    let slope = (sxy - sx * sy / n) / var;
    (slope, (sy - slope * sx) / n)
}

fn sse(pairs: &[(f64, f64)]) -> f64 {
    let (slope, intercept) = ols(pairs);
    pairs
        .iter()
        .map(|&(x, y)| {
            let e = slope * x + intercept - y;
            e * e
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_x_values_never_panic_the_fit() {
        let xs = vec![0.0, 1.0, 2.0, f64::NAN, 4.0, 5.0];
        let ys = vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0];
        // total_cmp sorts the NaN to the end; the fit completes and the
        // finite prefix still evaluates.
        let m = PiecewiseLinear::fit(&xs, &ys, 4, 2, 1e-9).unwrap();
        assert!(!m.segments().is_empty());
        let _ = m.eval(1.5);
    }

    #[test]
    fn single_line_fits_one_segment() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 3.0).collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 5, 3, 1e-6).unwrap();
        assert_eq!(m.segments().len(), 1, "no split needed");
        assert!((m.eval(25.0) - 53.0).abs() < 1e-9);
    }

    #[test]
    fn hinge_function_splits_once() {
        // y = 0 for x<50, y = 3(x−50) for x≥50.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| if x < 50.0 { 0.0 } else { 3.0 * (x - 50.0) })
            .collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 4, 5, 1.0).unwrap();
        assert!(m.segments().len() >= 2, "hinge detected");
        assert!(m.eval(25.0).abs() < 5.0);
        assert!((m.eval(80.0) - 90.0).abs() < 10.0);
        assert!(m.mse(&xs, &ys).unwrap() < 50.0);
    }

    #[test]
    fn max_segments_caps_splitting() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| (x / 7.0).sin() * 100.0).collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 3, 4, 0.0).unwrap();
        assert!(m.segments().len() <= 3);
    }

    #[test]
    fn segments_tile_the_line() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x.abs().sqrt() * 10.0).collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 6, 5, 0.1).unwrap();
        let segs = m.segments();
        assert_eq!(segs[0].lo, f64::NEG_INFINITY);
        assert_eq!(segs.last().unwrap().hi, f64::INFINITY);
        for w in segs.windows(2) {
            assert_eq!(w[0].hi, w[1].lo, "contiguous segments");
        }
    }

    #[test]
    fn constant_data_fits_flat() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![7.0, 7.0, 7.0, 7.0];
        let m = PiecewiseLinear::fit(&xs, &ys, 3, 2, 0.0).unwrap();
        assert!((m.eval(2.5) - 7.0).abs() < 1e-9);
        assert!((m.eval(100.0) - 7.0).abs() < 1e-9, "extrapolation");
    }

    #[test]
    fn vertical_data_does_not_explode() {
        let xs = vec![5.0, 5.0, 5.0];
        let ys = vec![1.0, 2.0, 3.0];
        let m = PiecewiseLinear::fit(&xs, &ys, 2, 2, 0.0).unwrap();
        assert!((m.eval(5.0) - 2.0).abs() < 1e-9, "mean of ys");
    }

    #[test]
    fn validations() {
        assert!(PiecewiseLinear::fit(&[1.0], &[1.0], 2, 2, 0.0).is_err());
        assert!(PiecewiseLinear::fit(&[1.0, 2.0], &[1.0], 2, 2, 0.0).is_err());
        assert!(PiecewiseLinear::fit(&[1.0, 2.0], &[1.0, 2.0], 0, 2, 0.0).is_err());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = vec![3.0, 1.0, 4.0, 0.0, 2.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 5.0 * x).collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 2, 2, 0.0).unwrap();
        assert!((m.eval(2.5) - 12.5).abs() < 1e-9);
    }
}
