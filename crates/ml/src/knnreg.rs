//! k-nearest-neighbour regression.
//!
//! The query-driven learning line of work the paper builds on (\[26\], \[29\])
//! predicts answers for unseen queries from the answers of the *nearest
//! previously-executed queries* in query space. This module provides that
//! estimator: distance-weighted kNN regression over stored
//! `(query-vector, answer)` pairs.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

use crate::Regressor;

/// Distance-weighted k-nearest-neighbour regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    dims: usize,
}

impl KnnRegressor {
    /// Creates an empty regressor using `k` neighbours over `dims`-dim
    /// features.
    ///
    /// # Errors
    ///
    /// `k == 0` or `dims == 0`.
    pub fn new(dims: usize, k: usize) -> Result<Self> {
        if k == 0 {
            return Err(SeaError::invalid("k must be positive"));
        }
        if dims == 0 {
            return Err(SeaError::invalid("dims must be positive"));
        }
        Ok(KnnRegressor {
            k,
            xs: Vec::new(),
            ys: Vec::new(),
            dims,
        })
    }

    /// Builds a regressor from training pairs.
    ///
    /// # Errors
    ///
    /// As [`KnnRegressor::new`] plus length/dimension mismatches.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], k: usize) -> Result<Self> {
        let Some(first) = xs.first() else {
            return Err(SeaError::Empty("kNN fit with no rows".into()));
        };
        let mut model = KnnRegressor::new(first.len(), k)?;
        SeaError::check_dims(xs.len(), ys.len())?;
        for (x, &y) in xs.iter().zip(ys) {
            model.push(x, y)?;
        }
        Ok(model)
    }

    /// Adds one training pair.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn push(&mut self, x: &[f64], y: f64) -> Result<()> {
        SeaError::check_dims(self.dims, x.len())?;
        self.xs.push(x.to_vec());
        self.ys.push(y);
        Ok(())
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Prediction plus the mean distance to the used neighbours — a
    /// confidence signal (far neighbours = extrapolation = less trust).
    /// Returns `None` when no pairs are stored.
    pub fn predict_with_distance(&self, x: &[f64]) -> Option<(f64, f64)> {
        if self.xs.is_empty() {
            return None;
        }
        let mut d: Vec<(f64, f64)> = self
            .xs
            .iter()
            .zip(&self.ys)
            .map(|(xi, &yi)| {
                let dist: f64 = xi
                    .iter()
                    .zip(x)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                (dist, yi)
            })
            .collect();
        let k = self.k.min(d.len());
        // total_cmp (NaN-safe) with a value tie-break so equidistant
        // neighbours partition deterministically.
        d.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let neighbours = &d[..k];
        // Inverse-distance weights with an epsilon guard; an exact match
        // dominates completely.
        let mut num = 0.0;
        let mut den = 0.0;
        let mut mean_dist = 0.0;
        for &(dist, y) in neighbours {
            let w = 1.0 / (dist + 1e-9);
            num += w * y;
            den += w;
            mean_dist += dist;
        }
        Some((num / den, mean_dist / k as f64))
    }
}

impl Regressor for KnnRegressor {
    fn predict(&self, x: &[f64]) -> f64 {
        self.predict_with_distance(x).map_or(0.0, |(y, _)| y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_returns_stored_value() {
        let xs = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        let ys = vec![10.0, 20.0, 30.0];
        let m = KnnRegressor::fit(&xs, &ys, 1).unwrap();
        assert!((m.predict(&[1.0, 1.0]) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn interpolates_between_neighbours() {
        let xs = vec![vec![0.0], vec![10.0]];
        let ys = vec![0.0, 100.0];
        let m = KnnRegressor::fit(&xs, &ys, 2).unwrap();
        let mid = m.predict(&[5.0]);
        assert!((mid - 50.0).abs() < 1.0, "got {mid}");
        // Nearer to 10 → pulled toward 100.
        let near = m.predict(&[8.0]);
        assert!(near > 70.0, "got {near}");
    }

    #[test]
    fn distance_signal_grows_with_extrapolation() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = KnnRegressor::fit(&xs, &ys, 3).unwrap();
        let (_, near) = m.predict_with_distance(&[5.0]).unwrap();
        let (_, far) = m.predict_with_distance(&[100.0]).unwrap();
        assert!(far > near * 10.0, "near {near}, far {far}");
    }

    #[test]
    fn linear_function_is_learned_locally() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let m = KnnRegressor::fit(&xs, &ys, 3).unwrap();
        for probe in [0.55, 3.33, 7.77] {
            let pred = m.predict(&[probe]);
            assert!(
                (pred - (3.0 * probe + 1.0)).abs() < 0.35,
                "at {probe}: {pred}"
            );
        }
    }

    #[test]
    fn incremental_push() {
        let mut m = KnnRegressor::new(1, 2).unwrap();
        assert!(m.is_empty());
        assert!(m.predict_with_distance(&[0.0]).is_none());
        m.push(&[0.0], 5.0).unwrap();
        assert_eq!(m.len(), 1);
        // k=2 but only 1 stored: still answers.
        assert!((m.predict(&[0.1]) - 5.0).abs() < 1e-6);
        assert!(m.push(&[0.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn nan_training_points_never_panic_and_lose_to_finite_neighbours() {
        let xs = vec![vec![0.0], vec![10.0], vec![f64::NAN]];
        let ys = vec![0.0, 100.0, 1e9];
        let m = KnnRegressor::fit(&xs, &ys, 2).unwrap();
        // The NaN point's distance is NaN; total_cmp sorts it after every
        // finite distance, so the two finite neighbours answer.
        let mid = m.predict(&[5.0]);
        assert!((mid - 50.0).abs() < 1.0, "got {mid}");
        // A NaN probe can't be ranked meaningfully, but it must not panic.
        let (y, _) = m.predict_with_distance(&[f64::NAN]).unwrap();
        assert!(!y.is_infinite());
    }

    #[test]
    fn empty_store_predicts_neutrally() {
        let m = KnnRegressor::new(1, 3).unwrap();
        assert!(m.predict_with_distance(&[1.0]).is_none());
        assert_eq!(m.predict(&[1.0]), 0.0);
    }

    #[test]
    fn validations() {
        assert!(KnnRegressor::new(1, 0).is_err());
        assert!(KnnRegressor::new(0, 1).is_err());
        assert!(KnnRegressor::fit(&[], &[], 1).is_err());
        assert!(KnnRegressor::fit(&[vec![1.0]], &[1.0, 2.0], 1).is_err());
    }
}
