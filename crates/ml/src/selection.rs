//! Model selection utilities: error metrics, splits, and k-fold
//! cross-validation (\[48\]: query-driven regression model selection).

use sea_common::{Result, SeaError};

use crate::Regressor;

/// Standard regression error metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Mean squared error.
    pub mse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Coefficient of determination (1 − SSE/SST); `NaN` when the target
    /// has zero variance.
    pub r2: f64,
}

impl Metrics {
    /// Computes metrics of `model` over a labelled set.
    ///
    /// # Errors
    ///
    /// Empty input or mismatched lengths.
    pub fn evaluate<M: Regressor + ?Sized>(model: &M, xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        SeaError::check_dims(xs.len(), ys.len())?;
        if xs.is_empty() {
            return Err(SeaError::Empty("metrics over no rows".into()));
        }
        let n = xs.len() as f64;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sse = 0.0;
        let mut sae = 0.0;
        let mut sst = 0.0;
        for (x, &y) in xs.iter().zip(ys) {
            let e = model.predict(x) - y;
            sse += e * e;
            sae += e.abs();
            sst += (y - mean_y) * (y - mean_y);
        }
        Ok(Metrics {
            mse: sse / n,
            mae: sae / n,
            r2: if sst > 0.0 { 1.0 - sse / sst } else { f64::NAN },
        })
    }
}

/// Deterministically splits rows into a training and test set: every
/// `test_every`-th row (by index, starting at offset) goes to the test set.
/// A deterministic split keeps experiments reproducible without threading
/// RNGs everywhere.
///
/// # Errors
///
/// Mismatched lengths or `test_every < 2`.
#[allow(clippy::type_complexity)]
pub fn train_test_split(
    xs: &[Vec<f64>],
    ys: &[f64],
    test_every: usize,
) -> Result<(Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>)> {
    SeaError::check_dims(xs.len(), ys.len())?;
    if test_every < 2 {
        return Err(SeaError::invalid("test_every must be at least 2"));
    }
    let mut train_x = Vec::new();
    let mut train_y = Vec::new();
    let mut test_x = Vec::new();
    let mut test_y = Vec::new();
    for (i, (x, &y)) in xs.iter().zip(ys).enumerate() {
        if i % test_every == test_every - 1 {
            test_x.push(x.clone());
            test_y.push(y);
        } else {
            train_x.push(x.clone());
            train_y.push(y);
        }
    }
    Ok((train_x, train_y, test_x, test_y))
}

/// k-fold cross-validated MSE of a model family. `fit` receives the
/// training rows of each fold and returns a fitted model.
///
/// Folds are *strided* (fold `f` holds rows `f, f+folds, f+2·folds, …`),
/// so sorted/ordered datasets still yield representative folds — with
/// contiguous folds, every fold of a sorted dataset is pure
/// extrapolation, which unfairly punishes local models.
///
/// # Errors
///
/// Fewer rows than folds, `folds < 2`, or a fold-fit failure.
pub fn kfold_mse<M, F>(xs: &[Vec<f64>], ys: &[f64], folds: usize, mut fit: F) -> Result<f64>
where
    M: Regressor,
    F: FnMut(&[Vec<f64>], &[f64]) -> Result<M>,
{
    SeaError::check_dims(xs.len(), ys.len())?;
    if folds < 2 {
        return Err(SeaError::invalid("need at least 2 folds"));
    }
    if xs.len() < folds {
        return Err(SeaError::invalid("fewer rows than folds"));
    }
    let n = xs.len();
    let mut total_sse = 0.0;
    let mut total_n = 0usize;
    for f in 0..folds {
        let mut train_x = Vec::with_capacity(n);
        let mut train_y = Vec::with_capacity(n);
        for i in (0..n).filter(|i| i % folds != f) {
            train_x.push(xs[i].clone());
            train_y.push(ys[i]);
        }
        let model = fit(&train_x, &train_y)?;
        for i in (0..n).filter(|i| i % folds == f) {
            let e = model.predict(&xs[i]) - ys[i];
            total_sse += e * e;
            total_n += 1;
        }
    }
    Ok(total_sse / total_n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearModel;

    fn linear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x[0] - 2.0).collect();
        (xs, ys)
    }

    #[test]
    fn metrics_perfect_model() {
        let (xs, ys) = linear_data(50);
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        let metrics = Metrics::evaluate(&m, &xs, &ys).unwrap();
        assert!(metrics.mse < 1e-18);
        assert!(metrics.mae < 1e-9);
        assert!((metrics.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_flat_target_r2_nan() {
        let xs = vec![vec![1.0], vec![2.0]];
        let ys = vec![3.0, 3.0];
        let m = LinearModel::fit(&xs, &ys, 0.1).unwrap();
        let metrics = Metrics::evaluate(&m, &xs, &ys).unwrap();
        assert!(metrics.r2.is_nan());
        assert!(Metrics::evaluate(&m, &[], &[]).is_err());
    }

    #[test]
    fn split_partitions_everything() {
        let (xs, ys) = linear_data(100);
        let (tx, ty, ex, ey) = train_test_split(&xs, &ys, 5).unwrap();
        assert_eq!(tx.len(), 80);
        assert_eq!(ex.len(), 20);
        assert_eq!(ty.len(), 80);
        assert_eq!(ey.len(), 20);
        assert!(train_test_split(&xs, &ys, 1).is_err());
    }

    #[test]
    fn kfold_on_linear_data_is_tiny() {
        let (xs, ys) = linear_data(60);
        let mse = kfold_mse(&xs, &ys, 5, |tx, ty| LinearModel::fit(tx, ty, 0.0)).unwrap();
        assert!(mse < 1e-12, "got {mse}");
    }

    #[test]
    fn kfold_validations() {
        let (xs, ys) = linear_data(10);
        assert!(kfold_mse(&xs, &ys, 1, |tx, ty| LinearModel::fit(tx, ty, 0.0)).is_err());
        assert!(kfold_mse(&xs[..1], &ys[..1], 5, |tx, ty| LinearModel::fit(
            tx, ty, 0.0
        ))
        .is_err());
    }

    #[test]
    fn kfold_prefers_correct_model_family() {
        // Quadratic data: linear on raw x underfits vs linear on [x, x²].
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let raw = kfold_mse(&xs, &ys, 5, |tx, ty| LinearModel::fit(tx, ty, 0.0)).unwrap();
        let expanded: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0], x[0] * x[0]]).collect();
        let quad = kfold_mse(&expanded, &ys, 5, |tx, ty| LinearModel::fit(tx, ty, 0.0)).unwrap();
        assert!(quad < raw / 100.0, "quad {quad} raw {raw}");
    }
}
