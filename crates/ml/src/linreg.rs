//! Linear regression: batch (normal equations with optional ridge) and
//! online (recursive least squares).
//!
//! The SEA agent's per-quantum answer models are linear in the query's
//! geometry features (centre and extents); they are trained incrementally
//! as training queries stream in, which is exactly what recursive least
//! squares provides — `O(d²)` per update, no re-solve.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

use crate::linalg::{dot, solve};
use crate::Regressor;

/// A fitted linear model `y = w·x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearModel {
    /// Fits OLS (ridge when `lambda > 0`) on rows `xs` with targets `ys`.
    /// The intercept is never regularized.
    ///
    /// # Errors
    ///
    /// Empty input, mismatched lengths, inconsistent feature dimensions, or
    /// a singular (and unregularized) design matrix.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Result<Self> {
        if xs.is_empty() {
            return Err(SeaError::Empty("linear fit with no rows".into()));
        }
        SeaError::check_dims(xs.len(), ys.len())?;
        let d = xs[0].len();
        for x in xs {
            SeaError::check_dims(d, x.len())?;
        }
        if lambda.is_nan() || lambda < 0.0 {
            return Err(SeaError::invalid("lambda must be non-negative"));
        }
        // Augmented design: [x, 1]; normal equations (XᵀX + λI') w = Xᵀy,
        // with I' zero on the intercept coordinate.
        let n = d + 1;
        let mut xtx = vec![0.0; n * n];
        let mut xty = vec![0.0; n];
        for (x, &y) in xs.iter().zip(ys) {
            for i in 0..d {
                for j in 0..d {
                    xtx[i * n + j] += x[i] * x[j];
                }
                xtx[i * n + d] += x[i];
                xtx[d * n + i] += x[i];
                xty[i] += x[i] * y;
            }
            xtx[d * n + d] += 1.0;
            xty[d] += y;
        }
        for i in 0..d {
            xtx[i * n + i] += lambda;
        }
        let w = solve(xtx, xty, n)?;
        Ok(LinearModel {
            intercept: w[d],
            weights: w[..d].to_vec(),
        })
    }

    /// The feature weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.weights.len()
    }
}

impl Regressor for LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        dot(&self.weights, x) + self.intercept
    }
}

/// Recursive least squares with exponential forgetting: an online ridge
/// regression whose per-update cost is `O(d²)`.
///
/// The forgetting factor `lambda_forget ∈ (0, 1]` discounts old
/// observations (1.0 = never forget); values slightly below 1 let the
/// model track drifting targets — the mechanism the agent's model
/// maintenance (RT1-4) uses to adapt without retraining from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursiveLeastSquares {
    /// Inverse covariance estimate, row-major (d+1)².
    p: Vec<f64>,
    /// Weights including trailing intercept.
    w: Vec<f64>,
    d: usize,
    forget: f64,
    n_updates: u64,
}

impl RecursiveLeastSquares {
    /// Creates an RLS learner over `dims` features.
    ///
    /// `delta` scales the initial inverse covariance (larger = weaker
    /// prior, faster initial adaptation); `forget` is the exponential
    /// forgetting factor in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Invalid `delta` or `forget`.
    pub fn new(dims: usize, delta: f64, forget: f64) -> Result<Self> {
        if delta.is_nan() || delta <= 0.0 {
            return Err(SeaError::invalid("delta must be positive"));
        }
        if forget.is_nan() || forget <= 0.0 || forget > 1.0 {
            return Err(SeaError::invalid("forget factor must be in (0, 1]"));
        }
        let n = dims + 1;
        let mut p = vec![0.0; n * n];
        for i in 0..n {
            p[i * n + i] = delta;
        }
        Ok(RecursiveLeastSquares {
            p,
            w: vec![0.0; n],
            d: dims,
            forget,
            n_updates: 0,
        })
    }

    /// Number of observations absorbed.
    pub fn n_updates(&self) -> u64 {
        self.n_updates
    }

    /// Number of features.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Absorbs one observation `(x, y)`.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    #[allow(clippy::needless_range_loop)] // textbook RLS matrix algebra
    pub fn update(&mut self, x: &[f64], y: f64) -> Result<()> {
        SeaError::check_dims(self.d, x.len())?;
        let n = self.d + 1;
        // Augmented feature vector with intercept.
        let mut xa = Vec::with_capacity(n);
        xa.extend_from_slice(x);
        xa.push(1.0);

        // k = P x / (λ + xᵀ P x)
        let mut px = vec![0.0; n];
        for i in 0..n {
            px[i] = (0..n).map(|j| self.p[i * n + j] * xa[j]).sum();
        }
        let denom = self.forget + dot(&xa, &px);
        let k: Vec<f64> = px.iter().map(|v| v / denom).collect();

        // w += k (y − wᵀx)
        let err = y - dot(&self.w, &xa);
        for i in 0..n {
            self.w[i] += k[i] * err;
        }

        // P = (P − k xᵀ P) / λ
        let mut xp = vec![0.0; n];
        for j in 0..n {
            xp[j] = (0..n).map(|i| xa[i] * self.p[i * n + j]).sum();
        }
        for i in 0..n {
            for j in 0..n {
                self.p[i * n + j] = (self.p[i * n + j] - k[i] * xp[j]) / self.forget;
            }
        }
        self.n_updates += 1;
        Ok(())
    }

    /// The current linear model (weights + intercept).
    pub fn model(&self) -> LinearModel {
        LinearModel {
            weights: self.w[..self.d].to_vec(),
            intercept: self.w[self.d],
        }
    }
}

impl Regressor for RecursiveLeastSquares {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = self.w[self.d];
        for (wi, xi) in self.w[..self.d].iter().zip(x) {
            acc += wi * xi;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_plane(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 2 x0 − 3 x1 + 5, deterministic pseudo-noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let x0 = (i % 17) as f64;
            let x1 = (i % 23) as f64 * 0.5;
            let noise = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            xs.push(vec![x0, x1]);
            ys.push(2.0 * x0 - 3.0 * x1 + 5.0 + noise * 0.01);
        }
        (xs, ys)
    }

    #[test]
    fn ols_recovers_exact_plane() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![5.0, 7.0, 2.0, 4.0]; // y = 2x0 − 3x1 + 5
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-9);
        assert!((m.weights()[1] + 3.0).abs() < 1e-9);
        assert!((m.intercept() - 5.0).abs() < 1e-9);
        assert!((m.predict(&[2.0, 2.0]) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ols_near_recovery_with_noise() {
        let (xs, ys) = noisy_plane(500);
        let m = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 0.01);
        assert!((m.weights()[1] + 3.0).abs() < 0.01);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (xs, ys) = noisy_plane(100);
        let ols = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        let ridge = LinearModel::fit(&xs, &ys, 1000.0).unwrap();
        assert!(
            ridge.weights()[0].abs() < ols.weights()[0].abs(),
            "ridge {:?} vs ols {:?}",
            ridge.weights(),
            ols.weights()
        );
    }

    #[test]
    fn degenerate_design_needs_ridge() {
        // Perfectly collinear features.
        let xs = vec![vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
        let ys = vec![1.0, 2.0, 3.0];
        assert!(LinearModel::fit(&xs, &ys, 0.0).is_err());
        assert!(LinearModel::fit(&xs, &ys, 1e-3).is_ok());
    }

    #[test]
    fn fit_validations() {
        assert!(LinearModel::fit(&[], &[], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0], 0.0).is_err());
        assert!(LinearModel::fit(&[vec![1.0]], &[1.0], -1.0).is_err());
    }

    #[test]
    fn rls_converges_to_plane() {
        let (xs, ys) = noisy_plane(2000);
        let mut rls = RecursiveLeastSquares::new(2, 1000.0, 1.0).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            rls.update(x, y).unwrap();
        }
        let m = rls.model();
        assert!((m.weights()[0] - 2.0).abs() < 0.01, "{:?}", m);
        assert!((m.weights()[1] + 3.0).abs() < 0.01);
        assert!((m.intercept() - 5.0).abs() < 0.05);
        assert_eq!(rls.n_updates(), 2000);
    }

    #[test]
    fn rls_matches_batch_ols_closely() {
        let (xs, ys) = noisy_plane(300);
        let batch = LinearModel::fit(&xs, &ys, 0.0).unwrap();
        let mut rls = RecursiveLeastSquares::new(2, 1e6, 1.0).unwrap();
        for (x, &y) in xs.iter().zip(&ys) {
            rls.update(x, y).unwrap();
        }
        let online = rls.model();
        for (a, b) in online.weights().iter().zip(batch.weights()) {
            assert!((a - b).abs() < 1e-3, "online {online:?} batch {batch:?}");
        }
    }

    #[test]
    fn rls_with_forgetting_tracks_drift() {
        // Target flips from y = x to y = −x halfway.
        let mut rls = RecursiveLeastSquares::new(1, 100.0, 0.95).unwrap();
        for i in 0..500 {
            let x = (i % 10) as f64;
            rls.update(&[x], x).unwrap();
        }
        for i in 0..500 {
            let x = (i % 10) as f64;
            rls.update(&[x], -x).unwrap();
        }
        let m = rls.model();
        assert!(
            (m.weights()[0] + 1.0).abs() < 0.05,
            "tracked the flip: {m:?}"
        );

        // Without forgetting it lags behind.
        let mut no_forget = RecursiveLeastSquares::new(1, 100.0, 1.0).unwrap();
        for i in 0..500 {
            let x = (i % 10) as f64;
            no_forget.update(&[x], x).unwrap();
        }
        for i in 0..500 {
            let x = (i % 10) as f64;
            no_forget.update(&[x], -x).unwrap();
        }
        let lagging = no_forget.model();
        assert!(
            lagging.weights()[0] > m.weights()[0],
            "no-forget lags: {lagging:?}"
        );
    }

    #[test]
    fn rls_validations() {
        assert!(RecursiveLeastSquares::new(2, 0.0, 1.0).is_err());
        assert!(RecursiveLeastSquares::new(2, 1.0, 0.0).is_err());
        assert!(RecursiveLeastSquares::new(2, 1.0, 1.1).is_err());
        let mut rls = RecursiveLeastSquares::new(2, 1.0, 1.0).unwrap();
        assert!(rls.update(&[1.0], 1.0).is_err());
    }
}
