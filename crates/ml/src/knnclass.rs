//! k-nearest-neighbour classification (RT2-2: "expediting … kNN
//! regression and kNN classification").

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// A majority-vote kNN classifier over integral class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnClassifier {
    k: usize,
    xs: Vec<Vec<f64>>,
    labels: Vec<i64>,
    dims: usize,
}

impl KnnClassifier {
    /// Creates an empty classifier.
    ///
    /// # Errors
    ///
    /// Zero `k` or `dims`.
    pub fn new(dims: usize, k: usize) -> Result<Self> {
        if k == 0 || dims == 0 {
            return Err(SeaError::invalid("k and dims must be positive"));
        }
        Ok(KnnClassifier {
            k,
            xs: Vec::new(),
            labels: Vec::new(),
            dims,
        })
    }

    /// Builds a classifier from training pairs.
    ///
    /// # Errors
    ///
    /// Empty input or mismatched lengths/dimensions.
    pub fn fit(xs: &[Vec<f64>], labels: &[i64], k: usize) -> Result<Self> {
        let Some(first) = xs.first() else {
            return Err(SeaError::Empty("kNN classifier fit with no rows".into()));
        };
        SeaError::check_dims(xs.len(), labels.len())?;
        let mut model = KnnClassifier::new(first.len(), k)?;
        for (x, &l) in xs.iter().zip(labels) {
            model.push(x, l)?;
        }
        Ok(model)
    }

    /// Adds one training pair.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn push(&mut self, x: &[f64], label: i64) -> Result<()> {
        SeaError::check_dims(self.dims, x.len())?;
        self.xs.push(x.to_vec());
        self.labels.push(label);
        Ok(())
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Predicted label plus the vote fraction it received (a confidence
    /// signal). `None` when untrained.
    pub fn predict_with_confidence(&self, x: &[f64]) -> Option<(i64, f64)> {
        if self.xs.is_empty() {
            return None;
        }
        let mut d: Vec<(f64, i64)> = self
            .xs
            .iter()
            .zip(&self.labels)
            .map(|(xi, &l)| {
                let dist: f64 = xi.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (dist, l)
            })
            .collect();
        let k = self.k.min(d.len());
        // total_cmp (NaN-safe) with a label tie-break so equidistant
        // neighbours partition deterministically.
        d.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for (_, l) in &d[..k] {
            *votes.entry(*l).or_default() += 1;
        }
        let (label, n) = votes
            .into_iter()
            .max_by_key(|(l, n)| (*n, -l))
            .expect("non-empty");
        Some((label, n as f64 / k as f64))
    }

    /// Predicted label (`None` when untrained).
    pub fn predict(&self, x: &[f64]) -> Option<i64> {
        self.predict_with_confidence(x).map(|(l, _)| l)
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Errors
    ///
    /// Empty input or mismatched lengths.
    pub fn accuracy(&self, xs: &[Vec<f64>], labels: &[i64]) -> Result<f64> {
        SeaError::check_dims(xs.len(), labels.len())?;
        if xs.is_empty() {
            return Err(SeaError::Empty("accuracy over no rows".into()));
        }
        let correct = xs
            .iter()
            .zip(labels)
            .filter(|(x, &l)| self.predict(x) == Some(l))
            .count();
        Ok(correct as f64 / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<i64>) {
        let mut xs = Vec::new();
        let mut ls = Vec::new();
        for i in 0..60 {
            let jitter = (i % 7) as f64 * 0.05;
            xs.push(vec![0.0 + jitter, 0.0 - jitter]);
            ls.push(0);
            xs.push(vec![10.0 - jitter, 10.0 + jitter]);
            ls.push(1);
        }
        (xs, ls)
    }

    #[test]
    fn separable_blobs_classify_perfectly() {
        let (xs, ls) = two_blobs();
        let m = KnnClassifier::fit(&xs, &ls, 5).unwrap();
        assert_eq!(m.predict(&[0.5, 0.5]), Some(0));
        assert_eq!(m.predict(&[9.5, 9.5]), Some(1));
        assert!((m.accuracy(&xs, &ls).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_reflects_vote_split() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![10.0], vec![11.0]];
        let ls = vec![0, 0, 0, 1, 1];
        let m = KnnClassifier::fit(&xs, &ls, 5).unwrap();
        let (label, conf) = m.predict_with_confidence(&[1.0]).unwrap();
        assert_eq!(label, 0);
        assert!((conf - 0.6).abs() < 1e-12, "3 of 5 votes: {conf}");
    }

    #[test]
    fn incremental_and_validation() {
        let mut m = KnnClassifier::new(2, 3).unwrap();
        assert!(m.is_empty());
        assert!(m.predict(&[0.0, 0.0]).is_none());
        m.push(&[0.0, 0.0], 7).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.predict(&[1.0, 1.0]), Some(7));
        assert!(m.push(&[1.0], 0).is_err());
        assert!(KnnClassifier::new(0, 3).is_err());
        assert!(KnnClassifier::new(2, 0).is_err());
        assert!(KnnClassifier::fit(&[], &[], 3).is_err());
        assert!(m.accuracy(&[], &[]).is_err());
    }

    #[test]
    fn nan_features_never_panic_and_lose_to_finite_neighbours() {
        let xs = vec![vec![0.0], vec![1.0], vec![f64::NAN]];
        let ls = vec![0, 0, 9];
        let m = KnnClassifier::fit(&xs, &ls, 2).unwrap();
        // NaN distance sorts last under total_cmp: the finite blob wins.
        assert_eq!(m.predict(&[0.5]), Some(0));
        // A NaN probe makes every distance NaN; the vote still resolves
        // deterministically instead of panicking.
        assert!(m.predict(&[f64::NAN]).is_some());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let xs = vec![vec![0.0], vec![2.0]];
        let ls = vec![3, 5];
        let m = KnnClassifier::fit(&xs, &ls, 2).unwrap();
        // Equidistant, one vote each: the smaller label wins by the
        // (count, -label) key.
        assert_eq!(m.predict(&[1.0]), Some(3));
    }
}
