//! Minimal dense linear algebra: just enough to solve the normal
//! equations. Matrices are row-major `Vec<f64>` with explicit dimensions.

use sea_common::{Result, SeaError};

/// Solves the linear system `A x = b` for square `A` (row-major, `n × n`)
/// by Gaussian elimination with partial pivoting. `A` and `b` are consumed
/// as scratch space.
///
/// # Errors
///
/// [`SeaError::Model`] when the matrix is (numerically) singular,
/// [`SeaError::DimensionMismatch`] when shapes disagree.
pub fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Result<Vec<f64>> {
    if a.len() != n * n {
        return Err(SeaError::DimensionMismatch {
            expected: n * n,
            actual: a.len(),
        });
    }
    SeaError::check_dims(n, b.len())?;
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        let mut best = a[col * n + col].abs();
        for row in (col + 1)..n {
            let v = a[row * n + col].abs();
            if v > best {
                best = v;
                pivot = row;
            }
        }
        if best < 1e-12 {
            return Err(SeaError::Model("singular matrix in linear solve".into()));
        }
        if pivot != col {
            for k in 0..n {
                a.swap(col * n + k, pivot * n + k);
            }
            b.swap(col, pivot);
        }
        // Eliminate below.
        let diag = a[col * n + col];
        for row in (col + 1)..n {
            let factor = a[row * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row * n + k] -= factor * a[col * n + k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Ok(x)
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ (internal helper; callers validate).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10 → x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve(a, b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First pivot is 0 but the system is regular.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let b = vec![2.0, 3.0];
        let x = solve(a, b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_an_error() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        let b = vec![1.0, 2.0];
        assert!(matches!(solve(a, b, 2), Err(SeaError::Model(_))));
    }

    #[test]
    fn shape_validation() {
        assert!(solve(vec![1.0; 3], vec![1.0; 2], 2).is_err());
        assert!(solve(vec![1.0; 4], vec![1.0; 3], 2).is_err());
    }

    #[test]
    fn identity_returns_rhs() {
        let a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        let b = vec![7.0, -2.0, 0.5];
        let x = solve(a, b.clone(), 3).unwrap();
        for (got, want) in x.iter().zip(&b) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }
}
