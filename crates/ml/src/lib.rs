//! # sea-ml
//!
//! The statistical machine-learning substrate of SEA: every model the
//! intelligent agent (sea-core), the optimizer (sea-optimizer) and the
//! baselines rely on, implemented from scratch on `f64` slices with no
//! external linear-algebra dependency.
//!
//! * [`linreg`] — batch OLS/ridge regression (normal equations) and
//!   *recursive least squares* for the agent's incremental per-quantum
//!   models.
//! * [`quantize`] — k-means and **online adaptive vector quantization**,
//!   the mechanism behind query-space quantization (RT1-1): prototypes
//!   drift toward the queries they absorb and new prototypes spawn when a
//!   query is far from all of them.
//! * [`knnreg`] — k-nearest-neighbour regression (the "learning set
//!   cardinality in distance nearest neighbours" family, \[26\]).
//! * [`piecewise`] — piecewise-linear 1-D regression, the representation
//!   the paper proposes for query-answer *explanations* (RT4-2).
//! * [`gbt`] — gradient-boosted regression trees (XGBoost-lite, \[41\]\[42\]),
//!   the heavier ensemble alternative in inference-model selection (RT3-3).
//! * [`selection`] — train/test splitting, k-fold cross-validation and the
//!   error metrics used to pick among inference models (\[48\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gbt;
pub mod knnclass;
pub mod knnreg;
pub mod linalg;
pub mod linreg;
pub mod piecewise;
pub mod quantize;
pub mod selection;

pub use gbt::{GbtParams, GradientBoostedTrees};
pub use knnclass::KnnClassifier;
pub use knnreg::KnnRegressor;
pub use linreg::{LinearModel, RecursiveLeastSquares};
pub use piecewise::PiecewiseLinear;
pub use quantize::{KMeans, OnlineQuantizer, QuantizerParams};
pub use selection::{kfold_mse, train_test_split, Metrics};

/// Common interface for regression models mapping feature vectors to a
/// scalar: the trait the inference-model selector (RT3-3) dispatches over.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;
}
