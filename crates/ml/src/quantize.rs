//! Vector quantization: batch k-means and the online adaptive quantizer
//! behind SEA's query-space quantization (RT1-1).
//!
//! The online quantizer implements the paper's requirement to "efficiently
//! and scalably learn the structure of the query space, identifying
//! analysts' current interests": each incoming query vector either joins
//! its nearest prototype (which drifts toward it at a decaying learning
//! rate) or — when farther than `spawn_distance` from every prototype —
//! spawns a new prototype. Staleness-based purging drops quanta whose
//! interest region analysts have abandoned (RT1-4).

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// Batch k-means (Lloyd's algorithm) with deterministic seeding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
}

impl KMeans {
    /// Fits `k` centroids over `points` with at most `max_iters`
    /// Lloyd iterations, using k-means++-style greedy seeding made
    /// deterministic (first seed = first point, next seeds maximize
    /// distance to chosen seeds).
    ///
    /// # Errors
    ///
    /// `k == 0`, empty input, or inconsistent dimensionality.
    pub fn fit(points: &[Vec<f64>], k: usize, max_iters: usize) -> Result<Self> {
        if k == 0 {
            return Err(SeaError::invalid("k must be positive"));
        }
        let Some(first) = points.first() else {
            return Err(SeaError::Empty("k-means over no points".into()));
        };
        let d = first.len();
        for p in points {
            SeaError::check_dims(d, p.len())?;
        }
        let k = k.min(points.len());

        // Deterministic farthest-point seeding.
        let mut centroids: Vec<Vec<f64>> = vec![points[0].clone()];
        while centroids.len() < k {
            let far = points
                .iter()
                .max_by(|a, b| {
                    let da = nearest_dist_sq(a, &centroids);
                    let db = nearest_dist_sq(b, &centroids);
                    da.total_cmp(&db)
                })
                .expect("non-empty");
            centroids.push(far.clone());
        }

        let mut assign = vec![0usize; points.len()];
        for _ in 0..max_iters {
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let (best, _) = nearest(p, &centroids);
                if assign[i] != best {
                    assign[i] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0.0; d]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                counts[assign[i]] += 1;
                for (s, v) in sums[assign[i]].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    for (cv, sv) in c.iter_mut().zip(sum) {
                        *cv = sv / *count as f64;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(KMeans { centroids })
    }

    /// The fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Index of the centroid nearest to `x`.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn assign(&self, x: &[f64]) -> Result<usize> {
        SeaError::check_dims(self.centroids[0].len(), x.len())?;
        Ok(nearest(x, &self.centroids).0)
    }

    /// Mean squared distance of points to their assigned centroid.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn inertia(&self, points: &[Vec<f64>]) -> Result<f64> {
        let mut total = 0.0;
        for p in points {
            SeaError::check_dims(self.centroids[0].len(), p.len())?;
            total += nearest(p, &self.centroids).1;
        }
        Ok(total / points.len().max(1) as f64)
    }
}

fn nearest(x: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d: f64 = c.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

fn nearest_dist_sq(x: &[f64], centroids: &[Vec<f64>]) -> f64 {
    nearest(x, centroids).1
}

/// Tuning parameters of the [`OnlineQuantizer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizerParams {
    /// A query farther than this (Euclidean) from every prototype spawns a
    /// new prototype.
    pub spawn_distance: f64,
    /// Base learning rate; the effective rate for a prototype that has
    /// absorbed `n` queries is `base / (1 + n·decay)`.
    pub learning_rate: f64,
    /// Learning-rate decay per absorbed query.
    pub decay: f64,
    /// Hard cap on the number of prototypes (0 = unlimited).
    pub max_prototypes: usize,
}

impl Default for QuantizerParams {
    fn default() -> Self {
        QuantizerParams {
            spawn_distance: 1.0,
            learning_rate: 0.2,
            decay: 0.05,
            max_prototypes: 0,
        }
    }
}

/// One prototype of the online quantizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prototype {
    /// Current position in query space.
    pub position: Vec<f64>,
    /// Queries absorbed.
    pub hits: u64,
    /// Logical time of the last absorbed query.
    pub last_hit: u64,
}

/// Online adaptive vector quantizer over a stream of query vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineQuantizer {
    params: QuantizerParams,
    prototypes: Vec<Prototype>,
    dims: usize,
    clock: u64,
}

impl OnlineQuantizer {
    /// Creates an empty quantizer over `dims`-dimensional query vectors.
    ///
    /// # Errors
    ///
    /// Non-positive spawn distance or learning rate, or zero dims.
    pub fn new(dims: usize, params: QuantizerParams) -> Result<Self> {
        if dims == 0 {
            return Err(SeaError::invalid("quantizer needs at least one dimension"));
        }
        if params.spawn_distance.is_nan() || params.spawn_distance <= 0.0 {
            return Err(SeaError::invalid("spawn_distance must be positive"));
        }
        if params.learning_rate.is_nan()
            || params.learning_rate <= 0.0
            || params.learning_rate > 1.0
        {
            return Err(SeaError::invalid("learning_rate must be in (0, 1]"));
        }
        if params.decay.is_nan() || params.decay < 0.0 {
            return Err(SeaError::invalid("decay must be non-negative"));
        }
        Ok(OnlineQuantizer {
            params,
            prototypes: Vec::new(),
            dims,
            clock: 0,
        })
    }

    /// Number of prototypes.
    pub fn len(&self) -> usize {
        self.prototypes.len()
    }

    /// Whether no prototypes exist yet.
    pub fn is_empty(&self) -> bool {
        self.prototypes.is_empty()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The prototypes.
    pub fn prototypes(&self) -> &[Prototype] {
        &self.prototypes
    }

    /// Logical clock (number of absorbed queries).
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Absorbs a query vector. Returns `(prototype_index, spawned)`:
    /// the index of the prototype that absorbed the query, and whether it
    /// was newly spawned for it.
    ///
    /// # Errors
    ///
    /// Dimension mismatch.
    pub fn absorb(&mut self, x: &[f64]) -> Result<(usize, bool)> {
        SeaError::check_dims(self.dims, x.len())?;
        self.clock += 1;
        let at_cap =
            self.params.max_prototypes > 0 && self.prototypes.len() >= self.params.max_prototypes;

        if let Some((idx, dist_sq)) = self.nearest_prototype(x) {
            let dist = dist_sq.sqrt();
            if dist <= self.params.spawn_distance || at_cap {
                let p = &mut self.prototypes[idx];
                let rate = self.params.learning_rate / (1.0 + p.hits as f64 * self.params.decay);
                for (pv, xv) in p.position.iter_mut().zip(x) {
                    *pv += rate * (xv - *pv);
                }
                p.hits += 1;
                p.last_hit = self.clock;
                return Ok((idx, false));
            }
        }
        self.prototypes.push(Prototype {
            position: x.to_vec(),
            hits: 1,
            last_hit: self.clock,
        });
        Ok((self.prototypes.len() - 1, true))
    }

    /// Index and squared distance of the prototype nearest to `x`, or
    /// `None` when no prototypes exist.
    pub fn nearest_prototype(&self, x: &[f64]) -> Option<(usize, f64)> {
        if self.prototypes.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.prototypes.iter().enumerate() {
            let d: f64 = p
                .position
                .iter()
                .zip(x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        Some((best, best_d))
    }

    /// Drops prototypes not hit in the last `max_age` queries. Returns the
    /// indices (pre-purge) of the dropped prototypes, ascending.
    pub fn purge_stale(&mut self, max_age: u64) -> Vec<usize> {
        let clock = self.clock;
        let mut dropped = Vec::new();
        let mut kept = Vec::with_capacity(self.prototypes.len());
        for (i, p) in self.prototypes.drain(..).enumerate() {
            if clock.saturating_sub(p.last_hit) > max_age {
                dropped.push(i);
            } else {
                kept.push(p);
            }
        }
        self.prototypes = kept;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_clusters() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            let jitter = (i % 7) as f64 * 0.01;
            pts.push(vec![0.0 + jitter, 0.0 - jitter]);
            pts.push(vec![10.0 - jitter, 10.0 + jitter]);
        }
        pts
    }

    #[test]
    fn kmeans_finds_two_clusters() {
        let pts = two_clusters();
        let km = KMeans::fit(&pts, 2, 50).unwrap();
        let mut cs = km.centroids().to_vec();
        cs.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert!(cs[0][0].abs() < 0.5, "{cs:?}");
        assert!((cs[1][0] - 10.0).abs() < 0.5, "{cs:?}");
        assert!(km.inertia(&pts).unwrap() < 0.01);
    }

    #[test]
    fn kmeans_survives_nan_points() {
        let mut pts = two_clusters();
        pts.push(vec![f64::NAN, 0.0]);
        // Farthest-point seeding compares NaN distances via total_cmp and
        // the assignment loop treats NaN as never-nearer: no panic.
        let km = KMeans::fit(&pts, 2, 20).unwrap();
        assert_eq!(km.centroids().len(), 2);
    }

    #[test]
    fn kmeans_assign_routes_to_nearest() {
        let pts = two_clusters();
        let km = KMeans::fit(&pts, 2, 50).unwrap();
        let a = km.assign(&[0.1, 0.1]).unwrap();
        let b = km.assign(&[9.9, 9.9]).unwrap();
        assert_ne!(a, b);
        assert!(km.assign(&[1.0]).is_err());
    }

    #[test]
    fn kmeans_k_larger_than_points() {
        let pts = vec![vec![0.0], vec![1.0]];
        let km = KMeans::fit(&pts, 10, 10).unwrap();
        assert_eq!(km.centroids().len(), 2);
    }

    #[test]
    fn kmeans_validations() {
        assert!(KMeans::fit(&[], 2, 10).is_err());
        assert!(KMeans::fit(&[vec![1.0]], 0, 10).is_err());
        assert!(KMeans::fit(&[vec![1.0], vec![1.0, 2.0]], 1, 10).is_err());
    }

    #[test]
    fn quantizer_spawns_per_cluster() {
        let mut q = OnlineQuantizer::new(
            2,
            QuantizerParams {
                spawn_distance: 2.0,
                ..QuantizerParams::default()
            },
        )
        .unwrap();
        for p in two_clusters() {
            q.absorb(&p).unwrap();
        }
        assert_eq!(q.len(), 2, "one prototype per cluster");
        let (idx0, _) = q.nearest_prototype(&[0.0, 0.0]).unwrap();
        let (idx1, _) = q.nearest_prototype(&[10.0, 10.0]).unwrap();
        assert_ne!(idx0, idx1);
    }

    #[test]
    fn quantizer_prototypes_drift_toward_data() {
        let mut q = OnlineQuantizer::new(
            1,
            QuantizerParams {
                spawn_distance: 100.0,
                learning_rate: 0.5,
                decay: 0.0,
                max_prototypes: 0,
            },
        )
        .unwrap();
        q.absorb(&[0.0]).unwrap();
        for _ in 0..50 {
            q.absorb(&[10.0]).unwrap();
        }
        let pos = q.prototypes()[0].position[0];
        assert!((pos - 10.0).abs() < 0.01, "drifted to 10: {pos}");
    }

    #[test]
    fn quantizer_cap_forces_absorption() {
        let mut q = OnlineQuantizer::new(
            1,
            QuantizerParams {
                spawn_distance: 0.1,
                max_prototypes: 2,
                ..QuantizerParams::default()
            },
        )
        .unwrap();
        q.absorb(&[0.0]).unwrap();
        q.absorb(&[100.0]).unwrap();
        let (_, spawned) = q.absorb(&[50.0]).unwrap();
        assert!(!spawned, "cap reached, absorbed into nearest");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn quantizer_purges_stale() {
        let mut q = OnlineQuantizer::new(1, QuantizerParams::default()).unwrap();
        q.absorb(&[0.0]).unwrap();
        for _ in 0..100 {
            q.absorb(&[50.0]).unwrap();
        }
        assert_eq!(q.len(), 2);
        let dropped = q.purge_stale(50);
        assert_eq!(dropped, vec![0], "the abandoned prototype is dropped");
        assert_eq!(q.len(), 1);
        assert!((q.prototypes()[0].position[0] - 50.0).abs() < 1.0);
    }

    #[test]
    fn quantizer_hit_counts_and_clock() {
        let mut q = OnlineQuantizer::new(1, QuantizerParams::default()).unwrap();
        for _ in 0..10 {
            q.absorb(&[0.0]).unwrap();
        }
        assert_eq!(q.clock(), 10);
        assert_eq!(q.prototypes()[0].hits, 10);
        assert_eq!(q.prototypes()[0].last_hit, 10);
    }

    #[test]
    fn quantizer_validations() {
        assert!(OnlineQuantizer::new(0, QuantizerParams::default()).is_err());
        assert!(OnlineQuantizer::new(
            1,
            QuantizerParams {
                spawn_distance: 0.0,
                ..QuantizerParams::default()
            }
        )
        .is_err());
        assert!(OnlineQuantizer::new(
            1,
            QuantizerParams {
                learning_rate: 1.5,
                ..QuantizerParams::default()
            }
        )
        .is_err());
        let mut q = OnlineQuantizer::new(2, QuantizerParams::default()).unwrap();
        assert!(q.absorb(&[1.0]).is_err());
    }
}
