//! Property tests of the ML substrate's numerical invariants.

use proptest::prelude::*;

use sea_ml::gbt::{GbtParams, GradientBoostedTrees};
use sea_ml::linreg::{LinearModel, RecursiveLeastSquares};
use sea_ml::piecewise::PiecewiseLinear;
use sea_ml::quantize::{OnlineQuantizer, QuantizerParams};
use sea_ml::Regressor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ols_interpolates_noiseless_lines(slope in -5.0f64..5.0, intercept in -10.0f64..10.0,
                                        xs in prop::collection::vec(-20.0f64..20.0, 3..40)) {
        // Need some x variance.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 0.5);
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let m = LinearModel::fit(&rows, &ys, 0.0).unwrap();
        prop_assert!((m.weights()[0] - slope).abs() < 1e-6);
        prop_assert!((m.intercept() - intercept).abs() < 1e-5);
    }

    #[test]
    fn rls_tracks_batch_ols(slope in -3.0f64..3.0, xs in prop::collection::vec(-10.0f64..10.0, 10..60)) {
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + 1.0).collect();
        let batch = LinearModel::fit(&rows, &ys, 0.0).unwrap();
        let mut rls = RecursiveLeastSquares::new(1, 1e6, 1.0).unwrap();
        for (x, &y) in rows.iter().zip(&ys) {
            rls.update(x, y).unwrap();
        }
        let online = rls.model();
        prop_assert!((online.weights()[0] - batch.weights()[0]).abs() < 1e-3,
            "online {:?} batch {:?}", online, batch);
    }

    #[test]
    fn ridge_never_increases_weight_norm(lambda in 0.0f64..100.0,
                                         pts in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 5..40)) {
        let rows: Vec<Vec<f64>> = pts.iter().map(|(x, _)| vec![*x]).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
        let spread = rows.iter().map(|r| r[0]).fold(f64::NEG_INFINITY, f64::max)
            - rows.iter().map(|r| r[0]).fold(f64::INFINITY, f64::min);
        prop_assume!(spread > 1.0);
        let free = LinearModel::fit(&rows, &ys, 1e-9).unwrap();
        let shrunk = LinearModel::fit(&rows, &ys, lambda + 1e-9).unwrap();
        prop_assert!(shrunk.weights()[0].abs() <= free.weights()[0].abs() + 1e-9);
    }

    #[test]
    fn quantizer_prototypes_cover_absorbed_points(points in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..80)) {
        let mut q = OnlineQuantizer::new(
            2,
            QuantizerParams {
                spawn_distance: 1.5,
                learning_rate: 0.2,
                decay: 0.05,
                max_prototypes: 0,
            },
        )
        .unwrap();
        for (x, y) in &points {
            q.absorb(&[*x, *y]).unwrap();
        }
        // Every absorbed point is within spawn_distance + drift slack of
        // some prototype (prototypes only move toward data).
        for (x, y) in &points {
            let (_, d2) = q.nearest_prototype(&[*x, *y]).unwrap();
            prop_assert!(d2.sqrt() <= 1.5 + 3.0, "point ({x},{y}) stranded at {}", d2.sqrt());
        }
        prop_assert!(q.len() <= points.len());
        prop_assert_eq!(q.clock(), points.len() as u64);
    }

    #[test]
    fn piecewise_fit_never_beats_zero_error_bound(xs in prop::collection::vec(0.0f64..50.0, 4..60), noise_scale in 0.0f64..2.0) {
        // Target: a clean line plus bounded noise; the fit's MSE must be
        // within the noise's square bound (plus slack for small samples).
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + ((i % 5) as f64 - 2.0) / 2.0 * noise_scale)
            .collect();
        let m = PiecewiseLinear::fit(&xs, &ys, 4, 3, 1e-9).unwrap();
        let mse = m.mse(&xs, &ys).unwrap();
        prop_assert!(mse <= noise_scale * noise_scale + 1e-6, "mse {mse}");
    }

    #[test]
    fn gbt_predictions_stay_in_target_hull(pts in prop::collection::vec((0.0f64..10.0, -5.0f64..5.0), 8..60)) {
        let rows: Vec<Vec<f64>> = pts.iter().map(|(x, _)| vec![*x]).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
        let m = GradientBoostedTrees::fit(
            &rows,
            &ys,
            &GbtParams {
                n_trees: 20,
                max_depth: 2,
                learning_rate: 0.3,
                min_leaf: 2,
            },
        )
        .unwrap();
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Averaging-based trees cannot extrapolate beyond the target hull
        // (up to shrinkage remainder slack).
        for probe in [-100.0, 0.0, 5.0, 100.0] {
            let p = m.predict(&[probe]);
            let span = (hi - lo).max(1e-9);
            prop_assert!(p >= lo - span && p <= hi + span, "pred {p} outside [{lo}, {hi}]");
        }
    }
}
