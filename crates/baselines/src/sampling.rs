//! A BlinkDB-style stratified-sampling AQP engine.

use sea_common::{
    AggregateKind, AnalyticalQuery, AnswerValue, CostMeter, CostModel, CostReport, Record, Rect,
    Result, SeaError,
};
use sea_index::{GridIndex, StratifiedSample};
use sea_storage::{StorageCluster, BDAS_LAYERS};

/// The outcome of an approximate query: the estimate and its resource bill.
#[derive(Debug, Clone, PartialEq)]
pub struct AqpOutcome {
    /// The approximate answer.
    pub answer: AnswerValue,
    /// Cost of producing it.
    pub cost: CostReport,
}

/// A stratified-sampling approximate query engine.
///
/// Strata are the cells of a coarse grid over the data domain, so spatial
/// selections always intersect some represented stratum. The sample is
/// built once by a full scan (the offline cost BlinkDB pays on sample
/// creation) and then serves queries by scanning only the sample —
/// *through the BDAS stack*, which is the paper's architectural criticism:
/// the engine's "key functionality \[is\] at the wrong place within the big
/// data analytics stack".
#[derive(Debug, Clone)]
pub struct SamplingAqp {
    sample: StratifiedSample,
    /// A grid used only to define strata.
    grid: GridIndex,
    /// Nodes the sample is spread over (for per-query cost accounting).
    sample_nodes: usize,
    build_cost: CostReport,
    cost_model: CostModel,
}

impl SamplingAqp {
    /// Builds the engine over table `table` with `per_stratum` sampled
    /// records per stratum of a `cells_per_dim`-grid over `domain`.
    ///
    /// # Errors
    ///
    /// Missing table, invalid grid parameters, or zero `per_stratum`.
    pub fn build(
        cluster: &StorageCluster,
        table: &str,
        domain: Rect,
        cells_per_dim: usize,
        per_stratum: usize,
        seed: u64,
    ) -> Result<Self> {
        let grid = GridIndex::new(domain, cells_per_dim)?;
        // Offline pass: full BDAS scan of every node.
        let mut node_meters = Vec::new();
        let mut all: Vec<Record> = Vec::new();
        for node in 0..cluster.num_nodes() {
            let mut meter = CostMeter::new();
            meter.touch_node(BDAS_LAYERS);
            let records = cluster.scan_node(table, node, &mut meter)?;
            // Sampled records ship to the sample store.
            all.extend(records);
            node_meters.push(meter);
        }
        let grid_ref = &grid;
        let sample = StratifiedSample::build(&all, per_stratum, seed, |r| {
            grid_ref.cell_of(&r.values).unwrap_or(0) as u64
        })?;
        let mut coord = CostMeter::new();
        coord.charge_lan(sample.memory_bytes());
        let cost_model = CostModel::default();
        let build_cost = coord.report_parallel(node_meters.iter(), &cost_model);
        Ok(SamplingAqp {
            sample,
            grid,
            sample_nodes: cluster.num_nodes().min(4),
            build_cost,
            cost_model,
        })
    }

    /// The one-time sample-construction bill.
    pub fn build_cost(&self) -> &CostReport {
        &self.build_cost
    }

    /// Bytes the stored sample occupies (the E8 storage metric).
    pub fn storage_bytes(&self) -> u64 {
        self.sample.memory_bytes()
    }

    /// Number of sampled records.
    pub fn sample_size(&self) -> usize {
        self.sample.sample_size()
    }

    /// Answers an analytical query from the sample.
    ///
    /// Supports `Count`, `Sum`, and `Mean`; other operators return
    /// [`SeaError::InvalidArgument`] (mirroring the restricted operator
    /// support of sampling AQP engines on holistic statistics).
    ///
    /// # Errors
    ///
    /// Unsupported operator, or an empty matching sample for `Mean`.
    pub fn query(&self, query: &AnalyticalQuery) -> Result<AqpOutcome> {
        // Per-query cost: the sample partitions are scanned through the
        // BDAS stack on the nodes storing them.
        let mut node_meters = Vec::new();
        let bytes_per_node = self.storage_bytes() / self.sample_nodes.max(1) as u64;
        let recs_per_node = (self.sample_size() / self.sample_nodes.max(1)) as u64;
        for _ in 0..self.sample_nodes {
            let mut m = CostMeter::new();
            m.touch_node(BDAS_LAYERS);
            m.charge_disk_read(bytes_per_node);
            m.charge_cpu(recs_per_node);
            m.charge_lan(64);
            node_meters.push(m);
        }
        let coord = CostMeter::new();
        let cost = coord.report_parallel(node_meters.iter(), &self.cost_model);

        let region = &query.region;
        let answer = match query.aggregate {
            AggregateKind::Count => {
                AnswerValue::Scalar(self.sample.estimate_count(|r| region.contains_record(r)))
            }
            AggregateKind::Sum { dim } => {
                let mut total = 0.0;
                for (r, w) in self.sample.weighted_records() {
                    if region.contains_record(r) {
                        total += w * r.value(dim);
                    }
                }
                AnswerValue::Scalar(total)
            }
            AggregateKind::Mean { dim } => {
                let est = self
                    .sample
                    .estimate_mean(dim, |r| region.contains_record(r))
                    .ok_or_else(|| SeaError::Empty("no sampled records in the selection".into()))?;
                AnswerValue::Scalar(est)
            }
            other => {
                return Err(SeaError::invalid(format!(
                    "sampling AQP does not support {other:?}"
                )))
            }
        };
        Ok(AqpOutcome { answer, cost })
    }

    /// The grid that defines the strata.
    pub fn strata_grid(&self) -> &GridIndex {
        &self.grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Point, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 128);
        let records: Vec<Record> = (0..40_000)
            .map(|i| Record::new(i, vec![(i % 200) as f64 / 2.0, (i / 200) as f64 / 2.0]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn engine(c: &StorageCluster) -> SamplingAqp {
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        SamplingAqp::build(c, "t", domain, 10, 40, 7).unwrap()
    }

    fn count_query(lo: Vec<f64>, hi: Vec<f64>) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::new(lo, hi).unwrap()),
            AggregateKind::Count,
        )
    }

    #[test]
    fn count_estimates_are_close() {
        let c = cluster();
        let e = engine(&c);
        let q = count_query(vec![10.0, 10.0], vec![60.0, 60.0]);
        let truth = {
            let all: Vec<Record> = c.all_records("t").unwrap();
            q.answer_exact(&all).unwrap().as_scalar().unwrap()
        };
        let out = e.query(&q).unwrap();
        let est = out.answer.as_scalar().unwrap();
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.15, "rel {rel} (est {est} truth {truth})");
    }

    #[test]
    fn mean_estimates_are_close() {
        let c = cluster();
        let e = engine(&c);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![20.0, 20.0], vec![80.0, 80.0]).unwrap()),
            AggregateKind::Mean { dim: 0 },
        );
        let out = e.query(&q).unwrap();
        let est = out.answer.as_scalar().unwrap();
        assert!((est - 50.0).abs() < 5.0, "mean of uniform 20..80: {est}");
    }

    #[test]
    fn unsupported_operators_are_rejected() {
        let c = cluster();
        let e = engine(&c);
        let q = AnalyticalQuery::new(
            Region::Radius(sea_common::Ball::new(Point::new(vec![50.0, 50.0]), 10.0).unwrap()),
            AggregateKind::Median { dim: 0 },
        );
        assert!(matches!(e.query(&q), Err(SeaError::InvalidArgument(_))));
    }

    #[test]
    fn per_query_cost_is_smaller_than_full_scan_but_not_free() {
        let c = cluster();
        let e = engine(&c);
        let q = count_query(vec![0.0, 0.0], vec![100.0, 100.0]);
        let out = e.query(&q).unwrap();
        assert!(out.cost.wall_us > 0.0, "samples live behind the BDAS");
        assert!(out.cost.totals.layer_crossings > 0);
        // but the sample is much smaller than the base table
        let full: u64 = c.stats("t").unwrap().bytes;
        assert!(out.cost.totals.disk_bytes < full / 5);
    }

    #[test]
    fn build_cost_scans_whole_table() {
        let c = cluster();
        let e = engine(&c);
        assert_eq!(e.build_cost().totals.nodes_touched, 4);
        assert!(e.build_cost().totals.disk_bytes >= c.stats("t").unwrap().bytes);
    }

    #[test]
    fn storage_grows_with_strata() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let small = SamplingAqp::build(&c, "t", domain.clone(), 5, 40, 7).unwrap();
        let large = SamplingAqp::build(&c, "t", domain, 20, 40, 7).unwrap();
        assert!(large.storage_bytes() > small.storage_bytes() * 4);
        assert!(large.sample_size() > small.sample_size());
    }

    #[test]
    fn empty_selection_mean_is_error() {
        let c = cluster();
        let e = engine(&c);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![500.0, 500.0], vec![510.0, 510.0]).unwrap()),
            AggregateKind::Mean { dim: 0 },
        );
        assert!(matches!(e.query(&q), Err(SeaError::Empty(_))));
    }
}
