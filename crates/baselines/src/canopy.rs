//! A Data-Canopy-style semantic cache of basic statistics (\[20\]).
//!
//! Data Canopy decomposes statistics into per-chunk *basic aggregates*
//! (count, Σx, Σx², Σxy) cached once and recombined across queries. Our
//! variant chunks each dimension's value range uniformly; a range query on
//! a dimension resolves to interior chunks (served from cache, free) plus
//! up to two boundary chunks (recomputed from base data). The paper's
//! critique — "the storage required … can grow prohibitively large \[and\]
//! such efforts typically only benefit previously seen queries" — is
//! directly observable via [`DataCanopy::storage_bytes`] and the cache-miss
//! cost of first-touch queries.

use std::collections::HashMap;

use sea_common::{
    AggregateKind, AnalyticalQuery, AnswerValue, CostMeter, CostModel, CostReport, Rect, Result,
    SeaError,
};
use sea_storage::{StorageCluster, DIRECT_LAYERS};

use crate::sampling::AqpOutcome;

/// Basic aggregates of one chunk of one dimension.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ChunkStats {
    count: u64,
    sum: f64,
    sum_sq: f64,
}

/// A semantic cache of per-chunk statistics over one table.
#[derive(Debug)]
pub struct DataCanopy<'a> {
    cluster: &'a StorageCluster,
    table: String,
    domain: Rect,
    chunks_per_dim: usize,
    /// (dim, chunk index, value dim) → stats of records whose `dim` value
    /// falls in the chunk, aggregated over attribute `value dim`.
    cache: HashMap<(usize, usize, usize), ChunkStats>,
    cost_model: CostModel,
}

impl<'a> DataCanopy<'a> {
    /// Creates an empty canopy over `table`.
    ///
    /// # Errors
    ///
    /// Missing table or invalid chunking.
    pub fn new(
        cluster: &'a StorageCluster,
        table: &str,
        domain: Rect,
        chunks_per_dim: usize,
    ) -> Result<Self> {
        if chunks_per_dim == 0 {
            return Err(SeaError::invalid("chunks_per_dim must be positive"));
        }
        SeaError::check_dims(cluster.dims(table)?, domain.dims())?;
        Ok(DataCanopy {
            cluster,
            table: table.to_string(),
            domain,
            chunks_per_dim,
            cache: HashMap::new(),
            cost_model: CostModel::default(),
        })
    }

    /// Number of cached chunk statistics.
    pub fn cached_chunks(&self) -> usize {
        self.cache.len()
    }

    /// Cache storage in bytes (the E8 metric): grows with every new
    /// (dimension, chunk, attribute) combination queries touch.
    pub fn storage_bytes(&self) -> u64 {
        self.cache.len() as u64 * (24 + 24)
    }

    fn chunk_edges(&self, dim: usize, chunk: usize) -> (f64, f64) {
        let lo = self.domain.lo()[dim];
        let w = (self.domain.hi()[dim] - lo) / self.chunks_per_dim as f64;
        (lo + w * chunk as f64, lo + w * (chunk + 1) as f64)
    }

    fn chunk_of(&self, dim: usize, v: f64) -> usize {
        let lo = self.domain.lo()[dim];
        let hi = self.domain.hi()[dim];
        let frac = (v - lo) / (hi - lo);
        ((frac * self.chunks_per_dim as f64) as isize).clamp(0, self.chunks_per_dim as isize - 1)
            as usize
    }

    /// Ensures chunk `(dim, chunk)` statistics over attribute `value_dim`
    /// are cached, scanning base data on a miss. Returns the stats plus
    /// the cost (zero on a hit).
    fn chunk_stats(
        &mut self,
        dim: usize,
        chunk: usize,
        value_dim: usize,
    ) -> Result<(ChunkStats, CostReport)> {
        if let Some(s) = self.cache.get(&(dim, chunk, value_dim)) {
            return Ok((*s, CostReport::zero()));
        }
        // Miss: scan the chunk's slab from base data (coordinator-style).
        let (lo, hi) = self.chunk_edges(dim, chunk);
        let mut slab_lo = self.domain.lo().to_vec();
        let mut slab_hi = self.domain.hi().to_vec();
        slab_lo[dim] = lo;
        slab_hi[dim] = hi;
        let slab = Rect::new(slab_lo, slab_hi)?;
        let nodes = self.cluster.nodes_for_region(&self.table, &slab)?;
        let mut node_meters = Vec::new();
        let mut stats = ChunkStats::default();
        for node in nodes {
            let mut meter = CostMeter::new();
            meter.touch_node(DIRECT_LAYERS);
            let records = self
                .cluster
                .scan_node_region(&self.table, node, &slab, &mut meter)?;
            for r in records {
                // Half-open chunks so adjacent chunks never double count
                // (the top chunk is closed at the domain edge).
                let v = r.value(dim);
                let in_chunk = if chunk == self.chunks_per_dim - 1 {
                    v >= lo && v <= hi
                } else {
                    v >= lo && v < hi
                };
                if in_chunk {
                    let x = r.value(value_dim);
                    stats.count += 1;
                    stats.sum += x;
                    stats.sum_sq += x * x;
                }
            }
            meter.charge_lan(24);
            node_meters.push(meter);
        }
        let coord = CostMeter::new();
        let cost = coord.report_parallel(node_meters.iter(), &self.cost_model);
        self.cache.insert((dim, chunk, value_dim), stats);
        Ok((stats, cost))
    }

    /// Answers a one-dimensional-selection statistic: the query's region
    /// must constrain exactly one dimension to `[a, b]` (all other
    /// dimensions spanning the full domain). Supports `Count`, `Sum`,
    /// `Mean`, `Variance`.
    ///
    /// The answer is assembled from cached chunk statistics; chunks
    /// partially covered at the selection boundary are *approximated*
    /// proportionally (the canopy trade-off).
    ///
    /// # Errors
    ///
    /// Regions constraining more than one dimension, or unsupported
    /// operators.
    pub fn query(&mut self, query: &AnalyticalQuery) -> Result<AqpOutcome> {
        let bbox = query.region.bounding_rect();
        SeaError::check_dims(self.domain.dims(), bbox.dims())?;
        // Find the single constrained dimension.
        let mut constrained = None;
        for d in 0..bbox.dims() {
            let full = bbox.lo()[d] <= self.domain.lo()[d] && bbox.hi()[d] >= self.domain.hi()[d];
            if !full {
                if constrained.is_some() {
                    return Err(SeaError::invalid(
                        "DataCanopy answers single-dimension range statistics only",
                    ));
                }
                constrained = Some(d);
            }
        }
        let dim = constrained.unwrap_or(0);
        let (a, b) = (bbox.lo()[dim], bbox.hi()[dim]);
        let value_dim = match query.aggregate {
            AggregateKind::Count => dim,
            AggregateKind::Sum { dim: v }
            | AggregateKind::Mean { dim: v }
            | AggregateKind::Variance { dim: v } => v,
            other => {
                return Err(SeaError::invalid(format!(
                    "DataCanopy does not support {other:?}"
                )))
            }
        };

        let first = self.chunk_of(dim, a);
        let last = self.chunk_of(dim, b);
        let mut total = ChunkStats::default();
        let mut cost = CostReport::zero();
        for chunk in first..=last {
            let (stats, c) = self.chunk_stats(dim, chunk, value_dim)?;
            cost = cost.then(&c);
            let (c_lo, c_hi) = self.chunk_edges(dim, chunk);
            // Fraction of the chunk covered by [a, b].
            let olap = (b.min(c_hi) - a.max(c_lo)).max(0.0);
            let frac = if c_hi > c_lo {
                olap / (c_hi - c_lo)
            } else {
                0.0
            };
            total.count += (stats.count as f64 * frac).round() as u64;
            total.sum += stats.sum * frac;
            total.sum_sq += stats.sum_sq * frac;
        }

        let answer = match query.aggregate {
            AggregateKind::Count => AnswerValue::Scalar(total.count as f64),
            AggregateKind::Sum { .. } => AnswerValue::Scalar(total.sum),
            AggregateKind::Mean { .. } => {
                if total.count == 0 {
                    return Err(SeaError::Empty("mean over empty selection".into()));
                }
                AnswerValue::Scalar(total.sum / total.count as f64)
            }
            AggregateKind::Variance { .. } => {
                if total.count == 0 {
                    return Err(SeaError::Empty("variance over empty selection".into()));
                }
                let mean = total.sum / total.count as f64;
                AnswerValue::Scalar(total.sum_sq / total.count as f64 - mean * mean)
            }
            _ => unreachable!("validated above"),
        };
        Ok(AqpOutcome { answer, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Record, Region};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 128);
        let records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, i as f64 / 100.0]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn slab_query(a: f64, b: f64, agg: AggregateKind) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::new(vec![a, 0.0], vec![b, 100.0]).unwrap()),
            agg,
        )
    }

    #[test]
    fn chunk_aligned_count_is_exact() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 10).unwrap();
        // [10, 20) aligned with chunk 1 plus boundary at 20 hits chunk 2.
        let q = slab_query(10.0, 19.99, AggregateKind::Count);
        let out = canopy.query(&q).unwrap();
        // dim0 values 10..=19 → 10 values × 100 records each = 1000.
        let got = out.answer.as_scalar().unwrap();
        assert!((got - 1000.0).abs() < 60.0, "got {got}");
    }

    #[test]
    fn repeated_queries_hit_cache() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 10).unwrap();
        let q = slab_query(10.0, 30.0, AggregateKind::Count);
        let first = canopy.query(&q).unwrap();
        assert!(first.cost.wall_us > 0.0, "cold cache pays");
        let second = canopy.query(&q).unwrap();
        assert_eq!(second.cost, CostReport::zero(), "warm cache is free");
        assert_eq!(first.answer, second.answer);
    }

    #[test]
    fn overlapping_queries_reuse_chunks() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 10).unwrap();
        canopy
            .query(&slab_query(0.0, 50.0, AggregateKind::Count))
            .unwrap();
        let chunks_before = canopy.cached_chunks();
        // Overlapping query: only new boundary chunks are built.
        let out = canopy
            .query(&slab_query(20.0, 70.0, AggregateKind::Count))
            .unwrap();
        assert!(canopy.cached_chunks() > chunks_before, "two new chunks");
        assert!(canopy.cached_chunks() <= chunks_before + 2);
        assert!(out.answer.as_scalar().unwrap() > 0.0);
    }

    #[test]
    fn mean_and_variance_from_chunks() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 20).unwrap();
        let q = slab_query(0.0, 100.0, AggregateKind::Mean { dim: 0 });
        let got = canopy.query(&q).unwrap().answer.as_scalar().unwrap();
        assert!((got - 49.5).abs() < 1.0, "mean of 0..99: {got}");
        let v = slab_query(0.0, 100.0, AggregateKind::Variance { dim: 0 });
        let got_v = canopy.query(&v).unwrap().answer.as_scalar().unwrap();
        // Variance of discrete uniform 0..99 ≈ 833.25.
        assert!((got_v - 833.25).abs() < 20.0, "got {got_v}");
    }

    #[test]
    fn storage_grows_only_with_touched_chunks() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 100).unwrap();
        assert_eq!(canopy.storage_bytes(), 0);
        canopy
            .query(&slab_query(0.0, 10.0, AggregateKind::Count))
            .unwrap();
        let small = canopy.storage_bytes();
        canopy
            .query(&slab_query(0.0, 90.0, AggregateKind::Count))
            .unwrap();
        assert!(canopy.storage_bytes() > small * 5);
    }

    #[test]
    fn multi_dim_selection_is_rejected() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 10).unwrap();
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![10.0, 10.0], vec![20.0, 20.0]).unwrap()),
            AggregateKind::Count,
        );
        assert!(matches!(
            canopy.query(&q),
            Err(SeaError::InvalidArgument(_))
        ));
    }

    #[test]
    fn unsupported_operator_rejected() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![100.0, 100.0]).unwrap();
        let mut canopy = DataCanopy::new(&c, "t", domain, 10).unwrap();
        let q = slab_query(0.0, 10.0, AggregateKind::Median { dim: 0 });
        assert!(canopy.query(&q).is_err());
    }
}
