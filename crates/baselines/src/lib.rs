//! # sea-baselines
//!
//! Reimplementations of the state-of-the-art systems §II of the paper
//! positions SEA against, all running on the same simulated substrate so
//! their costs and accuracies are directly comparable to the agent's:
//!
//! * [`SamplingAqp`] — a BlinkDB-style engine (\[17\]): offline stratified
//!   samples, per-query scale-up estimation. Faithful to the paper's
//!   critique, its samples live *on the cluster* and every query pays BDAS
//!   layer crossings over the sample partitions.
//! * [`DataCanopy`] — a Data-Canopy-style semantic cache (\[20\]): per-chunk
//!   sufficient statistics built lazily from base data, reused across
//!   queries; storage grows with the touched portion of the data space.
//! * [`LearnedAqp`] — a DBL-style layer (\[19\]): learns a correction model
//!   for the sampling engine's residuals from occasionally-executed exact
//!   queries, so accuracy improves with use while inheriting the AQP
//!   engine's storage and access costs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canopy;
pub mod dbl;
pub mod sampling;

pub use canopy::DataCanopy;
pub use dbl::LearnedAqp;
pub use sampling::SamplingAqp;
