//! A DBL-style learned layer over the sampling AQP engine (\[19\]).
//!
//! Database Learning observes (query, approximate answer, exact answer)
//! triples and learns to correct the AQP engine's error, so the system
//! "becomes smarter every time". Our variant keeps the architecture the
//! paper criticizes — it *inherits* the AQP engine's storage and per-query
//! BDAS access costs, plus storage for its own training history — while
//! improving accuracy with use. That combination is what experiments E2
//! and E8 compare the SEA agent against.

use sea_common::{AnalyticalQuery, AnswerValue, Result, SeaError};
use sea_ml::linreg::RecursiveLeastSquares;
use sea_ml::Regressor;

use crate::sampling::{AqpOutcome, SamplingAqp};

/// A learned correction layer over [`SamplingAqp`].
#[derive(Debug)]
pub struct LearnedAqp {
    engine: SamplingAqp,
    /// Correction model: query features → multiplicative residual
    /// (exact / estimate).
    correction: RecursiveLeastSquares,
    /// Stored training history (the storage overhead DBL pays; \[19\] keeps
    /// thousands of answer items per executed query).
    history: Vec<(Vec<f64>, f64)>,
    trained: u64,
}

impl LearnedAqp {
    /// Wraps a sampling engine.
    ///
    /// # Errors
    ///
    /// Propagates model-construction errors.
    pub fn new(engine: SamplingAqp, feature_dims: usize) -> Result<Self> {
        Ok(LearnedAqp {
            engine,
            correction: RecursiveLeastSquares::new(feature_dims, 100.0, 1.0)?,
            history: Vec::new(),
            trained: 0,
        })
    }

    /// Observations absorbed.
    pub fn trained(&self) -> u64 {
        self.trained
    }

    /// Total storage: the sample plus the retained training history
    /// (the E8 metric).
    pub fn storage_bytes(&self) -> u64 {
        let hist: u64 = self
            .history
            .iter()
            .map(|(f, _)| 8 * f.len() as u64 + 16)
            .sum();
        self.engine.storage_bytes() + hist
    }

    /// Learns from one exactly-executed query.
    ///
    /// # Errors
    ///
    /// Propagates engine errors; non-scalar answers are rejected.
    pub fn observe(&mut self, query: &AnalyticalQuery, exact: &AnswerValue) -> Result<()> {
        let approx = self.engine.query(query)?;
        let (a, e) = match (approx.answer.as_scalar(), exact.as_scalar()) {
            (Some(a), Some(e)) => (a, e),
            _ => return Err(SeaError::invalid("LearnedAqp corrects scalar answers only")),
        };
        if a.abs() < 1e-9 {
            return Ok(()); // nothing to scale from
        }
        let ratio = (e / a).clamp(0.0, 10.0);
        let features = feature_vec(query);
        self.correction.update(&features, ratio)?;
        self.history.push((features, ratio));
        self.trained += 1;
        Ok(())
    }

    /// Answers a query: the sample estimate, multiplied by the learned
    /// correction once enough observations exist.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn query(&self, query: &AnalyticalQuery) -> Result<AqpOutcome> {
        let base = self.engine.query(query)?;
        if self.trained < 5 {
            return Ok(base);
        }
        let Some(a) = base.answer.as_scalar() else {
            return Ok(base);
        };
        let ratio = self
            .correction
            .predict(&feature_vec(query))
            .clamp(0.1, 10.0);
        Ok(AqpOutcome {
            answer: AnswerValue::Scalar(a * ratio),
            cost: base.cost,
        })
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &SamplingAqp {
        &self.engine
    }
}

fn feature_vec(query: &AnalyticalQuery) -> Vec<f64> {
    let mut f = query.to_query_vector();
    f.push(query.region.volume());
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{AggregateKind, CostReport, Point, Record, Rect, Region};
    use sea_storage::{Partitioning, StorageCluster};

    /// A cluster whose density is *doubled* in a stripe, so a coarse
    /// stratified sample systematically mis-estimates counts there and the
    /// correction model has signal to learn.
    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 128);
        let mut records: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        // Densify x ∈ [40, 50): three extra copies at half-offsets.
        let mut id = 20_000;
        for i in 0..10_000u64 {
            let x = (i % 100) as f64;
            if (40.0..50.0).contains(&x) {
                for k in 1..=3 {
                    records.push(Record::new(
                        id,
                        vec![x + k as f64 * 0.2, (i / 100) as f64 + 0.1],
                    ));
                    id += 1;
                }
            }
        }
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn count_query(cx: f64, e: f64) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::centered(&Point::new(vec![cx, 50.0]), &[e, 40.0]).unwrap()),
            AggregateKind::Count,
        )
    }

    fn exact(c: &StorageCluster, q: &AnalyticalQuery) -> AnswerValue {
        let all: Vec<Record> = c.all_records("t").unwrap();
        q.answer_exact(&all).unwrap()
    }

    #[test]
    fn learning_corrects_systematically_stale_samples() {
        // The sample is built BEFORE the dense stripe appears (the classic
        // stale-sample failure of offline AQP); exact answers come from the
        // grown table, so the engine systematically underestimates and the
        // correction model has real signal.
        let mut sparse = StorageCluster::new(4, 128);
        let base: Vec<Record> = (0..10_000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64]))
            .collect();
        sparse.load_table("t", base, Partitioning::Hash).unwrap();
        let domain = Rect::new(vec![0.0, 0.0], vec![101.0, 101.0]).unwrap();
        let engine = SamplingAqp::build(&sparse, "t", domain, 10, 40, 3).unwrap();

        let grown = cluster(); // same data + 4x density in x ∈ [40, 50)
        let mut learned = LearnedAqp::new(engine, 5).unwrap();

        let probe = count_query(45.0, 4.0);
        let truth = exact(&grown, &probe);
        let before = learned.query(&probe).unwrap().answer.relative_error(&truth);
        assert!(before > 0.5, "stale sample badly underestimates: {before}");

        for i in 0..40 {
            let q = count_query(43.0 + (i % 5) as f64, 3.0 + (i % 4) as f64 * 0.5);
            let t = exact(&grown, &q);
            learned.observe(&q, &t).unwrap();
        }
        let after = learned.query(&probe).unwrap().answer.relative_error(&truth);
        assert!(
            after < before / 3.0,
            "error should drop: before {before}, after {after}"
        );
        assert_eq!(learned.trained(), 40);
    }

    #[test]
    fn storage_includes_history() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![101.0, 101.0]).unwrap();
        let engine = SamplingAqp::build(&c, "t", domain, 4, 20, 3).unwrap();
        let base_storage = engine.storage_bytes();
        let mut learned = LearnedAqp::new(engine, 5).unwrap();
        assert_eq!(learned.storage_bytes(), base_storage);
        for i in 0..20 {
            let q = count_query(45.0, 3.0 + i as f64 * 0.1);
            let t = exact(&c, &q);
            learned.observe(&q, &t).unwrap();
        }
        assert!(
            learned.storage_bytes() > base_storage,
            "history costs bytes"
        );
    }

    #[test]
    fn queries_still_pay_aqp_cost() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![101.0, 101.0]).unwrap();
        let engine = SamplingAqp::build(&c, "t", domain, 4, 20, 3).unwrap();
        let learned = LearnedAqp::new(engine, 5).unwrap();
        let out = learned.query(&count_query(45.0, 3.0)).unwrap();
        assert_ne!(out.cost, CostReport::zero());
    }

    #[test]
    fn non_scalar_observation_rejected() {
        let c = cluster();
        let domain = Rect::new(vec![0.0, 0.0], vec![101.0, 101.0]).unwrap();
        let engine = SamplingAqp::build(&c, "t", domain, 4, 20, 3).unwrap();
        let mut learned = LearnedAqp::new(engine, 5).unwrap();
        let q = count_query(45.0, 3.0);
        assert!(learned.observe(&q, &AnswerValue::Pair(1.0, 2.0)).is_err());
    }
}
