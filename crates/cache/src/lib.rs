//! # sea-cache
//!
//! A deterministic, cost-aware **semantic answer cache** for the
//! analytical query path — the aggregate-query sibling of the
//! GraphCache-style subgraph cache in `sea-graph`.
//!
//! The paper's P2/P3 principles rest on workloads with overlapping,
//! drifting interest regions: analysts keep asking about the same
//! subspaces. Nothing on the exact path exploited that before this
//! crate — every repeated [`sea_common::AnalyticalQuery`] paid the full
//! scatter/gather bill again. [`SemanticCache`] closes the gap by
//! remembering, per (aggregate kind, region) key, both the merged
//! [`sea_common::AnswerValue`] and the per-partition answer *fragments*
//! (the matched records each node shipped), so a later query is
//! classified as one of:
//!
//! - **exact hit** — same aggregate, identical region: the stored answer
//!   is returned as-is;
//! - **containment hit** — same aggregate, the cached region *contains*
//!   the queried one: the answer is re-derived by re-filtering the cached
//!   per-node fragments, bit-identical to a cold scan, with every
//!   storage node skipped entirely;
//! - **subsumption miss** — only strictly *smaller* cached regions
//!   exist: the query must execute, but the classification is surfaced
//!   (the workload's interest region grew);
//! - plain **miss** — nothing semantically related is cached.
//!
//! Admission is **cost-based**: an answer enters only when its simulated
//! recompute cost ([`sea_common::CostReport::wall_us`] of the execution
//! that produced it) exceeds [`CacheConfig::admit_min_cost_us`] — cheap
//! answers are cheaper to recompute than to store. Eviction is
//! **charge-aware**: when over [`CacheConfig::capacity_bytes`], the
//! entry with the lowest recompute-cost-per-byte goes first (ties broken
//! by admission sequence number), so the cache preferentially holds what
//! is expensive to rebuild and cheap to keep.
//!
//! ## Determinism contract
//!
//! No wall clock, no global RNG, `BTreeMap` iteration everywhere:
//! lookup, admission, and eviction depend only on the sequence of calls,
//! so cached and uncached runs — and runs at any `SEA_EXEC_THREADS`
//! setting — stay bit-reproducible. Consumers uphold their side by
//! consulting/populating the cache on the coordinator thread only (see
//! `sea-query`'s `Executor::with_cache`).
//!
//! ## Drift epochs
//!
//! [`SemanticCache::advance_epoch`] invalidates every entry admitted
//! before the bump — the hook `sea-geo` uses when the workload generator
//! shifts interest regions (and the hook a mutable-data deployment would
//! tie to ingest batches).
//!
//! Counters (`cache.hits`, `cache.containment_hits`, `cache.misses`,
//! `cache.subsumption_misses`, `cache.evictions`, `cache.insertions`,
//! `cache.invalidations`) and per-query events flow through an attached
//! [`sea_telemetry::TelemetrySink`].
//!
//! ```
//! use sea_cache::{CacheConfig, CacheDecision, SemanticCache};
//! use sea_common::{AggregateKind, AnswerValue, Rect, Region};
//!
//! let cache = SemanticCache::new(CacheConfig::default());
//! let region = Region::Range(Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]).unwrap());
//! // First sight: a miss. Admit the (expensive-to-recompute) answer…
//! assert!(matches!(
//!     cache.lookup(&AggregateKind::Count, &region),
//!     CacheDecision::Miss { .. }
//! ));
//! assert!(cache.admit(&AggregateKind::Count, &region, &AnswerValue::Scalar(42.0), None, 25_000.0));
//! // …and the repeat is an exact hit.
//! assert!(matches!(
//!     cache.lookup(&AggregateKind::Count, &region),
//!     CacheDecision::Exact(AnswerValue::Scalar(v)) if v == 42.0
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use parking_lot::Mutex;
use sea_common::{AggregateKind, AnswerValue, Record, Rect, Region};
use sea_telemetry::TelemetrySink;

/// Configuration of a [`SemanticCache`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Memory budget for cached entries (answers + fragments), in
    /// (simulated) bytes. Exceeding it triggers charge-aware eviction.
    pub capacity_bytes: u64,
    /// Cost-based admission threshold: only answers whose simulated
    /// recompute cost (µs) is at least this enter the cache.
    pub admit_min_cost_us: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // 4 MiB holds a few hundred fragment-bearing entries at E19's
        // scales; 1 ms keeps sub-LAN-round-trip answers out (they are
        // cheaper to recompute than to manage).
        CacheConfig {
            capacity_bytes: 4 * 1024 * 1024,
            admit_min_cost_us: 1_000.0,
        }
    }
}

/// Monotone counters of everything the cache has done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Exact hits (identical key and region).
    pub hits: u64,
    /// Containment hits (cached region ⊇ queried region, answer
    /// re-derived from fragments).
    pub containment_hits: u64,
    /// All misses, including subsumption misses.
    pub misses: u64,
    /// Misses where only strictly smaller cached regions existed for the
    /// key — the query *subsumes* what the cache holds.
    pub subsumption_misses: u64,
    /// Entries evicted under memory pressure.
    pub evictions: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries dropped by [`SemanticCache::advance_epoch`].
    pub invalidations: u64,
}

impl CacheStats {
    /// Exact + containment hits over all lookups (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits + self.containment_hits;
        let total = hits + self.misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// One storage partition's contribution to a cached answer: the records
/// that matched the cached region on that node, in node scan order.
/// Containment hits re-filter these by the (smaller) queried region and
/// rebuild per-node partials — the same records in the same order a cold
/// scan would see, so the re-derived answer is bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeFragment {
    /// The storage node this fragment came from.
    pub node: u64,
    /// Matched records, in the node's scan order.
    pub records: Vec<Record>,
}

impl NodeFragment {
    /// Simulated bytes this fragment occupies in the cache.
    pub fn memory_bytes(&self) -> u64 {
        24 + self
            .records
            .iter()
            .map(|r| 16 + 8 * r.dims() as u64)
            .sum::<u64>()
    }
}

/// How a lookup was classified.
#[derive(Debug, Clone)]
pub enum CacheDecision {
    /// Identical key and region: the stored answer, verbatim.
    Exact(AnswerValue),
    /// A cached region contains the queried one: per-node fragments to
    /// re-derive the answer from (cloned out of the cache).
    Containment(Vec<NodeFragment>),
    /// Nothing reusable.
    Miss {
        /// Whether cached entries for the key exist whose regions are
        /// strictly contained in the queried one (a *subsumption* miss).
        subsumed: bool,
    },
}

#[derive(Debug)]
struct Entry {
    rect: Rect,
    answer: AnswerValue,
    /// Present when the producer shipped per-node fragments; answer-only
    /// entries (e.g. admitted by an edge node that never saw partials)
    /// serve exact hits but cannot serve containment hits.
    fragments: Option<Vec<NodeFragment>>,
    /// Simulated cost (µs) of the execution that produced the answer —
    /// what a future exact hit saves.
    recompute_cost_us: f64,
    bytes: u64,
    epoch: u64,
    /// Admission sequence number: the deterministic tie-break.
    seq: u64,
}

impl Entry {
    fn cost_per_byte(&self) -> f64 {
        self.recompute_cost_us / self.bytes.max(1) as f64
    }

    fn fragment_records(&self) -> u64 {
        self.fragments
            .as_ref()
            .map(|fs| fs.iter().map(|f| f.records.len() as u64).sum())
            .unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct State {
    /// Key (canonical aggregate-kind encoding) → entries in admission
    /// order. `BTreeMap` for deterministic iteration during eviction.
    entries: BTreeMap<String, Vec<Entry>>,
    total_bytes: u64,
    next_seq: u64,
    epoch: u64,
    stats: CacheStats,
}

/// The cost-aware semantic answer cache. Interior-mutable (all methods
/// take `&self`) so one instance threads through an `Executor`, an
/// `AgentPipeline`, and a `GeoSystem` edge without plumbing `&mut`
/// everywhere; a single [`parking_lot::Mutex`] keeps operations atomic.
#[derive(Debug)]
pub struct SemanticCache {
    state: Mutex<State>,
    config: CacheConfig,
    telemetry: TelemetrySink,
}

impl Default for SemanticCache {
    fn default() -> Self {
        SemanticCache::new(CacheConfig::default())
    }
}

/// Canonical cache-key encoding of an aggregate kind. `AggregateKind`
/// carries an `f64` (quantile), so it cannot derive `Ord`/`Hash`; the
/// `Debug` rendering is deterministic and collision-free across the
/// enum's variants.
fn key_of(agg: &AggregateKind) -> String {
    format!("{agg:?}")
}

impl SemanticCache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Self {
        SemanticCache {
            state: Mutex::new(State::default()),
            config,
            telemetry: TelemetrySink::noop(),
        }
    }

    /// Attaches a telemetry sink: `cache.*` counters and per-query
    /// events flow into it.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Classifies `(agg, region)` against the cached entries and bumps
    /// the matching counters. Exact hits require an identical rectangle
    /// (only `Region::Range` selections are admitted); containment hits
    /// additionally serve `Region::Radius` queries whose bounding box
    /// fits inside a fragment-bearing cached rectangle. When several
    /// entries contain the query, the one with the fewest cached records
    /// (cheapest re-derivation) wins, ties broken by admission order.
    pub fn lookup(&self, agg: &AggregateKind, region: &Region) -> CacheDecision {
        let key = key_of(agg);
        let bbox = region.bounding_rect();
        let exact_rect = match region {
            Region::Range(r) => Some(r),
            _ => None,
        };
        let decision = {
            let mut st = self.state.lock();
            let found = match st.entries.get(&key) {
                Some(list) => {
                    if let Some(e) = exact_rect.and_then(|q| list.iter().find(|e| e.rect == *q)) {
                        CacheDecision::Exact(e.answer)
                    } else if let Some(e) = list
                        .iter()
                        .filter(|e| e.fragments.is_some() && e.rect.contains_rect(&bbox))
                        .min_by_key(|e| (e.fragment_records(), e.seq))
                    {
                        CacheDecision::Containment(e.fragments.clone().expect("filtered Some"))
                    } else {
                        let subsumed = list.iter().any(|e| bbox.contains_rect(&e.rect));
                        CacheDecision::Miss { subsumed }
                    }
                }
                None => CacheDecision::Miss { subsumed: false },
            };
            match &found {
                CacheDecision::Exact(_) => st.stats.hits += 1,
                CacheDecision::Containment(_) => st.stats.containment_hits += 1,
                CacheDecision::Miss { subsumed } => {
                    st.stats.misses += 1;
                    if *subsumed {
                        st.stats.subsumption_misses += 1;
                    }
                }
            }
            found
        };
        match &decision {
            CacheDecision::Exact(_) => {
                self.telemetry.incr("cache.hits", 1);
                self.telemetry
                    .event("cache.hit", &[("class", "exact".into())]);
            }
            CacheDecision::Containment(frags) => {
                self.telemetry.incr("cache.containment_hits", 1);
                self.telemetry.event(
                    "cache.hit",
                    &[
                        ("class", "containment".into()),
                        ("fragments", frags.len().into()),
                    ],
                );
            }
            CacheDecision::Miss { subsumed } => {
                self.telemetry.incr("cache.misses", 1);
                if *subsumed {
                    self.telemetry.incr("cache.subsumption_misses", 1);
                }
                self.telemetry
                    .event("cache.miss", &[("subsumed", (*subsumed).into())]);
            }
        }
        decision
    }

    /// Offers an answer for admission; returns whether it was admitted.
    ///
    /// Rejected when the region is not a `Region::Range` (only
    /// rectangles support the exact/containment algebra), when
    /// `recompute_cost_us` is below the admission threshold, or when the
    /// entry alone would exceed the whole capacity. An existing entry
    /// with the same key and rectangle is replaced. Admission may evict:
    /// while over capacity, the entry with the lowest
    /// recompute-cost-per-byte is dropped (stable tie-break on admission
    /// sequence).
    pub fn admit(
        &self,
        agg: &AggregateKind,
        region: &Region,
        answer: &AnswerValue,
        fragments: Option<Vec<NodeFragment>>,
        recompute_cost_us: f64,
    ) -> bool {
        let rect = match region {
            Region::Range(r) => r.clone(),
            _ => return false,
        };
        // A NaN cost is unpriceable — reject it along with cheap entries.
        if recompute_cost_us.is_nan() || recompute_cost_us < self.config.admit_min_cost_us {
            return false;
        }
        let bytes = 64
            + fragments
                .as_ref()
                .map(|fs| fs.iter().map(NodeFragment::memory_bytes).sum())
                .unwrap_or(0u64);
        if bytes > self.config.capacity_bytes {
            return false;
        }
        let key = key_of(agg);
        let mut evicted = 0u64;
        {
            let mut st = self.state.lock();
            let epoch = st.epoch;
            let seq = st.next_seq;
            st.next_seq += 1;
            let list = st.entries.entry(key).or_default();
            if let Some(pos) = list.iter().position(|e| e.rect == rect) {
                let old = list.remove(pos);
                st.total_bytes -= old.bytes;
            }
            let list = st
                .entries
                .get_mut(&key_of(agg))
                .expect("entry list just created");
            list.push(Entry {
                rect,
                answer: *answer,
                fragments,
                recompute_cost_us,
                bytes,
                epoch,
                seq,
            });
            st.total_bytes += bytes;
            st.stats.insertions += 1;
            while st.total_bytes > self.config.capacity_bytes {
                if !Self::evict_one(&mut st) {
                    break;
                }
                evicted += 1;
            }
        }
        self.telemetry.incr("cache.insertions", 1);
        self.telemetry.event(
            "cache.admitted",
            &[
                ("bytes", bytes.into()),
                ("cost_us", recompute_cost_us.into()),
            ],
        );
        if evicted > 0 {
            self.telemetry.incr("cache.evictions", evicted);
            self.telemetry
                .event("cache.evicted", &[("entries", evicted.into())]);
        }
        true
    }

    /// Evicts the entry with the lowest recompute-cost-per-byte (ties:
    /// lowest admission sequence). Returns false when the cache is empty.
    fn evict_one(st: &mut State) -> bool {
        let victim = st
            .entries
            .iter()
            .flat_map(|(key, list)| list.iter().map(move |e| (key, e)))
            .min_by(|(_, a), (_, b)| {
                a.cost_per_byte()
                    .total_cmp(&b.cost_per_byte())
                    .then(a.seq.cmp(&b.seq))
            })
            .map(|(key, e)| (key.clone(), e.seq));
        let Some((key, seq)) = victim else {
            return false;
        };
        let list = st.entries.get_mut(&key).expect("victim's list exists");
        let pos = list
            .iter()
            .position(|e| e.seq == seq)
            .expect("victim still present");
        let removed = list.remove(pos);
        if list.is_empty() {
            st.entries.remove(&key);
        }
        st.total_bytes -= removed.bytes;
        st.stats.evictions += 1;
        true
    }

    /// Starts a new drift epoch, invalidating every entry admitted
    /// before the bump, and returns the new epoch. The hook for workload
    /// drift (interest regions moved; cached regions are no longer worth
    /// their memory) and for data-mutation boundaries (cached answers
    /// would be stale).
    pub fn advance_epoch(&self) -> u64 {
        let (epoch, dropped) = {
            let mut st = self.state.lock();
            st.epoch += 1;
            let epoch = st.epoch;
            let mut dropped = 0u64;
            let mut freed = 0u64;
            for list in st.entries.values_mut() {
                list.retain(|e| {
                    let keep = e.epoch >= epoch;
                    if !keep {
                        dropped += 1;
                        freed += e.bytes;
                    }
                    keep
                });
            }
            st.entries.retain(|_, list| !list.is_empty());
            st.total_bytes -= freed;
            st.stats.invalidations += dropped;
            (epoch, dropped)
        };
        self.telemetry.incr("cache.invalidations", dropped);
        self.telemetry.event(
            "cache.epoch_advanced",
            &[("epoch", epoch.into()), ("dropped", dropped.into())],
        );
        epoch
    }

    /// The current drift epoch (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state.lock().entries.values().map(Vec::len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Simulated bytes currently held.
    pub fn memory_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Drops every entry (counters and epoch are kept).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.entries.clear();
        st.total_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(lo: [f64; 2], hi: [f64; 2]) -> Region {
        Region::Range(Rect::new(lo.to_vec(), hi.to_vec()).unwrap())
    }

    fn frag(node: u64, n: usize) -> NodeFragment {
        NodeFragment {
            node,
            records: (0..n)
                .map(|i| Record::new(i as u64, vec![i as f64, i as f64]))
                .collect(),
        }
    }

    #[test]
    fn classification_exact_containment_subsumption() {
        let cache = SemanticCache::new(CacheConfig::default());
        let big = range([0.0, 0.0], [20.0, 20.0]);
        let small = range([5.0, 5.0], [10.0, 10.0]);
        let huge = range([-10.0, -10.0], [50.0, 50.0]);
        assert!(cache.admit(
            &AggregateKind::Count,
            &big,
            &AnswerValue::Scalar(7.0),
            Some(vec![frag(0, 4), frag(1, 3)]),
            10_000.0,
        ));
        // Exact.
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &big),
            CacheDecision::Exact(AnswerValue::Scalar(v)) if v == 7.0
        ));
        // Containment: smaller region served from fragments.
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &small),
            CacheDecision::Containment(frags) if frags.len() == 2
        ));
        // Subsumption: the query contains what we cached.
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &huge),
            CacheDecision::Miss { subsumed: true }
        ));
        // A different aggregate kind is a plain miss.
        assert!(matches!(
            cache.lookup(&AggregateKind::Sum { dim: 0 }, &big),
            CacheDecision::Miss { subsumed: false }
        ));
        let s = cache.stats();
        assert_eq!(
            (s.hits, s.containment_hits, s.misses, s.subsumption_misses),
            (1, 1, 2, 1)
        );
    }

    #[test]
    fn answer_only_entries_never_serve_containment() {
        let cache = SemanticCache::new(CacheConfig::default());
        let big = range([0.0, 0.0], [20.0, 20.0]);
        let small = range([5.0, 5.0], [10.0, 10.0]);
        assert!(cache.admit(
            &AggregateKind::Count,
            &big,
            &AnswerValue::Scalar(7.0),
            None,
            10_000.0,
        ));
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &small),
            CacheDecision::Miss { .. }
        ));
    }

    #[test]
    fn cost_based_admission_rejects_cheap_answers() {
        let cache = SemanticCache::new(CacheConfig {
            admit_min_cost_us: 500.0,
            ..CacheConfig::default()
        });
        let r = range([0.0, 0.0], [1.0, 1.0]);
        assert!(!cache.admit(
            &AggregateKind::Count,
            &r,
            &AnswerValue::Scalar(1.0),
            None,
            499.9
        ));
        assert!(!cache.admit(
            &AggregateKind::Count,
            &r,
            &AnswerValue::Scalar(1.0),
            None,
            f64::NAN
        ));
        assert!(cache.admit(
            &AggregateKind::Count,
            &r,
            &AnswerValue::Scalar(1.0),
            None,
            500.0
        ));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn radius_regions_are_not_admitted() {
        use sea_common::{Ball, Point};
        let cache = SemanticCache::new(CacheConfig::default());
        let ball = Region::Radius(Ball::new(Point::new(vec![5.0, 5.0]), 2.0).unwrap());
        assert!(!cache.admit(
            &AggregateKind::Count,
            &ball,
            &AnswerValue::Scalar(1.0),
            None,
            1e6
        ));
        // …but a ball query inside a cached rectangle is a containment hit.
        let big = range([0.0, 0.0], [20.0, 20.0]);
        assert!(cache.admit(
            &AggregateKind::Count,
            &big,
            &AnswerValue::Scalar(9.0),
            Some(vec![frag(0, 2)]),
            1e6
        ));
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &ball),
            CacheDecision::Containment(_)
        ));
    }

    #[test]
    fn eviction_order_is_deterministic_and_charge_aware() {
        // Capacity fits two fragment entries; admitting a third evicts
        // the lowest cost-per-byte one. Identical insert sequences must
        // produce identical eviction sequences.
        let run = || {
            let cache = SemanticCache::new(CacheConfig {
                capacity_bytes: 2 * (64 + 24 + 10 * 32),
                admit_min_cost_us: 0.0,
            });
            let regions = [
                range([0.0, 0.0], [1.0, 1.0]),
                range([2.0, 0.0], [3.0, 1.0]),
                range([4.0, 0.0], [5.0, 1.0]),
            ];
            // Same size, increasing recompute cost: the first (cheapest
            // per byte) is the deterministic victim.
            for (i, r) in regions.iter().enumerate() {
                cache.admit(
                    &AggregateKind::Count,
                    r,
                    &AnswerValue::Scalar(i as f64),
                    Some(vec![frag(0, 10)]),
                    1_000.0 * (i + 1) as f64,
                );
            }
            let survivors: Vec<bool> = regions
                .iter()
                .map(|r| {
                    matches!(
                        cache.lookup(&AggregateKind::Count, r),
                        CacheDecision::Exact(_)
                    )
                })
                .collect();
            (survivors, cache.stats().evictions, cache.len())
        };
        let (survivors, evictions, len) = run();
        assert_eq!(
            survivors,
            vec![false, true, true],
            "cheapest-per-byte first"
        );
        assert_eq!(evictions, 1);
        assert_eq!(len, 2);
        for _ in 0..5 {
            assert_eq!(run(), (survivors.clone(), evictions, len), "deterministic");
        }
    }

    #[test]
    fn eviction_ties_break_by_admission_sequence() {
        let entry_bytes = 64 + 24 + 10 * 32;
        let cache = SemanticCache::new(CacheConfig {
            capacity_bytes: 2 * entry_bytes,
            admit_min_cost_us: 0.0,
        });
        let regions = [
            range([0.0, 0.0], [1.0, 1.0]),
            range([2.0, 0.0], [3.0, 1.0]),
            range([4.0, 0.0], [5.0, 1.0]),
        ];
        // Identical cost-per-byte everywhere: the oldest admission loses.
        for r in &regions {
            cache.admit(
                &AggregateKind::Count,
                r,
                &AnswerValue::Scalar(0.0),
                Some(vec![frag(0, 10)]),
                5_000.0,
            );
        }
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &regions[0]),
            CacheDecision::Miss { .. }
        ));
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &regions[1]),
            CacheDecision::Exact(_)
        ));
    }

    #[test]
    fn advance_epoch_drops_pre_drift_entries() {
        let cache = SemanticCache::new(CacheConfig::default());
        let r0 = range([0.0, 0.0], [1.0, 1.0]);
        let r1 = range([2.0, 0.0], [3.0, 1.0]);
        cache.admit(
            &AggregateKind::Count,
            &r0,
            &AnswerValue::Scalar(1.0),
            None,
            1e6,
        );
        assert_eq!(cache.advance_epoch(), 1);
        assert!(cache.is_empty(), "pre-drift entries dropped");
        assert_eq!(cache.memory_bytes(), 0);
        assert_eq!(cache.stats().invalidations, 1);
        // Post-drift admissions live in the new epoch.
        cache.admit(
            &AggregateKind::Count,
            &r1,
            &AnswerValue::Scalar(2.0),
            None,
            1e6,
        );
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &r1),
            CacheDecision::Exact(_)
        ));
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let cache = SemanticCache::new(CacheConfig::default());
        let r = range([0.0, 0.0], [1.0, 1.0]);
        for i in 0..5 {
            cache.admit(
                &AggregateKind::Count,
                &r,
                &AnswerValue::Scalar(i as f64),
                Some(vec![frag(0, 10)]),
                1e6,
            );
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.memory_bytes(), 64 + 24 + 10 * 32);
        assert!(matches!(
            cache.lookup(&AggregateKind::Count, &r),
            CacheDecision::Exact(AnswerValue::Scalar(v)) if v == 4.0
        ));
    }

    #[test]
    fn telemetry_counters_flow_to_the_sink() {
        let sink = TelemetrySink::recording();
        let cache = SemanticCache::new(CacheConfig::default()).with_telemetry(sink.clone());
        let big = range([0.0, 0.0], [20.0, 20.0]);
        let small = range([5.0, 5.0], [10.0, 10.0]);
        cache.lookup(&AggregateKind::Count, &big);
        cache.admit(
            &AggregateKind::Count,
            &big,
            &AnswerValue::Scalar(7.0),
            Some(vec![frag(0, 4)]),
            10_000.0,
        );
        cache.lookup(&AggregateKind::Count, &big);
        cache.lookup(&AggregateKind::Count, &small);
        cache.advance_epoch();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("cache.hits"), 1);
        assert_eq!(snap.counter("cache.containment_hits"), 1);
        assert_eq!(snap.counter("cache.misses"), 1);
        assert_eq!(snap.counter("cache.insertions"), 1);
        assert_eq!(snap.counter("cache.invalidations"), 1);
        assert!(snap.event_count("cache.hit") == 2);
        assert!(snap.event_count("cache.admitted") == 1);
    }
}
