//! # sea-graph
//!
//! Graph analytics substrate for P3's third bullet: a labelled-graph
//! database, a VF2-style subgraph-isomorphism matcher, and a
//! GraphCache-style **subgraph-query semantic cache** (\[34\], \[35\]) that
//! turns past query answers into candidate pruning for future queries —
//! the paper reports "performance improvements up to 40X".
//!
//! The database model follows the EDBT GraphCache setting: a collection of
//! many (small-to-medium) labelled data graphs; a query is a pattern graph
//! and its answer is the set of database graphs containing the pattern.
//!
//! Cache semantics:
//! * **Exact hit** — the same pattern was answered before: zero
//!   verifications.
//! * **Subgraph hit** — a cached pattern `P'` is a subgraph of the query
//!   `P`: every answer of `P` is an answer of `P'`, so only `P'`'s answer
//!   set needs verification.
//! * **Supergraph hit** — a cached `P'` is a supergraph of `P`: `P'`'s
//!   answers are guaranteed answers of `P` and skip verification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod db;
pub mod generate;
pub mod graph;
pub mod hybrid;
pub mod iso;
pub mod ullmann;

pub use cache::GraphCache;
pub use db::{GraphDb, QueryStats};
pub use generate::GraphGenerator;
pub use graph::Graph;
pub use hybrid::{HybridMatcher, MatchAlgorithm};
pub use iso::subgraph_isomorphic;
pub use ullmann::subgraph_isomorphic_ullmann;
