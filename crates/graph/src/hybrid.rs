//! Hybrid algorithm selection for subgraph queries (\[37\], \[38\]).
//!
//! "For graph-pattern queries we have found that different algorithms and
//! different index types are preferable for different graph patterns and
//! graph databases" (P4). This module implements the two-algorithm
//! portfolio (VF2-style vs Ullmann-style) with a per-query selector:
//!
//! * [`MatchAlgorithm::heuristic_for`] — a feature rule (pattern density):
//!   dense patterns benefit from Ullmann's refinement, sparse ones from
//!   VF2's light checks.
//! * [`HybridMatcher`] — a *learned* selector in the spirit of G6: it
//!   measures both algorithms on a training sample (counting search work)
//!   and picks per query-feature-bucket thereafter.

use crate::graph::Graph;
use crate::iso::subgraph_isomorphic;
use crate::ullmann::subgraph_isomorphic_ullmann;

/// The available subgraph-matching algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchAlgorithm {
    /// VF2-style backtracking with connectivity-anchored candidates.
    Vf2,
    /// Ullmann-style candidate-matrix refinement.
    Ullmann,
}

impl MatchAlgorithm {
    /// Runs the algorithm.
    pub fn matches(&self, pattern: &Graph, target: &Graph) -> bool {
        match self {
            MatchAlgorithm::Vf2 => subgraph_isomorphic(pattern, target),
            MatchAlgorithm::Ullmann => subgraph_isomorphic_ullmann(pattern, target),
        }
    }

    /// The density-based heuristic choice for `pattern`: Ullmann for
    /// dense patterns (edge density ≥ 0.5 of the complete graph),
    /// VF2 otherwise.
    pub fn heuristic_for(pattern: &Graph) -> MatchAlgorithm {
        let n = pattern.num_nodes();
        if n < 2 {
            return MatchAlgorithm::Vf2;
        }
        let max_edges = n * (n - 1) / 2;
        if pattern.num_edges() * 2 >= max_edges {
            MatchAlgorithm::Ullmann
        } else {
            MatchAlgorithm::Vf2
        }
    }
}

/// Feature bucket of a pattern: (node-count band, density band).
fn bucket(pattern: &Graph) -> (usize, usize) {
    let n = pattern.num_nodes();
    let size_band = match n {
        0..=3 => 0,
        4..=6 => 1,
        _ => 2,
    };
    let max_edges = (n * n.saturating_sub(1) / 2).max(1);
    let density_band = (pattern.num_edges() * 3 / max_edges).min(2);
    (size_band, density_band)
}

/// A learned per-bucket algorithm selector.
#[derive(Debug, Clone, Default)]
pub struct HybridMatcher {
    /// bucket → (vf2 total µs, ullmann total µs, samples).
    measurements: std::collections::HashMap<(usize, usize), (f64, f64, u32)>,
}

impl HybridMatcher {
    /// An empty selector (falls back to the heuristic until trained).
    pub fn new() -> Self {
        HybridMatcher::default()
    }

    /// Number of feature buckets with measurements.
    pub fn trained_buckets(&self) -> usize {
        self.measurements.len()
    }

    /// Measures both algorithms on one (pattern, target) pair and records
    /// the timings in the pattern's bucket. Returns whether they agreed
    /// (they always must — disagreement is a bug).
    pub fn train(&mut self, pattern: &Graph, target: &Graph) -> bool {
        let t0 = std::time::Instant::now();
        let a = subgraph_isomorphic(pattern, target);
        let vf2_us = t0.elapsed().as_secs_f64() * 1e6;
        let t1 = std::time::Instant::now();
        let b = subgraph_isomorphic_ullmann(pattern, target);
        let ull_us = t1.elapsed().as_secs_f64() * 1e6;
        let e = self
            .measurements
            .entry(bucket(pattern))
            .or_insert((0.0, 0.0, 0));
        e.0 += vf2_us;
        e.1 += ull_us;
        e.2 += 1;
        a == b
    }

    /// The selector's choice for `pattern`: the measured-faster algorithm
    /// of its bucket, or the heuristic when the bucket is unmeasured.
    pub fn choose(&self, pattern: &Graph) -> MatchAlgorithm {
        match self.measurements.get(&bucket(pattern)) {
            Some((vf2, ull, n)) if *n > 0 => {
                if vf2 <= ull {
                    MatchAlgorithm::Vf2
                } else {
                    MatchAlgorithm::Ullmann
                }
            }
            _ => MatchAlgorithm::heuristic_for(pattern),
        }
    }

    /// Runs the chosen algorithm.
    pub fn matches(&self, pattern: &Graph, target: &Graph) -> bool {
        self.choose(pattern).matches(pattern, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GraphGenerator;

    #[test]
    fn heuristic_splits_by_density() {
        let sparse = GraphGenerator::new(2, 0.1, 1).generate(8, 0);
        let mut dense = Graph::new();
        for _ in 0..5 {
            dense.add_node(1);
        }
        for a in 0..5 {
            for b in (a + 1)..5 {
                dense.add_edge(a, b).unwrap();
            }
        }
        assert_eq!(MatchAlgorithm::heuristic_for(&sparse), MatchAlgorithm::Vf2);
        assert_eq!(
            MatchAlgorithm::heuristic_for(&dense),
            MatchAlgorithm::Ullmann
        );
    }

    #[test]
    fn algorithms_always_agree_through_training() {
        let data_gen = GraphGenerator::new(3, 0.3, 7);
        let query_gen = GraphGenerator::new(3, 0.4, 8);
        let mut matcher = HybridMatcher::new();
        for i in 0..60 {
            let target = data_gen.generate(10 + (i % 5) as usize, i);
            let pattern = query_gen.generate(3 + (i % 4) as usize, 500 + i);
            assert!(matcher.train(&pattern, &target), "algorithms disagreed");
        }
        assert!(matcher.trained_buckets() >= 2);
    }

    #[test]
    fn trained_choice_is_used_and_correct() {
        let data_gen = GraphGenerator::new(3, 0.3, 9);
        let query_gen = GraphGenerator::new(3, 0.4, 10);
        let mut matcher = HybridMatcher::new();
        for i in 0..40 {
            let target = data_gen.generate(12, i);
            let pattern = query_gen.generate(4, 900 + i);
            matcher.train(&pattern, &target);
        }
        // Fresh queries: the hybrid result equals both ground truths.
        for i in 0..20 {
            let target = data_gen.generate(12, 2000 + i);
            let pattern = query_gen.generate(4, 3000 + i);
            let want = MatchAlgorithm::Vf2.matches(&pattern, &target);
            assert_eq!(matcher.matches(&pattern, &target), want);
        }
    }

    #[test]
    fn untrained_matcher_falls_back_to_heuristic() {
        let matcher = HybridMatcher::new();
        let sparse = GraphGenerator::new(2, 0.1, 11).generate(8, 0);
        assert_eq!(matcher.choose(&sparse), MatchAlgorithm::Vf2);
    }
}
