//! Deterministic random-graph generation for tests and benches.

use crate::graph::Graph;

/// A seeded Erdős–Rényi-style generator over labelled graphs.
///
/// Uses a splitmix64 stream so generation is deterministic and
/// dependency-free (no `rand` needed in this crate).
#[derive(Debug, Clone)]
pub struct GraphGenerator {
    labels: u32,
    edge_prob: f64,
    seed: u64,
}

impl GraphGenerator {
    /// A generator producing graphs with labels in `0..labels` and
    /// independent edge probability `edge_prob`.
    pub fn new(labels: u32, edge_prob: f64, seed: u64) -> Self {
        GraphGenerator {
            labels: labels.max(1),
            edge_prob: edge_prob.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Generates a graph with `nodes` nodes; `salt` varies the stream.
    pub fn generate(&self, nodes: usize, salt: u64) -> Graph {
        let mut state = self
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58476D1CE4E5B9));
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut g = Graph::new();
        for _ in 0..nodes {
            let l = (next() % self.labels as u64) as u32;
            g.add_node(l);
        }
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                let r = next() as f64 / u64::MAX as f64;
                if r < self.edge_prob {
                    let _ = g.add_edge(a, b);
                }
            }
        }
        // Connect stragglers into a spine so patterns have a chance.
        for v in 1..nodes {
            if g.degree(v) == 0 {
                let _ = g.add_edge(v - 1, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_salt() {
        let gen = GraphGenerator::new(4, 0.3, 1);
        let a = gen.generate(10, 7);
        let b = gen.generate(10, 7);
        assert_eq!(a, b);
        let c = gen.generate(10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_label_range_and_size() {
        let gen = GraphGenerator::new(3, 0.5, 2);
        let g = gen.generate(25, 0);
        assert_eq!(g.num_nodes(), 25);
        for v in 0..25 {
            assert!(g.label(v) < 3);
        }
    }

    #[test]
    fn edge_probability_scales_density() {
        let sparse = GraphGenerator::new(2, 0.05, 3).generate(40, 0);
        let dense = GraphGenerator::new(2, 0.6, 3).generate(40, 0);
        assert!(dense.num_edges() > sparse.num_edges() * 3);
    }

    #[test]
    fn no_isolated_nodes() {
        let g = GraphGenerator::new(2, 0.01, 4).generate(30, 0);
        for v in 1..30 {
            assert!(g.degree(v) > 0);
        }
    }
}
