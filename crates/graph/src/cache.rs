//! The GraphCache-style semantic cache for subgraph queries.

use std::collections::BTreeMap;

use crate::db::{GraphDb, QueryStats};
use crate::graph::Graph;
use crate::iso::{graphs_isomorphic, subgraph_isomorphic};

/// One cached query and its answer set.
#[derive(Debug, Clone)]
struct CacheEntry {
    pattern: Graph,
    answer: Vec<usize>,
}

/// A semantic cache in front of a [`GraphDb`].
///
/// # Examples
///
/// ```
/// use sea_graph::{Graph, GraphCache, GraphDb};
///
/// let mut db = GraphDb::new();
/// let mut g = Graph::new();
/// let a = g.add_node(1);
/// let b = g.add_node(2);
/// g.add_edge(a, b).unwrap();
/// db.add_graph(g.clone());
///
/// let mut cache = GraphCache::new(64);
/// let (first, s1) = cache.query(&db, &g);
/// let (second, s2) = cache.query(&db, &g);
/// assert_eq!(first, second);
/// assert!(s1.verifications > 0);
/// assert_eq!(s2.verifications, 0, "exact hit");
/// ```
#[derive(Debug, Clone)]
pub struct GraphCache {
    capacity: usize,
    /// fingerprint → entries (collisions resolved by exact isomorphism).
    /// A `BTreeMap` so the semantic-hit scan in [`Self::query`] visits
    /// entries in a fixed order: the tightest-subgraph tie-break keeps
    /// the first candidate set seen, and hash-map iteration order would
    /// make that (and hence verification counts) vary run to run.
    entries: BTreeMap<u64, Vec<CacheEntry>>,
    /// Insertion order for FIFO eviction.
    order: Vec<u64>,
    hits_exact: u64,
    hits_sub: u64,
    hits_super: u64,
    misses: u64,
}

impl GraphCache {
    /// A cache holding at most `capacity` query entries (FIFO eviction).
    pub fn new(capacity: usize) -> Self {
        GraphCache {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            order: Vec::new(),
            hits_exact: 0,
            hits_sub: 0,
            hits_super: 0,
            misses: 0,
        }
    }

    /// Cached query entries currently held.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(exact, subgraph, supergraph, miss)` hit counters.
    pub fn hit_counts(&self) -> (u64, u64, u64, u64) {
        (self.hits_exact, self.hits_sub, self.hits_super, self.misses)
    }

    /// Cache memory footprint in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.entries
            .values()
            .flatten()
            .map(|e| e.pattern.storage_bytes() + 8 * e.answer.len() as u64)
            .sum()
    }

    /// Answers `pattern` over `db`, exploiting exact, subgraph, and
    /// supergraph cache hits, then caches the fresh answer.
    pub fn query(&mut self, db: &GraphDb, pattern: &Graph) -> (Vec<usize>, QueryStats) {
        // 1. Exact hit.
        if let Some(bucket) = self.entries.get(&pattern.fingerprint()) {
            for e in bucket {
                if graphs_isomorphic(&e.pattern, pattern) {
                    self.hits_exact += 1;
                    let stats = QueryStats {
                        from_cache: e.answer.len(),
                        ..QueryStats::default()
                    };
                    return (e.answer.clone(), stats);
                }
            }
        }

        // 2. Semantic hits. The tightest subgraph hit gives the smallest
        // candidate set; all supergraph hits contribute guaranteed answers.
        let mut candidates: Option<Vec<usize>> = None;
        let mut guaranteed: Vec<usize> = Vec::new();
        for e in self.entries.values().flatten() {
            if e.pattern.num_nodes() <= pattern.num_nodes()
                && subgraph_isomorphic(&e.pattern, pattern)
            {
                // Cached pattern ⊆ query ⇒ answer(query) ⊆ cached answer.
                match &candidates {
                    Some(c) if c.len() <= e.answer.len() => {}
                    _ => candidates = Some(e.answer.clone()),
                }
            } else if e.pattern.num_nodes() >= pattern.num_nodes()
                && subgraph_isomorphic(pattern, &e.pattern)
            {
                // Query ⊆ cached pattern ⇒ cached answers contain query.
                guaranteed.extend(&e.answer);
            }
        }
        guaranteed.sort_unstable();
        guaranteed.dedup();
        match (&candidates, guaranteed.is_empty()) {
            (Some(_), _) => self.hits_sub += 1,
            (None, false) => self.hits_super += 1,
            (None, true) => self.misses += 1,
        }

        let (answer, stats) = db.query_candidates(pattern, candidates.as_deref(), &guaranteed);
        self.insert(pattern.clone(), answer.clone());
        (answer, stats)
    }

    fn insert(&mut self, pattern: Graph, answer: Vec<usize>) {
        while self.len() >= self.capacity {
            let oldest = self.order.remove(0);
            if let Some(bucket) = self.entries.get_mut(&oldest) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                }
                if bucket.is_empty() {
                    self.entries.remove(&oldest);
                }
            }
        }
        let fp = pattern.fingerprint();
        self.entries
            .entry(fp)
            .or_default()
            .push(CacheEntry { pattern, answer });
        self.order.push(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GraphGenerator;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<usize> = labels.iter().map(|&l| g.add_node(l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn db() -> GraphDb {
        let gen = GraphGenerator::new(4, 0.25, 42);
        let mut db = GraphDb::new();
        for i in 0..200 {
            db.add_graph(gen.generate(12 + (i % 8), i as u64));
        }
        db
    }

    #[test]
    fn exact_hit_answers_free() {
        let db = db();
        let mut cache = GraphCache::new(32);
        let q = path(&[0, 1, 2]);
        let (a1, s1) = cache.query(&db, &q);
        let (a2, s2) = cache.query(&db, &q);
        assert_eq!(a1, a2);
        assert!(s1.verifications > 0);
        assert_eq!(s2.verifications, 0);
        assert_eq!(cache.hit_counts().0, 1);
    }

    #[test]
    fn subgraph_hit_prunes_candidates() {
        let db = db();
        let mut cache = GraphCache::new(32);
        // First the small pattern, then a bigger pattern containing it.
        let small = path(&[0, 1]);
        let (small_answer, cold) = cache.query(&db, &small);
        let big = path(&[0, 1, 2]);
        let (big_answer, warm) = cache.query(&db, &big);
        assert!(
            warm.verifications <= small_answer.len(),
            "candidates limited to the cached answer set: {} vs {}",
            warm.verifications,
            small_answer.len()
        );
        assert!(warm.verifications + warm.filtered_out <= cold.verifications + cold.filtered_out);
        // Answer correctness vs cold database query.
        let (want, _) = db.query(&big);
        assert_eq!(big_answer, want);
        assert_eq!(cache.hit_counts().1, 1, "one subgraph hit");
    }

    #[test]
    fn supergraph_hit_guarantees_answers() {
        let db = db();
        let mut cache = GraphCache::new(32);
        let big = path(&[0, 1, 2]);
        cache.query(&db, &big);
        let small = path(&[0, 1]);
        let (answer, stats) = cache.query(&db, &small);
        assert!(stats.from_cache > 0, "supergraph answers came free");
        let (want, _) = db.query(&small);
        assert_eq!(answer, want);
    }

    #[test]
    fn cache_answers_match_uncached_on_workload() {
        let db = db();
        let gen = GraphGenerator::new(4, 0.4, 9);
        let mut cache = GraphCache::new(64);
        for i in 0..30 {
            let q = gen.generate(3 + (i % 3), 1000 + (i % 10) as u64);
            let (cached, _) = cache.query(&db, &q);
            let (want, _) = db.query(&q);
            assert_eq!(cached, want, "query {i}");
        }
    }

    #[test]
    fn overlapping_workload_reduces_work() {
        let db = db();
        // Workload: 50 queries drawn from 5 distinct patterns.
        let patterns: Vec<Graph> = (0..5)
            .map(|i| path(&[i % 4, (i + 1) % 4, (i + 2) % 4]))
            .collect();
        let mut cold_work = 0usize;
        let mut warm_work = 0usize;
        let mut cache = GraphCache::new(64);
        for i in 0..50 {
            let q = &patterns[i % 5];
            let (_, cold) = db.query(q);
            cold_work += cold.verifications;
            let (_, warm) = cache.query(&db, q);
            warm_work += warm.verifications;
        }
        assert!(
            warm_work * 5 < cold_work,
            "cache saves most verification work: {warm_work} vs {cold_work}"
        );
    }

    #[test]
    fn eviction_respects_capacity() {
        let db = db();
        let mut cache = GraphCache::new(3);
        for i in 0..10u32 {
            let q = path(&[i % 4, (i + 1) % 4, (i + 3) % 4, i % 2]);
            cache.query(&db, &q);
            assert!(cache.len() <= 3);
        }
        assert!(cache.memory_bytes() > 0);
    }
}
