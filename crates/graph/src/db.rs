//! The graph database: a collection of data graphs answering
//! subgraph-containment queries.

use sea_common::{Result, SeaError};

use crate::graph::Graph;
use crate::iso::subgraph_isomorphic;

/// Work statistics of one query execution — the cache-effectiveness metric
/// of experiment E6 is the drop in `verifications`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryStats {
    /// Candidate graphs whose containment was verified by isomorphism
    /// search (the expensive step).
    pub verifications: usize,
    /// Candidates skipped via cheap label-filtering.
    pub filtered_out: usize,
    /// Answers obtained without any verification (cache hits).
    pub from_cache: usize,
}

/// A database of labelled graphs.
#[derive(Debug, Clone, Default)]
pub struct GraphDb {
    graphs: Vec<Graph>,
}

impl GraphDb {
    /// An empty database.
    pub fn new() -> Self {
        GraphDb::default()
    }

    /// Adds a graph, returning its id.
    pub fn add_graph(&mut self, g: Graph) -> usize {
        self.graphs.push(g);
        self.graphs.len() - 1
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The graph with id `id`.
    ///
    /// # Errors
    ///
    /// Unknown id.
    pub fn graph(&self, id: usize) -> Result<&Graph> {
        self.graphs
            .get(id)
            .ok_or_else(|| SeaError::NotFound(format!("graph {id}")))
    }

    /// Answers a subgraph query without a cache: label-filter every stored
    /// graph, then verify the survivors by isomorphism search. Returns the
    /// sorted ids of graphs containing `pattern` plus work statistics.
    pub fn query(&self, pattern: &Graph) -> (Vec<usize>, QueryStats) {
        self.query_candidates(pattern, None, &[])
    }

    /// Core query routine used by the semantic cache:
    ///
    /// * `candidates` — if `Some`, only these ids are considered at all
    ///   (a subgraph cache hit shrank the search space);
    /// * `guaranteed` — ids known to contain the pattern (a supergraph
    ///   cache hit), included in the answer without verification.
    pub fn query_candidates(
        &self,
        pattern: &Graph,
        candidates: Option<&[usize]>,
        guaranteed: &[usize],
    ) -> (Vec<usize>, QueryStats) {
        let mut stats = QueryStats {
            from_cache: guaranteed.len(),
            ..QueryStats::default()
        };
        let mut answer: Vec<usize> = guaranteed.to_vec();
        let p_labels = pattern.label_multiset();

        let ids: Vec<usize> = match candidates {
            Some(c) => c.to_vec(),
            None => (0..self.graphs.len()).collect(),
        };
        for id in ids {
            if answer.contains(&id) {
                continue;
            }
            let Some(g) = self.graphs.get(id) else {
                continue;
            };
            if !label_superset(&g.label_multiset(), &p_labels)
                || g.num_edges() < pattern.num_edges()
            {
                stats.filtered_out += 1;
                continue;
            }
            stats.verifications += 1;
            if subgraph_isomorphic(pattern, g) {
                answer.push(id);
            }
        }
        answer.sort_unstable();
        answer.dedup();
        (answer, stats)
    }
}

/// Whether sorted multiset `sup` contains sorted multiset `sub`.
fn label_superset(sup: &[u32], sub: &[u32]) -> bool {
    let mut i = 0;
    for &l in sub {
        // advance i to the first element >= l
        while i < sup.len() && sup[i] < l {
            i += 1;
        }
        if i >= sup.len() || sup[i] != l {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<usize> = labels.iter().map(|&l| g.add_node(l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn db() -> GraphDb {
        let mut db = GraphDb::new();
        db.add_graph(path(&[1, 2, 3])); // 0
        db.add_graph(path(&[1, 2])); // 1
        db.add_graph(path(&[3, 2, 1, 2])); // 2
        db.add_graph(path(&[5, 5, 5])); // 3
        db
    }

    #[test]
    fn query_finds_containing_graphs() {
        let db = db();
        let (ids, stats) = db.query(&path(&[1, 2]));
        assert_eq!(ids, vec![0, 1, 2]);
        assert!(stats.filtered_out >= 1, "label filter killed graph 3");
        assert!(stats.verifications <= 3);
    }

    #[test]
    fn candidate_restriction_limits_verifications() {
        let db = db();
        let (ids, stats) = db.query_candidates(&path(&[1, 2]), Some(&[0, 1]), &[]);
        assert_eq!(ids, vec![0, 1]);
        assert!(stats.verifications <= 2);
    }

    #[test]
    fn guaranteed_answers_skip_verification() {
        let db = db();
        let (ids, stats) = db.query_candidates(&path(&[1, 2]), Some(&[2]), &[0, 1]);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(stats.from_cache, 2);
        assert_eq!(stats.verifications, 1);
    }

    #[test]
    fn label_superset_logic() {
        assert!(label_superset(&[1, 2, 2, 3], &[2, 3]));
        assert!(!label_superset(&[1, 2, 3], &[2, 2]));
        assert!(label_superset(&[1], &[]));
        assert!(!label_superset(&[], &[1]));
    }

    #[test]
    fn graph_accessor() {
        let db = db();
        assert_eq!(db.graph(0).unwrap().num_nodes(), 3);
        assert!(db.graph(99).is_err());
        assert_eq!(db.len(), 4);
        assert!(!db.is_empty());
    }
}
