//! VF2-style subgraph isomorphism.

use crate::graph::Graph;

/// Whether `pattern` is subgraph-isomorphic to `target`: an injective map
/// of pattern nodes to target nodes preserving labels and pattern edges.
/// (Non-induced semantics: extra target edges are allowed.)
///
/// The search is a depth-first backtracking match with label, degree, and
/// connectivity pruning — the standard VF2 recipe.
pub fn subgraph_isomorphic(pattern: &Graph, target: &Graph) -> bool {
    if pattern.num_nodes() == 0 {
        return true;
    }
    if pattern.num_nodes() > target.num_nodes() || pattern.num_edges() > target.num_edges() {
        return false;
    }
    // Quick label-multiset necessary condition.
    let mut t_labels = target.label_multiset();
    for l in pattern.label_multiset() {
        // Remove one occurrence of l from t_labels.
        match t_labels.binary_search(&l) {
            Ok(pos) => {
                t_labels.remove(pos);
            }
            Err(_) => return false,
        }
    }

    // Match order: pattern nodes by descending degree, but keeping the
    // matched prefix connected when possible (cheap approximation: start
    // from the highest-degree node and BFS).
    let order = match_order(pattern);
    let mut mapping = vec![usize::MAX; pattern.num_nodes()];
    let mut used = vec![false; target.num_nodes()];
    backtrack(pattern, target, &order, 0, &mut mapping, &mut used)
}

fn match_order(pattern: &Graph) -> Vec<usize> {
    let n = pattern.num_nodes();
    let start = (0..n).max_by_key(|&v| pattern.degree(v)).unwrap_or(0);
    let mut order = vec![start];
    let mut in_order = vec![false; n];
    in_order[start] = true;
    // Greedy: next node with most matched neighbours, ties by degree.
    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !in_order[v])
            .max_by_key(|&v| {
                let connected = pattern
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| in_order[u])
                    .count();
                (connected, pattern.degree(v))
            })
            .expect("nodes remain");
        in_order[next] = true;
        order.push(next);
    }
    order
}

fn backtrack(
    pattern: &Graph,
    target: &Graph,
    order: &[usize],
    depth: usize,
    mapping: &mut [usize],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let p = order[depth];
    // Candidates: if p has an already-mapped neighbour, restrict to that
    // neighbour's image's neighbourhood; otherwise all target nodes.
    let anchored: Option<usize> = pattern
        .neighbors(p)
        .iter()
        .find(|&&u| mapping[u] != usize::MAX)
        .map(|&u| mapping[u]);
    let candidates: Vec<usize> = match anchored {
        Some(t_anchor) => target.neighbors(t_anchor).to_vec(),
        None => (0..target.num_nodes()).collect(),
    };
    for t in candidates {
        if used[t] || target.label(t) != pattern.label(p) || target.degree(t) < pattern.degree(p) {
            continue;
        }
        // All mapped pattern neighbours of p must be target neighbours of t.
        let ok = pattern
            .neighbors(p)
            .iter()
            .all(|&u| mapping[u] == usize::MAX || target.has_edge(t, mapping[u]));
        if !ok {
            continue;
        }
        mapping[p] = t;
        used[t] = true;
        if backtrack(pattern, target, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[p] = usize::MAX;
        used[t] = false;
    }
    false
}

/// Whether two graphs are isomorphic (mutual subgraph containment with
/// equal sizes — exact for our label-preserving, simple-graph setting).
pub fn graphs_isomorphic(a: &Graph, b: &Graph) -> bool {
    a.num_nodes() == b.num_nodes() && a.num_edges() == b.num_edges() && subgraph_isomorphic(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<usize> = labels.iter().map(|&l| g.add_node(l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    fn cycle(labels: &[u32]) -> Graph {
        let mut g = path(labels);
        g.add_edge(labels.len() - 1, 0).unwrap();
        g
    }

    #[test]
    fn empty_pattern_matches_anything() {
        assert!(subgraph_isomorphic(&Graph::new(), &path(&[1, 2])));
    }

    #[test]
    fn path_in_cycle() {
        let p = path(&[1, 1, 1]);
        let c = cycle(&[1, 1, 1, 1, 1]);
        assert!(subgraph_isomorphic(&p, &c));
        assert!(!subgraph_isomorphic(&c, &p), "cycle needs a cycle");
    }

    #[test]
    fn labels_must_match() {
        let p = path(&[1, 2]);
        assert!(subgraph_isomorphic(&p, &path(&[2, 1, 3])));
        assert!(!subgraph_isomorphic(&p, &path(&[1, 1, 1])));
    }

    #[test]
    fn triangle_not_in_square_but_in_k4() {
        let tri = cycle(&[1, 1, 1]);
        let square = cycle(&[1, 1, 1, 1]);
        assert!(!subgraph_isomorphic(&tri, &square));
        // K4
        let mut k4 = Graph::new();
        for _ in 0..4 {
            k4.add_node(1);
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                k4.add_edge(a, b).unwrap();
            }
        }
        assert!(subgraph_isomorphic(&tri, &k4));
        assert!(subgraph_isomorphic(&square, &k4), "non-induced semantics");
    }

    #[test]
    fn disconnected_pattern() {
        let mut p = Graph::new();
        p.add_node(1);
        p.add_node(2); // two isolated nodes
        let t = path(&[2, 3, 1]);
        assert!(subgraph_isomorphic(&p, &t));
        let t2 = path(&[1, 3]);
        assert!(!subgraph_isomorphic(&p, &t2), "no label-2 node");
    }

    #[test]
    fn bigger_pattern_than_target_fails_fast() {
        let p = path(&[1, 1, 1, 1]);
        let t = path(&[1, 1]);
        assert!(!subgraph_isomorphic(&p, &t));
    }

    #[test]
    fn graph_isomorphism() {
        let a = cycle(&[1, 2, 1, 2]);
        let b = cycle(&[2, 1, 2, 1]);
        assert!(graphs_isomorphic(&a, &b));
        let c = cycle(&[1, 1, 2, 2]);
        assert!(!graphs_isomorphic(&a, &c), "different label arrangement");
        assert!(!graphs_isomorphic(&a, &path(&[1, 2, 1, 2])));
    }

    #[test]
    fn injective_mapping_required() {
        // Pattern: two label-1 nodes joined to a label-2 hub. Target: one
        // label-1 node joined to the hub — must NOT match.
        let mut p = Graph::new();
        let h = p.add_node(2);
        let a = p.add_node(1);
        let b = p.add_node(1);
        p.add_edge(h, a).unwrap();
        p.add_edge(h, b).unwrap();
        let mut t = Graph::new();
        let th = t.add_node(2);
        let ta = t.add_node(1);
        t.add_edge(th, ta).unwrap();
        assert!(!subgraph_isomorphic(&p, &t));
    }
}
