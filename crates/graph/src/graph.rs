//! A labelled undirected graph.

use serde::{Deserialize, Serialize};

use sea_common::{Result, SeaError};

/// A simple undirected graph with `u32` node labels.
///
/// # Examples
///
/// ```
/// use sea_graph::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node(1);
/// let b = g.add_node(2);
/// g.add_edge(a, b).unwrap();
/// assert_eq!(g.num_nodes(), 2);
/// assert!(g.has_edge(a, b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    labels: Vec<u32>,
    adjacency: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds a node with `label`, returning its index.
    pub fn add_node(&mut self, label: u32) -> usize {
        self.labels.push(label);
        self.adjacency.push(Vec::new());
        self.labels.len() - 1
    }

    /// Adds an undirected edge; parallel edges and self-loops are rejected.
    ///
    /// # Errors
    ///
    /// Out-of-range endpoints, self-loop, or duplicate edge.
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<()> {
        let n = self.labels.len();
        if a >= n || b >= n {
            return Err(SeaError::invalid("edge endpoint out of range"));
        }
        if a == b {
            return Err(SeaError::invalid("self-loops are not supported"));
        }
        if self.adjacency[a].contains(&b) {
            return Err(SeaError::invalid("duplicate edge"));
        }
        self.adjacency[a].push(b);
        self.adjacency[b].push(a);
        self.num_edges += 1;
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Label of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn label(&self, v: usize) -> u32 {
        self.labels[v]
    }

    /// Neighbours of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adjacency[v]
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency[v].len()
    }

    /// Whether the edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.num_nodes() && self.adjacency[a].contains(&b)
    }

    /// Multiset of labels, sorted — a cheap necessary-condition filter for
    /// subgraph containment.
    pub fn label_multiset(&self) -> Vec<u32> {
        let mut l = self.labels.clone();
        l.sort_unstable();
        l
    }

    /// A cheap structural fingerprint: sorted `(label, degree)` pairs plus
    /// edge count. Equal graphs always share fingerprints (used to bucket
    /// cache lookups; exact equality is verified by isomorphism).
    pub fn fingerprint(&self) -> u64 {
        let mut pairs: Vec<(u32, usize)> = (0..self.num_nodes())
            .map(|v| (self.labels[v], self.degree(v)))
            .collect();
        pairs.sort_unstable();
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        mix(self.num_edges as u64);
        for (l, d) in pairs {
            mix(l as u64);
            mix(d as u64);
        }
        h
    }

    /// Approximate serialized size in bytes.
    pub fn storage_bytes(&self) -> u64 {
        4 * self.num_nodes() as u64 + 16 * self.num_edges as u64 + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(1);
        let b = g.add_node(2);
        let c = g.add_node(3);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, a).unwrap();
        g
    }

    #[test]
    fn build_and_inspect() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0), "undirected");
        assert!(!g.has_edge(0, 5));
        assert_eq!(g.label_multiset(), vec![1, 2, 3]);
    }

    #[test]
    fn edge_validation() {
        let mut g = triangle();
        assert!(g.add_edge(0, 0).is_err(), "self-loop");
        assert!(g.add_edge(0, 1).is_err(), "duplicate");
        assert!(g.add_edge(0, 9).is_err(), "out of range");
    }

    #[test]
    fn fingerprint_is_structure_sensitive() {
        let t = triangle();
        let mut path = Graph::new();
        let a = path.add_node(1);
        let b = path.add_node(2);
        let c = path.add_node(3);
        path.add_edge(a, b).unwrap();
        path.add_edge(b, c).unwrap();
        assert_ne!(t.fingerprint(), path.fingerprint());
        assert_eq!(t.fingerprint(), triangle().fingerprint());
    }

    #[test]
    fn fingerprint_ignores_node_order() {
        let mut g1 = Graph::new();
        let a = g1.add_node(7);
        let b = g1.add_node(9);
        g1.add_edge(a, b).unwrap();
        let mut g2 = Graph::new();
        let b2 = g2.add_node(9);
        let a2 = g2.add_node(7);
        g2.add_edge(b2, a2).unwrap();
        assert_eq!(g1.fingerprint(), g2.fingerprint());
    }
}
