//! Ullmann-style subgraph isomorphism: candidate-matrix refinement.
//!
//! The second of the two matching algorithms (\[37\], \[38\] study "parallel
//! use of query rewritings and alternative algorithms" and "hybrid
//! algorithms" precisely because neither algorithm dominates): Ullmann
//! maintains a pattern×target candidate matrix and *refines* it before and
//! during search — each pattern node's candidate must have a candidate
//! neighbour for every pattern neighbour. Refinement is expensive per
//! node but prunes dramatically on dense patterns; VF2's lighter
//! per-step checks win on small/sparse ones.

use crate::graph::Graph;

/// Whether `pattern` is subgraph-isomorphic to `target`, by Ullmann's
/// algorithm (non-induced semantics, label-preserving, injective).
pub fn subgraph_isomorphic_ullmann(pattern: &Graph, target: &Graph) -> bool {
    let pn = pattern.num_nodes();
    let tn = target.num_nodes();
    if pn == 0 {
        return true;
    }
    if pn > tn || pattern.num_edges() > target.num_edges() {
        return false;
    }
    // Initial candidate matrix: label + degree compatibility.
    let mut candidates: Vec<Vec<bool>> = (0..pn)
        .map(|p| {
            (0..tn)
                .map(|t| {
                    pattern.label(p) == target.label(t) && pattern.degree(p) <= target.degree(t)
                })
                .collect()
        })
        .collect();
    if !refine(pattern, target, &mut candidates) {
        return false;
    }
    let mut assigned = vec![usize::MAX; pn];
    let mut used = vec![false; tn];
    search(
        pattern,
        target,
        0,
        &mut candidates,
        &mut assigned,
        &mut used,
    )
}

/// Ullmann refinement: a candidate (p → t) survives only if every pattern
/// neighbour of p has at least one surviving candidate among t's
/// neighbours. Iterates to a fixed point; returns false when a pattern
/// node loses all candidates.
fn refine(pattern: &Graph, target: &Graph, candidates: &mut [Vec<bool>]) -> bool {
    loop {
        let mut changed = false;
        for p in 0..pattern.num_nodes() {
            for t in 0..target.num_nodes() {
                if !candidates[p][t] {
                    continue;
                }
                let ok = pattern
                    .neighbors(p)
                    .iter()
                    .all(|&q| target.neighbors(t).iter().any(|&u| candidates[q][u]));
                if !ok {
                    candidates[p][t] = false;
                    changed = true;
                }
            }
            if candidates[p].iter().all(|c| !c) {
                return false;
            }
        }
        if !changed {
            return true;
        }
    }
}

fn search(
    pattern: &Graph,
    target: &Graph,
    depth: usize,
    candidates: &mut [Vec<bool>],
    assigned: &mut [usize],
    used: &mut [bool],
) -> bool {
    if depth == pattern.num_nodes() {
        return true;
    }
    // Most-constrained-first: pick the unassigned pattern node with the
    // fewest live candidates.
    let p = (0..pattern.num_nodes())
        .filter(|&p| assigned[p] == usize::MAX)
        .min_by_key(|&p| candidates[p].iter().filter(|c| **c).count())
        .expect("unassigned node exists");
    let cands: Vec<usize> = (0..target.num_nodes())
        .filter(|&t| candidates[p][t] && !used[t])
        .collect();
    for t in cands {
        // Consistency with already-assigned neighbours.
        let ok = pattern
            .neighbors(p)
            .iter()
            .all(|&q| assigned[q] == usize::MAX || target.has_edge(t, assigned[q]));
        if !ok {
            continue;
        }
        assigned[p] = t;
        used[t] = true;
        if search(pattern, target, depth + 1, candidates, assigned, used) {
            return true;
        }
        assigned[p] = usize::MAX;
        used[t] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GraphGenerator;
    use crate::iso::subgraph_isomorphic;

    fn path(labels: &[u32]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<usize> = labels.iter().map(|&l| g.add_node(l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g
    }

    #[test]
    fn agrees_with_vf2_on_basics() {
        let p = path(&[1, 2, 3]);
        let t = path(&[0, 1, 2, 3, 4]);
        assert!(subgraph_isomorphic_ullmann(&p, &t));
        assert!(!subgraph_isomorphic_ullmann(&t, &p));
        assert!(subgraph_isomorphic_ullmann(&Graph::new(), &p));
    }

    #[test]
    fn agrees_with_vf2_on_random_graphs() {
        let data_gen = GraphGenerator::new(3, 0.25, 5);
        let query_gen = GraphGenerator::new(3, 0.5, 6);
        let mut positives = 0;
        for i in 0..150 {
            let target = data_gen.generate(12, i);
            let pattern = query_gen.generate(3 + (i % 3) as usize, 1000 + i);
            let vf2 = subgraph_isomorphic(&pattern, &target);
            let ull = subgraph_isomorphic_ullmann(&pattern, &target);
            assert_eq!(vf2, ull, "case {i}");
            if vf2 {
                positives += 1;
            }
        }
        assert!(
            positives > 10,
            "the comparison exercised real matches: {positives}"
        );
    }

    #[test]
    fn refinement_prunes_impossible_cases_fast() {
        // A star pattern whose hub needs degree 5; target max degree 2.
        let mut star = Graph::new();
        let hub = star.add_node(1);
        for _ in 0..5 {
            let leaf = star.add_node(1);
            star.add_edge(hub, leaf).unwrap();
        }
        let chain = path(&[1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(!subgraph_isomorphic_ullmann(&star, &chain));
    }

    #[test]
    fn injective_constraint() {
        let mut p = Graph::new();
        let h = p.add_node(2);
        let a = p.add_node(1);
        let b = p.add_node(1);
        p.add_edge(h, a).unwrap();
        p.add_edge(h, b).unwrap();
        let mut t = Graph::new();
        let th = t.add_node(2);
        let ta = t.add_node(1);
        t.add_edge(th, ta).unwrap();
        assert!(!subgraph_isomorphic_ullmann(&p, &t));
    }
}
