//! The executor's worker-thread budget for real (host) parallelism.
//!
//! The cost model already *simulates* node parallelism
//! ([`sea_common::CostMeter::report_parallel`] takes the max over node
//! meters), but until now the executor ran its per-node scans in a
//! sequential loop, so host wall-clock scaled with cluster size instead
//! of with the slowest node. [`ExecPool`] supplies the missing real
//! parallelism: a thread budget sized from the host
//! (`available_parallelism`, overridable via `SEA_EXEC_THREADS`) that
//! [`run`](ExecPool::run) spends on scoped worker threads pulling work
//! items off a shared atomic counter.
//!
//! Determinism contract: `run` returns results **in item-index order**
//! regardless of which worker computed what or when it finished, and a
//! single-thread pool degenerates to a plain loop on the calling thread.
//! Callers keep all side-effecting work (telemetry, shared counters) out
//! of the closure and on the calling thread, so every observable output
//! is independent of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable overriding the global pool's thread budget
/// (`1` forces sequential execution; unset/invalid falls back to
/// `available_parallelism`).
pub const EXEC_THREADS_ENV: &str = "SEA_EXEC_THREADS";

/// A thread budget for fanning per-node (or per-query) work out across
/// the host's cores. Cheap to copy: the pool spawns scoped threads per
/// [`run`](ExecPool::run) call (joined before it returns), so there is
/// no persistent worker state to own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPool {
    threads: usize,
}

impl ExecPool {
    /// A pool running work on up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        ExecPool {
            threads: threads.max(1),
        }
    }

    /// A pool that runs everything inline on the calling thread. Used
    /// for nested fan-outs (a batched query already running on a pool
    /// worker must not oversubscribe the host) and for exercising the
    /// sequential path in tests.
    pub fn sequential() -> Self {
        ExecPool::new(1)
    }

    /// Sizes a pool from the environment: [`EXEC_THREADS_ENV`] when set
    /// to a positive integer, otherwise the host's
    /// `available_parallelism`.
    pub fn from_env() -> Self {
        let threads = std::env::var(EXEC_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ExecPool::new(threads)
    }

    /// The process-wide pool shared across queries (and executors):
    /// sized once from the environment on first use.
    pub fn global() -> ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        *GLOBAL.get_or_init(ExecPool::from_env)
    }

    /// This pool's thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0), f(1), …, f(n-1)` across the pool's workers and
    /// returns the results in index order. Workers claim indices from a
    /// shared atomic counter (dynamic load balancing: one slow item
    /// doesn't idle the other workers behind a static stride). With a
    /// budget of one thread — or a single item — this is a plain loop on
    /// the calling thread, no spawning.
    ///
    /// # Panics
    ///
    /// A panic in `f` is resumed on the calling thread after all workers
    /// have been joined.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.threads == 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let next = AtomicUsize::new(0);
        let joined = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let f = &f;
                    let next = &next;
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
        })
        .expect("pool scope closure does not panic");
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panic_payload = None;
        for worker in joined {
            match worker {
                Ok(items) => {
                    for (i, v) in items {
                        slots[i] = Some(v);
                    }
                }
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|o| o.expect("every index in 0..n was claimed exactly once"))
            .collect()
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 8] {
            let pool = ExecPool::new(threads);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_and_single_item_runs_are_inline() {
        let pool = ExecPool::new(8);
        assert!(pool.run(0, |i| i).is_empty());
        assert_eq!(pool.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn thread_budget_is_clamped_to_one() {
        assert_eq!(ExecPool::new(0).threads(), 1);
        assert_eq!(ExecPool::sequential().threads(), 1);
        assert!(ExecPool::from_env().threads() >= 1);
    }

    #[test]
    fn worker_panics_resume_on_the_caller() {
        let pool = ExecPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(16, |i| {
                assert!(i != 11, "injected failure");
                i
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn borrowed_data_flows_into_workers() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = ExecPool::new(4);
        let sums = pool.run(10, |i| data[i * 100..(i + 1) * 100].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
