//! # sea-query
//!
//! The exact analytical-query executor over the simulated distributed
//! storage substrate, in both of the paper's processing regimes:
//!
//! * [`Executor::execute_bdas`] — MapReduce-style processing "across a
//!   (potentially) large number of data nodes" through the full BDAS layer
//!   stack (Fig 1): every node is engaged, every block read.
//! * [`Executor::execute_direct`] — coordinator–cohort processing (RT3-2):
//!   a coordinator consults partition metadata and block zone maps,
//!   engages only the nodes/blocks the selection can touch, and pays only
//!   one layer crossing per engaged node.
//!
//! Both return the identical exact answer; what differs is the
//! [`sea_common::CostReport`]. That difference — measured, not asserted —
//! is the substance of experiments E1, E7 and E9.
//!
//! Either regime can consult a [`sea_cache::SemanticCache`] before
//! scattering ([`Executor::with_cache`]): exact hits return the stored
//! answer, containment hits re-derive it from cached per-node record
//! fragments without touching a single node, and misses execute
//! normally and populate the cache on the way out (experiment E19).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adhoc;
pub mod executor;
pub mod pool;

pub use adhoc::{classify_subspace, cluster_subspace, regress_subspace, AdHocOutcome};
pub use executor::{Executor, QueryOutcome, RetryPolicy};
pub use pool::ExecPool;
