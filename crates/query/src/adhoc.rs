//! Ad hoc ML tasks over analyst-defined subspaces (RT2-2).
//!
//! "Analysts are to define (using selection operators …) subspaces of
//! interest and ask for the data items within these subspaces to be
//! clustered, classified, or to perform regressions". These operators
//! fetch the subspace surgically (partition + zone-map pruning through
//! the direct path) and then run the ML routine coordinator-side,
//! charging both phases to the returned [`sea_common::CostReport`].

use sea_common::{CostMeter, CostModel, CostReport, Record, Region, Result, SeaError};
use sea_ml::linreg::LinearModel;
use sea_ml::quantize::KMeans;
use sea_storage::{StorageCluster, DIRECT_LAYERS};

/// An ad hoc ML result plus its resource bill.
#[derive(Debug, Clone)]
pub struct AdHocOutcome<T> {
    /// The task's output.
    pub output: T,
    /// What producing it cost.
    pub cost: CostReport,
    /// Records the subspace contained.
    pub records_in_subspace: usize,
}

/// Fetches the records inside `region` via the surgical path.
fn fetch_subspace(
    cluster: &StorageCluster,
    table: &str,
    region: &Region,
) -> Result<(Vec<Record>, Vec<CostMeter>)> {
    let bbox = region.bounding_rect();
    let nodes = cluster.nodes_for_region(table, &bbox)?;
    let mut node_meters = Vec::new();
    let mut selected = Vec::new();
    for node in nodes {
        let mut meter = CostMeter::new();
        meter.touch_node(DIRECT_LAYERS);
        let records = cluster.scan_node_region(table, node, &bbox, &mut meter)?;
        let hits: Vec<Record> = records
            .into_iter()
            .filter(|r| region.contains_record(r))
            .collect();
        meter.charge_lan(hits.iter().map(Record::storage_bytes).sum());
        selected.extend(hits);
        node_meters.push(meter);
    }
    Ok((selected, node_meters))
}

/// Clusters the records inside `region` into `k` groups (Lloyd k-means on
/// all attributes). Returns the centroids.
///
/// # Errors
///
/// Empty subspace, `k == 0`, or missing table.
pub fn cluster_subspace(
    cluster: &StorageCluster,
    table: &str,
    region: &Region,
    k: usize,
    cost_model: &CostModel,
) -> Result<AdHocOutcome<KMeans>> {
    let (records, node_meters) = fetch_subspace(cluster, table, region)?;
    if records.is_empty() {
        return Err(SeaError::Empty("clustering an empty subspace".into()));
    }
    let points: Vec<Vec<f64>> = records.iter().map(|r| r.values.clone()).collect();
    let mut coord = CostMeter::new();
    // Lloyd iterations: ~20 passes over the subspace.
    coord.charge_cpu(20 * points.len() as u64);
    let km = KMeans::fit(&points, k, 20)?;
    Ok(AdHocOutcome {
        output: km,
        cost: coord.report_parallel(node_meters.iter(), cost_model),
        records_in_subspace: records.len(),
    })
}

/// Fits a multivariate OLS regression of attribute `target_dim` on all
/// other attributes, over the records inside `region`. Returns the fitted
/// linear model (weights ordered by attribute index, skipping the target).
///
/// # Errors
///
/// Empty subspace, singular design, or missing table.
pub fn regress_subspace(
    cluster: &StorageCluster,
    table: &str,
    region: &Region,
    target_dim: usize,
    cost_model: &CostModel,
) -> Result<AdHocOutcome<LinearModel>> {
    let dims = cluster.dims(table)?;
    if target_dim >= dims {
        return Err(SeaError::invalid(format!(
            "target dim {target_dim} out of range for {dims}-dim table"
        )));
    }
    let (records, node_meters) = fetch_subspace(cluster, table, region)?;
    if records.len() < 2 {
        return Err(SeaError::Empty(
            "regression needs at least 2 records".into(),
        ));
    }
    let xs: Vec<Vec<f64>> = records
        .iter()
        .map(|r| {
            r.values
                .iter()
                .enumerate()
                .filter(|(d, _)| *d != target_dim)
                .map(|(_, v)| *v)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = records.iter().map(|r| r.value(target_dim)).collect();
    let mut coord = CostMeter::new();
    coord.charge_cpu(xs.len() as u64);
    let model = LinearModel::fit(&xs, &ys, 1e-9)?;
    Ok(AdHocOutcome {
        output: model,
        cost: coord.report_parallel(node_meters.iter(), cost_model),
        records_in_subspace: records.len(),
    })
}

/// Classifies `probes` by majority vote of their `k` nearest records
/// inside `region`, where attribute `label_dim` carries an integral class
/// label. Distances use all attributes except `label_dim`.
///
/// # Errors
///
/// Empty subspace, `k == 0`, or dimension mismatches.
pub fn classify_subspace(
    cluster: &StorageCluster,
    table: &str,
    region: &Region,
    label_dim: usize,
    probes: &[Vec<f64>],
    k: usize,
    cost_model: &CostModel,
) -> Result<AdHocOutcome<Vec<i64>>> {
    if k == 0 {
        return Err(SeaError::invalid("k must be positive"));
    }
    let dims = cluster.dims(table)?;
    if label_dim >= dims {
        return Err(SeaError::invalid("label dim out of range"));
    }
    for p in probes {
        SeaError::check_dims(dims - 1, p.len())?;
    }
    let (records, node_meters) = fetch_subspace(cluster, table, region)?;
    if records.is_empty() {
        return Err(SeaError::Empty(
            "classification over an empty subspace".into(),
        ));
    }
    let features = |r: &Record| -> Vec<f64> {
        r.values
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != label_dim)
            .map(|(_, v)| *v)
            .collect()
    };
    let mut coord = CostMeter::new();
    coord.charge_cpu(records.len() as u64 * probes.len() as u64);
    let mut labels = Vec::with_capacity(probes.len());
    for p in probes {
        let mut dists: Vec<(f64, i64)> = records
            .iter()
            .map(|r| {
                let f = features(r);
                let d: f64 = f.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, r.value(label_dim).round() as i64)
            })
            .collect();
        let kk = k.min(dists.len());
        // total_cmp (NaN-safe) with a label tie-break so equidistant
        // candidates partition deterministically.
        dists.select_nth_unstable_by(kk - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Majority vote over the k nearest.
        let mut votes: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
        for (_, label) in &dists[..kk] {
            *votes.entry(*label).or_default() += 1;
        }
        let winner = votes
            .into_iter()
            .max_by_key(|(label, n)| (*n, -label))
            .map(|(label, _)| label)
            .expect("non-empty");
        labels.push(winner);
    }
    Ok(AdHocOutcome {
        output: labels,
        cost: coord.report_parallel(node_meters.iter(), cost_model),
        records_in_subspace: records.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::Rect;
    use sea_storage::Partitioning;

    /// Records: attr0, attr1 spatial; attr2 = 3·attr0 − attr1 + 2; attr3 =
    /// class label (0 left half, 1 right half).
    fn cluster_with_data() -> StorageCluster {
        let mut c = StorageCluster::new(4, 256);
        let records: Vec<Record> = (0..8_000)
            .map(|i| {
                let x = (i % 100) as f64;
                let y = (i / 100) as f64;
                let target = 3.0 * x - y + 2.0;
                let label = if x < 50.0 { 0.0 } else { 1.0 };
                Record::new(i as u64, vec![x, y, target, label])
            })
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        c
    }

    fn whole_region() -> Region {
        Region::Range(Rect::new(vec![0.0, 0.0, -1e6, -1.0], vec![100.0, 100.0, 1e6, 2.0]).unwrap())
    }

    #[test]
    fn kmeans_finds_the_two_label_blobs() {
        let c = cluster_with_data();
        let model = CostModel::default();
        // Subspace: a thin y-stripe so the two x-halves form two clear blobs.
        let region = Region::Range(
            Rect::new(vec![0.0, 0.0, -1e6, -1.0], vec![100.0, 5.0, 1e6, 2.0]).unwrap(),
        );
        let out = cluster_subspace(&c, "t", &region, 2, &model).unwrap();
        assert!(out.records_in_subspace > 100);
        let mut xs: Vec<f64> = out.output.centroids().iter().map(|c| c[0]).collect();
        xs.sort_by(f64::total_cmp);
        assert!(xs[0] < 50.0 && xs[1] >= 40.0, "separated blobs: {xs:?}");
        assert!(out.cost.wall_us > 0.0);
    }

    #[test]
    fn regression_recovers_plane() {
        let c = cluster_with_data();
        let model = CostModel::default();
        let out = regress_subspace(&c, "t", &whole_region(), 2, &model).unwrap();
        // Features are [x, y, label] (target attr2 removed); true plane has
        // weights [3, −1, 0] and intercept 2 (label is redundant with x but
        // ridge keeps it tame).
        let w = out.output.weights();
        assert!((w[0] - 3.0).abs() < 0.05, "{w:?}");
        assert!((w[1] + 1.0).abs() < 0.05, "{w:?}");
        assert!((out.output.intercept() - 2.0).abs() < 1.0);
    }

    #[test]
    fn classification_labels_probes() {
        let c = cluster_with_data();
        let model = CostModel::default();
        // Probe features exclude the label dim: [x, y, target].
        let probes = vec![
            vec![10.0, 10.0, 3.0 * 10.0 - 10.0 + 2.0],
            vec![90.0, 10.0, 3.0 * 90.0 - 10.0 + 2.0],
        ];
        let out = classify_subspace(&c, "t", &whole_region(), 3, &probes, 5, &model).unwrap();
        assert_eq!(out.output, vec![0, 1]);
    }

    #[test]
    fn narrow_subspace_is_cheaper_than_wide() {
        let c = cluster_with_data();
        let model = CostModel::default();
        let narrow = Region::Range(
            Rect::new(vec![40.0, 40.0, -1e6, -1.0], vec![60.0, 60.0, 1e6, 2.0]).unwrap(),
        );
        let a = cluster_subspace(&c, "t", &narrow, 2, &model).unwrap();
        let b = cluster_subspace(&c, "t", &whole_region(), 2, &model).unwrap();
        assert!(a.records_in_subspace < b.records_in_subspace);
        assert!(a.cost.totals.records_processed < b.cost.totals.records_processed);
    }

    #[test]
    fn nan_probes_classify_without_panicking() {
        let c = cluster_with_data();
        let model = CostModel::default();
        // Every distance to a NaN probe is NaN; total_cmp + the label
        // tie-break still produce a deterministic majority vote.
        let probes = vec![vec![f64::NAN, 10.0, 30.0]];
        let out = classify_subspace(&c, "t", &whole_region(), 3, &probes, 5, &model).unwrap();
        assert_eq!(out.output.len(), 1);
        let again = classify_subspace(&c, "t", &whole_region(), 3, &probes, 5, &model).unwrap();
        assert_eq!(out.output, again.output);
    }

    #[test]
    fn validations() {
        let c = cluster_with_data();
        let model = CostModel::default();
        let empty = Region::Range(
            Rect::new(vec![-10.0, -10.0, 0.0, 0.0], vec![-5.0, -5.0, 1.0, 1.0]).unwrap(),
        );
        assert!(cluster_subspace(&c, "t", &empty, 2, &model).is_err());
        // Empty subspace: typed error, not a select_nth underflow panic.
        assert!(matches!(
            classify_subspace(&c, "t", &empty, 3, &[vec![1.0; 3]], 5, &model),
            Err(sea_common::SeaError::Empty(_))
        ));
        assert!(regress_subspace(&c, "t", &whole_region(), 9, &model).is_err());
        assert!(classify_subspace(&c, "t", &whole_region(), 3, &[vec![1.0]], 5, &model).is_err());
        assert!(
            classify_subspace(&c, "t", &whole_region(), 3, &[vec![1.0; 3]], 0, &model).is_err()
        );
    }
}
