//! The exact executor: BDAS-style and coordinator–cohort query processing.
//!
//! Per-node scans fan out across an [`ExecPool`]'s worker threads — the
//! paper's P1/P4 node parallelism made real on the host, not just in the
//! cost model. Workers do pure compute (telemetry-silent scans charging
//! private [`CostMeter`]s); the coordinator then replays each node's
//! telemetry in node-index order, so answers, [`CostReport`]s, and every
//! recorded table are bit-identical to sequential execution regardless
//! of the thread count.

use sea_cache::{CacheDecision, NodeFragment, SemanticCache};
use sea_common::{
    kernels, AggregateKind, AnalyticalQuery, AnswerValue, BivariateStats, CostMeter, CostModel,
    CostReport, Record, Rect, Region, Result, SeaError, SelectionMask,
};
use sea_storage::{Block, DataNode, NodeId, ScanStats, StorageCluster, BDAS_LAYERS, DIRECT_LAYERS};
use sea_telemetry::{TelemetrySink, TraceContext};

use crate::pool::ExecPool;

/// The outcome of executing one analytical query: the exact answer plus
/// the full resource bill.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The (exact) answer.
    pub answer: AnswerValue,
    /// What it cost to produce.
    pub cost: CostReport,
}

/// Per-node partial state shipped to the coordinator. Distributive and
/// algebraic aggregates ship constant-size sufficient statistics; holistic
/// aggregates (median/quantile) must ship the selected values themselves.
#[derive(Debug, Clone)]
enum Partial {
    CountSum {
        count: u64,
        sum: f64,
        sum_sq: f64,
    },
    /// Centered moments for variance: numerically robust under large
    /// means, where the raw `sum_sq` form cancels catastrophically.
    Moments {
        count: u64,
        mean: f64,
        m2: f64,
    },
    MinMax {
        min: f64,
        max: f64,
    },
    Bivariate(BivariateStats),
    Values(Vec<f64>),
}

impl Partial {
    /// Bytes this partial occupies on the wire.
    fn wire_bytes(&self) -> u64 {
        match self {
            Partial::CountSum { .. } | Partial::Moments { .. } => 24,
            Partial::MinMax { .. } => 16,
            Partial::Bivariate(_) => 48,
            Partial::Values(v) => 8 * v.len() as u64,
        }
    }
}

/// Bounded retry with exponential simulated backoff for transient scan
/// faults. Backoff is *simulated* time charged to the node's meter (the
/// coordinator never sleeps), so retrying has a visible cost in every
/// [`CostReport`] and the determinism contract holds: retries happen on
/// the node's own worker, consuming that node's fault-plan operations in
/// sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Simulated backoff before the first retry; doubles each retry.
    pub backoff_base_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Three retries ride out the default fault plans' recovery
        // windows; 10 ms base keeps the backoff on the same scale as a
        // disk seek.
        RetryPolicy {
            max_retries: 3,
            backoff_base_us: 10_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_us: 0,
        }
    }

    /// Simulated backoff before retry number `retry` (0-based).
    pub fn backoff_us(&self, retry: u32) -> u64 {
        self.backoff_base_us.saturating_mul(1u64 << retry.min(20))
    }
}

/// What one scatter worker brings back from its node: pure data, a
/// private cost meter, the scan statistics the coordinator needs to
/// replay the node's telemetry afterwards, and the fault handling the
/// worker performed (replayed as counters/events in node order).
struct NodeScan {
    /// The node's partial aggregate; `None` when the partition was
    /// unavailable and the executor runs in partial-answer mode.
    partial: Option<Partial>,
    meter: CostMeter,
    stats: ScanStats,
    /// Transient-fault retries this scan needed.
    retries: u32,
    /// Whether the scan was served by a replica (primary down/crashed).
    failover: bool,
    /// Whether the partition could not be served at all.
    unavailable: bool,
    /// The node's matched records, cloned for semantic-cache admission
    /// (`None` unless a cache is attached and the region is cacheable).
    records: Option<Vec<Record>>,
}

/// Stateless executor over a [`StorageCluster`].
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    cluster: &'a StorageCluster,
    cost_model: CostModel,
    telemetry: TelemetrySink,
    pool: ExecPool,
    retry: RetryPolicy,
    partial_answers: bool,
    cache: Option<&'a SemanticCache>,
    cache_consult: bool,
}

impl<'a> Executor<'a> {
    /// Creates an executor using the default [`CostModel`]. The executor
    /// inherits the cluster's telemetry sink, so instrumenting the
    /// cluster instruments the whole exact query path, and shares the
    /// process-wide [`ExecPool`] for real node parallelism.
    pub fn new(cluster: &'a StorageCluster) -> Self {
        Executor {
            cluster,
            cost_model: CostModel::default(),
            telemetry: cluster.telemetry().clone(),
            pool: ExecPool::global(),
            retry: RetryPolicy::default(),
            partial_answers: false,
            cache: None,
            cache_consult: false,
        }
    }

    /// Creates an executor with an explicit cost model.
    pub fn with_cost_model(cluster: &'a StorageCluster, cost_model: CostModel) -> Self {
        Executor {
            cluster,
            cost_model,
            telemetry: cluster.telemetry().clone(),
            pool: ExecPool::global(),
            retry: RetryPolicy::default(),
            partial_answers: false,
            cache: None,
            cache_consult: false,
        }
    }

    /// Overrides the telemetry sink inherited from the cluster.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// Overrides the worker-thread budget (defaults to the shared
    /// [`ExecPool::global`]). Every observable output — answers, cost
    /// reports, recorded telemetry — is identical for every budget; only
    /// host wall-clock changes.
    #[must_use]
    pub fn with_pool(mut self, pool: ExecPool) -> Self {
        self.pool = pool;
        self
    }

    /// Overrides the transient-fault retry policy (defaults to
    /// [`RetryPolicy::default`]).
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Opts into partial answers: a partition that stays unavailable
    /// after retries (node down, no live replica) is *skipped* instead
    /// of failing the query, and the outcome's
    /// [`CostReport::answered_fraction`] / `nodes_unavailable` report
    /// the degradation. Off by default — the executor is loud, not
    /// wrong, unless the caller explicitly accepts the trade.
    #[must_use]
    pub fn with_partial_answers(mut self, on: bool) -> Self {
        self.partial_answers = on;
        self
    }

    /// Attaches a [`SemanticCache`]: the executor consults it before
    /// scattering (exact and containment hits answer without touching
    /// any storage node) and offers every successful rectangular answer
    /// — with its per-node record fragments — for cost-based admission
    /// after gathering.
    ///
    /// A cache instance is scoped to **one logical table**: the cache
    /// key is (aggregate, region), so callers querying several tables
    /// through one executor must attach a separate cache per table.
    /// Consultation and admission happen on the coordinator thread, so
    /// determinism across [`ExecPool`] sizes is preserved; batch
    /// execution strips the cache from its inner per-query executors
    /// (concurrent admissions would be schedule-dependent).
    #[must_use]
    pub fn with_cache(mut self, cache: &'a SemanticCache) -> Self {
        self.cache = Some(cache);
        self.cache_consult = true;
        self
    }

    /// Attaches a [`SemanticCache`] for admission only: answers are
    /// offered to the cache after execution, but lookups are the
    /// caller's job (used by `sea-core`'s pipeline, which consults the
    /// cache itself before deciding between prediction and execution,
    /// so hits and misses are counted exactly once).
    #[must_use]
    pub fn with_cache_populate_only(mut self, cache: &'a SemanticCache) -> Self {
        self.cache = Some(cache);
        self.cache_consult = false;
        self
    }

    /// Detaches any semantic cache (used by batch execution's inner
    /// per-query executors).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self.cache_consult = false;
        self
    }

    /// The executor's telemetry sink.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The cluster this executor answers from. The borrow carries the
    /// executor's lifetime, so planners (e.g. `sea-lang`) can derive
    /// schemas and secondary indexes that outlive the executor value.
    pub fn cluster(&self) -> &'a StorageCluster {
        self.cluster
    }

    /// The executor's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// The executor's worker-thread budget.
    pub fn pool(&self) -> ExecPool {
        self.pool
    }

    /// Consults the attached [`SemanticCache`] for `query` and, on a
    /// hit, produces the outcome a cold execution would have produced —
    /// bit-identical answer, cache-priced cost report — without touching
    /// any storage node. Returns `None` on a miss or when no cache is
    /// attached. Exposed so coordinators that own the predict-vs-exact
    /// decision (`sea-core`'s pipeline, `sea-geo`'s edges) can probe the
    /// cache before committing to execution.
    ///
    /// Exact hits cost one coordinator CPU charge; containment hits pay
    /// a CPU charge per cached record re-filtered plus the merge — still
    /// orders of magnitude below a cluster scan, and deterministic.
    pub fn cache_lookup(&self, query: &AnalyticalQuery) -> Option<Result<QueryOutcome>> {
        let cache = self.cache?;
        match cache.lookup(&query.aggregate, &query.region) {
            CacheDecision::Exact(answer) => {
                let span = self.telemetry.span("query.executor.cache");
                span.tag("class", "exact");
                let mut coord = CostMeter::new();
                coord.charge_cpu(1);
                let cost = coord.report_sequential(&self.cost_model);
                span.record_sim_us(coord.sequential_us(&self.cost_model));
                Some(Ok(QueryOutcome { answer, cost }))
            }
            CacheDecision::Containment(fragments) => {
                let span = self.telemetry.span("query.executor.cache");
                span.tag("class", "containment");
                let derived = self.derive_from_fragments(query, &fragments);
                if let Ok(out) = &derived {
                    span.record_sim_us(out.cost.wall_us);
                }
                Some(derived)
            }
            CacheDecision::Miss { .. } => None,
        }
    }

    /// Re-derives a containment-hit answer from cached per-node
    /// fragments: each fragment's records are re-filtered by the
    /// (smaller) queried region and folded into a per-node partial, then
    /// merged in node order — the same records, in the same order, a
    /// cold scan would have aggregated, so the answer is bit-identical.
    fn derive_from_fragments(
        &self,
        query: &AnalyticalQuery,
        fragments: &[NodeFragment],
    ) -> Result<QueryOutcome> {
        let mut coord = CostMeter::new();
        let mut partials = Vec::with_capacity(fragments.len());
        for frag in fragments {
            coord.charge_cpu(frag.records.len() as u64);
            let matched: Vec<&Record> = frag
                .records
                .iter()
                .filter(|r| query.region.contains_record(r))
                .collect();
            partials.push(make_partial(&query.aggregate, &matched));
        }
        coord.charge_cpu(partials.len() as u64);
        let answer = merge_partials(&query.aggregate, partials)?;
        let cost = coord.report_sequential(&self.cost_model);
        Ok(QueryOutcome { answer, cost })
    }

    /// Offers a freshly computed answer to the attached cache. Only
    /// complete (no unavailable partitions) rectangular answers with
    /// collected fragments qualify; the cache applies its own cost-based
    /// admission on top. Runs on the coordinator thread after gather, so
    /// admission order — and therefore eviction tie-breaks — is
    /// deterministic for every pool size.
    fn maybe_admit(
        &self,
        query: &AnalyticalQuery,
        answer: &AnswerValue,
        fragments: Option<Vec<NodeFragment>>,
        cost: &CostReport,
    ) {
        let Some(cache) = self.cache else { return };
        let Some(fragments) = fragments else { return };
        if cost.nodes_unavailable > 0 {
            return;
        }
        cache.admit(
            &query.aggregate,
            &query.region,
            answer,
            Some(fragments),
            cost.wall_us,
        );
    }

    /// Executes `query` over `table` MapReduce-style: every node is
    /// engaged through all BDAS layers, scans all of its blocks, filters,
    /// computes a partial aggregate, and ships it over the LAN to a
    /// coordinator that merges.
    ///
    /// # Errors
    ///
    /// Missing table, dimension mismatch, or aggregate errors (e.g. an
    /// operator undefined on an empty selection).
    pub fn execute_bdas(&self, table: &str, query: &AnalyticalQuery) -> Result<QueryOutcome> {
        self.execute_bdas_traced(table, query, &TraceContext::NONE)
    }

    /// [`Executor::execute_bdas`] with an explicit trace parent: the
    /// executor's span tree (scatter → per-node scans → gather) attaches
    /// under `parent`, so a pipeline or geo coordinator's trace stays one
    /// coherent tree across the hop. Each engaged node gets its own
    /// `query.executor.node` span tagged with the node id and carrying
    /// that node's simulated cost; the scatter span is tagged with the
    /// parallel makespan (max over nodes).
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_bdas`].
    pub fn execute_bdas_traced(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        parent: &TraceContext,
    ) -> Result<QueryOutcome> {
        let _exec_span = self.telemetry.span_child_of(parent, "query.executor.bdas");
        self.telemetry.incr("query.executor.bdas_queries", 1);
        query.aggregate.validate(self.cluster.dims(table)?)?;
        if self.cache_consult {
            if let Some(hit) = self.cache_lookup(query) {
                return hit;
            }
        }
        let nodes: Vec<NodeId> = (0..self.cluster.num_nodes()).collect();
        let (partials, node_meters, unavailable, fragments) = {
            let scatter = self.telemetry.span("query.executor.scatter");
            let scans = self.scatter_scans(table, query, &nodes, BDAS_LAYERS, None)?;
            let out = self.replay_scatter(table, &nodes, "full", &scatter.ctx(), scans);
            // Nodes run in parallel: the scatter phase lasts as long as
            // its slowest node under the cost model. The per-node spans
            // carry the per-node costs; the makespan is a tag so the
            // tree's sim rollup doesn't double-count.
            scatter.tag(
                "sim_makespan_us",
                out.1
                    .iter()
                    .map(|m| m.sequential_us(&self.cost_model))
                    .fold(0.0, f64::max),
            );
            out
        };
        let gather = self.telemetry.span("query.executor.gather");
        let mut coord = CostMeter::new();
        coord.charge_cpu(partials.len() as u64);
        let answer = merge_partials(&query.aggregate, partials)?;
        let mut cost = coord.report_parallel(node_meters.iter(), &self.cost_model);
        Self::note_availability(&mut cost, nodes.len(), unavailable);
        gather.record_sim_us(coord.sequential_us(&self.cost_model));
        drop(gather);
        self.maybe_admit(query, &answer, fragments, &cost);
        Ok(QueryOutcome { answer, cost })
    }

    /// Executes `query` over `table` in the coordinator–cohort regime:
    /// partition pruning picks the candidate nodes, block zone maps prune
    /// within each node, only matching records are aggregated, and each
    /// engaged node pays a single layer crossing.
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_bdas`].
    pub fn execute_direct(&self, table: &str, query: &AnalyticalQuery) -> Result<QueryOutcome> {
        self.execute_direct_traced(table, query, &TraceContext::NONE)
    }

    /// [`Executor::execute_direct`] with an explicit trace parent (see
    /// [`Executor::execute_bdas_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_direct`].
    pub fn execute_direct_traced(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        parent: &TraceContext,
    ) -> Result<QueryOutcome> {
        self.execute_direct_with(table, query, parent, |candidates, bbox| {
            self.scatter_scans(table, query, candidates, DIRECT_LAYERS, Some(bbox))
        })
    }

    /// The direct regime with a pluggable scan provider: the whole span
    /// tree, cost assembly, and merge are identical to
    /// [`Executor::execute_direct_traced`]; only where the per-node
    /// [`NodeScan`]s come from differs. Batch execution routes a shared
    /// superset scan through here so each query's outcome and telemetry
    /// replay stay bit-identical to a standalone execution.
    fn execute_direct_with(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        parent: &TraceContext,
        provider: impl FnOnce(&[NodeId], &Rect) -> Result<Vec<NodeScan>>,
    ) -> Result<QueryOutcome> {
        let _exec_span = self
            .telemetry
            .span_child_of(parent, "query.executor.direct");
        self.telemetry.incr("query.executor.direct_queries", 1);
        query.aggregate.validate(self.cluster.dims(table)?)?;
        if self.cache_consult {
            if let Some(hit) = self.cache_lookup(query) {
                return hit;
            }
        }
        let bbox = query.region.bounding_rect();
        let candidates = self.cluster.nodes_for_region(table, &bbox)?;
        let mut coord = CostMeter::new();
        let (partials, node_meters, unavailable, fragments) = {
            let scatter = self.telemetry.span("query.executor.scatter");
            // One request message per engaged node. The fan-out is part
            // of the scatter phase, so its simulated time lands on the
            // scatter span (the coordinator still pays it sequentially
            // in the cost report).
            for _ in &candidates {
                coord.charge_lan(64);
            }
            scatter.record_sim_us(coord.sequential_us(&self.cost_model));
            let scans = provider(&candidates, &bbox)?;
            let out = self.replay_scatter(table, &candidates, "region", &scatter.ctx(), scans);
            scatter.tag(
                "sim_makespan_us",
                out.1
                    .iter()
                    .map(|m| m.sequential_us(&self.cost_model))
                    .fold(0.0, f64::max),
            );
            out
        };
        let gather = self.telemetry.span("query.executor.gather");
        // The gather span carries only the merge work; request fan-out
        // was already attributed to scatter above.
        let mut merge_only = CostMeter::new();
        merge_only.charge_cpu(partials.len() as u64);
        coord.charge_cpu(partials.len() as u64);
        let answer = merge_partials(&query.aggregate, partials)?;
        let mut cost = coord.report_parallel(node_meters.iter(), &self.cost_model);
        Self::note_availability(&mut cost, candidates.len(), unavailable);
        gather.record_sim_us(merge_only.sequential_us(&self.cost_model));
        drop(gather);
        self.maybe_admit(query, &answer, fragments, &cost);
        Ok(QueryOutcome { answer, cost })
    }

    /// Fans the per-node scans of one query out across the pool. Workers
    /// are telemetry-silent (quiet scans, private meters); results come
    /// back in node-index order with the first error (in node order)
    /// propagated. `bbox` selects the access path: `None` scans every
    /// block (BDAS), `Some` uses zone-map pruned region scans (direct).
    ///
    /// Each worker retries transient faults per the executor's
    /// [`RetryPolicy`], charging exponential simulated backoff to the
    /// node's meter. Retries stay on the node's own worker, so the
    /// per-node fault-plan operation sequence — and therefore every
    /// observable output — is independent of the pool size. In
    /// partial-answer mode a partition that stays unavailable
    /// ([`SeaError::Storage`]/[`SeaError::Transient`] after retries)
    /// yields an `unavailable` scan instead of an error.
    fn scatter_scans(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        nodes: &[NodeId],
        layers: u64,
        bbox: Option<&Rect>,
    ) -> Result<Vec<NodeScan>> {
        // Clone matched records only when a cache could admit them: a
        // cache is attached and the region supports the containment
        // algebra (rectangles only).
        let collect = self.cache.is_some() && matches!(query.region, Region::Range(_));
        if self.cluster.has_fault_plan() {
            // Injected faults are consumed per scan *operation*, so the
            // fault-gated row path must stay in charge of retries,
            // failover, and backoff accounting.
            return self.scatter_scans_guarded(table, query, nodes, layers, bbox, collect);
        }
        self.scatter_scans_columnar(table, query, nodes, layers, bbox, collect)
    }

    /// The fault-gated scan path: row-at-a-time scans through
    /// [`StorageCluster::scan_node_stats`] /
    /// [`StorageCluster::scan_node_region_stats`], whose fault gate
    /// advances per-node operation counters deterministically.
    fn scatter_scans_guarded(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        nodes: &[NodeId],
        layers: u64,
        bbox: Option<&Rect>,
        collect: bool,
    ) -> Result<Vec<NodeScan>> {
        self.pool
            .run(nodes.len(), |i| {
                let node = nodes[i];
                let mut meter = CostMeter::new();
                meter.touch_node(layers);
                let mut retries = 0u32;
                loop {
                    let scanned = match bbox {
                        None => self.cluster.scan_node_stats(table, node, &mut meter),
                        Some(b) => self
                            .cluster
                            .scan_node_region_stats(table, node, b, &mut meter),
                    };
                    match scanned {
                        Ok((records, stats)) => {
                            let matched: Vec<Record> = records
                                .into_iter()
                                .filter(|r| query.region.contains_record(r))
                                .collect();
                            let refs: Vec<&Record> = matched.iter().collect();
                            let partial = make_partial(&query.aggregate, &refs);
                            drop(refs);
                            meter.charge_lan(partial.wire_bytes());
                            return Ok(NodeScan {
                                partial: Some(partial),
                                meter,
                                stats,
                                retries,
                                failover: self.cluster.primary_down(node),
                                unavailable: false,
                                records: collect.then_some(matched),
                            });
                        }
                        Err(ref e) if e.is_transient() && retries < self.retry.max_retries => {
                            meter.charge_backoff(self.retry.backoff_us(retries));
                            retries += 1;
                        }
                        Err(SeaError::Storage(_) | SeaError::Transient(_))
                            if self.partial_answers =>
                        {
                            // The partition is out of reach; degrade
                            // instead of failing the whole query. Other
                            // error kinds (missing table, bad dims) are
                            // caller bugs and still propagate.
                            return Ok(NodeScan {
                                partial: None,
                                meter,
                                stats: ScanStats::default(),
                                retries,
                                failover: false,
                                unavailable: true,
                                records: None,
                            });
                        }
                        Err(e) => return Err(e),
                    }
                }
            })
            .into_iter()
            .collect()
    }

    /// The columnar fast path (no fault plan installed): predicates are
    /// evaluated as selection bitmaps over each block's dimension
    /// columns, then the per-node partial is folded serially in record
    /// order over the selected rows only — the exact float-op sequence
    /// of the row path, reached through autovectorizable kernels.
    ///
    /// Work is split into **morsels** (contiguous runs of blocks of
    /// roughly [`MORSEL_RECORDS`] records) so the pool steals within a
    /// node, not only across nodes: a 2-node cluster saturates an 8-way
    /// pool. Phase A evaluates morsel masks in parallel (pure compute,
    /// no telemetry); phase B assembles each node's meter, stats, and
    /// partial from its masks in block order, so every observable output
    /// is bit-identical for every pool size and morsel decomposition.
    fn scatter_scans_columnar(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        nodes: &[NodeId],
        layers: u64,
        bbox: Option<&Rect>,
        collect: bool,
    ) -> Result<Vec<NodeScan>> {
        if let Some(b) = bbox {
            SeaError::check_dims(self.cluster.dims(table)?, b.dims())?;
        }
        // Resolve each node's serving copy up front, in node order, so
        // the first error (in node order) propagates exactly as the
        // worker-loop path would.
        let mut views: Vec<Option<(&DataNode, bool)>> = Vec::with_capacity(nodes.len());
        for &node in nodes {
            match self.cluster.serving_node(table, node) {
                Ok(v) => views.push(Some(v)),
                Err(SeaError::Storage(_) | SeaError::Transient(_)) if self.partial_answers => {
                    views.push(None);
                }
                Err(e) => return Err(e),
            }
        }
        // Phase A: morsel-parallel mask evaluation.
        let morsels = plan_morsels(&views);
        let evals: Vec<Vec<BlockEval>> = self.pool.run(morsels.len(), |mi| {
            let m = &morsels[mi];
            let (dn, _) = views[m.node_idx].expect("morsels cover live views only");
            dn.blocks()[m.block_lo..m.block_hi]
                .iter()
                .map(|b| eval_block(b, query, bbox))
                .collect()
        });
        // Regroup morsel outputs per node (morsels were planned in node
        // order, contiguously).
        let mut per_node: Vec<Vec<BlockEval>> = vec![Vec::new(); nodes.len()];
        for (m, evs) in morsels.iter().zip(evals) {
            per_node[m.node_idx].extend(evs);
        }
        // Phase B: per-node assembly — meters, stats, and the serial
        // record-order kernel fold. Deterministic per node, so it can
        // run on the pool too.
        let scans = self.pool.run(nodes.len(), |i| {
            let Some((dn, failover)) = views[i] else {
                let mut meter = CostMeter::new();
                meter.touch_node(layers);
                return NodeScan {
                    partial: None,
                    meter,
                    stats: ScanStats::default(),
                    retries: 0,
                    failover: false,
                    unavailable: true,
                    records: None,
                };
            };
            let mut meter = CostMeter::new();
            meter.touch_node(layers);
            let blocks = dn.blocks();
            let evals = &per_node[i];
            let mut stats = ScanStats {
                blocks_total: blocks.len(),
                ..ScanStats::default()
            };
            let mut acc = KernelAcc::new(&query.aggregate);
            let mut records = collect.then(Vec::new);
            if bbox.is_none() {
                // Full scan: every block is read, one seek-equivalent
                // charge per block; records_returned counts all rows.
                for (b, ev) in blocks.iter().zip(evals) {
                    meter.charge_disk_read(b.bytes());
                    meter.charge_cpu(b.len() as u64);
                    stats.blocks_read += 1;
                    stats.bytes_read += b.bytes();
                    stats.records_returned += b.len();
                    acc.push(b.cols(), &ev.refined);
                    if let Some(out) = &mut records {
                        ev.refined.for_each_set(|r| out.push(b.record(r)));
                    }
                }
            } else {
                // Region scan: zone-map pruned blocks are free; read
                // blocks pay CPU per block and one sequential disk read
                // covering all of them.
                for (b, ev) in blocks.iter().zip(evals) {
                    if !ev.read {
                        continue;
                    }
                    stats.blocks_read += 1;
                    stats.bytes_read += b.bytes();
                    stats.records_returned += ev.returned;
                    meter.charge_cpu(b.len() as u64);
                    acc.push(b.cols(), &ev.refined);
                    if let Some(out) = &mut records {
                        ev.refined.for_each_set(|r| out.push(b.record(r)));
                    }
                }
                if stats.bytes_read > 0 {
                    meter.charge_disk_read(stats.bytes_read);
                }
            }
            let partial = acc.finish();
            meter.charge_lan(partial.wire_bytes());
            NodeScan {
                partial: Some(partial),
                meter,
                stats,
                retries: 0,
                failover,
                unavailable: false,
                records,
            }
        });
        Ok(scans)
    }

    /// Stamps a report with the scatter phase's availability outcome:
    /// what fraction of the engaged partitions actually answered.
    fn note_availability(cost: &mut CostReport, engaged: usize, unavailable: u64) {
        if engaged > 0 && unavailable > 0 {
            cost.answered_fraction = (engaged as u64 - unavailable) as f64 / engaged as f64;
            cost.nodes_unavailable = unavailable;
        }
    }

    /// Replays the telemetry of completed scatter scans in node-index
    /// order on the calling thread: one `query.executor.node` span per
    /// node (under `scatter_ctx`) wrapping the replayed
    /// `storage.node.scan` span, counters, and event. Because this runs
    /// single-threaded in a fixed order, the recorded tables — span
    /// ids, event sequence, counter totals — are bit-identical to what
    /// the old sequential loop produced, for every pool size.
    fn replay_scatter(
        &self,
        table: &str,
        nodes: &[NodeId],
        kind: &str,
        scatter_ctx: &TraceContext,
        scans: Vec<NodeScan>,
    ) -> (Vec<Partial>, Vec<CostMeter>, u64, Option<Vec<NodeFragment>>) {
        let mut partials = Vec::with_capacity(scans.len());
        let mut meters = Vec::with_capacity(scans.len());
        let mut unavailable = 0u64;
        let mut fragments: Option<Vec<NodeFragment>> = None;
        for (node, scan) in nodes.iter().zip(scans) {
            let node_span = self
                .telemetry
                .span_child_of(scatter_ctx, "query.executor.node");
            node_span.tag("node", *node);
            if scan.retries > 0 {
                self.telemetry
                    .incr("query.retries", u64::from(scan.retries));
                self.telemetry.event(
                    "query.node_retried",
                    &[("node", (*node).into()), ("retries", scan.retries.into())],
                );
                node_span.tag("retries", scan.retries);
            }
            if scan.failover {
                self.telemetry.incr("query.failovers", 1);
                self.telemetry
                    .event("query.node_failover", &[("node", (*node).into())]);
                node_span.tag("failover", true);
            }
            if scan.unavailable {
                unavailable += 1;
                self.telemetry.incr("query.degraded", 1);
                self.telemetry
                    .event("query.node_unavailable", &[("node", (*node).into())]);
                node_span.tag("unavailable", true);
            } else {
                self.cluster
                    .record_scan(table, *node, kind, &scan.stats, &node_span.ctx());
            }
            let node_sim_us = scan.meter.sequential_us(&self.cost_model);
            if !scan.unavailable {
                // Per-node cost feed for the watch layer's anomaly
                // detector; replayed here in node-index order so the
                // derived suspicion stream is deterministic too.
                self.telemetry.event(
                    "query.node_cost",
                    &[("node", (*node).into()), ("sim_us", node_sim_us.into())],
                );
            }
            node_span.record_sim_us(node_sim_us);
            if let Some(partial) = scan.partial {
                partials.push(partial);
            }
            if let Some(records) = scan.records {
                fragments.get_or_insert_with(Vec::new).push(NodeFragment {
                    node: *node as u64,
                    records,
                });
            }
            meters.push(scan.meter);
        }
        (partials, meters, unavailable, fragments)
    }

    /// Executes many queries concurrently in the direct regime, fanning
    /// whole queries out across the pool — the shape batched analytics
    /// workloads (E1/E4/E7) actually have. Results come back in query
    /// order, each exactly what [`Executor::execute_direct`] would have
    /// returned. Per-query node scans run inline on the query's worker
    /// (a nested fan-out would oversubscribe the host).
    pub fn execute_batch(
        &self,
        table: &str,
        queries: &[AnalyticalQuery],
    ) -> Vec<Result<QueryOutcome>> {
        self.execute_batch_traced(table, queries, &TraceContext::NONE)
    }

    /// [`Executor::execute_batch`] with an explicit trace parent: each
    /// query's span tree attaches under `parent` even though it is built
    /// on a worker thread. Note that with a recording sink, span ids and
    /// event interleavings across queries depend on scheduling — batch
    /// telemetry is coherent per query but not bit-reproducible across
    /// runs (single-query execution is).
    pub fn execute_batch_traced(
        &self,
        table: &str,
        queries: &[AnalyticalQuery],
        parent: &TraceContext,
    ) -> Vec<Result<QueryOutcome>> {
        let batch_span = self.telemetry.span_child_of(parent, "query.executor.batch");
        batch_span.tag("queries", queries.len());
        let ctx = batch_span.ctx();
        // Inner executors run whole queries on worker threads; a shared
        // cache there would make admission order (and thus eviction
        // tie-breaks) schedule-dependent, so batches run cache-less.
        let inner = self
            .clone()
            .with_pool(ExecPool::sequential())
            .without_cache();
        // All-rectangular batches on a healthy cluster share one superset
        // scan: the union of the batch's query boxes is gathered once per
        // node, and every query evaluates its predicate against that
        // (much smaller) shared subset. Answers, cost reports, and the
        // telemetry replay are bit-identical to standalone execution —
        // the provider reproduces the per-query scan's exact charges and
        // float-op sequence — so this is purely a wall-clock win.
        if let Some(shared) = self.plan_shared_scan(table, queries) {
            return self.pool.run(queries.len(), |i| {
                inner.execute_direct_with(table, &queries[i], &ctx, |candidates, bbox| {
                    Ok(shared.node_scans(candidates, bbox, &queries[i].aggregate))
                })
            });
        }
        self.pool.run(queries.len(), |i| {
            inner.execute_direct_traced(table, &queries[i], &ctx)
        })
    }

    /// Builds the batch-shared superset scan, or `None` when the batch
    /// does not qualify (fewer than two queries, any non-rectangular or
    /// dimension-mismatched region, a fault plan installed, or any
    /// primary down — those fall back to independent per-query scans so
    /// fault determinism is untouched).
    fn plan_shared_scan(&self, table: &str, queries: &[AnalyticalQuery]) -> Option<SharedScan> {
        if queries.len() < 2 || self.cluster.has_fault_plan() || self.cluster.any_primary_down() {
            return None;
        }
        let dims = self.cluster.dims(table).ok()?;
        if dims == 0 {
            return None;
        }
        let mut union: Option<Rect> = None;
        for q in queries {
            let Region::Range(r) = &q.region else {
                return None;
            };
            if r.dims() != dims {
                return None;
            }
            union = Some(match union {
                None => r.clone(),
                Some(u) => u.union(r).ok()?,
            });
        }
        let union = union?;
        let n_nodes = self.cluster.num_nodes();
        let mut views = Vec::with_capacity(n_nodes);
        for node in 0..n_nodes {
            let (dn, _) = self.cluster.serving_node(table, node).ok()?;
            views.push(dn);
        }
        // One pass per node: catalog every block's zone-map facts and
        // gather the union-box rows' columns in record order. Each node
        // is independent, so the pass parallelises freely.
        let nodes = self.pool.run(n_nodes, |n| {
            let dn = views[n];
            let mut catalog = Vec::with_capacity(dn.blocks().len());
            let mut sub: Vec<Vec<f64>> = vec![Vec::new(); dims];
            for b in dn.blocks() {
                catalog.push((b.bounds().cloned(), b.len(), b.bytes()));
                if b.bounds().is_some_and(|bb| bb.intersects(&union)) {
                    let m = b.bbox_mask(&union);
                    if !m.is_none_set() {
                        for (d, out) in sub.iter_mut().enumerate() {
                            kernels::gather(b.col(d), &m, out);
                        }
                    }
                }
            }
            SharedNode { catalog, sub }
        });
        Some(SharedScan { nodes })
    }

    /// [`Executor::execute_batch`] in the BDAS regime.
    pub fn execute_batch_bdas(
        &self,
        table: &str,
        queries: &[AnalyticalQuery],
    ) -> Vec<Result<QueryOutcome>> {
        let batch_span = self
            .telemetry
            .span_child_of(&TraceContext::NONE, "query.executor.batch");
        batch_span.tag("queries", queries.len());
        let ctx = batch_span.ctx();
        let inner = self
            .clone()
            .with_pool(ExecPool::sequential())
            .without_cache();
        self.pool.run(queries.len(), |i| {
            inner.execute_bdas_traced(table, &queries[i], &ctx)
        })
    }
}

/// Target morsel size in records: the intra-node work unit the pool
/// steals. A fixed constant independent of thread count, so the morsel
/// decomposition — and everything downstream — never depends on the
/// host's parallelism.
const MORSEL_RECORDS: usize = 4096;

/// A contiguous run of blocks within one node: the unit of phase-A mask
/// evaluation.
struct Morsel {
    /// Index into the scatter's `views`/`nodes` arrays.
    node_idx: usize,
    block_lo: usize,
    block_hi: usize,
}

/// Splits each live node's block list into morsels of roughly
/// [`MORSEL_RECORDS`] records (at least one block each), in node order.
fn plan_morsels(views: &[Option<(&DataNode, bool)>]) -> Vec<Morsel> {
    let mut out = Vec::new();
    for (node_idx, v) in views.iter().enumerate() {
        let Some((dn, _)) = v else { continue };
        let blocks = dn.blocks();
        let mut lo = 0;
        while lo < blocks.len() {
            let mut hi = lo;
            let mut rows = 0;
            while hi < blocks.len() && rows < MORSEL_RECORDS {
                rows += blocks[hi].len();
                hi += 1;
            }
            out.push(Morsel {
                node_idx,
                block_lo: lo,
                block_hi: hi,
            });
            lo = hi;
        }
    }
    out
}

/// One node's share of a batch superset scan: the zone-map catalog of
/// every block (bounds, rows, bytes — enough to replay each query's
/// per-block charges without touching the data again) and the gathered
/// sub-columns of the rows inside the union of the batch's query boxes,
/// in node record order.
struct SharedNode {
    catalog: Vec<(Option<Rect>, usize, u64)>,
    sub: Vec<Vec<f64>>,
}

/// A batch-shared superset scan over the whole cluster (see
/// [`Executor::plan_shared_scan`]).
struct SharedScan {
    nodes: Vec<SharedNode>,
}

impl SharedScan {
    /// Replays one query's per-node scans against the shared subset.
    ///
    /// Charges are reconstructed from the catalog exactly as the direct
    /// scan computes them — CPU per admitted block, one sequential disk
    /// read covering all admitted blocks — and the kernel fold visits
    /// the query's rows in the same record order the direct scan would,
    /// so the resulting [`NodeScan`]s are bit-identical to
    /// [`Executor::scatter_scans`]' on a healthy cluster. (Every row in
    /// the query box lies in the union box, and its block's bounds
    /// necessarily intersect the query box, so the shared subset loses
    /// nothing.)
    fn node_scans(
        &self,
        candidates: &[NodeId],
        bbox: &Rect,
        aggregate: &AggregateKind,
    ) -> Vec<NodeScan> {
        candidates
            .iter()
            .map(|&node| {
                let sn = &self.nodes[node];
                let mut meter = CostMeter::new();
                meter.touch_node(DIRECT_LAYERS);
                let mut stats = ScanStats {
                    blocks_total: sn.catalog.len(),
                    ..ScanStats::default()
                };
                for (bounds, rows, bytes) in &sn.catalog {
                    if !bounds.as_ref().is_some_and(|bb| bb.intersects(bbox)) {
                        continue;
                    }
                    stats.blocks_read += 1;
                    stats.bytes_read += bytes;
                    meter.charge_cpu(*rows as u64);
                }
                if stats.bytes_read > 0 {
                    meter.charge_disk_read(stats.bytes_read);
                }
                let sub_len = sn.sub.first().map_or(0, Vec::len);
                let qmask = kernels::range_mask(&sn.sub, sub_len, bbox.lo(), bbox.hi());
                stats.records_returned = qmask.count();
                let mut acc = KernelAcc::new(aggregate);
                acc.push(&sn.sub, &qmask);
                let partial = acc.finish();
                meter.charge_lan(partial.wire_bytes());
                NodeScan {
                    partial: Some(partial),
                    meter,
                    stats,
                    retries: 0,
                    failover: false,
                    unavailable: false,
                    records: None,
                }
            })
            .collect()
    }
}

/// Phase-A output for one block: whether the zone map admits it, how
/// many rows its bounding-box filter returns, and the selection bitmap
/// of rows matching the query region (the rows the kernel fold visits).
#[derive(Clone)]
struct BlockEval {
    read: bool,
    returned: usize,
    refined: SelectionMask,
}

/// Evaluates one block's masks for `query`. `bbox = None` is the
/// full-scan (BDAS) path: every block is read and `refined` selects the
/// region's rows among all of them. `bbox = Some` is the zone-map pruned
/// path: non-intersecting blocks are skipped, and `refined` is the exact
/// equivalent of bounding-box filtering followed by
/// `region.contains_record`.
fn eval_block(b: &Block, query: &AnalyticalQuery, bbox: Option<&Rect>) -> BlockEval {
    let Some(rect) = bbox else {
        return BlockEval {
            read: true,
            returned: b.len(),
            refined: b.region_mask(&query.region),
        };
    };
    if !b.bounds().is_some_and(|bounds| bounds.intersects(rect)) {
        return BlockEval {
            read: false,
            returned: 0,
            refined: SelectionMask::none(0),
        };
    }
    let bmask = b.bbox_mask(rect);
    let returned = bmask.count();
    let refined = match &query.region {
        // For a rectangular region the bounding box *is* the region, so
        // the bbox mask already is the exact selection.
        Region::Range(_) => bmask,
        other => {
            let mut m = b.region_mask(other);
            m.intersect(&bmask);
            m
        }
    };
    BlockEval {
        read: true,
        returned,
        refined,
    }
}

/// A running per-node partial folded directly over column slices: the
/// columnar twin of [`make_partial`], executing the exact same float
/// operations in the exact same (record) order over the selected rows,
/// so the resulting [`Partial`] is bit-identical to the row path's.
enum KernelAcc {
    Count {
        count: u64,
    },
    SumSq {
        dim: usize,
        count: u64,
        sum: f64,
        sum_sq: f64,
    },
    Welford {
        dim: usize,
        count: u64,
        mean: f64,
        m2: f64,
    },
    MinMax {
        dim: usize,
        min: f64,
        max: f64,
    },
    Values {
        dim: usize,
        values: Vec<f64>,
    },
    Bivariate {
        x: usize,
        y: usize,
        stats: BivariateStats,
    },
    /// Future `AggregateKind` variants: finishes to an empty `Values`
    /// partial, exactly as [`make_partial`]'s fallback arm does.
    Opaque,
}

impl KernelAcc {
    fn new(agg: &AggregateKind) -> Self {
        match *agg {
            AggregateKind::Count => KernelAcc::Count { count: 0 },
            AggregateKind::Sum { dim } | AggregateKind::Mean { dim } => KernelAcc::SumSq {
                dim,
                count: 0,
                sum: 0.0,
                sum_sq: 0.0,
            },
            AggregateKind::Variance { dim } => KernelAcc::Welford {
                dim,
                count: 0,
                mean: 0.0,
                m2: 0.0,
            },
            AggregateKind::Min { dim } | AggregateKind::Max { dim } => KernelAcc::MinMax {
                dim,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            },
            AggregateKind::Median { dim } | AggregateKind::Quantile { dim, .. } => {
                KernelAcc::Values {
                    dim,
                    values: Vec::new(),
                }
            }
            AggregateKind::Correlation { x, y } | AggregateKind::Regression { x, y } => {
                KernelAcc::Bivariate {
                    x,
                    y,
                    stats: BivariateStats::default(),
                }
            }
            _ => KernelAcc::Opaque,
        }
    }

    /// Folds the rows `mask` selects from `cols` into the accumulator,
    /// in row order.
    fn push(&mut self, cols: &[Vec<f64>], mask: &SelectionMask) {
        if mask.is_none_set() {
            return;
        }
        match self {
            KernelAcc::Count { count } => *count += mask.count() as u64,
            KernelAcc::SumSq {
                dim,
                count,
                sum,
                sum_sq,
            } => {
                *count += mask.count() as u64;
                kernels::fold_sum_sq(&cols[*dim], mask, sum, sum_sq);
            }
            KernelAcc::Welford {
                dim,
                count,
                mean,
                m2,
            } => kernels::fold_welford(&cols[*dim], mask, count, mean, m2),
            KernelAcc::MinMax { dim, min, max } => {
                kernels::fold_min_max(&cols[*dim], mask, min, max)
            }
            KernelAcc::Values { dim, values } => kernels::gather(&cols[*dim], mask, values),
            KernelAcc::Bivariate { x, y, stats } => {
                kernels::fold_bivariate(&cols[*x], &cols[*y], mask, stats)
            }
            KernelAcc::Opaque => {}
        }
    }

    fn finish(self) -> Partial {
        match self {
            KernelAcc::Count { count } => Partial::CountSum {
                count,
                sum: 0.0,
                sum_sq: 0.0,
            },
            KernelAcc::SumSq {
                count, sum, sum_sq, ..
            } => Partial::CountSum { count, sum, sum_sq },
            KernelAcc::Welford {
                count, mean, m2, ..
            } => Partial::Moments { count, mean, m2 },
            KernelAcc::MinMax { min, max, .. } => Partial::MinMax { min, max },
            KernelAcc::Values { values, .. } => Partial::Values(values),
            KernelAcc::Bivariate { stats, .. } => Partial::Bivariate(stats),
            KernelAcc::Opaque => Partial::Values(Vec::new()),
        }
    }
}

fn make_partial(agg: &AggregateKind, matched: &[&Record]) -> Partial {
    match *agg {
        AggregateKind::Count => Partial::CountSum {
            count: matched.len() as u64,
            sum: 0.0,
            sum_sq: 0.0,
        },
        AggregateKind::Sum { dim } | AggregateKind::Mean { dim } => {
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for r in matched {
                let v = r.value(dim);
                sum += v;
                sum_sq += v * v;
            }
            Partial::CountSum {
                count: matched.len() as u64,
                sum,
                sum_sq,
            }
        }
        AggregateKind::Variance { dim } => {
            // Welford's online update: raw sum-of-squares accumulation
            // loses the variance to cancellation once |mean| dwarfs the
            // spread.
            let mut count = 0u64;
            let mut mean = 0.0;
            let mut m2 = 0.0;
            for r in matched {
                let v = r.value(dim);
                count += 1;
                let delta = v - mean;
                mean += delta / count as f64;
                m2 += delta * (v - mean);
            }
            Partial::Moments { count, mean, m2 }
        }
        AggregateKind::Min { dim } | AggregateKind::Max { dim } => {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in matched {
                let v = r.value(dim);
                min = min.min(v);
                max = max.max(v);
            }
            Partial::MinMax { min, max }
        }
        AggregateKind::Median { dim } | AggregateKind::Quantile { dim, .. } => {
            Partial::Values(matched.iter().map(|r| r.value(dim)).collect())
        }
        AggregateKind::Correlation { x, y } | AggregateKind::Regression { x, y } => {
            Partial::Bivariate(BivariateStats::from_records(matched.iter().copied(), x, y))
        }
        // `AggregateKind` is non_exhaustive; future variants ship raw
        // values so `merge_partials` can reject them explicitly.
        _ => Partial::Values(Vec::new()),
    }
}

fn merge_partials(agg: &AggregateKind, partials: Vec<Partial>) -> Result<AnswerValue> {
    use sea_common::SeaError;
    match *agg {
        AggregateKind::Count => {
            let total: u64 = partials.iter().map(count_of).sum();
            Ok(AnswerValue::Scalar(total as f64))
        }
        AggregateKind::Sum { .. } => {
            let total: f64 = partials.iter().map(sum_of).sum();
            Ok(AnswerValue::Scalar(total))
        }
        AggregateKind::Mean { .. } => {
            let n: u64 = partials.iter().map(count_of).sum();
            if n == 0 {
                return Err(SeaError::Empty("mean over empty subspace".into()));
            }
            let s: f64 = partials.iter().map(sum_of).sum();
            Ok(AnswerValue::Scalar(s / n as f64))
        }
        AggregateKind::Variance { .. } => {
            // Chan et al.'s pairwise merge of per-node centered moments.
            // Legacy (count, sum, sum_sq) partials are converted to
            // moments first; the final clamp guards the residual
            // rounding that can push a near-zero variance negative.
            let mut count = 0u64;
            let mut mean = 0.0;
            let mut m2 = 0.0;
            let mut fold = |nb: u64, mb: f64, m2b: f64| {
                if nb == 0 {
                    return;
                }
                let na = count as f64;
                let nbf = nb as f64;
                let total = na + nbf;
                let delta = mb - mean;
                mean += delta * nbf / total;
                m2 += m2b + delta * delta * na * nbf / total;
                count += nb;
            };
            for p in &partials {
                match p {
                    Partial::Moments { count, mean, m2 } => fold(*count, *mean, *m2),
                    Partial::CountSum { count, sum, sum_sq } if *count > 0 => {
                        let mb = sum / *count as f64;
                        fold(*count, mb, (sum_sq - sum * mb).max(0.0));
                    }
                    _ => {}
                }
            }
            if count == 0 {
                return Err(SeaError::Empty("variance over empty subspace".into()));
            }
            Ok(AnswerValue::Scalar((m2 / count as f64).max(0.0)))
        }
        AggregateKind::Min { .. } => {
            let m = partials
                .iter()
                .filter_map(|p| match p {
                    Partial::MinMax { min, .. } if min.is_finite() => Some(*min),
                    _ => None,
                })
                .fold(f64::INFINITY, f64::min);
            if m.is_finite() {
                Ok(AnswerValue::Scalar(m))
            } else {
                Err(SeaError::Empty("min over empty subspace".into()))
            }
        }
        AggregateKind::Max { .. } => {
            let m = partials
                .iter()
                .filter_map(|p| match p {
                    Partial::MinMax { max, .. } if max.is_finite() => Some(*max),
                    _ => None,
                })
                .fold(f64::NEG_INFINITY, f64::max);
            if m.is_finite() {
                Ok(AnswerValue::Scalar(m))
            } else {
                Err(SeaError::Empty("max over empty subspace".into()))
            }
        }
        AggregateKind::Median { .. } => merge_quantile(partials, 0.5),
        AggregateKind::Quantile { q, .. } => merge_quantile(partials, q),
        AggregateKind::Correlation { .. } => {
            let mut stats = BivariateStats::default();
            for p in &partials {
                if let Partial::Bivariate(b) = p {
                    stats.merge(b);
                }
            }
            stats.correlation().map(AnswerValue::Scalar)
        }
        AggregateKind::Regression { .. } => {
            let mut stats = BivariateStats::default();
            for p in &partials {
                if let Partial::Bivariate(b) = p {
                    stats.merge(b);
                }
            }
            let (slope, intercept) = stats.ols_line()?;
            Ok(AnswerValue::Pair(slope, intercept))
        }
        _ => Err(SeaError::invalid("aggregate not supported by the executor")),
    }
}

fn count_of(p: &Partial) -> u64 {
    match p {
        Partial::CountSum { count, .. } => *count,
        _ => 0,
    }
}

fn sum_of(p: &Partial) -> f64 {
    match p {
        Partial::CountSum { sum, .. } => *sum,
        _ => 0.0,
    }
}

fn merge_quantile(partials: Vec<Partial>, q: f64) -> Result<AnswerValue> {
    use sea_common::SeaError;
    let mut values: Vec<f64> = partials
        .into_iter()
        .flat_map(|p| match p {
            Partial::Values(v) => v,
            _ => Vec::new(),
        })
        .collect();
    if values.is_empty() {
        return Err(SeaError::Empty("quantile over empty subspace".into()));
    }
    // total_cmp keeps the sort panic-free on NaN record values (they
    // order after +inf instead of aborting the query).
    values.sort_by(f64::total_cmp);
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Ok(AnswerValue::Scalar(
        values[lo] + (values[hi] - values[lo]) * (pos - lo as f64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Ball, Point, Rect, Region, SeaError};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 64);
        let records: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64, (i % 7) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let records2: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64, (i % 7) as f64]))
            .collect();
        c.load_table(
            "t_range",
            records2,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
            },
        )
        .unwrap();
        c
    }

    fn count_query(lo: Vec<f64>, hi: Vec<f64>) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::new(lo, hi).unwrap()),
            AggregateKind::Count,
        )
    }

    fn oracle(c: &StorageCluster, table: &str, q: &AnalyticalQuery) -> AnswerValue {
        let all: Vec<Record> = c.all_records(table).unwrap();
        q.answer_exact(&all).unwrap()
    }

    #[test]
    fn bdas_and_direct_agree_with_oracle_on_all_aggregates() {
        let c = cluster();
        let exec = Executor::new(&c);
        let region = Region::Range(Rect::new(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]).unwrap());
        let aggregates = vec![
            AggregateKind::Count,
            AggregateKind::Sum { dim: 1 },
            AggregateKind::Mean { dim: 1 },
            AggregateKind::Variance { dim: 2 },
            AggregateKind::Min { dim: 0 },
            AggregateKind::Max { dim: 1 },
            AggregateKind::Median { dim: 0 },
            AggregateKind::Quantile { dim: 0, q: 0.25 },
            AggregateKind::Correlation { x: 0, y: 2 },
            AggregateKind::Regression { x: 0, y: 1 },
        ];
        for agg in aggregates {
            let q = AnalyticalQuery::new(region.clone(), agg);
            let want = oracle(&c, "t", &q);
            let bdas = exec.execute_bdas("t", &q).unwrap();
            let direct = exec.execute_direct("t", &q).unwrap();
            assert!(
                bdas.answer.relative_error(&want) < 1e-9,
                "bdas {agg:?}: {:?} vs {want:?}",
                bdas.answer
            );
            assert!(
                direct.answer.relative_error(&want) < 1e-9,
                "direct {agg:?}: {:?} vs {want:?}",
                direct.answer
            );
        }
    }

    #[test]
    fn radius_queries_agree() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(
            Region::Radius(Ball::new(Point::new(vec![50.0, 10.0, 3.0]), 8.0).unwrap()),
            AggregateKind::Count,
        );
        let want = oracle(&c, "t", &q);
        assert_eq!(exec.execute_bdas("t", &q).unwrap().answer, want);
        assert_eq!(exec.execute_direct("t", &q).unwrap().answer, want);
    }

    #[test]
    fn direct_is_cheaper_than_bdas() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 5.0, 6.0]);
        let bdas = exec.execute_bdas("t", &q).unwrap();
        let direct = exec.execute_direct("t", &q).unwrap();
        assert!(
            direct.cost.wall_us < bdas.cost.wall_us,
            "direct {} vs bdas {}",
            direct.cost.wall_us,
            bdas.cost.wall_us
        );
        assert!(direct.cost.totals.disk_bytes < bdas.cost.totals.disk_bytes);
        assert!(direct.cost.totals.layer_crossings < bdas.cost.totals.layer_crossings);
    }

    #[test]
    fn direct_on_range_partitioning_touches_fewer_nodes() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 1e9, 6.0]);
        let hash = exec.execute_direct("t", &q).unwrap();
        let ranged = exec.execute_direct("t_range", &q).unwrap();
        assert_eq!(hash.answer, ranged.answer);
        assert!(ranged.cost.totals.nodes_touched < hash.cost.totals.nodes_touched);
        assert_eq!(ranged.cost.totals.nodes_touched, 1);
    }

    #[test]
    fn bdas_engages_every_node() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        let out = exec.execute_bdas("t", &q).unwrap();
        assert_eq!(out.cost.totals.nodes_touched, 4);
        assert_eq!(out.cost.totals.layer_crossings, 4 * BDAS_LAYERS);
    }

    #[test]
    fn empty_selection_semantics() {
        let c = cluster();
        let exec = Executor::new(&c);
        let nowhere = count_query(vec![-10.0, -10.0, -10.0], vec![-5.0, -5.0, -5.0]);
        assert_eq!(
            exec.execute_bdas("t", &nowhere).unwrap().answer,
            AnswerValue::Scalar(0.0)
        );
        let mean_nowhere =
            AnalyticalQuery::new(nowhere.region.clone(), AggregateKind::Mean { dim: 0 });
        assert!(matches!(
            exec.execute_direct("t", &mean_nowhere),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn missing_table_is_an_error() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        assert!(matches!(
            exec.execute_bdas("missing", &q),
            Err(SeaError::NotFound(_))
        ));
    }

    #[test]
    fn invalid_aggregate_dim_is_an_error() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap()),
            AggregateKind::Mean { dim: 9 },
        );
        assert!(exec.execute_bdas("t", &q).is_err());
        assert!(exec.execute_direct("t", &q).is_err());
    }

    #[test]
    fn recording_sink_yields_one_coherent_span_tree() {
        use sea_telemetry::FieldValue;
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        sink.begin_query(9);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]);
        exec.execute_bdas("t", &q).unwrap();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 1, "one query → one span tree");
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "query.executor.bdas");
        assert_eq!(root.trace_id, sea_telemetry::trace_id_for_query(9));
        let scatter = root.find("query.executor.scatter").unwrap();
        let nodes: Vec<_> = scatter
            .children
            .iter()
            .filter(|s| s.name == "query.executor.node")
            .collect();
        assert_eq!(nodes.len(), 4, "every node under scatter");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.tag("node"), Some(&FieldValue::U64(i as u64)));
            assert!(n.sim_us > 0.0, "per-node sim cost attributed");
            assert_eq!(n.trace_id, root.trace_id, "single trace end to end");
            let scan = n.find("storage.node.scan").expect("scan under its node");
            assert_eq!(scan.parent_span_id, n.span_id);
            assert_eq!(scan.tag("node"), Some(&FieldValue::U64(i as u64)));
        }
        assert!(root.find("query.executor.gather").is_some());
        assert!(scatter.tag("sim_makespan_us").is_some());
    }

    #[test]
    fn direct_traced_attributes_only_engaged_nodes() {
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 1e9, 6.0]);
        exec.execute_direct("t_range", &q).unwrap();
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "query.executor.direct");
        let scatter = root.find("query.executor.scatter").unwrap();
        let nodes: Vec<_> = scatter
            .children
            .iter()
            .filter(|s| s.name == "query.executor.node")
            .collect();
        assert_eq!(nodes.len(), 1, "range pruning → one engaged node");
    }

    #[test]
    fn merge_quantile_survives_nan_values() {
        // NaN record values can't pass a region filter, but partials fed
        // from other sources (or future float paths) must not abort the
        // coordinator: total_cmp sorts NaN after +inf instead of
        // panicking mid-merge.
        let partials = vec![
            Partial::Values(vec![2.0, f64::NAN]),
            Partial::Values(vec![1.0, 3.0]),
        ];
        let got = merge_quantile(partials, 0.5).unwrap();
        assert_eq!(got, AnswerValue::Scalar(2.5), "median of finite prefix");
        let all_nan = vec![Partial::Values(vec![f64::NAN, f64::NAN])];
        // Degenerate input: still no panic (the answer is NaN-poisoned,
        // which is honest).
        let _ = merge_quantile(all_nan, 0.5).unwrap();
    }

    #[test]
    fn distributed_variance_is_robust_under_large_means() {
        // dim-1 values sit at 1e9 + i%5: the raw sq/n − (s/n)² form
        // cancels to garbage (often negative); the Welford/Chan merge
        // must match the oracle and stay non-negative.
        let mut c = StorageCluster::new(4, 64);
        let records: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, 1e9 + (i % 5) as f64]))
            .collect();
        c.load_table("big", records, Partitioning::Hash).unwrap();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0, 0.0], vec![100.0, 2e9]).unwrap()),
            AggregateKind::Variance { dim: 1 },
        );
        let want = oracle(&c, "big", &q);
        let AnswerValue::Scalar(want_v) = want else {
            panic!("scalar oracle")
        };
        assert!(want_v > 1.9 && want_v < 2.1, "oracle sanity: {want_v}");
        for out in [
            exec.execute_bdas("big", &q).unwrap(),
            exec.execute_direct("big", &q).unwrap(),
        ] {
            let AnswerValue::Scalar(got) = out.answer else {
                panic!("scalar answer")
            };
            assert!(got >= 0.0, "variance must be non-negative, got {got}");
            assert!(
                (got - want_v).abs() < 1e-6 * want_v.max(1.0),
                "got {got}, want {want_v}"
            );
        }
    }

    #[test]
    fn direct_request_fanout_is_attributed_to_scatter_not_gather() {
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]);
        let out = exec.execute_direct("t", &q).unwrap();
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        let scatter = root.find("query.executor.scatter").unwrap();
        let gather = root.find("query.executor.gather").unwrap();
        let model = exec.cost_model();
        let mut request = CostMeter::new();
        for _ in 0..4 {
            request.charge_lan(64);
        }
        let mut merge = CostMeter::new();
        merge.charge_cpu(4);
        assert!(
            (scatter.sim_us - request.sequential_us(model)).abs() < 1e-12,
            "scatter carries the request fan-out: {}",
            scatter.sim_us
        );
        assert!(
            (gather.sim_us - merge.sequential_us(model)).abs() < 1e-12,
            "gather carries only the merge: {}",
            gather.sim_us
        );
        // The report still bills both coordinator phases.
        let mut coord = request;
        coord.charge_cpu(4);
        let node_sim: f64 = root
            .find("query.executor.scatter")
            .unwrap()
            .children
            .iter()
            .filter(|s| s.name == "query.executor.node")
            .map(|s| s.sim_us)
            .fold(0.0, f64::max);
        assert!(
            (out.cost.wall_us - (coord.sequential_us(model) + node_sim)).abs() < 1e-9,
            "wall = coordinator + slowest node"
        );
    }

    #[test]
    fn transient_faults_are_retried_with_charged_backoff() {
        use sea_storage::FaultPlan;
        let mut c = cluster();
        let baseline = Executor::new(&c)
            .execute_direct(
                "t",
                &count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]),
            )
            .unwrap();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        c.set_fault_plan(FaultPlan::new(42).with_transient(0.5, 1));
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]);
        let out = exec.execute_direct("t", &q).unwrap();
        assert_eq!(out.answer, baseline.answer, "retries recover the answer");
        assert!(
            out.cost.totals.backoff_us > 0,
            "backoff is charged to the meter"
        );
        assert!(
            out.cost.wall_us > baseline.cost.wall_us,
            "fault recovery costs simulated time"
        );
        assert_eq!(out.cost.answered_fraction, 1.0);
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("query.retries") > 0);
        assert!(snap.event_count("query.node_retried") > 0);
    }

    #[test]
    fn crashed_node_fails_over_to_replica() {
        use sea_storage::FaultPlan;
        let mut c = StorageCluster::with_replication(4, 64);
        let records: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64, (i % 7) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let baseline = Executor::new(&c)
            .execute_bdas("t", &count_query(vec![0.0; 3], vec![100.0, 20.0, 6.0]))
            .unwrap();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        c.set_fault_plan(FaultPlan::new(7).with_crash(2, 0));
        let exec = Executor::new(&c);
        let q = count_query(vec![0.0; 3], vec![100.0, 20.0, 6.0]);
        let out = exec.execute_bdas("t", &q).unwrap();
        assert_eq!(out.answer, baseline.answer, "replica serves the partition");
        assert_eq!(out.cost.answered_fraction, 1.0);
        let snap = sink.snapshot().unwrap();
        assert!(snap.counter("query.failovers") > 0);
        assert!(snap.event_count("query.node_failover") > 0);
    }

    #[test]
    fn unreplicated_crash_degrades_only_in_partial_answer_mode() {
        use sea_storage::FaultPlan;
        let mut c = cluster();
        c.set_fault_plan(FaultPlan::new(3).with_crash(1, 0));
        let q = count_query(vec![0.0; 3], vec![100.0, 20.0, 6.0]);

        // Default executor: loud, not wrong.
        let strict = Executor::new(&c);
        assert!(matches!(
            strict.execute_bdas("t", &q),
            Err(SeaError::Storage(_))
        ));

        // Partial-answer mode: a degraded count plus the availability
        // accounting, instead of an error.
        let sink = TelemetrySink::recording();
        let degraded = Executor::new(&c)
            .with_telemetry(sink.clone())
            .with_partial_answers(true);
        let out = degraded.execute_bdas("t", &q).unwrap();
        let AnswerValue::Scalar(got) = out.answer else {
            panic!("scalar answer")
        };
        assert!(got > 0.0 && got < 2000.0, "partial count: {got}");
        assert!(out.cost.answered_fraction < 1.0);
        assert_eq!(out.cost.nodes_unavailable, 1);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("query.degraded"), 1);
        assert_eq!(snap.event_count("query.node_unavailable"), 1);
    }

    #[test]
    fn exhausted_retries_propagate_the_transient_error() {
        use sea_storage::FaultPlan;
        let mut c = cluster();
        c.set_fault_plan(FaultPlan::new(5).with_transient(1.0, 1));
        let q = count_query(vec![0.0; 3], vec![100.0, 20.0, 6.0]);
        let strict = Executor::new(&c).with_retry_policy(RetryPolicy::none());
        assert!(matches!(
            strict.execute_bdas("t", &q),
            Err(SeaError::Transient(_))
        ));

        // With every scan failing, partial-answer mode reports a fully
        // degraded (but well-typed) outcome.
        let degraded = Executor::new(&c).with_partial_answers(true);
        let out = degraded.execute_bdas("t", &q).unwrap();
        assert_eq!(out.answer, AnswerValue::Scalar(0.0));
        assert_eq!(out.cost.answered_fraction, 0.0);
        assert_eq!(out.cost.nodes_unavailable, 4);
    }

    #[test]
    fn no_fault_plan_changes_nothing() {
        let c = cluster();
        let q = count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]);
        let plain = Executor::new(&c).execute_direct("t", &q).unwrap();
        let tolerant = Executor::new(&c)
            .with_partial_answers(true)
            .with_retry_policy(RetryPolicy::default())
            .execute_direct("t", &q)
            .unwrap();
        assert_eq!(plain, tolerant, "fault tolerance is free when healthy");
        assert_eq!(plain.cost.totals.backoff_us, 0);
    }

    #[test]
    fn holistic_aggregates_ship_values() {
        let c = cluster();
        let exec = Executor::new(&c);
        let big = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0; 3], vec![100.0, 20.0, 6.0]).unwrap()),
            AggregateKind::Median { dim: 0 },
        );
        let small = AnalyticalQuery::new(big.region.clone(), AggregateKind::Count);
        let big_out = exec.execute_bdas("t", &big).unwrap();
        let small_out = exec.execute_bdas("t", &small).unwrap();
        assert!(
            big_out.cost.totals.lan_bytes > small_out.cost.totals.lan_bytes * 10,
            "median ships values: {} vs {}",
            big_out.cost.totals.lan_bytes,
            small_out.cost.totals.lan_bytes
        );
    }
}
