//! The exact executor: BDAS-style and coordinator–cohort query processing.

use sea_common::{
    AggregateKind, AnalyticalQuery, AnswerValue, BivariateStats, CostMeter, CostModel, CostReport,
    Record, Result,
};
use sea_storage::{StorageCluster, BDAS_LAYERS, DIRECT_LAYERS};
use sea_telemetry::{TelemetrySink, TraceContext};

/// The outcome of executing one analytical query: the exact answer plus
/// the full resource bill.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The (exact) answer.
    pub answer: AnswerValue,
    /// What it cost to produce.
    pub cost: CostReport,
}

/// Per-node partial state shipped to the coordinator. Distributive and
/// algebraic aggregates ship constant-size sufficient statistics; holistic
/// aggregates (median/quantile) must ship the selected values themselves.
#[derive(Debug, Clone)]
enum Partial {
    CountSum { count: u64, sum: f64, sum_sq: f64 },
    MinMax { min: f64, max: f64 },
    Bivariate(BivariateStats),
    Values(Vec<f64>),
}

impl Partial {
    /// Bytes this partial occupies on the wire.
    fn wire_bytes(&self) -> u64 {
        match self {
            Partial::CountSum { .. } => 24,
            Partial::MinMax { .. } => 16,
            Partial::Bivariate(_) => 48,
            Partial::Values(v) => 8 * v.len() as u64,
        }
    }
}

/// Stateless executor over a [`StorageCluster`].
#[derive(Debug, Clone)]
pub struct Executor<'a> {
    cluster: &'a StorageCluster,
    cost_model: CostModel,
    telemetry: TelemetrySink,
}

impl<'a> Executor<'a> {
    /// Creates an executor using the default [`CostModel`]. The executor
    /// inherits the cluster's telemetry sink, so instrumenting the
    /// cluster instruments the whole exact query path.
    pub fn new(cluster: &'a StorageCluster) -> Self {
        Executor {
            cluster,
            cost_model: CostModel::default(),
            telemetry: cluster.telemetry().clone(),
        }
    }

    /// Creates an executor with an explicit cost model.
    pub fn with_cost_model(cluster: &'a StorageCluster, cost_model: CostModel) -> Self {
        Executor {
            cluster,
            cost_model,
            telemetry: cluster.telemetry().clone(),
        }
    }

    /// Overrides the telemetry sink inherited from the cluster.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The executor's telemetry sink.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The executor's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Executes `query` over `table` MapReduce-style: every node is
    /// engaged through all BDAS layers, scans all of its blocks, filters,
    /// computes a partial aggregate, and ships it over the LAN to a
    /// coordinator that merges.
    ///
    /// # Errors
    ///
    /// Missing table, dimension mismatch, or aggregate errors (e.g. an
    /// operator undefined on an empty selection).
    pub fn execute_bdas(&self, table: &str, query: &AnalyticalQuery) -> Result<QueryOutcome> {
        self.execute_bdas_traced(table, query, &TraceContext::NONE)
    }

    /// [`Executor::execute_bdas`] with an explicit trace parent: the
    /// executor's span tree (scatter → per-node scans → gather) attaches
    /// under `parent`, so a pipeline or geo coordinator's trace stays one
    /// coherent tree across the hop. Each engaged node gets its own
    /// `query.executor.node` span tagged with the node id and carrying
    /// that node's simulated cost; the scatter span is tagged with the
    /// parallel makespan (max over nodes).
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_bdas`].
    pub fn execute_bdas_traced(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        parent: &TraceContext,
    ) -> Result<QueryOutcome> {
        let _exec_span = self.telemetry.span_child_of(parent, "query.executor.bdas");
        self.telemetry.incr("query.executor.bdas_queries", 1);
        query.aggregate.validate(self.cluster.dims(table)?)?;
        let mut node_meters = Vec::with_capacity(self.cluster.num_nodes());
        let mut partials = Vec::with_capacity(self.cluster.num_nodes());
        {
            let scatter = self.telemetry.span("query.executor.scatter");
            let scatter_ctx = scatter.ctx();
            for node in 0..self.cluster.num_nodes() {
                let node_span = self
                    .telemetry
                    .span_child_of(&scatter_ctx, "query.executor.node");
                node_span.tag("node", node);
                let mut meter = CostMeter::new();
                meter.touch_node(BDAS_LAYERS);
                let records =
                    self.cluster
                        .scan_node_traced(table, node, &node_span.ctx(), &mut meter)?;
                let matched: Vec<&Record> = records
                    .into_iter()
                    .filter(|r| query.region.contains_record(r))
                    .collect();
                let partial = make_partial(&query.aggregate, &matched);
                meter.charge_lan(partial.wire_bytes());
                node_span.record_sim_us(meter.sequential_us(&self.cost_model));
                partials.push(partial);
                node_meters.push(meter);
            }
            // Nodes run in parallel: the scatter phase lasts as long as
            // its slowest node under the cost model. The per-node spans
            // carry the per-node costs; the makespan is a tag so the
            // tree's sim rollup doesn't double-count.
            scatter.tag(
                "sim_makespan_us",
                node_meters
                    .iter()
                    .map(|m| m.sequential_us(&self.cost_model))
                    .fold(0.0, f64::max),
            );
        }
        let gather = self.telemetry.span("query.executor.gather");
        let mut coord = CostMeter::new();
        coord.charge_cpu(partials.len() as u64);
        let answer = merge_partials(&query.aggregate, partials)?;
        let cost = coord.report_parallel(node_meters.iter(), &self.cost_model);
        gather.record_sim_us(coord.sequential_us(&self.cost_model));
        drop(gather);
        Ok(QueryOutcome { answer, cost })
    }

    /// Executes `query` over `table` in the coordinator–cohort regime:
    /// partition pruning picks the candidate nodes, block zone maps prune
    /// within each node, only matching records are aggregated, and each
    /// engaged node pays a single layer crossing.
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_bdas`].
    pub fn execute_direct(&self, table: &str, query: &AnalyticalQuery) -> Result<QueryOutcome> {
        self.execute_direct_traced(table, query, &TraceContext::NONE)
    }

    /// [`Executor::execute_direct`] with an explicit trace parent (see
    /// [`Executor::execute_bdas_traced`]).
    ///
    /// # Errors
    ///
    /// As [`Executor::execute_direct`].
    pub fn execute_direct_traced(
        &self,
        table: &str,
        query: &AnalyticalQuery,
        parent: &TraceContext,
    ) -> Result<QueryOutcome> {
        let _exec_span = self
            .telemetry
            .span_child_of(parent, "query.executor.direct");
        self.telemetry.incr("query.executor.direct_queries", 1);
        query.aggregate.validate(self.cluster.dims(table)?)?;
        let bbox = query.region.bounding_rect();
        let candidates = self.cluster.nodes_for_region(table, &bbox)?;
        let mut coord = CostMeter::new();
        // One request message per engaged node.
        let mut node_meters = Vec::with_capacity(candidates.len());
        let mut partials = Vec::with_capacity(candidates.len());
        {
            let scatter = self.telemetry.span("query.executor.scatter");
            let scatter_ctx = scatter.ctx();
            for node in candidates {
                let node_span = self
                    .telemetry
                    .span_child_of(&scatter_ctx, "query.executor.node");
                node_span.tag("node", node);
                coord.charge_lan(64);
                let mut meter = CostMeter::new();
                meter.touch_node(DIRECT_LAYERS);
                let in_bbox = self.cluster.scan_node_region_traced(
                    table,
                    node,
                    &bbox,
                    &node_span.ctx(),
                    &mut meter,
                )?;
                let matched: Vec<&Record> = in_bbox
                    .into_iter()
                    .filter(|r| query.region.contains_record(r))
                    .collect();
                let partial = make_partial(&query.aggregate, &matched);
                meter.charge_lan(partial.wire_bytes());
                node_span.record_sim_us(meter.sequential_us(&self.cost_model));
                partials.push(partial);
                node_meters.push(meter);
            }
            scatter.tag(
                "sim_makespan_us",
                node_meters
                    .iter()
                    .map(|m| m.sequential_us(&self.cost_model))
                    .fold(0.0, f64::max),
            );
        }
        let gather = self.telemetry.span("query.executor.gather");
        coord.charge_cpu(partials.len() as u64);
        let answer = merge_partials(&query.aggregate, partials)?;
        let cost = coord.report_parallel(node_meters.iter(), &self.cost_model);
        gather.record_sim_us(coord.sequential_us(&self.cost_model));
        drop(gather);
        Ok(QueryOutcome { answer, cost })
    }
}

fn make_partial(agg: &AggregateKind, matched: &[&Record]) -> Partial {
    match *agg {
        AggregateKind::Count => Partial::CountSum {
            count: matched.len() as u64,
            sum: 0.0,
            sum_sq: 0.0,
        },
        AggregateKind::Sum { dim }
        | AggregateKind::Mean { dim }
        | AggregateKind::Variance { dim } => {
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for r in matched {
                let v = r.value(dim);
                sum += v;
                sum_sq += v * v;
            }
            Partial::CountSum {
                count: matched.len() as u64,
                sum,
                sum_sq,
            }
        }
        AggregateKind::Min { dim } | AggregateKind::Max { dim } => {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for r in matched {
                let v = r.value(dim);
                min = min.min(v);
                max = max.max(v);
            }
            Partial::MinMax { min, max }
        }
        AggregateKind::Median { dim } | AggregateKind::Quantile { dim, .. } => {
            Partial::Values(matched.iter().map(|r| r.value(dim)).collect())
        }
        AggregateKind::Correlation { x, y } | AggregateKind::Regression { x, y } => {
            Partial::Bivariate(BivariateStats::from_records(matched.iter().copied(), x, y))
        }
        // `AggregateKind` is non_exhaustive; future variants ship raw
        // values so `merge_partials` can reject them explicitly.
        _ => Partial::Values(Vec::new()),
    }
}

fn merge_partials(agg: &AggregateKind, partials: Vec<Partial>) -> Result<AnswerValue> {
    use sea_common::SeaError;
    match *agg {
        AggregateKind::Count => {
            let total: u64 = partials.iter().map(count_of).sum();
            Ok(AnswerValue::Scalar(total as f64))
        }
        AggregateKind::Sum { .. } => {
            let total: f64 = partials.iter().map(sum_of).sum();
            Ok(AnswerValue::Scalar(total))
        }
        AggregateKind::Mean { .. } => {
            let n: u64 = partials.iter().map(count_of).sum();
            if n == 0 {
                return Err(SeaError::Empty("mean over empty subspace".into()));
            }
            let s: f64 = partials.iter().map(sum_of).sum();
            Ok(AnswerValue::Scalar(s / n as f64))
        }
        AggregateKind::Variance { .. } => {
            let n: u64 = partials.iter().map(count_of).sum();
            if n == 0 {
                return Err(SeaError::Empty("variance over empty subspace".into()));
            }
            let s: f64 = partials.iter().map(sum_of).sum();
            let sq: f64 = partials
                .iter()
                .map(|p| match p {
                    Partial::CountSum { sum_sq, .. } => *sum_sq,
                    _ => 0.0,
                })
                .sum();
            Ok(AnswerValue::Scalar(sq / n as f64 - (s / n as f64).powi(2)))
        }
        AggregateKind::Min { .. } => {
            let m = partials
                .iter()
                .filter_map(|p| match p {
                    Partial::MinMax { min, .. } if min.is_finite() => Some(*min),
                    _ => None,
                })
                .fold(f64::INFINITY, f64::min);
            if m.is_finite() {
                Ok(AnswerValue::Scalar(m))
            } else {
                Err(SeaError::Empty("min over empty subspace".into()))
            }
        }
        AggregateKind::Max { .. } => {
            let m = partials
                .iter()
                .filter_map(|p| match p {
                    Partial::MinMax { max, .. } if max.is_finite() => Some(*max),
                    _ => None,
                })
                .fold(f64::NEG_INFINITY, f64::max);
            if m.is_finite() {
                Ok(AnswerValue::Scalar(m))
            } else {
                Err(SeaError::Empty("max over empty subspace".into()))
            }
        }
        AggregateKind::Median { .. } => merge_quantile(partials, 0.5),
        AggregateKind::Quantile { q, .. } => merge_quantile(partials, q),
        AggregateKind::Correlation { .. } => {
            let mut stats = BivariateStats::default();
            for p in &partials {
                if let Partial::Bivariate(b) = p {
                    stats.merge(b);
                }
            }
            stats.correlation().map(AnswerValue::Scalar)
        }
        AggregateKind::Regression { .. } => {
            let mut stats = BivariateStats::default();
            for p in &partials {
                if let Partial::Bivariate(b) = p {
                    stats.merge(b);
                }
            }
            let (slope, intercept) = stats.ols_line()?;
            Ok(AnswerValue::Pair(slope, intercept))
        }
        _ => Err(SeaError::invalid("aggregate not supported by the executor")),
    }
}

fn count_of(p: &Partial) -> u64 {
    match p {
        Partial::CountSum { count, .. } => *count,
        _ => 0,
    }
}

fn sum_of(p: &Partial) -> f64 {
    match p {
        Partial::CountSum { sum, .. } => *sum,
        _ => 0.0,
    }
}

fn merge_quantile(partials: Vec<Partial>, q: f64) -> Result<AnswerValue> {
    use sea_common::SeaError;
    let mut values: Vec<f64> = partials
        .into_iter()
        .flat_map(|p| match p {
            Partial::Values(v) => v,
            _ => Vec::new(),
        })
        .collect();
    if values.is_empty() {
        return Err(SeaError::Empty("quantile over empty subspace".into()));
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Ok(AnswerValue::Scalar(
        values[lo] + (values[hi] - values[lo]) * (pos - lo as f64),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sea_common::{Ball, Point, Rect, Region, SeaError};
    use sea_storage::Partitioning;

    fn cluster() -> StorageCluster {
        let mut c = StorageCluster::new(4, 64);
        let records: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64, (i % 7) as f64]))
            .collect();
        c.load_table("t", records, Partitioning::Hash).unwrap();
        let records2: Vec<Record> = (0..2000)
            .map(|i| Record::new(i, vec![(i % 100) as f64, (i / 100) as f64, (i % 7) as f64]))
            .collect();
        c.load_table(
            "t_range",
            records2,
            Partitioning::Range {
                dim: 0,
                splits: Partitioning::equi_width_splits(0.0, 100.0, 4),
            },
        )
        .unwrap();
        c
    }

    fn count_query(lo: Vec<f64>, hi: Vec<f64>) -> AnalyticalQuery {
        AnalyticalQuery::new(
            Region::Range(Rect::new(lo, hi).unwrap()),
            AggregateKind::Count,
        )
    }

    fn oracle(c: &StorageCluster, table: &str, q: &AnalyticalQuery) -> AnswerValue {
        let all: Vec<Record> = c.all_records(table).unwrap().into_iter().cloned().collect();
        q.answer_exact(&all).unwrap()
    }

    #[test]
    fn bdas_and_direct_agree_with_oracle_on_all_aggregates() {
        let c = cluster();
        let exec = Executor::new(&c);
        let region = Region::Range(Rect::new(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]).unwrap());
        let aggregates = vec![
            AggregateKind::Count,
            AggregateKind::Sum { dim: 1 },
            AggregateKind::Mean { dim: 1 },
            AggregateKind::Variance { dim: 2 },
            AggregateKind::Min { dim: 0 },
            AggregateKind::Max { dim: 1 },
            AggregateKind::Median { dim: 0 },
            AggregateKind::Quantile { dim: 0, q: 0.25 },
            AggregateKind::Correlation { x: 0, y: 2 },
            AggregateKind::Regression { x: 0, y: 1 },
        ];
        for agg in aggregates {
            let q = AnalyticalQuery::new(region.clone(), agg);
            let want = oracle(&c, "t", &q);
            let bdas = exec.execute_bdas("t", &q).unwrap();
            let direct = exec.execute_direct("t", &q).unwrap();
            assert!(
                bdas.answer.relative_error(&want) < 1e-9,
                "bdas {agg:?}: {:?} vs {want:?}",
                bdas.answer
            );
            assert!(
                direct.answer.relative_error(&want) < 1e-9,
                "direct {agg:?}: {:?} vs {want:?}",
                direct.answer
            );
        }
    }

    #[test]
    fn radius_queries_agree() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(
            Region::Radius(Ball::new(Point::new(vec![50.0, 10.0, 3.0]), 8.0).unwrap()),
            AggregateKind::Count,
        );
        let want = oracle(&c, "t", &q);
        assert_eq!(exec.execute_bdas("t", &q).unwrap().answer, want);
        assert_eq!(exec.execute_direct("t", &q).unwrap().answer, want);
    }

    #[test]
    fn direct_is_cheaper_than_bdas() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 5.0, 6.0]);
        let bdas = exec.execute_bdas("t", &q).unwrap();
        let direct = exec.execute_direct("t", &q).unwrap();
        assert!(
            direct.cost.wall_us < bdas.cost.wall_us,
            "direct {} vs bdas {}",
            direct.cost.wall_us,
            bdas.cost.wall_us
        );
        assert!(direct.cost.totals.disk_bytes < bdas.cost.totals.disk_bytes);
        assert!(direct.cost.totals.layer_crossings < bdas.cost.totals.layer_crossings);
    }

    #[test]
    fn direct_on_range_partitioning_touches_fewer_nodes() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 1e9, 6.0]);
        let hash = exec.execute_direct("t", &q).unwrap();
        let ranged = exec.execute_direct("t_range", &q).unwrap();
        assert_eq!(hash.answer, ranged.answer);
        assert!(ranged.cost.totals.nodes_touched < hash.cost.totals.nodes_touched);
        assert_eq!(ranged.cost.totals.nodes_touched, 1);
    }

    #[test]
    fn bdas_engages_every_node() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        let out = exec.execute_bdas("t", &q).unwrap();
        assert_eq!(out.cost.totals.nodes_touched, 4);
        assert_eq!(out.cost.totals.layer_crossings, 4 * BDAS_LAYERS);
    }

    #[test]
    fn empty_selection_semantics() {
        let c = cluster();
        let exec = Executor::new(&c);
        let nowhere = count_query(vec![-10.0, -10.0, -10.0], vec![-5.0, -5.0, -5.0]);
        assert_eq!(
            exec.execute_bdas("t", &nowhere).unwrap().answer,
            AnswerValue::Scalar(0.0)
        );
        let mean_nowhere =
            AnalyticalQuery::new(nowhere.region.clone(), AggregateKind::Mean { dim: 0 });
        assert!(matches!(
            exec.execute_direct("t", &mean_nowhere),
            Err(SeaError::Empty(_))
        ));
    }

    #[test]
    fn missing_table_is_an_error() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = count_query(vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]);
        assert!(matches!(
            exec.execute_bdas("missing", &q),
            Err(SeaError::NotFound(_))
        ));
    }

    #[test]
    fn invalid_aggregate_dim_is_an_error() {
        let c = cluster();
        let exec = Executor::new(&c);
        let q = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0; 3], vec![1.0; 3]).unwrap()),
            AggregateKind::Mean { dim: 9 },
        );
        assert!(exec.execute_bdas("t", &q).is_err());
        assert!(exec.execute_direct("t", &q).is_err());
    }

    #[test]
    fn recording_sink_yields_one_coherent_span_tree() {
        use sea_telemetry::FieldValue;
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        sink.begin_query(9);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![60.0, 15.0, 6.0]);
        exec.execute_bdas("t", &q).unwrap();
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.spans.roots.len(), 1, "one query → one span tree");
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "query.executor.bdas");
        assert_eq!(root.trace_id, sea_telemetry::trace_id_for_query(9));
        let scatter = root.find("query.executor.scatter").unwrap();
        let nodes: Vec<_> = scatter
            .children
            .iter()
            .filter(|s| s.name == "query.executor.node")
            .collect();
        assert_eq!(nodes.len(), 4, "every node under scatter");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.tag("node"), Some(&FieldValue::U64(i as u64)));
            assert!(n.sim_us > 0.0, "per-node sim cost attributed");
            assert_eq!(n.trace_id, root.trace_id, "single trace end to end");
            let scan = n.find("storage.node.scan").expect("scan under its node");
            assert_eq!(scan.parent_span_id, n.span_id);
            assert_eq!(scan.tag("node"), Some(&FieldValue::U64(i as u64)));
        }
        assert!(root.find("query.executor.gather").is_some());
        assert!(scatter.tag("sim_makespan_us").is_some());
    }

    #[test]
    fn direct_traced_attributes_only_engaged_nodes() {
        let mut c = cluster();
        let sink = TelemetrySink::recording();
        c.set_telemetry(sink.clone());
        let exec = Executor::new(&c);
        let q = count_query(vec![10.0, 0.0, 0.0], vec![20.0, 1e9, 6.0]);
        exec.execute_direct("t_range", &q).unwrap();
        let snap = sink.snapshot().unwrap();
        let root = &snap.spans.roots[0];
        assert_eq!(root.name, "query.executor.direct");
        let scatter = root.find("query.executor.scatter").unwrap();
        let nodes: Vec<_> = scatter
            .children
            .iter()
            .filter(|s| s.name == "query.executor.node")
            .collect();
        assert_eq!(nodes.len(), 1, "range pruning → one engaged node");
    }

    #[test]
    fn holistic_aggregates_ship_values() {
        let c = cluster();
        let exec = Executor::new(&c);
        let big = AnalyticalQuery::new(
            Region::Range(Rect::new(vec![0.0; 3], vec![100.0, 20.0, 6.0]).unwrap()),
            AggregateKind::Median { dim: 0 },
        );
        let small = AnalyticalQuery::new(big.region.clone(), AggregateKind::Count);
        let big_out = exec.execute_bdas("t", &big).unwrap();
        let small_out = exec.execute_bdas("t", &small).unwrap();
        assert!(
            big_out.cost.totals.lan_bytes > small_out.cost.totals.lan_bytes * 10,
            "median ships values: {} vs {}",
            big_out.cost.totals.lan_bytes,
            small_out.cost.totals.lan_bytes
        );
    }
}
