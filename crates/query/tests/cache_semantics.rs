//! Semantic-cache correctness at the executor level.
//!
//! The load-bearing property is *transparency*: an answer served from
//! the cache — exact or re-derived from cached per-node fragments for a
//! contained sub-region — must be bit-identical to what a cold scan of
//! the same query returns, including errors (a Mean over an empty
//! subspace fails identically warm or cold). On top of that, eviction
//! order must be a pure function of the insert sequence, and a
//! drift-epoch bump must drop every pre-drift entry.

use proptest::prelude::*;
use sea_cache::{CacheConfig, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, Ball, Point, Record, Rect, Region};
use sea_query::Executor;
use sea_storage::{Partitioning, StorageCluster};

fn build_cluster(nodes: usize) -> StorageCluster {
    let mut c = StorageCluster::new(nodes, 64);
    let records: Vec<Record> = (0..2000)
        .map(|i| {
            Record::new(
                i as u64,
                vec![(i % 100) as f64, (i % 7) as f64, ((i * 31) % 53) as f64],
            )
        })
        .collect();
    c.load_table("t", records, Partitioning::Hash).unwrap();
    c
}

fn aggregate_by_index(idx: usize) -> AggregateKind {
    match idx {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum { dim: 1 },
        2 => AggregateKind::Mean { dim: 1 },
        3 => AggregateKind::Variance { dim: 1 },
        4 => AggregateKind::Median { dim: 0 },
        _ => AggregateKind::Quantile { dim: 0, q: 0.75 },
    }
}

fn open_cache() -> SemanticCache {
    SemanticCache::new(CacheConfig {
        admit_min_cost_us: 0.0,
        ..CacheConfig::default()
    })
}

/// Answers (or error messages) compare structurally via their debug
/// rendering; costs are excluded because a cache hit is *supposed* to
/// be cheaper.
fn answer_key(r: sea_common::Result<sea_query::QueryOutcome>) -> String {
    format!("{:?}", r.map(|o| o.answer))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm the cache with a random outer rectangle, then query a random
    /// rectangle contained in it: the (possible) containment hit must
    /// reproduce the cold answer exactly, for every aggregate, including
    /// empty-subspace errors.
    #[test]
    fn containment_hits_rederive_the_cold_answer(
        lo0 in 0.0..40.0f64, lo1 in 0.0..40.0f64, lo2 in 0.0..40.0f64,
        w0 in 0.5..50.0f64, w1 in 0.5..50.0f64, w2 in 0.5..50.0f64,
        off0 in 0.0..1.0f64, off1 in 0.0..1.0f64, off2 in 0.0..1.0f64,
        frac0 in 0.01..1.0f64, frac1 in 0.01..1.0f64, frac2 in 0.01..1.0f64,
        agg_idx in 0..6usize,
    ) {
        let lo = [lo0, lo1, lo2];
        let width = [w0, w1, w2];
        let inner_off = [off0, off1, off2];
        let inner_frac = [frac0, frac1, frac2];
        let outer_hi: Vec<f64> = (0..3).map(|d| lo[d] + width[d]).collect();
        let inner_lo: Vec<f64> = (0..3).map(|d| lo[d] + inner_off[d] * width[d]).collect();
        let inner_hi: Vec<f64> = (0..3)
            .map(|d| inner_lo[d] + inner_frac[d] * (outer_hi[d] - inner_lo[d]))
            .collect();
        let outer = Rect::new(lo.to_vec(), outer_hi).unwrap();
        let inner = Rect::new(inner_lo, inner_hi).unwrap();

        let cluster = build_cluster(4);
        let cache = open_cache();
        let exec = Executor::new(&cluster).with_cache(&cache);
        // Warm (and admit) the outer region; it may legitimately fail
        // (e.g. Mean over an empty subspace), in which case nothing is
        // admitted and the inner query simply runs cold on both sides.
        let warm = AnalyticalQuery::new(Region::Range(outer), aggregate_by_index(agg_idx));
        let _ = exec.execute_direct("t", &warm);

        let q = AnalyticalQuery::new(Region::Range(inner), aggregate_by_index(agg_idx));
        let warm_answer = answer_key(exec.execute_direct("t", &q));
        let cold_answer = answer_key(Executor::new(&cluster).execute_direct("t", &q));
        prop_assert_eq!(warm_answer, cold_answer);
    }
}

#[test]
fn containment_serves_rect_and_ball_sub_queries() {
    let cluster = build_cluster(4);
    let cache = open_cache();
    let exec = Executor::new(&cluster).with_cache(&cache);
    let outer = Rect::new(vec![0.0, 0.0, 0.0], vec![80.0, 7.0, 53.0]).unwrap();
    let warm = AnalyticalQuery::new(Region::Range(outer), AggregateKind::Count);
    exec.execute_direct("t", &warm).unwrap();

    // A rectangular sub-query re-derives from the cached fragments …
    let sub = Rect::new(vec![10.0, 1.0, 5.0], vec![60.0, 6.0, 40.0]).unwrap();
    let q = AnalyticalQuery::new(Region::Range(sub), AggregateKind::Count);
    let warm_out = exec.execute_direct("t", &q).unwrap();
    let cold_out = Executor::new(&cluster).execute_direct("t", &q).unwrap();
    assert_eq!(warm_out.answer, cold_out.answer);
    assert!(
        warm_out.cost.wall_us < cold_out.cost.wall_us,
        "serving from memory beats scanning: {} vs {}",
        warm_out.cost.wall_us,
        cold_out.cost.wall_us
    );

    // … and so does a ball whose bounding rectangle the entry contains.
    let ball = Ball::new(Point::new(vec![40.0, 3.0, 25.0]), 2.5).unwrap();
    let bq = AnalyticalQuery::new(Region::Radius(ball), AggregateKind::Count);
    let warm_ball = exec.execute_direct("t", &bq).unwrap();
    let cold_ball = Executor::new(&cluster).execute_direct("t", &bq).unwrap();
    assert_eq!(warm_ball.answer, cold_ball.answer);

    let stats = cache.stats();
    assert_eq!(
        (stats.hits, stats.containment_hits),
        (0, 2),
        "both sub-queries classified as containment hits: {stats:?}"
    );
}

#[test]
fn eviction_order_is_a_pure_function_of_the_insert_sequence() {
    // Capacity for roughly two of the admitted regions: later inserts
    // force evictions, and two identical runs must make identical
    // choices (no wall clock, no RNG anywhere in the policy).
    let run = || {
        let cluster = build_cluster(4);
        let cache = SemanticCache::new(CacheConfig {
            capacity_bytes: 64 * 1024,
            admit_min_cost_us: 0.0,
        });
        let exec = Executor::new(&cluster).with_cache(&cache);
        for i in 0..12u64 {
            let lo = (i % 6) as f64 * 12.0;
            let rect =
                Rect::new(vec![lo, 0.0, 0.0], vec![lo + 20.0 + i as f64, 7.0, 53.0]).unwrap();
            let q = AnalyticalQuery::new(Region::Range(rect), AggregateKind::Count);
            exec.execute_direct("t", &q).unwrap();
        }
        (cache.stats(), cache.len(), cache.memory_bytes())
    };
    let first = run();
    assert!(first.0.evictions > 0, "the sequence overflows the cache");
    assert_eq!(first, run(), "identical inserts, identical evictions");
}

#[test]
fn drift_epoch_bump_drops_pre_drift_entries() {
    let cluster = build_cluster(4);
    let cache = open_cache();
    let exec = Executor::new(&cluster).with_cache(&cache);
    let rect = Rect::new(vec![0.0, 0.0, 0.0], vec![80.0, 7.0, 53.0]).unwrap();
    let q = AnalyticalQuery::new(Region::Range(rect), AggregateKind::Count);
    let cold = exec.execute_direct("t", &q).unwrap();
    let warm = exec.execute_direct("t", &q).unwrap();
    assert_eq!(warm.answer, cold.answer);
    assert_eq!(cache.stats().hits, 1, "warm repeat hits");

    // The workload drifts: everything learned before is suspect.
    assert_eq!(cache.advance_epoch(), 1);
    assert!(cache.is_empty(), "pre-drift entries are gone");
    let misses_before = cache.stats().misses;
    exec.execute_direct("t", &q).unwrap();
    assert_eq!(
        cache.stats().misses,
        misses_before + 1,
        "post-drift re-scan"
    );
    // The fresh result is re-admitted under the new epoch and serves again.
    exec.execute_direct("t", &q).unwrap();
    assert_eq!(cache.stats().hits, 2);
}
