//! Cache determinism: with a [`SemanticCache`] in front of the
//! executor, answers, full cost reports, cache statistics, and recorded
//! telemetry tables must be bit-identical at any [`ExecPool`] thread
//! count. Consultation and admission happen on the coordinator thread
//! only, so the hit/miss sequence — and therefore every downstream
//! number — is independent of scheduling.

use sea_cache::{CacheConfig, CacheStats, SemanticCache};
use sea_common::{AggregateKind, AnalyticalQuery, Ball, Point, Record, Rect, Region};
use sea_query::{ExecPool, Executor};
use sea_storage::{Partitioning, StorageCluster};
use sea_telemetry::{SpanNode, TelemetrySink, TelemetrySnapshot};

fn build_cluster(nodes: usize) -> StorageCluster {
    let mut c = StorageCluster::new(nodes, 64);
    let records: Vec<Record> = (0..2000)
        .map(|i| {
            Record::new(
                i as u64,
                vec![(i % 100) as f64, (i % 7) as f64, ((i * 31) % 53) as f64],
            )
        })
        .collect();
    c.load_table("t", records, Partitioning::Hash).unwrap();
    c
}

fn aggregate_by_index(idx: usize) -> AggregateKind {
    match idx {
        0 => AggregateKind::Count,
        1 => AggregateKind::Sum { dim: 1 },
        2 => AggregateKind::Mean { dim: 1 },
        3 => AggregateKind::Variance { dim: 1 },
        4 => AggregateKind::Median { dim: 0 },
        _ => AggregateKind::Quantile { dim: 0, q: 0.75 },
    }
}

fn zero_wall(node: &mut SpanNode) {
    node.wall_us = 0.0;
    for c in &mut node.children {
        zero_wall(c);
    }
}

/// Runs a repeat-heavy workload through a cached executor with the
/// given thread budget; returns every outcome (answer *and* full cost
/// report), the final cache statistics, and the telemetry snapshot with
/// host wall-clock scrubbed.
fn cached_run(threads: usize) -> (Vec<String>, CacheStats, TelemetrySnapshot) {
    let mut cluster = build_cluster(4);
    let sink = TelemetrySink::recording();
    cluster.set_telemetry(sink.clone());
    let cache = SemanticCache::new(CacheConfig {
        admit_min_cost_us: 0.0,
        ..CacheConfig::default()
    })
    .with_telemetry(sink.clone());
    let exec = Executor::new(&cluster)
        .with_pool(ExecPool::new(threads))
        .with_cache(&cache);

    let outer = Rect::new(vec![10.0, 0.0, 0.0], vec![70.0, 8.0, 60.0]).unwrap();
    let inner = Rect::new(vec![20.0, 1.0, 5.0], vec![50.0, 6.0, 40.0]).unwrap();
    let ball = Ball::new(Point::new(vec![40.0, 3.0, 25.0]), 4.0).unwrap();
    let mut outcomes = Vec::new();
    let mut query_id = 0u64;
    for agg_idx in 0..6usize {
        // Miss, exact hit, containment hit, ball containment hit — the
        // full classification exercised per aggregate.
        for region in [
            Region::Range(outer.clone()),
            Region::Range(outer.clone()),
            Region::Range(inner.clone()),
            Region::Radius(ball.clone()),
        ] {
            sink.begin_query(query_id);
            query_id += 1;
            let q = AnalyticalQuery::new(region, aggregate_by_index(agg_idx));
            // Errors (Mean over an empty subspace and friends) must be
            // identical run to run too, so they stay in the key.
            outcomes.push(format!("{:?}", exec.execute_direct("t", &q)));
            outcomes.push(format!("{:?}", exec.execute_bdas("t", &q)));
        }
    }
    let mut snap = sink.snapshot().unwrap();
    for root in &mut snap.spans.roots {
        zero_wall(root);
    }
    (outcomes, cache.stats(), snap)
}

#[test]
fn cached_outputs_are_bit_identical_across_thread_counts() {
    let (base_outcomes, base_stats, base_snap) = cached_run(1);
    assert!(base_stats.hits > 0, "the workload produces exact hits");
    assert!(
        base_stats.containment_hits > 0,
        "the workload produces containment hits"
    );
    for threads in [2, 8] {
        let (outcomes, stats, snap) = cached_run(threads);
        assert_eq!(outcomes, base_outcomes, "{threads} threads: outcomes");
        assert_eq!(stats, base_stats, "{threads} threads: cache stats");
        assert_eq!(
            snap.counters, base_snap.counters,
            "{threads} threads: counters"
        );
        assert_eq!(
            snap.histograms, base_snap.histograms,
            "{threads} threads: histograms"
        );
        assert_eq!(snap.events, base_snap.events, "{threads} threads: events");
        assert_eq!(
            snap.spans, base_snap.spans,
            "{threads} threads: span forest (ids, parents, tags, sim)"
        );
    }
}
