//! Property tests pinning the columnar layout to the row layout, bit
//! for bit.
//!
//! The storage refactor replaced row-major blocks with per-dimension
//! column arrays and rewrote every descriptive-statistics kernel as a
//! masked slice fold. The contract is that this is *only* a layout
//! change: every aggregate computed through selection bitmaps over
//! columns must produce exactly the float-op sequence of a row-at-a-time
//! loop over the same records — including blocks with NaN/missing
//! values, all-NaN columns, and empty blocks — and the executor's
//! answers must not depend on the pool size (`SEA_EXEC_THREADS`
//! equivalents 1/2/8).

use proptest::prelude::*;
use sea_common::{
    kernels, AggregateKind, AnalyticalQuery, AnswerValue, Ball, BivariateStats, Point, Record,
    Rect, Region,
};
use sea_query::{ExecPool, Executor};
use sea_storage::{Block, Partitioning, StorageCluster};

const DIMS: usize = 2;

/// A coordinate that is occasionally NaN, so validity bitmaps and
/// NaN-rejecting predicates get exercised.
fn coord() -> impl Strategy<Value = f64> {
    (0u8..9, -100.0..100.0f64).prop_map(|(k, v)| if k == 0 { f64::NAN } else { v })
}

/// Up to ~120 records of [`DIMS`] coordinates (possibly none — the
/// empty-block case).
fn rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(coord(), DIMS..DIMS + 1), 0..120)
}

/// A query rectangle with sorted per-dimension bounds inside the data
/// domain.
fn rect() -> impl Strategy<Value = Rect> {
    prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), DIMS..DIMS + 1).prop_map(|bounds| {
        let lo = bounds.iter().map(|(a, b)| a.min(*b)).collect();
        let hi = bounds.iter().map(|(a, b)| a.max(*b)).collect();
        Rect::new(lo, hi).expect("sorted finite bounds")
    })
}

/// Whether to overwrite dimension 1 with NaN everywhere (the all-NaN
/// column case).
fn nan_col() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn records_from(rows: Vec<Vec<f64>>, nan_col: bool) -> Vec<Record> {
    rows.into_iter()
        .enumerate()
        .map(|(i, mut vals)| {
            if nan_col {
                vals[1] = f64::NAN;
            }
            Record::new(i as u64, vals)
        })
        .collect()
}

/// Every aggregate the executor supports, exercising both dimensions.
fn all_aggregates() -> Vec<AggregateKind> {
    vec![
        AggregateKind::Count,
        AggregateKind::Sum { dim: 0 },
        AggregateKind::Sum { dim: 1 },
        AggregateKind::Mean { dim: 0 },
        AggregateKind::Variance { dim: 1 },
        AggregateKind::Min { dim: 0 },
        AggregateKind::Max { dim: 1 },
        AggregateKind::Median { dim: 0 },
        AggregateKind::Quantile { dim: 1, q: 0.25 },
        AggregateKind::Correlation { x: 0, y: 1 },
        AggregateKind::Regression { x: 0, y: 1 },
    ]
}

proptest! {
    /// The region mask selects exactly the rows a row-at-a-time
    /// `contains_record` filter selects, in the same order — for both
    /// rectangular and ball regions.
    #[test]
    fn region_mask_matches_row_filter(rows in rows(), r in rect(), nan_col in nan_col()) {
        let records = records_from(rows, nan_col);
        let block = Block::new(records.clone());
        let ball = Region::Radius(Ball::new(r.center(), 40.0).unwrap());
        for region in [Region::Range(r), ball] {
            let want: Vec<usize> = records
                .iter()
                .enumerate()
                .filter(|(_, rec)| region.contains_record(rec))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(block.region_mask(&region).to_indices(), want);
        }
    }

    /// Every kernel fold over masked columns reproduces the row loop's
    /// float-op sequence bit for bit: sums, Welford moments, min/max,
    /// gathered quantile inputs, and bivariate sufficient statistics.
    #[test]
    fn columnar_kernels_match_row_folds(rows in rows(), r in rect(), nan_col in nan_col()) {
        let records = records_from(rows, nan_col);
        let block = Block::new(records.clone());
        let region = Region::Range(r);
        let mask = block.region_mask(&region);
        let selected: Vec<&Record> = records
            .iter()
            .filter(|rec| region.contains_record(rec))
            .collect();

        for dim in 0..DIMS {
            // Count + sum + sum of squares.
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            kernels::fold_sum_sq(block.col(dim), &mask, &mut sum, &mut sum_sq);
            let (mut rsum, mut rsum_sq) = (0.0f64, 0.0f64);
            for rec in &selected {
                let v = rec.value(dim);
                rsum += v;
                rsum_sq += v * v;
            }
            prop_assert_eq!(sum.to_bits(), rsum.to_bits());
            prop_assert_eq!(sum_sq.to_bits(), rsum_sq.to_bits());

            // Welford moments.
            let (mut count, mut mean, mut m2) = (0u64, 0.0f64, 0.0f64);
            kernels::fold_welford(block.col(dim), &mask, &mut count, &mut mean, &mut m2);
            let (mut rcount, mut rmean, mut rm2) = (0u64, 0.0f64, 0.0f64);
            for rec in &selected {
                let v = rec.value(dim);
                rcount += 1;
                let delta = v - rmean;
                rmean += delta / rcount as f64;
                rm2 += delta * (v - rmean);
            }
            prop_assert_eq!(count, rcount);
            prop_assert_eq!(mean.to_bits(), rmean.to_bits());
            prop_assert_eq!(m2.to_bits(), rm2.to_bits());

            // Min/max.
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            kernels::fold_min_max(block.col(dim), &mask, &mut min, &mut max);
            let (mut rmin, mut rmax) = (f64::INFINITY, f64::NEG_INFINITY);
            for rec in &selected {
                rmin = rmin.min(rec.value(dim));
                rmax = rmax.max(rec.value(dim));
            }
            prop_assert_eq!(min.to_bits(), rmin.to_bits());
            prop_assert_eq!(max.to_bits(), rmax.to_bits());

            // Quantile inputs (value gathering in record order).
            let mut gathered = Vec::new();
            kernels::gather(block.col(dim), &mask, &mut gathered);
            let row_vals: Vec<f64> = selected.iter().map(|rec| rec.value(dim)).collect();
            prop_assert_eq!(gathered.len(), row_vals.len());
            for (a, b) in gathered.iter().zip(&row_vals) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Bivariate sufficient statistics (correlation/regression).
        let mut stats = BivariateStats::default();
        kernels::fold_bivariate(block.col(0), block.col(1), &mask, &mut stats);
        let rstats = BivariateStats::from_records(selected.iter().copied(), 0, 1);
        prop_assert_eq!(stats.n, rstats.n);
        prop_assert_eq!(stats.sum_x.to_bits(), rstats.sum_x.to_bits());
        prop_assert_eq!(stats.sum_y.to_bits(), rstats.sum_y.to_bits());
        prop_assert_eq!(stats.sum_xx.to_bits(), rstats.sum_xx.to_bits());
        prop_assert_eq!(stats.sum_yy.to_bits(), rstats.sum_yy.to_bits());
        prop_assert_eq!(stats.sum_xy.to_bits(), rstats.sum_xy.to_bits());
    }

    /// On a single node there is no cross-node merge, so the executor's
    /// columnar answer must be bit-identical to the row-layout oracle
    /// ([`AnalyticalQuery::answer_exact`]) for every aggregate — with
    /// the one documented exception that the executor clamps a
    /// rounding-negative variance to zero.
    #[test]
    fn one_node_executor_matches_row_oracle(rows in rows(), r in rect(), nan_col in nan_col()) {
        let records = records_from(rows, nan_col);
        if records.is_empty() {
            return Ok(());
        }
        let mut cluster = StorageCluster::new(1, 16);
        cluster.load_table("t", records.clone(), Partitioning::Hash).unwrap();
        let exec = Executor::new(&cluster);
        for agg in all_aggregates() {
            let q = AnalyticalQuery::new(Region::Range(r.clone()), agg);
            let got = exec.execute_direct("t", &q);
            let want = q.answer_exact(&records);
            match (got, want) {
                (Ok(g), Ok(w)) => {
                    let same = match (&g.answer, &w) {
                        (AnswerValue::Scalar(a), AnswerValue::Scalar(b)) => {
                            a.to_bits() == b.to_bits()
                                || (matches!(q.aggregate, AggregateKind::Variance { .. })
                                    && *b <= 0.0
                                    && *a == 0.0)
                        }
                        (AnswerValue::Pair(a1, a2), AnswerValue::Pair(b1, b2)) => {
                            a1.to_bits() == b1.to_bits() && a2.to_bits() == b2.to_bits()
                        }
                        _ => false,
                    };
                    prop_assert!(
                        same,
                        "{:?}: columnar {:?} != row oracle {:?}",
                        q.aggregate, g.answer, w
                    );
                }
                (Err(_), Err(_)) => {}
                (g, w) => prop_assert!(
                    false,
                    "{:?}: divergent fallibility: exec {:?} oracle {:?}",
                    q.aggregate,
                    g.map(|o| o.answer),
                    w
                ),
            }
        }
    }

    /// Answers, cost reports, and scan statistics are identical for
    /// pool sizes 1, 2, and 8 (the `SEA_EXEC_THREADS` settings), for
    /// both single-query and batch execution — the morsel decomposition
    /// and the batch's shared superset scan are invisible.
    #[test]
    fn outcomes_do_not_depend_on_pool_size(rows in rows(), r in rect(), nan_col in nan_col()) {
        let records = records_from(rows, nan_col);
        if records.is_empty() {
            return Ok(());
        }
        let mut cluster = StorageCluster::new(3, 16);
        cluster
            .load_table(
                "t",
                records,
                Partitioning::Range {
                    dim: 0,
                    splits: Partitioning::equi_width_splits(-100.0, 100.0, 3),
                },
            )
            .unwrap();
        let mk = |r: &Rect, agg: AggregateKind| AnalyticalQuery::new(Region::Range(r.clone()), agg);
        let shifted = Rect::centered(&Point::new(r.center().coords().to_vec()), &[30.0, 30.0]).unwrap();
        let queries = vec![
            mk(&r, AggregateKind::Count),
            mk(&shifted, AggregateKind::Sum { dim: 1 }),
            mk(&r, AggregateKind::Variance { dim: 0 }),
        ];
        let reference: Vec<String> = {
            let exec = Executor::new(&cluster).with_pool(ExecPool::sequential());
            queries
                .iter()
                .map(|q| format!("{:?}", exec.execute_direct("t", q).map(|o| (o.answer, o.cost))))
                .collect()
        };
        for threads in [1usize, 2, 8] {
            let exec = Executor::new(&cluster).with_pool(ExecPool::new(threads));
            let direct: Vec<String> = queries
                .iter()
                .map(|q| format!("{:?}", exec.execute_direct("t", q).map(|o| (o.answer, o.cost))))
                .collect();
            prop_assert_eq!(&direct, &reference);
            let batch: Vec<String> = exec
                .execute_batch("t", &queries)
                .into_iter()
                .map(|res| format!("{:?}", res.map(|o| (o.answer, o.cost))))
                .collect();
            prop_assert_eq!(&batch, &reference);
        }
    }
}
